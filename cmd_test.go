package ensdropcatch

// Command-line smoke tests: build the binaries once and drive them the way
// a user would, including the full ensworld -> enscrawl -> ensanalyze
// hand-off over a real socket.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles a command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestEnspremiumCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "enspremium")

	out, err := exec.Command(bin, "-expiry", "2023-01-15", "-label", "gold", "-step", "72").CombinedOutput()
	if err != nil {
		t.Fatalf("enspremium: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"gold.eth", "2023-04-15", "premium", "ETH"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Missing flag is a usage error.
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("enspremium without -expiry succeeded")
	}
}

func TestEnsanalyzeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "ensanalyze")

	out, err := exec.Command(bin, "-domains", "600", "-seed", "2", "-csv", filepath.Join(dir, "csv")).CombinedOutput()
	if err != nil {
		t.Fatalf("ensanalyze: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Table 1", "Table 2", "Resale market", "Financial losses",
		"resolution logs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	for _, f := range []string{"figure2_monthly.csv", "figure6_income.csv", "figure9_scatter.csv"} {
		if _, err := os.Stat(filepath.Join(dir, "csv", f)); err != nil {
			t.Errorf("CSV %s not written: %v", f, err)
		}
	}
}

func TestWorldCrawlAnalyzePipelineCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and serves sockets")
	}
	dir := t.TempDir()
	worldBin := buildTool(t, dir, "ensworld")
	crawlBin := buildTool(t, dir, "enscrawl")
	analyzeBin := buildTool(t, dir, "ensanalyze")

	addr := freeAddr(t)
	server := exec.Command(worldBin, "-domains", "500", "-listen", addr, "-etherscan-rate", "1000000")
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()

	// Wait for the listener.
	deadline := time.Now().Add(60 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ensworld never started listening")
		}
		time.Sleep(200 * time.Millisecond)
	}

	dataDir := filepath.Join(dir, "data")
	crawl := exec.Command(crawlBin,
		"-base", "http://"+addr,
		"-out", dataDir,
		"-rps", "0",
		"-resume", filepath.Join(dir, "resume"))
	if out, err := crawl.CombinedOutput(); err != nil {
		t.Fatalf("enscrawl: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "meta.json")); err != nil {
		t.Fatalf("dataset not written: %v", err)
	}

	out, err := exec.Command(analyzeBin, "-data", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("ensanalyze -data: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "re-registered (dropcaught)") {
		t.Errorf("analysis over crawled data missing population table:\n%.1000s", out)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return fmt.Sprintf("127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
}
