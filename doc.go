// Package ensdropcatch is a from-scratch Go reproduction of "Panning for
// gold.eth: Understanding and Analyzing ENS Domain Dropcatching"
// (IMC 2024): a measurement pipeline that detects expired-and-re-registered
// ENS names, characterizes what makes a name worth dropcatching, and
// quantifies the funds misdirected to new owners through stale ENS
// resolution.
//
// The repository contains both the paper's analysis (internal/core) and
// every substrate it ran against, rebuilt from scratch on the standard
// library: a simulated Ethereum chain with the ENS contract suite
// (internal/chain, internal/ens), the ENS subgraph with a GraphQL-subset
// engine (internal/subgraph), Etherscan- and OpenSea-style APIs
// (internal/etherscan, internal/opensea), an ETH-USD price oracle
// (internal/pricing), a crawl toolkit (internal/crawler), and an
// agent-based ecosystem generator (internal/world) that produces the
// population the analysis studies.
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
package ensdropcatch
