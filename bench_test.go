package ensdropcatch

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus ablations of the design choices called out in
// DESIGN.md §5. Each benchmark times the analysis that regenerates its
// artifact over a shared world (default 20,000 domains ~= 1/155 of the
// paper's 3.1M; override with ENSBENCH_DOMAINS) and reports the
// paper-comparable quantities as custom metrics. EXPERIMENTS.md records
// the resulting paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ensdropcatch/internal/auction"
	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethrpc"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/recovery"
	"ensdropcatch/internal/stats"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/walletsim"
	"ensdropcatch/internal/world"
)

// PaperDomains is the size of the paper's dataset, for scale factors.
const PaperDomains = 3_103_000

var benchState struct {
	once sync.Once
	res  *world.Result
	ds   *dataset.Dataset
	an   *core.Analyzer
	fp   uint64 // dataset fingerprint at build time
	err  error
}

func benchDomains() int {
	if s := os.Getenv("ENSBENCH_DOMAINS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 20000
}

func benchWorld(b *testing.B) (*world.Result, *dataset.Dataset, *core.Analyzer) {
	b.Helper()
	benchState.once.Do(func() {
		cfg := world.DefaultConfig(benchDomains())
		res, err := world.Generate(cfg)
		if err != nil {
			benchState.err = err
			return
		}
		ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
		if err != nil {
			benchState.err = err
			return
		}
		benchState.res = res
		benchState.ds = ds
		benchState.an = core.NewAnalyzer(ds, res.Oracle)
		benchState.fp = ds.Fingerprint()
		fmt.Fprintf(os.Stderr, "bench world: %d domains (scale 1/%.0f of paper), %d txs, %d re-registered\n",
			cfg.NumDomains, float64(PaperDomains)/float64(cfg.NumDomains),
			len(ds.Txs), len(benchState.an.Pop.Reregistered))
	})
	if benchState.err != nil {
		b.Fatalf("bench world: %v", benchState.err)
	}
	// The world is shared across every benchmark; a benchmark that mutated
	// it would silently skew everything running after it.
	if fp := benchState.ds.Fingerprint(); fp != benchState.fp {
		b.Fatalf("bench world mutated: fingerprint %x, was %x at build", fp, benchState.fp)
	}
	// Stamp every result with the world size so archived runs at different
	// ENSBENCH_DOMAINS stay distinguishable in BENCH_PR3.json. Via Cleanup
	// because it runs after the benchmark body: callers invoke b.ResetTimer
	// to exclude the world build, and since Go 1.24 that clears metrics
	// reported before it.
	b.Cleanup(func() { b.ReportMetric(float64(benchDomains()), "world_domains") })
	return benchState.res, benchState.ds, benchState.an
}

// scale converts a paper-scale count to this world's scale.
func scale(paperCount int) float64 {
	return float64(paperCount) * float64(benchDomains()) / PaperDomains
}

// --- §3: data collection ---

// BenchmarkDataCollection crawls the three HTTP substrates end to end (a
// smaller world: the crawl is the workload, not the analysis).
func BenchmarkDataCollection(b *testing.B) {
	cfg := world.DefaultConfig(1500)
	res, err := world.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	sgSrv := httptest.NewServer(subgraph.NewServer(store, nil))
	defer sgSrv.Close()
	esSrv := httptest.NewServer(etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), 1_000_000, nil))
	defer esSrv.Close()
	osSrv := httptest.NewServer(opensea.NewServer(res.OpenSea))
	defer osSrv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		esClient := etherscan.NewClient(esSrv.URL, "bench")
		esClient.MinInterval = 0
		ds, err := dataset.Build(context.Background(),
			subgraph.NewClient(sgSrv.URL), esClient, opensea.NewClient(osSrv.URL),
			dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			an := core.NewAnalyzer(ds, res.Oracle)
			st := an.CollectionStats()
			b.ReportMetric(st.RecoveryRate*100, "recovery_%")
			b.ReportMetric(float64(st.Transactions), "txs")
		}
	}
}

// BenchmarkNameRecoveryMethods reproduces §3.1's methodological claim:
// the subgraph recovers ~99.9% of names, while direct chain extraction
// (raw eth_getLogs exposes only label hashes; plaintexts must be
// brute-forced, as in Xia et al.) tops out much lower because random
// labels are not enumerable.
func BenchmarkNameRecoveryMethods(b *testing.B) {
	res, ds, an := benchWorld(b)

	b.Run("subgraph", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			rate = an.CollectionStats().RecoveryRate
		}
		b.ReportMetric(rate*100, "recovery_%")
		b.ReportMetric(99.9, "paper_recovery_%")
	})

	b.Run("rpc_bruteforce", func(b *testing.B) {
		// Raw extraction over JSON-RPC: hash-only logs.
		srv := httptest.NewServer(ethrpc.NewServer(res.Chain))
		defer srv.Close()
		client := ethrpc.NewClient(srv.URL)
		var rate float64
		for i := 0; i < b.N; i++ {
			logs, err := client.GetLogsPaged(context.Background(), []string{"NameRegistered"}, 2_000_000)
			if err != nil {
				b.Fatal(err)
			}
			targets := make([]ethtypes.Hash, 0, len(logs))
			seen := map[string]bool{}
			for _, l := range logs {
				if len(l.Topics) == 0 || seen[l.Topics[0]] {
					continue
				}
				seen[l.Topics[0]] = true
				h, err := ethtypes.ParseHash(l.Topics[0])
				if err != nil {
					b.Fatal(err)
				}
				targets = append(targets, h)
			}
			opts := recovery.DefaultOptions()
			opts.DigitSuffixMax = 3 // bound the 16M-candidate suffix space
			result := recovery.BruteForce(targets, opts)
			rate = result.Rate()
			if i == 0 {
				b.ReportMetric(float64(result.CandidatesTried), "candidates")
				b.ReportMetric(float64(result.Targets), "targets")
			}
		}
		b.ReportMetric(rate*100, "recovery_%")
		b.ReportMetric(90.1, "paper_prior_work_%")
	})

	_ = ds
}

// --- Figure 2 ---

func BenchmarkFigure2MonthlyEvents(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var peak int
	for i := 0; i < b.N; i++ {
		_, peak = an.PeakMonthlyReregistrations()
	}
	b.ReportMetric(float64(peak), "peak_monthly_rereg")
	b.ReportMetric(scale(25193), "paper_scaled")
}

// --- Figure 3 ---

func BenchmarkFigure3ExpiryToReregDelay(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var st core.ReregDelayStats
	for i := 0; i < b.N; i++ {
		st = an.ReregistrationDelays()
	}
	b.ReportMetric(float64(st.AtPremium), "at_premium")
	b.ReportMetric(float64(st.SameDayAsPremiumEnd), "same_day")
	b.ReportMetric(float64(st.ShortlyAfterPremiumEnd), "within_14d")
	b.ReportMetric(scale(16092), "paper_at_premium_scaled")
	b.ReportMetric(scale(20014), "paper_same_day_scaled")
	b.ReportMetric(scale(56792), "paper_within_14d_scaled")
}

// BenchmarkFigure3SurvivalAnalysis is the censoring-corrected companion to
// Figure 3: Kaplan-Meier time-to-catch curves, split by prior-owner income
// terciles (the §4.3 income effect as a time-to-catch gradient).
func BenchmarkFigure3SurvivalAnalysis(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	// Compute* bypasses the analyzer's memo so every iteration measures a
	// real run.
	var rep *core.SurvivalReport
	for i := 0; i < b.N; i++ {
		rep = an.ComputeCatchSurvival()
	}
	b.ReportMetric(float64(rep.Released), "released")
	b.ReportMetric(float64(rep.Caught), "caught")
	for i, name := range []string{"s90d_low_income", "s90d_mid_income", "s90d_high_income"} {
		b.ReportMetric(stats.SurvivalAt(rep.ByIncomeTercile[i], 90), name)
	}
}

// --- Figure 4 ---

func BenchmarkFigure4ReregFrequency(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var freq map[int]int
	for i := 0; i < b.N; i++ {
		freq = an.ReregFrequency()
	}
	multi := 0
	for k, v := range freq {
		if k >= 2 {
			multi += v
		}
	}
	b.ReportMetric(float64(multi), "multi_rereg_domains")
	b.ReportMetric(scale(12614), "paper_scaled")
}

// --- Figure 5 ---

func BenchmarkFigure5ReregistrantCDF(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var act core.ReregistrantActivity
	for i := 0; i < b.N; i++ {
		act = an.ReregistrantCDF()
	}
	b.ReportMetric(float64(act.MultipleCatchers), "multi_catchers")
	b.ReportMetric(scale(19763), "paper_scaled")
	if len(act.Top) > 0 {
		b.ReportMetric(float64(act.Top[0]), "top_catcher")
		b.ReportMetric(scale(5070), "paper_top_scaled")
	}
}

// --- Table 1 + Figure 6 ---

func BenchmarkTable1FeatureComparison(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	// Compute* bypasses the analyzer's memo so every iteration measures a
	// real run.
	var tbl *core.Table1
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = an.ComputeFeatureComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tbl.Rows {
		if row.Feature == "average_income_USD" {
			b.ReportMetric(row.ReregMean, "rereg_income_usd")
			b.ReportMetric(row.ControlMean, "control_income_usd")
			b.ReportMetric(row.ReregMean/row.ControlMean, "income_ratio")
			// Paper: 69,980 / 21,400 = 3.27.
			b.ReportMetric(3.27, "paper_income_ratio")
		}
	}
}

func BenchmarkFigure6IncomeCDF(b *testing.B) {
	_, _, an := benchWorld(b)
	tbl, err := an.FeatureComparison()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rcdf, ccdf := tbl.IncomeCDFs()
		if len(rcdf) == 0 || len(ccdf) == 0 {
			b.Fatal("empty CDFs")
		}
	}
	b.ReportMetric(stats.Median(tbl.ReregIncome), "rereg_median_usd")
	b.ReportMetric(stats.Median(tbl.ControlIncome), "control_median_usd")
}

// --- Figure 7 ---

func BenchmarkFigure7HijackableFunds(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var funds []float64
	for i := 0; i < b.N; i++ {
		funds = an.HijackableFunds()
	}
	var total float64
	for _, f := range funds {
		total += f
	}
	b.ReportMetric(float64(len(funds)), "domains_with_hijackable")
	b.ReportMetric(total, "total_usd")
}

// --- Figures 8-11 + §4.4 scalars ---

func BenchmarkFigure8MisdirectedAmounts(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	// Compute* bypasses the analyzer's memo so every iteration measures a
	// real run.
	var rep *core.LossReport
	for i := 0; i < b.N; i++ {
		rep = an.ComputeFinancialLosses(core.DefaultLossOptions())
	}
	b.ReportMetric(float64(rep.DomainsWithCoinbase), "domains_all")
	b.ReportMetric(float64(rep.DomainsNonCustodial), "domains_noncust")
	b.ReportMetric(float64(rep.TxsAll), "txs_all")
	b.ReportMetric(rep.AvgUSDPerDomainAll(), "avg_usd_all")
	b.ReportMetric(rep.AvgUSDPerDomainNonCustodial(), "avg_usd_noncust")
	// Paper: 940 / 484 domains, 2,633 txs, 1,877 / 1,944 USD averages.
	b.ReportMetric(1877, "paper_avg_usd_all")
}

func BenchmarkFigure9TxScatter(b *testing.B) {
	_, _, an := benchWorld(b)
	rep := an.FinancialLosses()
	b.ResetTimer()
	var pts []core.ScatterPoint
	for i := 0; i < b.N; i++ {
		pts = rep.TxScatter()
	}
	oneToOne := 0
	for _, p := range pts {
		if p.ToA1 == 1 && p.ToA2 == 1 {
			oneToOne++
		}
	}
	b.ReportMetric(float64(len(pts)), "points")
	b.ReportMetric(float64(oneToOne), "one_to_one")
}

func BenchmarkFigure10CostVsIncome(b *testing.B) {
	_, _, an := benchWorld(b)
	rep := an.FinancialLosses()
	b.ResetTimer()
	var profits *core.ProfitReport
	for i := 0; i < b.N; i++ {
		profits = rep.CatcherProfits()
	}
	b.ReportMetric(profits.ProfitableFraction*100, "profitable_%")
	b.ReportMetric(profits.AvgProfitUSD, "avg_profit_usd")
	b.ReportMetric(91, "paper_profitable_%")
	b.ReportMetric(4700, "paper_avg_profit_usd")
}

func BenchmarkFigure11TxScatterNonCustodial(b *testing.B) {
	_, _, an := benchWorld(b)
	rep := an.FinancialLosses()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for _, p := range rep.TxScatter() {
			if p.Kind == core.SenderNonCustodial {
				n++
			}
		}
	}
	b.ReportMetric(float64(n), "noncustodial_points")
}

// --- Table 2 ---

func BenchmarkTable2WalletWarnings(b *testing.B) {
	res, _, an := benchWorld(b)
	var labels []string
	for _, h := range an.Pop.ExpiredNotRereg {
		if h.Domain.Label != "" {
			labels = append(labels, h.Domain.Label)
		}
		if len(labels) >= 25 {
			break
		}
	}
	wallets := walletsim.StockWallets(res.ENS)
	b.ResetTimer()
	var rows []walletsim.SurveyRow
	for i := 0; i < b.N; i++ {
		rows = walletsim.Survey(wallets, labels, res.Config.End)
	}
	warning := 0
	for _, r := range rows {
		if r.DisplaysWarning {
			warning++
		}
	}
	b.ReportMetric(float64(warning), "wallets_warning")
	b.ReportMetric(0, "paper_wallets_warning")
}

// --- §4.2 resale market ---

func BenchmarkResaleMarket(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var rep *core.ResaleReport
	for i := 0; i < b.N; i++ {
		rep = an.ResaleMarket()
	}
	b.ReportMetric(rep.ListedFraction*100, "listed_%")
	b.ReportMetric(rep.SoldFraction*100, "sold_of_listed_%")
	b.ReportMetric(8, "paper_listed_%")
	b.ReportMetric(60.7, "paper_sold_of_listed_%")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationLossHeuristic relaxes each clause of the conservative
// heuristic and measures precision against ground truth: dropping clauses
// inflates findings with false positives.
func BenchmarkAblationLossHeuristic(b *testing.B) {
	res, _, an := benchWorld(b)
	variants := []struct {
		name string
		opts core.LossOptions
	}{
		{"full", core.DefaultLossOptions()},
		{"no_a1_after_dropped", withOpt(func(o *core.LossOptions) { o.RequireNoA1After = false })},
		{"tenure_clause_dropped", withOpt(func(o *core.LossOptions) { o.RequireAllToA2InTenure = false })},
		{"pretenure_clause_dropped", withOpt(func(o *core.LossOptions) { o.RequireNoPreTenure = false })},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var rep *core.LossReport
			for i := 0; i < b.N; i++ {
				rep = an.ComputeFinancialLosses(v.opts)
			}
			tp, total := 0, 0
			for _, f := range rep.Findings {
				for _, s := range f.Senders {
					for _, h := range s.TxHashes {
						total++
						if res.Truth.MisdirectedTxHashes[h] {
							tp++
						}
					}
				}
			}
			b.ReportMetric(float64(total), "flagged_txs")
			if total > 0 {
				b.ReportMetric(float64(tp)/float64(total)*100, "precision_%")
			}
		})
	}
}

func withOpt(mut func(*core.LossOptions)) core.LossOptions {
	o := core.DefaultLossOptions()
	mut(&o)
	return o
}

// BenchmarkAblationCustodialFilter measures what the 558-address custodial
// filter removes.
func BenchmarkAblationCustodialFilter(b *testing.B) {
	_, _, an := benchWorld(b)
	for _, filter := range []bool{true, false} {
		name := "filtered"
		if !filter {
			name = "unfiltered"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultLossOptions()
			opts.FilterCustodial = filter
			var rep *core.LossReport
			for i := 0; i < b.N; i++ {
				rep = an.ComputeFinancialLosses(opts)
			}
			b.ReportMetric(float64(rep.TxsAll), "flagged_txs")
			b.ReportMetric(float64(rep.DomainsWithCoinbase), "domains")
		})
	}
}

// BenchmarkAblationPremiumCurve compares what premium-paying catchers
// spent under the exponential Dutch auction vs a linear decay over the
// same 21 days — quantifying how the halving curve shapes early-catch
// cost (DESIGN.md §5.3).
func BenchmarkAblationPremiumCurve(b *testing.B) {
	_, _, an := benchWorld(b)
	b.ResetTimer()
	var expTotal, linTotal float64
	for i := 0; i < b.N; i++ {
		expTotal, linTotal = 0, 0
		for _, h := range an.Pop.Reregistered {
			for _, j := range h.Reregistrations() {
				prev := h.Tenures[j-1]
				cur := h.Tenures[j]
				release := ens.ReleaseTime(prev.Expiry)
				end := ens.PremiumEndTime(prev.Expiry)
				if cur.RegisteredAt >= end || cur.RegisteredAt < release {
					continue
				}
				expTotal += ens.PremiumUSDAt(prev.Expiry, cur.RegisteredAt)
				frac := float64(cur.RegisteredAt-release) / float64(end-release)
				linTotal += ens.PremiumStartUSD * (1 - frac)
			}
		}
	}
	b.ReportMetric(expTotal, "exp_premium_usd")
	b.ReportMetric(linTotal, "linear_premium_usd")
}

// BenchmarkAblationAuctionMechanism compares the Dutch-auction premium
// against a DNS-style drop race over the bench world's contested names:
// how often each mechanism hands the name to the highest-valuation bidder
// (§2.1's design rationale), and the revenue the auction raises.
func BenchmarkAblationAuctionMechanism(b *testing.B) {
	_, _, an := benchWorld(b)
	// Build bidder fields for every re-registered name: the actual
	// catcher plus competitors with correlated valuations and varied
	// infrastructure speeds.
	rng := rand.New(rand.NewSource(7))
	var expiries []int64
	var fields [][]auction.Bidder
	for _, h := range an.Pop.Reregistered {
		usd, _, _ := 0.0, 0, 0
		for _, j := range h.Reregistrations() {
			prev := h.Tenures[j-1]
			base := 100 + 50*rng.ExpFloat64()
			usd = base
			k := 2 + rng.Intn(3)
			bidders := make([]auction.Bidder, k)
			for i := 0; i < k; i++ {
				bidders[i] = auction.Bidder{
					ID:            fmt.Sprintf("bidder-%d", i),
					ValuationUSD:  usd * math.Exp(rng.NormFloat64()),
					ReactionDelay: time.Duration(rng.Intn(7200)) * time.Second,
				}
			}
			expiries = append(expiries, prev.Expiry)
			fields = append(fields, bidders)
		}
	}
	b.ResetTimer()
	var eff auction.Efficiency
	for i := 0; i < b.N; i++ {
		eff = auction.CompareMechanisms(expiries, fields)
	}
	if eff.Names > 0 {
		b.ReportMetric(100*float64(eff.AuctionToHighestValue)/float64(eff.Names), "auction_efficiency_%")
		b.ReportMetric(100*float64(eff.RaceToHighestValue)/float64(eff.Names), "race_efficiency_%")
		b.ReportMetric(eff.AuctionRevenueUSD, "auction_revenue_usd")
	}
}

// BenchmarkCountermeasureWindows evaluates the §6 warning countermeasure
// (the paper proposes it but cannot quantify it without vendor data):
// the fraction of authoritatively-misdirected USD a recent-registration
// warning would have intercepted, per warning window.
func BenchmarkCountermeasureWindows(b *testing.B) {
	res, _, an := benchWorld(b)
	for _, days := range []int{30, 90, 180} {
		b.Run(fmt.Sprintf("window_%dd", days), func(b *testing.B) {
			var rep *core.CountermeasureReport
			for i := 0; i < b.N; i++ {
				rep = an.EvaluateCountermeasure(res.ResolutionLog, time.Duration(days)*24*time.Hour)
			}
			b.ReportMetric(rep.Coverage()*100, "usd_coverage_%")
			b.ReportMetric(float64(rep.Misdirected), "misdirected")
			b.ReportMetric(float64(rep.StaleWarned), "stale_warned")
		})
	}
}

// BenchmarkResolutionLogAuthoritative measures the follow-up study the
// paper's Limitations call for: authoritative misdirection from vendor
// resolution logs vs the conservative heuristic.
func BenchmarkResolutionLogAuthoritative(b *testing.B) {
	res, _, an := benchWorld(b)
	b.ResetTimer()
	var rep *core.ResolutionLogReport
	for i := 0; i < b.N; i++ {
		rep = an.LossesFromResolutionLog(res.ResolutionLog)
	}
	b.ReportMetric(float64(len(rep.Misdirected)), "authoritative_txs")
	b.ReportMetric(rep.MisdirectedUSD, "authoritative_usd")
	b.ReportMetric(float64(rep.StaleResolutions), "stale_resolutions")
	heuristic := an.FinancialLosses()
	b.ReportMetric(float64(heuristic.TxsAll), "heuristic_txs")
}

// --- Dataset persistence (DESIGN.md §persistence) ---

// BenchmarkDatasetPersist times saving and loading the bench world in
// both on-disk encodings. The binary columnar format must beat JSONL on
// load wall-time and allocs/op — that gap is the reason it exists; the
// dirsize_bytes metric records the footprint each encoding pays for it.
// Sub-benchmark names carry the world size (save_json_20k, ...) so the
// 20k and 100k passes of `make bench-persist` land as separate entries
// in BENCH_PR7.json instead of the second overwriting the first.
func BenchmarkDatasetPersist(b *testing.B) {
	_, ds, _ := benchWorld(b)
	sizeTag := fmt.Sprintf("%dk", benchDomains()/1000)
	for _, format := range []dataset.Format{dataset.FormatJSON, dataset.FormatBinary} {
		dir := filepath.Join(b.TempDir(), format.String())
		if err := ds.Save(dir, dataset.WithFormat(format)); err != nil {
			b.Fatal(err)
		}
		loaded, err := dataset.Load(dir)
		if err != nil {
			b.Fatal(err)
		}
		if loaded.Fingerprint() != ds.Fingerprint() {
			b.Fatalf("%s round trip changed the dataset fingerprint", format)
		}
		var bytes int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				b.Fatal(err)
			}
			bytes += fi.Size()
		}

		b.Run("save_"+format.String()+"_"+sizeTag, func(b *testing.B) {
			out := filepath.Join(b.TempDir(), "out")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ds.Save(out, dataset.WithFormat(format)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bytes), "dirsize_bytes")
			b.ReportMetric(float64(benchDomains()), "world_domains")
		})
		b.Run("load_"+format.String()+"_"+sizeTag, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var loaded *dataset.Dataset
			for i := 0; i < b.N; i++ {
				var err error
				loaded, err = dataset.Load(dir)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(loaded.Txs)), "txs")
			b.ReportMetric(float64(bytes), "dirsize_bytes")
			b.ReportMetric(float64(benchDomains()), "world_domains")
		})
	}
}

// BenchmarkAblationControlSampling compares the sampled control group
// against the full expired-never-re-registered pool.
func BenchmarkAblationControlSampling(b *testing.B) {
	res, _, an := benchWorld(b)
	oracle := pricing.NewOracle()
	_ = oracle
	b.ResetTimer()
	var sampleMean, poolMean float64
	for i := 0; i < b.N; i++ {
		tbl, err := an.FeatureComparison()
		if err != nil {
			b.Fatal(err)
		}
		sampleMean = stats.Mean(tbl.ControlIncome)
		var pool []float64
		for _, d := range res.Truth.Domains {
			if d.ExpiredBy(res.Config.End) && !d.Dropcaught {
				pool = append(pool, d.IncomeUSD)
			}
		}
		poolMean = stats.Mean(pool)
	}
	b.ReportMetric(sampleMean, "sampled_control_mean_usd")
	b.ReportMetric(poolMean, "full_pool_mean_usd")
}
