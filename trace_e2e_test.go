package ensdropcatch

// Tracing attribution drill: every rejection class the overload and
// chaos stacks can produce — gate shed (503), quota denial (429),
// chaos-injected fault, client-side breaker rejection — must correspond
// to a stored trace whose span tree names the responsible layer, and
// the server-side traces must be retrievable over HTTP via
// /debug/traces/{id} using the trace id the client propagated in its
// traceparent header. A second test holds tracing to the determinism
// contract: a traced crawl and analysis produce byte-identical results
// to an untraced one, at any worker count.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/core"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
)

// findEvent walks a span tree for the first event with the given name,
// returning its attributes.
func findEvent(sd *trace.SpanData, name string) ([]trace.Attr, bool) {
	for _, ev := range sd.Events {
		if ev.Name == name {
			return ev.Attrs, true
		}
	}
	for _, c := range sd.Children {
		if attrs, ok := findEvent(c, name); ok {
			return attrs, true
		}
	}
	return nil, false
}

// traceEvent searches every root of a stored trace for an event.
func traceEvent(tr *trace.Trace, name string) ([]trace.Attr, bool) {
	for _, root := range tr.Roots {
		if attrs, ok := findEvent(root, name); ok {
			return attrs, true
		}
	}
	return nil, false
}

func attrValue(attrs []trace.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// fetchTrace retrieves one stored trace over HTTP, the way an operator
// would: GET /debug/traces/{id}.
func fetchTrace(t *testing.T, baseURL, id string) *trace.Trace {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces/" + id)
	if err != nil {
		t.Fatalf("fetch trace %s: %v", id, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %s", id, resp.StatusCode, body)
	}
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace %s: bad JSON: %v\n%s", id, err, body)
	}
	return &tr
}

// tracedServer wires handler behind the trace middleware with a
// SampleRate-0 store: only errored or slow traces survive, which is
// exactly the tail the attribution assertions are about.
func tracedServer(t *testing.T, seed int64, mount func(mux *http.ServeMux)) (*httptest.Server, *trace.Store) {
	t.Helper()
	store := trace.NewStore(trace.StoreConfig{Capacity: 256, SampleRate: 0, Seed: seed})
	tracer := trace.New(trace.Config{Store: store, Seed: seed})
	mux := http.NewServeMux()
	mount(mux)
	th := trace.Handler(store)
	mux.Handle("/debug/traces", th)
	mux.Handle("/debug/traces/", th)
	srv := httptest.NewServer(trace.Middleware(tracer, mux))
	t.Cleanup(srv.Close)
	return srv, store
}

// clientTracer builds the crawl-side tracer whose spans carry the trace
// id to the server; SampleRate 1 keeps every client trace for
// inspection.
func clientTracer(seed int64) (*trace.Tracer, *trace.Store) {
	store := trace.NewStore(trace.StoreConfig{Capacity: 256, SampleRate: 1, Seed: seed})
	return trace.New(trace.Config{Store: store, Seed: seed}), store
}

// tracedGet performs one GET under a fresh client root span and returns
// the response status and the trace id that went out on the wire.
func tracedGet(t *testing.T, tracer *trace.Tracer, url string, header http.Header) (int, string) {
	t.Helper()
	ctx, sp := tracer.Start(context.Background(), "drill.request")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	trace.Inject(req)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 400 {
		sp.Error("http.error", trace.A("status", fmt.Sprint(resp.StatusCode)))
	}
	sp.End()
	return resp.StatusCode, sp.TraceID().String()
}

func TestTraceAttributionGateShed(t *testing.T) {
	withOverloadMetrics(t)
	gate := overload.NewGate(overload.GateConfig{
		MaxInflight: 1, QueueDepth: 1, MaxWait: 2 * time.Second})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusOK)
	})
	srv, _ := tracedServer(t, 41, func(mux *http.ServeMux) {
		mux.Handle("/data", gate.Wrap("/data", overload.Data, slow))
	})

	// Fill the one service slot and the one queue position, then wait
	// until the gate confirms both are occupied so the third request is
	// deterministically shed with queue_full.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/data")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for gate.Inflight() < 1 || gate.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("gate never saturated: inflight=%d queued=%d", gate.Inflight(), gate.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	ctracer, _ := clientTracer(42)
	status, traceID := tracedGet(t, ctracer, srv.URL+"/data", nil)
	close(release)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate answered %d, want 503", status)
	}
	if got := gate.ShedCount(); got == 0 {
		t.Error("gate.ShedCount() = 0 after a shed")
	}

	tr := fetchTrace(t, srv.URL, traceID)
	attrs, ok := traceEvent(tr, "overload.shed")
	if !ok {
		t.Fatalf("trace %s has no overload.shed event", traceID)
	}
	if reason := attrValue(attrs, "reason"); reason != overload.ReasonQueueFull {
		t.Errorf("shed reason = %q, want %q", reason, overload.ReasonQueueFull)
	}
	if route := attrValue(attrs, "route"); route != "/data" {
		t.Errorf("shed route = %q, want /data", route)
	}
	// The server root must link back to the client's span: remote
	// parent, same trace id.
	if len(tr.Roots) == 0 || !tr.Roots[0].Remote {
		t.Error("server root span does not record a remote (client) parent")
	}
	if !tr.Error {
		t.Error("shed trace not classified as errored (would be tail-sampled away)")
	}
}

func TestTraceAttributionQuotaDenial(t *testing.T) {
	withOverloadMetrics(t)
	// Burst 1 with a near-zero refill rate: the first request consumes
	// the only token, the second is denied.
	quotas := overload.NewQuotas(overload.QuotaConfig{Rate: 0.0001, Burst: 1})
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv, _ := tracedServer(t, 43, func(mux *http.ServeMux) {
		mux.Handle("/data", quotas.Wrap("/data", ok))
	})

	ctracer, _ := clientTracer(44)
	hdr := http.Header{}
	hdr.Set(overload.ClientIDHeader, "drill-client")
	if status, _ := tracedGet(t, ctracer, srv.URL+"/data", hdr); status != http.StatusOK {
		t.Fatalf("first request = %d, want 200", status)
	}
	status, traceID := tracedGet(t, ctracer, srv.URL+"/data", hdr)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", status)
	}
	if quotas.Denied() == 0 {
		t.Error("quotas.Denied() = 0 after a denial")
	}

	tr := fetchTrace(t, srv.URL, traceID)
	attrs, ok2 := traceEvent(tr, "overload.quota_denied")
	if !ok2 {
		t.Fatalf("trace %s has no overload.quota_denied event", traceID)
	}
	if client := attrValue(attrs, "client"); client != "drill-client" {
		t.Errorf("denied client = %q, want drill-client", client)
	}
}

func TestTraceAttributionChaosFault(t *testing.T) {
	// Rate 1 with only the ratelimit fault: every request draws an
	// injected 429 and the span must say chaos did it.
	inj := chaos.New(chaos.Config{Seed: 9, Rate: 1, Faults: []chaos.Fault{chaos.FaultRateLimit},
		RetryAfter: 5 * time.Millisecond})
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv, _ := tracedServer(t, 45, func(mux *http.ServeMux) {
		mux.Handle("/data", inj.Wrap(ok))
	})

	ctracer, _ := clientTracer(46)
	status, traceID := tracedGet(t, ctracer, srv.URL+"/data", nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("chaos route = %d, want 429", status)
	}
	tr := fetchTrace(t, srv.URL, traceID)
	attrs, ok2 := traceEvent(tr, "chaos.fault")
	if !ok2 {
		t.Fatalf("trace %s has no chaos.fault event", traceID)
	}
	if kind := attrValue(attrs, "kind"); kind != string(chaos.FaultRateLimit) {
		t.Errorf("fault kind = %q, want %q", kind, chaos.FaultRateLimit)
	}
}

func TestTraceAttributionBreakerRejection(t *testing.T) {
	// A breaker rejection never reaches the server, so its trace lives
	// in the *client's* store: the retry attempt span must name the
	// breaker as the refusing layer.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(failing.Close)

	ctracer, cstore := clientTracer(47)
	sg := subgraph.NewClient(failing.URL)
	sg.MaxRetries = 0
	sg.Sleep = cappedSleep(time.Millisecond)
	sg.Breaker = crawler.NewBreaker("drill-sg", 1, time.Minute)

	// First query records the 500 and trips the threshold-1 breaker.
	ctx1, sp1 := ctracer.Start(context.Background(), "drill.query")
	_, err := sg.Query(ctx1, `{ registrations(first: 1) { id } }`)
	sp1.EndErr(err)
	if err == nil {
		t.Fatal("query against a 500-only server succeeded")
	}

	ctx2, sp2 := ctracer.Start(context.Background(), "drill.query")
	_, err = sg.Query(ctx2, `{ registrations(first: 1) { id } }`)
	sp2.EndErr(err)
	if !errors.Is(err, crawler.ErrBreakerOpen) {
		t.Fatalf("second query error = %v, want breaker open", err)
	}

	tr := cstore.Get(sp2.TraceID().String())
	if tr == nil {
		t.Fatalf("client store kept no trace for the rejected call (len=%d)", cstore.Len())
	}
	attrs, ok := traceEvent(tr, "breaker.rejected")
	if !ok {
		t.Fatal("rejected call's trace has no breaker.rejected event")
	}
	if cooldown := attrValue(attrs, "cooldown"); cooldown == "" {
		t.Error("breaker.rejected event carries no cooldown attr")
	}
}

// TestTracingDoesNotChangeFingerprint is the determinism contract:
// trace state must never flow into dataset or report bytes. A fully
// traced crawl (8 workers) and an untraced crawl (1 worker) of the same
// world must produce byte-identical datasets, and the loss report must
// be equal with tracing on and off.
func TestTracingDoesNotChangeFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("two full crawls")
	}
	res, cfg, store, labels := soakWorld(t, 120, 17)
	mux := http.NewServeMux()
	mux.Handle("/subgraph", subgraph.NewServer(store, nil))
	mux.Handle("/etherscan/", http.StripPrefix("/etherscan",
		etherscan.NewServer(res.Chain, labels, 5000, nil)))
	mux.Handle("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	crawl := func(workers int) *dataset.Dataset {
		sg := subgraph.NewClient(srv.URL + "/subgraph")
		es := etherscan.NewClient(srv.URL+"/etherscan", "fp")
		es.MinInterval = 0
		osc := opensea.NewClient(srv.URL + "/opensea")
		ds, err := dataset.Build(context.Background(), sg, es, osc,
			dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: workers})
		if err != nil {
			t.Fatalf("crawl (workers=%d): %v", workers, err)
		}
		return ds
	}

	// Traced crawl: a default tracer with a keep-everything store, so
	// every page fetch and address crawl runs the full span machinery.
	tracer, tstore := clientTracer(48)
	var traced *dataset.Dataset
	trace.WithDefault(tracer, func() { traced = crawl(8) })
	if tstore.Len() == 0 {
		t.Fatal("traced crawl stored no traces: the drill instrumented nothing")
	}
	untraced := crawl(1)

	if tf, uf := traced.Fingerprint(), untraced.Fingerprint(); tf != uf {
		t.Errorf("fingerprints diverge: traced(8 workers) %x vs untraced(1 worker) %x", tf, uf)
	}
	tracedDir := filepath.Join(t.TempDir(), "traced")
	untracedDir := filepath.Join(t.TempDir(), "untraced")
	if err := traced.Save(tracedDir); err != nil {
		t.Fatal(err)
	}
	if err := untraced.Save(untracedDir); err != nil {
		t.Fatal(err)
	}
	compareDirsByteIdentical(t, untracedDir, tracedDir)

	// No trace id may appear in any saved dataset byte.
	entries, err := os.ReadDir(tracedDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data := string(mustRead(t, filepath.Join(tracedDir, ent.Name())))
		for _, sum := range tstore.List(10) {
			if sum.ID != "" && strings.Contains(data, sum.ID) {
				t.Fatalf("trace id %s leaked into saved %s", sum.ID, ent.Name())
			}
		}
	}

	// Analysis reports are equally trace-independent.
	oracle := pricing.NewOracle()
	lossesOf := func(ds *dataset.Dataset, workers int) *core.LossReport {
		a := core.NewAnalyzer(ds, oracle)
		a.Workers = workers
		return a.ComputeFinancialLosses(core.DefaultLossOptions())
	}
	var tracedLosses *core.LossReport
	trace.WithDefault(tracer, func() { tracedLosses = lossesOf(traced, 8) })
	untracedLosses := lossesOf(untraced, 1)
	if !reflect.DeepEqual(tracedLosses, untracedLosses) {
		t.Error("loss reports diverge between traced(8) and untraced(1) runs")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
