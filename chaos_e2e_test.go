package ensdropcatch

// End-to-end chaos drill: the full crawl pipeline against all three mock
// servers behind a seeded fault injector at a 20% fault rate, killed
// mid-crawl and resumed, must converge to a dataset byte-identical with a
// clean (fault-free) run. This is the capstone over the retry, breaker,
// spool, and checkpoint machinery: faults may cost time, but never rows.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/leakcheck"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// killingSource cancels the crawl after a fixed number of TxList calls,
// simulating the process dying mid-crawl.
type killingSource struct {
	inner  dataset.TxSource
	calls  atomic.Int64
	killAt int64
	kill   context.CancelFunc
}

func (k *killingSource) TxList(ctx context.Context, addr ethtypes.Address) ([]etherscan.TxRecord, error) {
	if k.calls.Add(1) == k.killAt {
		k.kill()
	}
	return k.inner.TxList(ctx, addr)
}

func (k *killingSource) FetchLabels(ctx context.Context) (etherscan.Labels, error) {
	return k.inner.FetchLabels(ctx)
}

// cappedSleep keeps retry backoff and Retry-After waits short so the
// drill runs in seconds while still exercising the wait paths.
func cappedSleep(max time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if d > max {
			d = max
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

func TestChaosCrawlConvergesToCleanDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline under fault injection")
	}
	leakcheck.Check(t)
	cfg := world.DefaultConfig(400)
	cfg.Seed = 23
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	labels := dataset.LabelsFromWorld(res)

	// ensworld's mux; the server-side rate limit is set high so the only
	// 429s in play are the injected ones.
	newServer := func(faulty func(http.Handler) http.Handler) *httptest.Server {
		mux := http.NewServeMux()
		mux.Handle("/subgraph", faulty(subgraph.NewServer(store, nil)))
		mux.Handle("/etherscan/", http.StripPrefix("/etherscan",
			faulty(etherscan.NewServer(res.Chain, labels, 5000, nil))))
		mux.Handle("/opensea/", http.StripPrefix("/opensea", faulty(opensea.NewServer(res.OpenSea))))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}

	newClients := func(base string, hostile bool) (*subgraph.Client, *etherscan.Client, *opensea.Client) {
		sg := subgraph.NewClient(base + "/subgraph")
		es := etherscan.NewClient(base+"/etherscan", "chaos-e2e")
		es.MinInterval = 0
		os := opensea.NewClient(base + "/opensea")
		if hostile {
			sleep := cappedSleep(2 * time.Millisecond)
			sg.Sleep, es.Sleep, os.Sleep = sleep, sleep, sleep
			sg.MaxRetries, es.MaxRetries, os.MaxRetries = 12, 12, 12
			sg.Breaker = crawler.NewBreaker("subgraph-chaos", 10, 50*time.Millisecond)
			es.Breaker = crawler.NewBreaker("etherscan-chaos", 10, 50*time.Millisecond)
			os.Breaker = crawler.NewBreaker("opensea-chaos", 10, 50*time.Millisecond)
		}
		return sg, es, os
	}

	inj := chaos.New(chaos.Config{
		Seed:       42,
		Rate:       0.2,
		RetryAfter: 10 * time.Millisecond,
		Delay:      2 * time.Millisecond,
	})
	hostile := newServer(inj.Wrap)
	sg, es, osc := newClients(hostile.URL, true)

	resumeDir := filepath.Join(t.TempDir(), "resume")
	opts := dataset.BuildOptions{
		Start: cfg.Start, End: cfg.End,
		TxWorkers: 4, ResumeDir: resumeDir,
	}

	// Run 1: killed after 60 crawled addresses.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &killingSource{inner: es, killAt: 60, kill: cancel}
	_, err = dataset.Build(ctx, sg, killer, osc, opts)
	if err == nil {
		t.Fatal("killed crawl reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Logf("killed crawl error (expected, via cancel): %v", err)
	}
	if killer.calls.Load() < killer.killAt {
		t.Fatalf("crawl died after only %d TxList calls, before the kill", killer.calls.Load())
	}

	// Run 2: resume under the same fault injector; must complete.
	chaosDS, err := dataset.Build(context.Background(), sg, es, osc, opts)
	if err != nil {
		t.Fatalf("resumed chaos crawl: %v", err)
	}

	// Clean reference run: same world, no faults, fresh everything.
	clean := newServer(func(h http.Handler) http.Handler { return h })
	csg, ces, cos := newClients(clean.URL, false)
	cleanDS, err := dataset.Build(context.Background(), csg, ces, cos,
		dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: 4})
	if err != nil {
		t.Fatalf("clean crawl: %v", err)
	}

	// Persist both and require byte-identical artifacts.
	chaosDir := filepath.Join(t.TempDir(), "chaos")
	cleanDir := filepath.Join(t.TempDir(), "clean")
	if err := chaosDS.Save(chaosDir); err != nil {
		t.Fatal(err)
	}
	if err := cleanDS.Save(cleanDir); err != nil {
		t.Fatal(err)
	}
	compareDirsByteIdentical(t, cleanDir, chaosDir)
}

// compareDirsByteIdentical fails unless want and got hold exactly the
// same relative file paths with exactly the same bytes.
func compareDirsByteIdentical(t *testing.T, want, got string) {
	t.Helper()
	list := func(root string) map[string][]byte {
		files := map[string][]byte{}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[rel] = b
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	wantFiles, gotFiles := list(want), list(got)
	for rel, wb := range wantFiles {
		gb, ok := gotFiles[rel]
		if !ok {
			t.Errorf("missing file %s in chaos output", rel)
			continue
		}
		if string(wb) != string(gb) {
			i := 0
			for i < len(wb) && i < len(gb) && wb[i] == gb[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			ctxOf := func(b []byte) string {
				h := hi
				if h > len(b) {
					h = len(b)
				}
				if lo >= h {
					return ""
				}
				return string(b[lo:h])
			}
			t.Errorf("%s differs at byte %d (%d vs %d bytes)\nclean: %q\nchaos: %q",
				rel, i, len(wb), len(gb), ctxOf(wb), ctxOf(gb))
		}
	}
	for rel := range gotFiles {
		if _, ok := wantFiles[rel]; !ok {
			t.Errorf("unexpected file %s in chaos output", rel)
		}
	}
}
