// Countermeasure: quantifies the paper's §6 proposal ("wallets should warn
// before sending to recently expired/re-registered names") — something the
// authors could not measure without vendor resolution data. Using the
// simulation's resolution log, it sweeps warning windows and reports how
// much of the authoritatively-misdirected money each would intercept,
// alongside the false-alarm burden (warnings on perfectly safe payments).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/world"
)

func main() {
	cfg := world.DefaultConfig(5000)
	cfg.Seed = 3
	res, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	an := core.NewAnalyzer(ds, res.Oracle)

	authoritative := an.LossesFromResolutionLog(res.ResolutionLog)
	fmt.Printf("vendor resolution log: %s via-ENS payments\n", report.Count(authoritative.TotalResolutions))
	fmt.Printf("authoritative misdirections: %d payments, %s\n",
		len(authoritative.Misdirected), report.USD(authoritative.MisdirectedUSD))
	fmt.Printf("stale resolutions (expired name still paying the old owner): %s\n\n",
		report.Count(authoritative.StaleResolutions))

	// Sweep the warning window.
	var rows [][]string
	for _, days := range []int{7, 14, 30, 60, 90, 180, 365} {
		rep := an.EvaluateCountermeasure(res.ResolutionLog, time.Duration(days)*24*time.Hour)
		// False-alarm burden: what fraction of ALL via-ENS payments
		// would see a warning under this window? Approximate with the
		// recent-registration share of the log.
		alarms := falseAlarmShare(an, res, days)
		rows = append(rows, []string{
			fmt.Sprintf("%d days", days),
			fmt.Sprintf("%d / %d", rep.Warned, rep.Misdirected),
			report.Percent(rep.Coverage()),
			report.USD(rep.WarnedUSD),
			report.Percent(alarms),
		})
	}
	fmt.Print(report.Table(
		[]string{"warn window", "misdirected warned", "USD coverage", "USD intercepted", "warnings on safe payments"},
		rows))

	fmt.Println("\nReading: longer windows intercept more losses but nag more often;")
	fmt.Println("the expired-name warning (no window needed) additionally flags every")
	fmt.Println("stale resolution before any money is lost.")
}

// falseAlarmShare estimates the fraction of all resolved payments that
// would trigger a recent-registration warning despite being safe.
func falseAlarmShare(an *core.Analyzer, res *world.Result, days int) float64 {
	window := int64(days) * 86400
	var safe, warned int
	misdirected := map[string]bool{}
	rep := an.LossesFromResolutionLog(res.ResolutionLog)
	for _, f := range rep.Misdirected {
		misdirected[f.TxHash.Hex()] = true
	}
	for _, rec := range res.ResolutionLog {
		if misdirected[rec.TxHash.Hex()] {
			continue
		}
		safe++
		d, ok := an.DS.ByLabel(rec.Name)
		if !ok {
			continue
		}
		h := an.Pop.Histories[d.LabelHash]
		for i := range h.Tenures {
			t := &h.Tenures[i]
			if rec.At >= t.RegisteredAt && rec.At-t.RegisteredAt < window {
				warned++
				break
			}
		}
	}
	if safe == 0 {
		return 0
	}
	return float64(warned) / float64(safe)
}
