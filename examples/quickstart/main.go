// Quickstart: generate a small synthetic ENS world, assemble the study
// dataset from it, and run the headline dropcatching analyses — the
// five-minute tour of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/world"
)

func main() {
	// 1. Generate a deterministic world: owners register and abandon
	//    names, senders pay them, dropcatchers re-register the valuable
	//    expired ones.
	cfg := world.DefaultConfig(2000)
	cfg.Seed = 42
	res, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	fmt.Printf("world: %d domains, %s transactions on chain\n",
		cfg.NumDomains, report.Count(res.Chain.TxCount()))

	// 2. Assemble the dataset the way the paper does (§3): registration
	//    history, per-address transactions, custodial labels, and
	//    marketplace events.
	ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		log.Fatalf("assemble dataset: %v", err)
	}

	// 3. Analyze.
	an := core.NewAnalyzer(ds, res.Oracle)

	fmt.Printf("\nre-registered (dropcaught) domains: %s\n", report.Count(len(an.Pop.Reregistered)))
	fmt.Printf("expired, never re-registered:       %s\n", report.Count(len(an.Pop.ExpiredNotRereg)))

	tbl, err := an.FeatureComparison()
	if err != nil {
		log.Fatalf("feature comparison: %v", err)
	}
	for _, row := range tbl.Rows {
		if row.Feature == "average_income_USD" {
			fmt.Printf("\nincome of previous owners (Table 1):\n")
			fmt.Printf("  re-registered: %s   control: %s\n",
				report.USD(row.ReregMean), report.USD(row.ControlMean))
		}
	}

	losses := an.FinancialLosses()
	fmt.Printf("\nconservative loss scenario (§4.4):\n")
	fmt.Printf("  affected domains: %d, suspected misdirected transactions: %d\n",
		losses.DomainsWithCoinbase, losses.TxsAll)
	fmt.Printf("  average misdirected per domain: %s\n", report.USD(losses.AvgUSDPerDomainAll()))

	profits := losses.CatcherProfits()
	fmt.Printf("  dropcatchers profitable: %s (avg profit %s)\n",
		report.Percent(profits.ProfitableFraction), report.USD(profits.AvgProfitUSD))
}
