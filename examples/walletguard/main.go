// Walletguard: a self-contained dropcatch attack walkthrough that shows
// why the paper's countermeasure matters. Alice registers treasury.eth,
// points it at her wallet, and her business partners pay her through the
// name. She forgets to renew; Mallory re-registers it and overwrites the
// resolver. Every surveyed wallet (Table 2) keeps resolving the name with
// no warning — the partner's next payment lands in Mallory's wallet. The
// guarded wallet from §6 warns at each dangerous step.
package main

import (
	"fmt"
	"log"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/walletsim"
)

func main() {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	c := chain.New(start)
	oracle := pricing.NewOracle()
	svc := ens.Deploy(c, oracle)

	alice := ethtypes.DeriveAddress("alice")
	mallory := ethtypes.DeriveAddress("mallory")
	partner := ethtypes.DeriveAddress("business-partner")
	for _, a := range []ethtypes.Address{alice, mallory, partner} {
		c.Mint(a, ethtypes.Ether(1000))
	}

	// Alice registers treasury.eth for one year and points it home.
	must(svc.Register(start, alice, alice, "treasury", ens.Year, svc.PriceWei("treasury", ens.Year, start)))
	must(svc.SetAddr(start+3600, alice, "treasury", alice))
	reg, _ := svc.Registration("treasury")
	fmt.Printf("2022-01-01  alice registers treasury.eth (expires %s)\n", day(reg.Expiry))

	// The partner pays through the name.
	pay := func(ts int64, note string) {
		to, _ := svc.Resolve("treasury")
		amt := ethtypes.EtherFloat(oracle.ETH(2500, ts))
		if _, err := c.Transfer(ts, partner, to, amt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  partner sends 2,500 USD via treasury.eth -> %s  %s\n", day(ts), short(to), note)
	}
	pay(start+30*86400, "(alice's wallet)")
	pay(start+200*86400, "(alice's wallet)")

	// Alice forgets to renew. The name expires, then leaves grace, then
	// the premium decays; Mallory catches it the day the premium hits 0.
	catchAt := ens.PremiumEndTime(reg.Expiry) + 3600
	fmt.Printf("\n%s  treasury.eth EXPIRES (grace until %s, premium zero %s)\n",
		day(reg.Expiry), day(ens.ReleaseTime(reg.Expiry)), day(ens.PremiumEndTime(reg.Expiry)))

	// Before the catch the name still resolves to alice — §4.4's core
	// observation: expiry is invisible.
	pay(reg.Expiry+30*86400, "(STILL alice's wallet — name expired, nobody can tell)")

	must(svc.Register(catchAt, mallory, mallory, "treasury", ens.Year, svc.PriceWei("treasury", ens.Year, catchAt)))
	must(svc.SetAddr(catchAt+600, mallory, "treasury", mallory))
	fmt.Printf("%s  mallory re-registers treasury.eth for %s and repoints it\n",
		day(catchAt), fmt.Sprintf("%.0f USD", svc.PriceUSD("treasury", ens.Year, catchAt)))

	// The partner's next payment is silently misdirected.
	pay(catchAt+20*86400, "(MALLORY'S wallet — funds lost)")

	// What the wallets say at that moment.
	now := catchAt + 20*86400
	fmt.Println("\nwallet behaviour at payment time (Appendix B reproduction):")
	for _, w := range walletsim.StockWallets(svc) {
		res := w.Resolve("treasury", now)
		fmt.Printf("  %-16s %-8s resolves to %s, warning: none\n", w.Name(), w.Version(), short(res.Address))
	}
	g := walletsim.NewGuarded(svc)
	res := g.Resolve("treasury", now)
	fmt.Printf("  %-16s %-8s resolves to %s\n", "Guarded", g.Version(), short(res.Address))
	fmt.Printf("      WARNING: %s\n", res.Warning)

	fmt.Printf("\nmallory's balance gain: %.4f ETH\n", c.BalanceOf(mallory).Ether()-1000+svc.PriceWei("treasury", ens.Year, catchAt).Ether())
}

func must(rcpt *chain.Receipt, err error) {
	if err != nil {
		log.Fatal(err)
	}
	if rcpt.Err != nil {
		log.Fatal(rcpt.Err)
	}
}

func day(ts int64) string { return time.Unix(ts, 0).UTC().Format("2006-01-02") }

func short(a ethtypes.Address) string {
	h := a.Hex()
	return h[:8] + "…" + h[len(h)-4:]
}
