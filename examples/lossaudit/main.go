// Lossaudit: the forensic pass of §4.4 as a standalone tool. It assembles
// a dataset, runs the conservative common-sender heuristic, and prints
// per-domain case studies in the style of the paper's profittrailer.eth /
// spambot.eth walkthroughs: who held the name, who kept paying through it,
// and how much landed in the new owner's wallet.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/world"
)

func main() {
	cfg := world.DefaultConfig(4000)
	cfg.Seed = 7
	res, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	an := core.NewAnalyzer(ds, res.Oracle)
	rep := an.FinancialLosses()

	fmt.Printf("loss audit over %s domains / %s transactions\n",
		report.Count(len(ds.Domains)), report.Count(len(ds.Txs)))
	fmt.Printf("domains with suspected misdirected funds: %d (%d non-custodial-only)\n",
		rep.DomainsWithCoinbase, rep.DomainsNonCustodial)
	fmt.Printf("suspected transactions: %d totalling %s\n\n",
		rep.TxsAll, report.USD(rep.USDAll))

	// Case studies: the largest findings, paper-style.
	findings := append([]*core.DomainFinding(nil), rep.Findings...)
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].MisdirectedUSD() > findings[j].MisdirectedUSD()
	})
	for i, f := range findings {
		if i >= 5 {
			break
		}
		printCase(f)
	}

	profits := rep.CatcherProfits()
	fmt.Printf("profitability: %s of catcher addresses in the scenario profited; average profit %s\n",
		report.Percent(profits.ProfitableFraction), report.USD(profits.AvgProfitUSD))
}

func printCase(f *core.DomainFinding) {
	name := f.Label + ".eth"
	if f.Label == "" {
		name = f.LabelHash.Hex()
	}
	fmt.Printf("--- %s ---\n", name)
	fmt.Printf("  previous owner a1: %s\n", short(f.A1))
	fmt.Printf("  new owner a2:      %s (re-registered %s for %s)\n",
		short(f.A2), day(f.CatchAt), report.USD(f.CostUSD))
	for _, s := range f.Senders {
		kind := "non-custodial"
		if s.Kind == core.SenderCoinbase {
			kind = "Coinbase"
		}
		fmt.Printf("  sender c %s (%s): %d tx(s) to a1 while a1 held the name,\n",
			short(s.Sender), kind, s.TxsToA1)
		fmt.Printf("      then %d tx(s) totalling %s to a2 — and never a1 again\n",
			s.TxsToA2, report.USD(s.USDToA2))
	}
	fmt.Printf("  suspected loss: %s\n\n", report.USD(f.MisdirectedUSD()))
}

func day(ts int64) string { return time.Unix(ts, 0).UTC().Format("2006-01-02") }

func short(a ethtypes.Address) string {
	h := a.Hex()
	return h[:8] + "…" + h[len(h)-4:]
}
