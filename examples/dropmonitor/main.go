// Dropmonitor: the expiring-domain watchlist a dropcatcher (or a defender
// estimating exposure) would run. It scans the registrar for names that
// are expired — in the grace period or the premium auction — scores them
// with the same value signals §4.3 finds predictive (wallet income,
// dictionary words, length, digit mix), and prints a ranked watchlist
// with each name's current premium and the time until it reaches zero.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/world"
)

// watchEntry is one expiring name on the monitor.
type watchEntry struct {
	label      string
	expiry     int64
	incomeUSD  float64
	score      float64
	premium    float64
	zeroAt     int64
	registrant ethtypes.Address
}

func main() {
	// Build a world and take a snapshot ~6 months before its end so
	// plenty of names sit inside the grace/auction pipeline.
	cfg := world.DefaultConfig(3000)
	res, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	now := cfg.End - 180*86400
	fmt.Printf("dropmonitor snapshot at %s\n\n", time.Unix(now, 0).UTC().Format("2006-01-02"))

	ana := lexical.NewAnalyzer()
	var watch []watchEntry
	for _, reg := range res.ENS.Registrations() {
		// Expired but not yet past the premium window: catchable soon.
		if reg.Expiry >= now || now > ens.PremiumEndTime(reg.Expiry) {
			continue
		}
		income := incomeUSD(res, reg.Registrant, reg.RegisteredAt, reg.Expiry)
		entry := watchEntry{
			label:      reg.Label,
			expiry:     reg.Expiry,
			incomeUSD:  income,
			premium:    ens.PremiumUSDAt(reg.Expiry, now),
			zeroAt:     ens.PremiumEndTime(reg.Expiry),
			registrant: reg.Registrant,
		}
		entry.score = valueScore(ana.Analyze(reg.Label), income)
		watch = append(watch, entry)
	}
	sort.Slice(watch, func(i, j int) bool { return watch[i].score > watch[j].score })

	fmt.Printf("%d names in the grace/auction pipeline; top 15 by value score:\n\n", len(watch))
	var rows [][]string
	for i, w := range watch {
		if i >= 15 {
			break
		}
		status := "grace period"
		if now > ens.ReleaseTime(w.expiry) {
			status = fmt.Sprintf("auction, premium %s", report.USD(w.premium))
		}
		rows = append(rows, []string{
			w.label + ".eth",
			fmt.Sprintf("%.1f", w.score),
			report.USD(w.incomeUSD),
			status,
			time.Unix(w.zeroAt, 0).UTC().Format("2006-01-02"),
		})
	}
	fmt.Print(report.Table([]string{"name", "score", "prior income", "status", "premium zero"}, rows))

	fmt.Println("\nNote: high prior income means senders may still pay the old wallet —")
	fmt.Println("exactly the residual trust §4.4 shows dropcatchers monetize.")
}

// incomeUSD sums the USD value received by addr during [from, to].
func incomeUSD(res *world.Result, addr ethtypes.Address, from, to int64) float64 {
	var usd float64
	for _, tx := range res.Chain.TxsByAddress(addr) {
		if tx.To == addr && !tx.Failed && tx.Timestamp >= from && tx.Timestamp <= to {
			usd += res.Oracle.USD(tx.Value.Ether(), tx.Timestamp)
		}
	}
	return usd
}

// valueScore mirrors the §4.3 findings: income dominates, dictionary
// words and brevity help, digit mixes and separators hurt.
func valueScore(f lexical.Features, incomeUSD float64) float64 {
	s := 0.0
	if incomeUSD > 0 {
		s += 2 * math.Log10(1+incomeUSD)
	}
	if f.IsDictionaryWord {
		s += 4
	} else if f.ContainsDictionaryWord {
		s++
	}
	if f.Length <= 4 {
		s += 3
	} else if f.Length <= 6 {
		s++
	}
	if f.ContainsDigit && !f.IsNumeric {
		s -= 4
	}
	if f.ContainsHyphen || f.ContainsUnderscore {
		s -= 2
	}
	return s
}
