module ensdropcatch

go 1.23

// golang.org/x/tools powers cmd/enslint (the go/analysis-based custom
// linter suite in internal/lint). It is vendored under vendor/ from the
// copy the Go 1.24 distribution ships for its own vet passes, so builds
// need no network access. It is the module's only external dependency.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
