module ensdropcatch

go 1.23
