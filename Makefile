GO ?= go

.PHONY: all build test race bench fuzz clean tools report

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Regenerates every table and figure of the paper's evaluation.
bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/subgraph/
	$(GO) test -fuzz=FuzzStreamingEqualsOneShot -fuzztime=30s ./internal/keccak/

tools:
	$(GO) build -o bin/ ./cmd/...

# Full report over a freshly generated 20k-domain world.
report: tools
	./bin/ensanalyze -domains 20000

clean:
	rm -rf bin data
