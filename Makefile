GO ?= go

.PHONY: all build vet lint lint-diff lint-sarif test race race-all soak-smoke trace-smoke persist-smoke chaos-smoke bench bench-persist bench-serve bench-smoke bench-compare bench-load load-smoke fuzz fuzz-smoke clean tools report

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs the project's custom go/analysis suite (internal/lint) on top of
# go vet: the PR 4 syntactic set (detrand, maporder, iodiscipline,
# floatfold, droppederr), the control-flow set (ctxflow, mutexguard,
# hotpathalloc, boundedres), and the upstream lostcancel + copylocks
# pair. The binary re-executes `go vet -vettool=<self>`, so it needs no
# build-graph machinery of its own and works offline against the
# vendored golang.org/x/tools (see go.mod).
lint:
	$(GO) build -o bin/enslint ./cmd/enslint
	./bin/enslint ./...

# Incremental lint for PR branches: analyzes only the packages changed
# since LINT_BASE (default origin/main) plus their reverse-dependency
# cone — everything a change can possibly break, and nothing else.
LINT_BASE ?= origin/main
lint-diff:
	$(GO) build -o bin/enslint ./cmd/enslint
	./bin/enslint -diff $(LINT_BASE) ./...

# Full-suite run that also archives the findings as SARIF for code
# scanning UIs.
lint-sarif:
	$(GO) build -o bin/enslint ./cmd/enslint
	./bin/enslint -sarif lint.sarif ./...

test:
	$(GO) test ./...

# Race-checks the concurrency-heavy packages (metrics hot paths, the
# crawl machinery, the resumable build, the parallel analysis engine —
# including the workers=1-vs-8 golden tests); race-all covers the module.
race:
	$(GO) test -race ./internal/obs/... ./internal/crawler/... ./internal/dataset/... ./internal/par/... ./internal/core/... ./internal/world/...

race-all:
	$(GO) test -race -short ./...

# Overload soak drill under the race detector: 8 concurrent crawlers
# against the admission gate + quotas + chaos, byte-identical
# convergence, bounded /healthz latency, adaptive-vs-fixed 429
# comparison, goroutine-leak checks.
soak-smoke:
	$(GO) test -race -count=1 -run 'TestSoak' -v .

# Tracing attribution drill: every rejection class (gate shed, quota
# denial, chaos fault, breaker-open) must yield a stored trace naming
# the responsible layer, retrievable via /debug/traces/{id}; plus the
# determinism contract (traced 8-worker crawl byte-identical to an
# untraced serial one) and the zero-alloc disabled path.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestTraceAttribution|TestTracingDoesNotChangeFingerprint' -v .
	$(GO) test -count=1 -run 'TestDisabledTracingAllocates' -v ./internal/trace/

# Persistence durability drill: JSON-vs-binary fingerprint equivalence,
# save->load->save byte-stability in both formats, every-byte and strided
# truncation sweeps over the binary snapshot and the JSONL sections,
# crash-atomic save (no temp residue, old data survives failed writes),
# torn/stale spool-snapshot fallback on the resumable crawl.
persist-smoke:
	$(GO) test -race -count=1 -run 'TestBinary|TestSave|TestTruncated|TestTornSnapshot|TestSnapshot|TestSpoolSnapshot|TestMixedGeneration|TestLoad|TestWriteAtomic' -v ./internal/dataset/
	$(GO) test -race -count=1 ./internal/dataset/codec/

# Chaos-campaign drill under the race detector: the built-in
# blackout-recovery campaign run twice through the full pipeline
# (enschaos), asserting per-phase SLOs, identical phase reports across
# runs, byte-identical convergence with a fault-free crawl, and no
# goroutine leaks; plus the fault×route matrix through the assembled
# serve stack and the retry-budget outage-damping property.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestRetryBudgetDampsOutageE2E' -v ./cmd/enschaos/
	$(GO) test -race -count=1 -run 'TestChaosFaultRouteMatrix' -v ./internal/serve/

# Regenerates every table and figure of the paper's evaluation and archives
# the machine-readable results (name -> ns/op, allocs, custom metrics).
# The second pass re-runs the two hottest analyses at 100k domains (the
# PR 3 acceptance scale); its entries overwrite the 20k ones for those two
# names, and every entry carries a world_domains metric saying which world
# produced it.
bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt
	ENSBENCH_DOMAINS=100000 $(GO) test -bench='Figure8MisdirectedAmounts|Table1FeatureComparison' -benchmem . | tee -a bench_output.txt
	$(GO) run ./cmd/benchjson -o BENCH_PR3.json bench_output.txt

# Save/load wall-time, allocs/op, and on-disk bytes for both dataset
# encodings at the default 20k world and the 100k acceptance scale.
# Sub-benchmark names carry the scale (save_json_20k, load_binary_100k,
# ...), so both passes survive in BENCH_PR7.json.
bench-persist:
	$(GO) test -bench=BenchmarkDatasetPersist -benchmem . | tee bench_persist.txt
	ENSBENCH_DOMAINS=100000 $(GO) test -bench=BenchmarkDatasetPersist -benchmem -timeout 40m . | tee -a bench_persist.txt
	$(GO) run ./cmd/benchjson -o BENCH_PR7.json bench_persist.txt

# One-iteration smoke pass: exercises every benchmark body without the
# timing loop, cheap enough for CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Archives the serve-path per-request numbers (and the keccak hot loop)
# that the regression gate below diffs against. These benchmarks run on
# a fixed in-package world, so their allocs/op are stable run to run
# and machine to machine.
bench-serve:
	$(GO) test -bench='^BenchmarkServe' -benchmem -benchtime=100x -run=^$$ . | tee bench_serve.txt
	$(GO) test -bench='^BenchmarkSum256' -benchtime=100x -run=^$$ ./internal/keccak/ | tee -a bench_serve.txt
	$(GO) run ./cmd/benchjson -o BENCH_SERVE.json bench_serve.txt

# Serve-path regression gate: re-run the serve benchmarks and diff
# allocs/op against the committed BENCH_SERVE.json archive. Timings are
# machine-dependent noise in CI, allocation counts are exact — a blown
# alloc budget anywhere on the serve path fails the build.
bench-compare:
	$(GO) test -bench='^BenchmarkServe' -benchmem -benchtime=100x -run=^$$ . | $(GO) run ./cmd/benchjson -o bench_serve_now.json
	$(GO) run ./cmd/benchjson -compare BENCH_SERVE.json bench_serve_now.json -tolerance 0.15 -fields allocs_per_op

# Full load run: 30s of seeded open-loop traffic against a self-hosted
# 20k-domain world, archived as BENCH_LOAD.json next to the
# micro-benchmark archives (per-route p50/p99/p999, shed and error
# rates). The serve-path and keccak micro-benchmarks ride along so the
# archive holds latency AND allocs/request in one document; diff against
# the committed pre-optimization BENCH_SERVE_BASELINE.json to see the
# PR 8 hot-path delta.
bench-load:
	$(GO) build -o bin/ ./cmd/ensload ./cmd/benchjson
	./bin/ensload -selfhost -domains 20000 -rps 300 -duration 30s -clients 8 | tee bench_load.txt
	$(GO) test -bench='^BenchmarkServe' -benchmem -benchtime=100x -run=^$$ . | tee -a bench_load.txt
	$(GO) test -bench='^BenchmarkSum256' -benchtime=100x -run=^$$ ./internal/keccak/ | tee -a bench_load.txt
	./bin/benchjson -o BENCH_LOAD.json bench_load.txt

# Load-generator smoke: a short self-hosted open-loop run must finish
# with bounded data-route tails and zero 5xx answers (sheds included) —
# proves the generator and the full serving stack end to end.
load-smoke:
	$(GO) build -o bin/ensload ./cmd/ensload
	./bin/ensload -selfhost -domains 5000 -rps 200 -duration 30s -clients 8 -seed 8 -assert-p99 250ms -assert-no-5xx

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/subgraph/
	$(GO) test -fuzz=FuzzStreamingEqualsOneShot -fuzztime=30s ./internal/keccak/
	$(GO) test -fuzz=FuzzParseTraceparent -fuzztime=30s ./internal/trace/

# Short fuzz pass for CI: 10s per target is enough to catch shallow
# regressions in the parsers without stalling the pipeline.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/subgraph/
	$(GO) test -fuzz=FuzzStreamingEqualsOneShot -fuzztime=10s ./internal/keccak/
	$(GO) test -fuzz=FuzzParseTraceparent -fuzztime=10s ./internal/trace/

tools:
	$(GO) build -o bin/ ./cmd/...

# Full report over a freshly generated 20k-domain world.
report: tools
	./bin/ensanalyze -domains 20000

clean:
	rm -rf bin data
