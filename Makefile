GO ?= go

.PHONY: all build vet test race race-all bench fuzz clean tools report

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checks the concurrency-heavy packages (metrics hot paths, the
# crawl machinery, the resumable build); race-all covers the whole module.
race:
	$(GO) test -race ./internal/obs/... ./internal/crawler/... ./internal/dataset/...

race-all:
	$(GO) test -race -short ./...

# Regenerates every table and figure of the paper's evaluation.
bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/subgraph/
	$(GO) test -fuzz=FuzzStreamingEqualsOneShot -fuzztime=30s ./internal/keccak/

tools:
	$(GO) build -o bin/ ./cmd/...

# Full report over a freshly generated 20k-domain world.
report: tools
	./bin/ensanalyze -domains 20000

clean:
	rm -rf bin data
