package ensdropcatch

// Soak/overload drill: many concurrent crawlers push the full pipeline
// through a server running the real overload stack — per-route
// deadlines, per-client quotas, and a bounded-concurrency admission
// gate — on top of seeded chaos. The server must shed (the pressure is
// sized to guarantee it), health checks must stay fast while data
// routes shed, every crawler must still converge to the byte-identical
// clean dataset, and nothing may leak goroutines. A second scenario
// pits an AIMD-adaptive crawler against a fixed-rate one under a tight
// quota and requires the adaptive one to finish the same workload with
// fewer quota denials.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/leakcheck"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// withOverloadMetrics points the overload package at a private registry
// so the test can assert on shed and quota counters without cross-talk.
func withOverloadMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	overload.InitMetrics(reg)
	t.Cleanup(func() { overload.InitMetrics(nil) })
	return reg
}

// soakWorld generates a deterministic world plus its derived server
// state, shared by both soak scenarios.
func soakWorld(t *testing.T, domains int, seed int64) (*world.Result, world.Config, *subgraph.Store, etherscan.Labels) {
	t.Helper()
	cfg := world.DefaultConfig(domains)
	cfg.Seed = seed
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg, subgraph.BuildIndex(res.Chain), dataset.LabelsFromWorld(res)
}

func TestSoakOverloadConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-crawler soak under overload + chaos")
	}
	leakcheck.Check(t)
	reg := withOverloadMetrics(t)
	res, cfg, store, labels := soakWorld(t, 150, 31)

	// The gate is sized far below the offered load (8 crawlers × 4
	// workers, quota-throttled to ~800 req/s) so queue_full/timeout
	// sheds are guaranteed: one service slot whose capacity the 20ms
	// chaos delays drag under the offered rate, and a 2-deep queue.
	// Each client's quota is tight enough that bursts draw 429s.
	gate := overload.NewGate(overload.GateConfig{
		MaxInflight: 1, QueueDepth: 2, MaxWait: 50 * time.Millisecond})
	quotas := overload.NewQuotas(overload.QuotaConfig{Rate: 100, Burst: 2})
	inj := chaos.New(chaos.Config{
		Seed: 7, Rate: 0.1, RetryAfter: 10 * time.Millisecond, Delay: 20 * time.Millisecond})

	newServer := func(protected bool) *httptest.Server {
		mux := http.NewServeMux()
		handleData := func(route string, h http.Handler) {
			if protected {
				h = gate.Wrap(route, overload.Data, inj.Wrap(h))
				h = quotas.Wrap(route, h)
				h = overload.Deadline(5*time.Second, 5*time.Second, h)
			}
			mux.Handle(route, h)
		}
		handleData("/subgraph", subgraph.NewServer(store, nil))
		handleData("/etherscan/", http.StripPrefix("/etherscan",
			etherscan.NewServer(res.Chain, labels, 5000, nil)))
		handleData("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
		// Health never runs through the gate: it must answer while data
		// routes shed.
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, `{"status":"ok"}`)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	hostile := newServer(true)

	newClients := func(base, id string) (*subgraph.Client, *etherscan.Client, *opensea.Client) {
		sg := subgraph.NewClient(base + "/subgraph")
		es := etherscan.NewClient(base+"/etherscan", "soak")
		es.MinInterval = 0
		osc := opensea.NewClient(base + "/opensea")
		// The cap must clear the server's Retry-After hints (~10ms): a
		// tighter cap turns polite backoff into hammering, and four
		// workers hammering one token bucket can starve a request
		// through its whole retry budget.
		sleep := cappedSleep(25 * time.Millisecond)
		sg.Sleep, es.Sleep, osc.Sleep = sleep, sleep, sleep
		// Sheds come in correlated storms, so retry budgets are deep and
		// breakers deliberately slow to trip: fail-fast is the wrong
		// response to a server asking for backoff.
		sg.MaxRetries, es.MaxRetries, osc.MaxRetries = 100, 100, 100
		sg.Breaker = crawler.NewBreaker("soak-sg-"+id, 64, 20*time.Millisecond)
		es.Breaker = crawler.NewBreaker("soak-es-"+id, 64, 20*time.Millisecond)
		osc.Breaker = crawler.NewBreaker("soak-os-"+id, 64, 20*time.Millisecond)
		sg.ClientID, es.ClientID, osc.ClientID = id, id, id
		return sg, es, osc
	}

	// A health poller samples /healthz for the duration of the soak.
	healthDone := make(chan struct{})
	var healthWG sync.WaitGroup
	var healthMu sync.Mutex
	var healthLatencies []time.Duration
	healthBad := 0
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		client := &http.Client{Timeout: 2 * time.Second}
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-healthDone:
				return
			case <-tick.C:
			}
			start := time.Now()
			resp, err := client.Get(hostile.URL + "/healthz")
			elapsed := time.Since(start)
			healthMu.Lock()
			if err != nil || resp.StatusCode != http.StatusOK {
				healthBad++
			} else {
				healthLatencies = append(healthLatencies, elapsed)
			}
			healthMu.Unlock()
			if resp != nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
	}()

	// Eight crawlers, distinct quota identities, same workload.
	const crawlers = 8
	results := make([]*dataset.Dataset, crawlers)
	errs := make([]error, crawlers)
	var wg sync.WaitGroup
	for i := 0; i < crawlers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sg, es, osc := newClients(hostile.URL, fmt.Sprintf("soak-%d", i))
			results[i], errs[i] = dataset.Build(context.Background(), sg, es, osc,
				dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: 4})
		}(i)
	}
	wg.Wait()
	close(healthDone)
	healthWG.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("crawler %d: %v", i, err)
		}
	}

	// The server must actually have shed under this pressure, both at
	// the gate and at the quotas — otherwise the drill proved nothing.
	var shed, denied uint64
	for _, route := range []string{"/subgraph", "/etherscan/", "/opensea/"} {
		for _, reason := range []string{overload.ReasonQueueFull, overload.ReasonDeadline, overload.ReasonTimeout} {
			shed += reg.CounterVec("overload_shed_total", "", "route", "reason").With(route, reason).Value()
		}
	}
	for i := 0; i < crawlers; i++ {
		denied += reg.CounterVec("overload_quota_denied_total", "", "client").With(fmt.Sprintf("soak-%d", i)).Value()
	}
	if shed == 0 {
		t.Error("overload_shed_total = 0: the gate never shed under 8x4 offered load")
	}
	if denied == 0 {
		t.Error("overload_quota_denied_total = 0: quotas never denied under burst load")
	}
	t.Logf("sheds=%d quota_denials=%d", shed, denied)

	// Health stayed responsive while data routes shed.
	healthMu.Lock()
	lat := append([]time.Duration(nil), healthLatencies...)
	bad := healthBad
	healthMu.Unlock()
	if bad > 0 {
		t.Errorf("%d /healthz probes failed or returned non-200", bad)
	}
	if len(lat) == 0 {
		t.Fatal("health poller collected no samples")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	t.Logf("healthz samples=%d p99=%v", len(lat), p99)
	if p99 > 500*time.Millisecond {
		t.Errorf("/healthz p99 = %v under shed load, want <= 500ms", p99)
	}

	// Every crawler converged to the same dataset as a clean run.
	clean := newServer(false)
	csg, ces, cos := newClients(clean.URL, "clean")
	cleanDS, err := dataset.Build(context.Background(), csg, ces, cos,
		dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: 4})
	if err != nil {
		t.Fatalf("clean crawl: %v", err)
	}
	want := cleanDS.Fingerprint()
	for i, ds := range results {
		if got := ds.Fingerprint(); got != want {
			t.Errorf("crawler %d fingerprint = %x, clean = %x", i, got, want)
		}
	}
	soakDir := filepath.Join(t.TempDir(), "soak")
	cleanDir := filepath.Join(t.TempDir(), "clean")
	if err := results[0].Save(soakDir); err != nil {
		t.Fatal(err)
	}
	if err := cleanDS.Save(cleanDir); err != nil {
		t.Fatal(err)
	}
	compareDirsByteIdentical(t, cleanDir, soakDir)
}

func TestSoakAdaptiveBeatsFixedRate(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive-vs-fixed soak under tight quota")
	}
	leakcheck.Check(t)
	reg := withOverloadMetrics(t)
	res, cfg, store, labels := soakWorld(t, 80, 5)

	// Quota-only server: /etherscan/ is limited to 50 req/s per client;
	// subgraph and opensea are unconstrained so the comparison isolates
	// the etherscan pacing strategy.
	quotas := overload.NewQuotas(overload.QuotaConfig{Rate: 50, Burst: 2})
	mux := http.NewServeMux()
	mux.Handle("/subgraph", subgraph.NewServer(store, nil))
	mux.Handle("/etherscan/", quotas.Wrap("/etherscan/", http.StripPrefix("/etherscan",
		etherscan.NewServer(res.Chain, labels, 5000, nil))))
	mux.Handle("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	run := func(id string, adaptive bool) *dataset.Dataset {
		sg := subgraph.NewClient(srv.URL + "/subgraph")
		es := etherscan.NewClient(srv.URL+"/etherscan", "soak")
		osc := opensea.NewClient(srv.URL + "/opensea")
		sleep := cappedSleep(2 * time.Millisecond)
		sg.Sleep, es.Sleep, osc.Sleep = sleep, sleep, sleep
		sg.MaxRetries, es.MaxRetries, osc.MaxRetries = 60, 60, 60
		es.ClientID = id
		if adaptive {
			// AIMD starts well above the quota and must discover ~50 rps
			// from 429 + Retry-After feedback.
			es.MinInterval = 0
			es.Adaptive = crawler.NewAdaptive(crawler.AdaptiveConfig{
				Source: id, InitialRate: 200, MinRate: 10, MaxWorkers: 4})
		} else {
			// Fixed pacing at 4x the quota: politely oblivious, it keeps
			// hammering and eats a denial for most requests.
			es.MinInterval = 5 * time.Millisecond
		}
		ds, err := dataset.Build(context.Background(), sg, es, osc,
			dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: 4})
		if err != nil {
			t.Fatalf("%s crawl: %v", id, err)
		}
		return ds
	}

	fixedDS := run("fixed", false)
	adaptiveDS := run("adaptive", true)

	deniedOf := func(id string) uint64 {
		return reg.CounterVec("overload_quota_denied_total", "", "client").With(id).Value()
	}
	fixedDenied, adaptiveDenied := deniedOf("fixed"), deniedOf("adaptive")
	t.Logf("quota denials: fixed=%d adaptive=%d", fixedDenied, adaptiveDenied)
	if fixedDenied == 0 {
		t.Fatal("fixed-rate crawler was never denied: the quota is not binding, comparison is vacuous")
	}
	if adaptiveDenied >= fixedDenied {
		t.Errorf("adaptive crawler drew %d denials, fixed drew %d: AIMD should shed pressure",
			adaptiveDenied, fixedDenied)
	}
	if f, a := fixedDS.Fingerprint(), adaptiveDS.Fingerprint(); f != a {
		t.Errorf("datasets diverge: fixed %x vs adaptive %x", f, a)
	}
}
