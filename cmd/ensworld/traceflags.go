package main

import (
	"flag"
	"time"

	"ensdropcatch/internal/trace"
)

// traceOpts binds the tracing flag set shared by the ens commands.
type traceOpts struct {
	enabled  bool
	sample   float64
	capacity int
	slow     time.Duration
	seed     int64
}

// registerTraceFlags wires the tracing flags onto fs. The server traces
// by default: the tail-sampled store is how a shed or slow request is
// explained after the fact, and sampling keeps the steady-state cost to
// the errored/slow tail.
func registerTraceFlags(fs *flag.FlagSet, defaultOn bool) *traceOpts {
	o := &traceOpts{}
	fs.BoolVar(&o.enabled, "trace", defaultOn, "trace requests into an in-memory tail-sampled store served at /debug/traces")
	fs.Float64Var(&o.sample, "trace-sample", 0.01, "probability of keeping an ordinary trace; errored, shed, and slow traces are always kept")
	fs.IntVar(&o.capacity, "trace-store", 512, "trace-store capacity; ordinary traces are evicted before errored/slow ones")
	fs.DurationVar(&o.slow, "trace-slow", 250*time.Millisecond, "traces at least this slow are always kept")
	fs.Int64Var(&o.seed, "trace-seed", 0, "seed for trace ids and the sampling coin (0 = random)")
	return o
}

// tracer builds the configured tracer, or nil when tracing is disabled —
// the nil tracer is the zero-allocation path.
func (o *traceOpts) tracer() *trace.Tracer {
	if !o.enabled {
		return nil
	}
	return trace.New(trace.Config{
		Seed: o.seed,
		Store: trace.NewStore(trace.StoreConfig{
			Capacity:      o.capacity,
			SampleRate:    o.sample,
			SlowThreshold: o.slow,
			Seed:          o.seed,
		}),
	})
}
