package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func TestHealthzJSON(t *testing.T) {
	cfg := world.DefaultConfig(300)
	cfg.Seed = 3
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	summary := res.Summarize()
	store := subgraph.BuildIndex(res.Chain)

	h := newHealthHandler(time.Now().Add(-90*time.Second), 3, summary, store)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok", got.Status)
	}
	if got.UptimeSeconds < 90 {
		t.Errorf("uptime = %v, want >= 90s", got.UptimeSeconds)
	}
	if got.Seed != 3 {
		t.Errorf("seed = %d, want 3", got.Seed)
	}
	if got.Domains != summary.Domains || got.Domains == 0 {
		t.Errorf("domains = %d, want %d (nonzero)", got.Domains, summary.Domains)
	}
	if got.Transactions != summary.Transactions {
		t.Errorf("transactions = %d, want %d", got.Transactions, summary.Transactions)
	}
	for _, col := range []string{subgraph.ColRegistrations, subgraph.ColEvents, subgraph.ColSubdomains} {
		if got.Index[col] != store.Len(col) {
			t.Errorf("index[%s] = %d, want %d", col, got.Index[col], store.Len(col))
		}
	}
	if got.Index[subgraph.ColEvents] == 0 {
		t.Error("event index empty in health response")
	}
}
