package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/world"
)

func TestHealthzJSON(t *testing.T) {
	cfg := world.DefaultConfig(300)
	cfg.Seed = 3
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	summary := res.Summarize()
	store := subgraph.BuildIndex(res.Chain)

	gate := overload.NewGate(overload.GateConfig{MaxInflight: 4, QueueDepth: 8})
	quotas := overload.NewQuotas(overload.QuotaConfig{Rate: 10})
	traces := trace.NewStore(trace.StoreConfig{Capacity: 16, Seed: 3})

	h := newHealthHandler(time.Now().Add(-90*time.Second), 3, summary, store, gate, quotas, traces)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok", got.Status)
	}
	if got.UptimeSeconds < 90 {
		t.Errorf("uptime = %v, want >= 90s", got.UptimeSeconds)
	}
	if got.Seed != 3 {
		t.Errorf("seed = %d, want 3", got.Seed)
	}
	if got.Domains != summary.Domains || got.Domains == 0 {
		t.Errorf("domains = %d, want %d (nonzero)", got.Domains, summary.Domains)
	}
	if got.Transactions != summary.Transactions {
		t.Errorf("transactions = %d, want %d", got.Transactions, summary.Transactions)
	}
	for _, col := range []string{subgraph.ColRegistrations, subgraph.ColEvents, subgraph.ColSubdomains} {
		if got.Index[col] != store.Len(col) {
			t.Errorf("index[%s] = %d, want %d", col, got.Index[col], store.Len(col))
		}
	}
	if got.Index[subgraph.ColEvents] == 0 {
		t.Error("event index empty in health response")
	}
	if !got.Trace.Enabled {
		t.Error("trace.enabled = false with a live store")
	}
	if got.Trace.Capacity != 16 {
		t.Errorf("trace.capacity = %d, want 16", got.Trace.Capacity)
	}
	if got.Overload.Inflight != 0 || got.Overload.Queued != 0 || got.Overload.Sheds != 0 {
		t.Errorf("idle gate reported overload state: %+v", got.Overload)
	}
}

// TestHealthzNilTraceStore: tracing disabled must still produce a valid
// health body, with the trace block zeroed out.
func TestHealthzNilTraceStore(t *testing.T) {
	cfg := world.DefaultConfig(100)
	cfg.Seed = 4
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := overload.NewGate(overload.GateConfig{})
	quotas := overload.NewQuotas(overload.QuotaConfig{})
	h := newHealthHandler(time.Now(), 4, res.Summarize(), subgraph.BuildIndex(res.Chain), gate, quotas, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if got.Trace.Enabled || got.Trace.Capacity != 0 || got.Trace.Stored != 0 {
		t.Errorf("disabled tracing leaked state: %+v", got.Trace)
	}
}
