// Command ensworld generates a synthetic ENS ecosystem and serves it
// through the three data-source APIs the paper crawls: the ENS subgraph
// (GraphQL), an Etherscan-style transaction API, and an OpenSea-style
// marketplace events API — all on one listener:
//
//	POST /subgraph           GraphQL queries
//	GET  /etherscan/api      module=account&action=txlist|balance
//	GET  /etherscan/labels   custodial address lists
//	GET  /opensea/events     marketplace events
//	POST /rpc                JSON-RPC (eth_getLogs etc., raw chain access)
//
// Example:
//
//	ensworld -domains 30000 -seed 7 -listen :8080
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethrpc"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func main() {
	var (
		domains = flag.Int("domains", 10000, "number of domains to simulate")
		seed    = flag.Int64("seed", 1, "deterministic generation seed")
		listen  = flag.String("listen", "127.0.0.1:8080", "listen address")
		rate    = flag.Int("etherscan-rate", etherscan.DefaultRatePerSecond, "etherscan requests/second/key (0 = default)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg := world.DefaultConfig(*domains)
	cfg.Seed = *seed
	logger.Info("generating world", "domains", *domains, "seed", *seed)
	start := time.Now()
	res, err := world.Generate(cfg)
	if err != nil {
		logger.Error("generate", "err", err)
		os.Exit(1)
	}
	summary := res.Summarize()
	logger.Info("world ready",
		"txs", summary.Transactions,
		"expired", summary.Expired,
		"dropcaught", summary.Dropcaught,
		"subdomains", summary.Subdomains,
		"opensea_events", len(res.OpenSea),
		"elapsed", time.Since(start).Round(time.Millisecond))

	store := subgraph.BuildIndex(res.Chain)
	logger.Info("subgraph indexed",
		"registrations", store.Len(subgraph.ColRegistrations),
		"events", store.Len(subgraph.ColEvents))

	mux := http.NewServeMux()
	mux.Handle("/subgraph", subgraph.NewServer(store, logger))
	mux.Handle("/etherscan/", http.StripPrefix("/etherscan",
		etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), *rate, logger)))
	mux.Handle("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
	mux.Handle("/rpc", ethrpc.NewServer(res.Chain))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	logger.Info("serving", "addr", *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
}
