// Command ensworld generates a synthetic ENS ecosystem and serves it
// through the three data-source APIs the paper crawls: the ENS subgraph
// (GraphQL), an Etherscan-style transaction API, and an OpenSea-style
// marketplace events API — all on one listener:
//
//	POST /subgraph           GraphQL queries
//	GET  /etherscan/api      module=account&action=txlist|balance
//	GET  /etherscan/labels   custodial address lists
//	GET  /opensea/events     marketplace events
//	POST /rpc                JSON-RPC (eth_getLogs etc., raw chain access)
//	GET  /healthz            JSON liveness (uptime, world shape, index sizes)
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/pprof/*      runtime profiles
//	GET  /debug/vars         expvar JSON
//
// Every route is instrumented: per-route request counts by status
// class, latency histograms, and an in-flight gauge, exposed under the
// ensworld_http_* metric names. SIGINT/SIGTERM drain in-flight requests
// before exit.
//
// With -chaos-rate > 0, a seeded fault injector (internal/chaos) wraps
// the API routes (including /rpc), randomly answering with 429s, 500s,
// connection resets, slow bodies, stalls, and truncated JSON — a
// repeatable hostile-network drill for crawler hardening. Health and
// debug routes stay clean.
//
// Data routes additionally run behind overload protection
// (internal/overload): a bounded-concurrency admission gate with a
// deadline-aware wait queue (-max-inflight, -queue-depth, -queue-wait),
// optional per-client token-bucket quotas keyed by X-Client-ID
// (-quota-rate), and per-route deadlines that X-Request-Deadline-Ms can
// shorten (-route-timeout). Shed requests get 503/429 with a computed
// Retry-After; health, metrics, and debug routes are never shed.
//
// Example:
//
//	ensworld -domains 30000 -seed 7 -listen :8080
//	ensworld -domains 5000 -chaos-rate 0.2 -chaos-seed 42
//	ensworld -domains 5000 -max-inflight 16 -queue-depth 32 -quota-rate 50
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/serve"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func main() {
	var (
		domains   = flag.Int("domains", 10000, "number of domains to simulate")
		seed      = flag.Int64("seed", 1, "deterministic generation seed")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
		rate      = flag.Int("etherscan-rate", etherscan.DefaultRatePerSecond, "etherscan requests/second/key (0 = default)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		chaosRate = flag.Float64("chaos-rate", 0, "per-request fault injection probability in [0,1] on the API routes (0 = off)")
		chaosSeed = flag.Int64("chaos-seed", 1, "deterministic fault schedule seed")
		snapshot  = flag.String("snapshot", "", "also save the generated world as a binary dataset snapshot at this path before serving (ensanalyze -data loads it without a crawl)")

		maxInflight  = flag.Int("max-inflight", 64, "data-route requests served concurrently before new arrivals queue")
		queueDepth   = flag.Int("queue-depth", 128, "queued data-route requests beyond which arrivals are shed with 503 + Retry-After")
		queueWait    = flag.Duration("queue-wait", 2*time.Second, "longest a data-route request may queue before being shed")
		quotaRate    = flag.Float64("quota-rate", 0, "per-client requests/second quota on data routes, keyed by X-Client-ID (0 = off)")
		quotaBurst   = flag.Float64("quota-burst", 0, "per-client quota burst size (0 = max(quota-rate, 1))")
		routeTimeout = flag.Duration("route-timeout", 30*time.Second, "default handler deadline on data routes; X-Request-Deadline-Ms may shorten it (0 = none)")

		cacheOff     = flag.Bool("no-page-cache", false, "disable the data-route response cache")
		cacheEntries = flag.Int("page-cache-entries", 0, "page cache entry bound (0 = default)")
	)
	traceFlags := registerTraceFlags(flag.CommandLine, true)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := world.DefaultConfig(*domains)
	cfg.Seed = *seed
	logger.Info("generating world", "domains", *domains, "seed", *seed)
	start := time.Now()
	res, err := world.Generate(cfg)
	if err != nil {
		logger.Error("generate", "err", err)
		os.Exit(1)
	}
	summary := res.Summarize()
	logger.Info("world ready",
		"txs", summary.Transactions,
		"expired", summary.Expired,
		"dropcaught", summary.Dropcaught,
		"subdomains", summary.Subdomains,
		"opensea_events", len(res.OpenSea),
		"elapsed", time.Since(start).Round(time.Millisecond))

	store := subgraph.BuildIndex(res.Chain)
	logger.Info("subgraph indexed",
		"registrations", store.Len(subgraph.ColRegistrations),
		"events", store.Len(subgraph.ColEvents))

	if *snapshot != "" {
		// The snapshot is the ground-truth dataset a perfect crawl of this
		// server would assemble; analyses can load it directly instead of
		// re-crawling (or re-generating) the world.
		snapStart := time.Now()
		ds, err := dataset.FromWorld(ctx, res, dataset.BuildOptions{Logger: logger})
		if err != nil {
			logger.Error("snapshot dataset", "err", err)
			os.Exit(1)
		}
		if err := ds.SaveSnapshot(*snapshot, dataset.WithFormat(dataset.FormatBinary)); err != nil {
			logger.Error("snapshot save", "err", err)
			os.Exit(1)
		}
		logger.Info("snapshot written", "path", *snapshot,
			"domains", len(ds.Domains), "txs", len(ds.Txs),
			"elapsed", time.Since(snapStart).Round(time.Millisecond))
	}

	tracer := traceFlags.tracer()
	if tracer != nil {
		logger.Info("tracing enabled",
			"sample", traceFlags.sample, "store", traceFlags.capacity, "slow", traceFlags.slow)
	}
	logger.Info("overload protection",
		"max_inflight", *maxInflight, "queue_depth", *queueDepth, "queue_wait", *queueWait,
		"quota_rate", *quotaRate, "route_timeout", *routeTimeout)
	// The full middleware stack — metrics, deadlines, quotas, the
	// admission gate, chaos, the page cache, tracing — is assembled in
	// internal/serve so the binary, the load generator's self-hosted
	// mode, and the tests all run identical wiring.
	stack := serve.New(res, store, serve.Config{
		Logger:        logger,
		Seed:          *seed,
		EtherscanRate: *rate,
		ChaosRate:     *chaosRate,
		ChaosSeed:     *chaosSeed,
		MaxInflight:   *maxInflight,
		QueueDepth:    *queueDepth,
		QueueWait:     *queueWait,
		QuotaRate:     *quotaRate,
		QuotaBurst:    *quotaBurst,
		RouteTimeout:  *routeTimeout,
		CacheDisabled: *cacheOff,
		CacheEntries:  *cacheEntries,
		Tracer:        tracer,
	})

	logger.Info("serving", "addr", *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           stack.Handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Slow-loris floors: a request must arrive, and its response must
		// drain, in bounded time even with chaos-injected stalls in play.
		ReadTimeout:    30 * time.Second,
		WriteTimeout:   90 * time.Second,
		IdleTimeout:    2 * time.Minute,
		MaxHeaderBytes: 1 << 20,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "timeout", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
