// Command ensworld generates a synthetic ENS ecosystem and serves it
// through the three data-source APIs the paper crawls: the ENS subgraph
// (GraphQL), an Etherscan-style transaction API, and an OpenSea-style
// marketplace events API — all on one listener:
//
//	POST /subgraph           GraphQL queries
//	GET  /etherscan/api      module=account&action=txlist|balance
//	GET  /etherscan/labels   custodial address lists
//	GET  /opensea/events     marketplace events
//	POST /rpc                JSON-RPC (eth_getLogs etc., raw chain access)
//	GET  /healthz            JSON liveness (uptime, world shape, index sizes)
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/pprof/*      runtime profiles
//	GET  /debug/vars         expvar JSON
//
// Every route is instrumented: per-route request counts by status
// class, latency histograms, and an in-flight gauge, exposed under the
// ensworld_http_* metric names. SIGINT/SIGTERM drain in-flight requests
// before exit.
//
// With -chaos-rate > 0, a seeded fault injector (internal/chaos) wraps
// the three API routes, randomly answering with 429s, 500s, connection
// resets, slow bodies, stalls, and truncated JSON — a repeatable
// hostile-network drill for crawler hardening. Health and debug routes
// stay clean.
//
// Example:
//
//	ensworld -domains 30000 -seed 7 -listen :8080
//	ensworld -domains 5000 -chaos-rate 0.2 -chaos-seed 42
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethrpc"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func main() {
	var (
		domains   = flag.Int("domains", 10000, "number of domains to simulate")
		seed      = flag.Int64("seed", 1, "deterministic generation seed")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
		rate      = flag.Int("etherscan-rate", etherscan.DefaultRatePerSecond, "etherscan requests/second/key (0 = default)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		chaosRate = flag.Float64("chaos-rate", 0, "per-request fault injection probability in [0,1] on the three API routes (0 = off)")
		chaosSeed = flag.Int64("chaos-seed", 1, "deterministic fault schedule seed")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := world.DefaultConfig(*domains)
	cfg.Seed = *seed
	logger.Info("generating world", "domains", *domains, "seed", *seed)
	start := time.Now()
	res, err := world.Generate(cfg)
	if err != nil {
		logger.Error("generate", "err", err)
		os.Exit(1)
	}
	summary := res.Summarize()
	logger.Info("world ready",
		"txs", summary.Transactions,
		"expired", summary.Expired,
		"dropcaught", summary.Dropcaught,
		"subdomains", summary.Subdomains,
		"opensea_events", len(res.OpenSea),
		"elapsed", time.Since(start).Round(time.Millisecond))

	store := subgraph.BuildIndex(res.Chain)
	logger.Info("subgraph indexed",
		"registrations", store.Len(subgraph.ColRegistrations),
		"events", store.Len(subgraph.ColEvents))

	httpMetrics := obs.NewHTTPMetrics(obs.Default, "ensworld")
	mux := http.NewServeMux()
	handle := func(route string, h http.Handler) {
		mux.Handle(route, httpMetrics.Wrap(route, h))
	}
	// The three crawled APIs optionally run behind a seeded fault
	// injector so clients' retry/breaker/resume paths can be exercised;
	// health and debug routes stay clean.
	faulty := func(h http.Handler) http.Handler { return h }
	if *chaosRate > 0 {
		inj := chaos.New(chaos.Config{Seed: *chaosSeed, Rate: *chaosRate})
		faulty = inj.Wrap
		logger.Info("chaos enabled", "rate", *chaosRate, "seed", *chaosSeed)
	}
	handle("/subgraph", faulty(subgraph.NewServer(store, logger)))
	handle("/etherscan/", http.StripPrefix("/etherscan",
		faulty(etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), *rate, logger))))
	handle("/opensea/", http.StripPrefix("/opensea", faulty(opensea.NewServer(res.OpenSea))))
	handle("/rpc", ethrpc.NewServer(res.Chain))
	handle("/healthz", newHealthHandler(time.Now(), *seed, summary, store))
	obs.RegisterDebug(mux, obs.Default)

	logger.Info("serving", "addr", *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "timeout", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
