package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"
)

// traceFlagNames is the flag set every ens command must expose for
// tracing; the e2e harnesses and the README examples depend on them.
var traceFlagNames = []string{"trace", "trace-sample", "trace-store", "trace-slow", "trace-seed"}

func TestTraceFlagsInHelp(t *testing.T) {
	fs := flag.NewFlagSet("ensworld", flag.ContinueOnError)
	o := registerTraceFlags(fs, true)
	var help bytes.Buffer
	fs.SetOutput(&help)
	fs.PrintDefaults()
	for _, name := range traceFlagNames {
		f := fs.Lookup(name)
		if f == nil {
			t.Errorf("flag -%s not registered", name)
			continue
		}
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage text", name)
		}
		if !strings.Contains(help.String(), "-"+name) {
			t.Errorf("help output does not mention -%s", name)
		}
	}
	if !o.enabled {
		t.Error("server tracing should default on")
	}
	if o.capacity != 512 || o.sample != 0.01 {
		t.Errorf("unexpected defaults: capacity=%d sample=%v", o.capacity, o.sample)
	}
}

func TestTracerConstruction(t *testing.T) {
	off := &traceOpts{}
	if off.tracer() != nil {
		t.Fatal("disabled opts built a tracer")
	}
	on := &traceOpts{enabled: true, sample: 1, capacity: 8, slow: time.Second, seed: 42}
	tr := on.tracer()
	if tr == nil {
		t.Fatal("enabled opts built no tracer")
	}
	if got := tr.Store().Capacity(); got != 8 {
		t.Errorf("store capacity = %d, want 8", got)
	}
}
