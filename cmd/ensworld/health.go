package main

import (
	"encoding/json"
	"net/http"
	"time"

	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/world"
)

// healthStatus is the /healthz response body: enough for a load
// balancer to gate on, for an operator to see what world this instance
// is serving without grepping logs, and for the soak harness to assert
// on overload and trace-store state without scraping /metrics.
type healthStatus struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Seed          int64          `json:"seed"`
	Domains       int            `json:"domains"`
	Subdomains    int            `json:"subdomains"`
	Transactions  int            `json:"transactions"`
	Index         map[string]int `json:"index"`
	Overload      overloadHealth `json:"overload"`
	Trace         traceHealth    `json:"trace"`
}

// overloadHealth snapshots the admission gate and quota set.
type overloadHealth struct {
	Inflight     int    `json:"inflight"`
	Queued       int    `json:"queued"`
	Sheds        uint64 `json:"sheds"`
	QuotaDenied  uint64 `json:"quota_denied"`
	QuotaClients int    `json:"quota_clients"`
}

// traceHealth snapshots the tail-sampled trace store; all zeros when
// tracing is disabled.
type traceHealth struct {
	Enabled  bool   `json:"enabled"`
	Stored   int    `json:"stored"`
	Capacity int    `json:"capacity"`
	Dropped  uint64 `json:"dropped"`
	Evicted  uint64 `json:"evicted"`
}

// newHealthHandler serves liveness as JSON: uptime, the generated
// world's seed and headline counts, the subgraph index sizes, and live
// overload-gate / trace-store occupancy.
func newHealthHandler(start time.Time, seed int64, summary world.Summary, store *subgraph.Store,
	gate *overload.Gate, quotas *overload.Quotas, traces *trace.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A failed response write means the client is gone; nothing to repair.
		_ = json.NewEncoder(w).Encode(healthStatus{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			Seed:          seed,
			Domains:       summary.Domains,
			Subdomains:    summary.Subdomains,
			Transactions:  summary.Transactions,
			Index: map[string]int{
				subgraph.ColRegistrations: store.Len(subgraph.ColRegistrations),
				subgraph.ColEvents:        store.Len(subgraph.ColEvents),
				subgraph.ColSubdomains:    store.Len(subgraph.ColSubdomains),
			},
			Overload: overloadHealth{
				Inflight:     gate.Inflight(),
				Queued:       gate.Queued(),
				Sheds:        gate.ShedCount(),
				QuotaDenied:  quotas.Denied(),
				QuotaClients: quotas.Clients(),
			},
			Trace: traceHealth{
				Enabled:  traces != nil,
				Stored:   traces.Len(),
				Capacity: traces.Capacity(),
				Dropped:  traces.Dropped(),
				Evicted:  traces.Evicted(),
			},
		})
	})
}
