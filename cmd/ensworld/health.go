package main

import (
	"encoding/json"
	"net/http"
	"time"

	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// healthStatus is the /healthz response body: enough for a load
// balancer to gate on and for an operator to see what world this
// instance is serving without grepping logs.
type healthStatus struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Seed          int64          `json:"seed"`
	Domains       int            `json:"domains"`
	Subdomains    int            `json:"subdomains"`
	Transactions  int            `json:"transactions"`
	Index         map[string]int `json:"index"`
}

// newHealthHandler serves liveness as JSON: uptime, the generated
// world's seed and headline counts, and the subgraph index sizes.
func newHealthHandler(start time.Time, seed int64, summary world.Summary, store *subgraph.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A failed response write means the client is gone; nothing to repair.
		_ = json.NewEncoder(w).Encode(healthStatus{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			Seed:          seed,
			Domains:       summary.Domains,
			Subdomains:    summary.Subdomains,
			Transactions:  summary.Transactions,
			Index: map[string]int{
				subgraph.ColRegistrations: store.Len(subgraph.ColRegistrations),
				subgraph.ColEvents:        store.Len(subgraph.ColEvents),
				subgraph.ColSubdomains:    store.Len(subgraph.ColSubdomains),
			},
		})
	})
}
