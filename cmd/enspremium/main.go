// Command enspremium prints the ENS temporary-premium schedule (the
// 21-day Dutch auction of §2.1) for a name whose registration expired at a
// given date, plus the grace-period boundaries — the calculator a
// dropcatcher (or a defender estimating exposure) would use.
//
// The expiry comes either from -expiry directly, or from a persisted
// dataset: with -data, the tool loads the dataset (JSONL directory or
// binary snapshot), looks up -label, and uses its final on-chain expiry.
//
// Examples:
//
//	enspremium -expiry 2023-01-15 -label gold
//	enspremium -data ./data -label gold
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/par"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/report"
)

func main() {
	var (
		expiryStr   = flag.String("expiry", "", "expiry date (YYYY-MM-DD; required unless -data is given)")
		dataPath    = flag.String("data", "", "dataset (JSONL directory or binary snapshot); -label's recorded expiry is used instead of -expiry")
		label       = flag.String("label", "example", "label, for the base-rent tier (and the dataset lookup with -data)")
		stepHours   = flag.Int("step", 24, "schedule step in hours")
		metricsAddr = flag.String("metrics-addr", "", "after printing, keep serving /metrics and /debug/pprof on this address until interrupted (for profiling)")
		workers     = flag.Int("workers", 0, "worker count for computing the schedule rows (0 = GOMAXPROCS); output is identical for every value")
	)
	flag.Parse()
	if *stepHours <= 0 {
		fmt.Fprintln(os.Stderr, "enspremium: -step must be positive")
		os.Exit(2)
	}
	var expiry int64
	switch {
	case *dataPath != "" && *expiryStr != "":
		fmt.Fprintln(os.Stderr, "enspremium: -data and -expiry are mutually exclusive")
		os.Exit(2)
	case *dataPath != "":
		ds, err := dataset.Load(*dataPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enspremium: load -data: %v\n", err)
			os.Exit(1)
		}
		d, ok := ds.ByLabel(*label)
		if !ok {
			fmt.Fprintf(os.Stderr, "enspremium: %s.eth not in dataset %s\n", *label, *dataPath)
			os.Exit(1)
		}
		expiry = d.FinalExpiry(ds.End + 1)
		if expiry == 0 {
			fmt.Fprintf(os.Stderr, "enspremium: %s.eth has no recorded expiry in dataset %s\n", *label, *dataPath)
			os.Exit(1)
		}
	case *expiryStr != "":
		expiryTime, err := time.Parse("2006-01-02", *expiryStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enspremium: bad -expiry: %v\n", err)
			os.Exit(2)
		}
		expiry = expiryTime.Unix()
	default:
		fmt.Fprintln(os.Stderr, "enspremium: one of -expiry (YYYY-MM-DD) or -data is required")
		os.Exit(2)
	}
	release := ens.ReleaseTime(expiry)
	end := ens.PremiumEndTime(expiry)
	oracle := pricing.NewOracle()

	fmt.Printf("name:            %s.eth (base rent %s/year)\n", *label, report.USD(ens.BaseRentUSDPerYear(*label)))
	fmt.Printf("expired:         %s\n", time.Unix(expiry, 0).UTC().Format("2006-01-02"))
	fmt.Printf("grace ends:      %s (owner-only renewal until then)\n", time.Unix(release, 0).UTC().Format("2006-01-02"))
	fmt.Printf("premium reaches zero: %s\n\n", time.Unix(end, 0).UTC().Format("2006-01-02"))

	step := int64(*stepHours) * 3600
	n := int((end-release)/step) + 1
	// par.Map writes row i to slot i, so the printed schedule is in time
	// order regardless of worker count.
	rows := par.Map(par.New("premium_schedule", *workers), n, func(i int) []string {
		ts := release + int64(i)*step
		premium := ens.PremiumUSDAt(expiry, ts)
		total := premium + ens.BaseRentUSDPerYear(*label)
		return []string{
			time.Unix(ts, 0).UTC().Format("2006-01-02 15:04"),
			fmt.Sprintf("%.1f", float64(ts-release)/86400),
			report.USD(premium),
			report.USD(total),
			fmt.Sprintf("%.4f ETH", oracle.ETH(total, ts)),
		}
	})
	fmt.Print(report.Table([]string{"time (UTC)", "auction day", "premium", "total (1yr)", "total in ETH"}, rows))

	if *metricsAddr != "" {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		if _, err := obs.StartDebugServer(*metricsAddr, obs.Default, logger); err != nil {
			fmt.Fprintf(os.Stderr, "enspremium: metrics listener: %v\n", err)
			os.Exit(1)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
	}
}
