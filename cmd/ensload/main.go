// Command ensload is a deterministic open-loop load generator for the
// ensworld server. It replays a seeded request schedule — zipf-skewed
// target choices over scouted label hashes and registrant addresses,
// seeded burst seconds, a fixed route mix (40% subgraph, 25% etherscan,
// 20% opensea, 10% rpc, 5% healthz) — against a live server or a
// self-hosted in-process stack, and reports per-route p50/p99/p999
// latency, shed rate, and error rate as go-bench lines that
// cmd/benchjson archives next to the micro-benchmarks:
//
//	ensload -selfhost -rps 300 -duration 30s | benchjson -o BENCH_LOAD.json
//	ensload -target http://127.0.0.1:8080 -rps 500 -duration 60s -clients 16
//	ensload -selfhost -adaptive -rps 400 -duration 30s
//
// Open-loop means the schedule does not slow down when the server does:
// each request fires at its planned offset regardless of how many are
// still in flight (up to -max-inflight, beyond which the client counts
// a local drop rather than silently applying backpressure). That is the
// property that makes tail latencies honest under overload — a
// closed-loop generator coordinates with the server it is measuring.
// With -adaptive the generator instead behaves like the repo's polite
// crawler: one AIMD controller (internal/crawler) paces all clients and
// backs off on 429/503 + Retry-After, measuring the server as a
// well-behaved client sees it.
//
// The same -seed always produces the same request sequence in the same
// order, so two runs against the same world differ only in server
// timing — before/after comparisons compare servers, not schedules.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/serve"
	"ensdropcatch/internal/world"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	target      string
	selfhost    bool
	domains     int
	worldSeed   int64
	rps         float64
	duration    time.Duration
	clients     int
	seed        int64
	clientID    string
	maxInflight int64
	burstFactor float64
	burstProb   float64
	zipfS       float64
	scoutN      int
	adaptive    bool
	assertP99   time.Duration
	assertNo5xx bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ensload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.target, "target", "http://127.0.0.1:8080", "base URL of the server under test")
	fs.BoolVar(&o.selfhost, "selfhost", false, "generate a world and serve it in-process instead of hitting -target")
	fs.IntVar(&o.domains, "domains", 2000, "world size for -selfhost")
	fs.Int64Var(&o.worldSeed, "world-seed", 1, "world generation seed for -selfhost")
	fs.Float64Var(&o.rps, "rps", 200, "baseline requests/second (burst seconds multiply this)")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "length of the planned schedule")
	fs.IntVar(&o.clients, "clients", 8, "scheduler goroutines the plan is split across")
	fs.Int64Var(&o.seed, "seed", 1, "schedule seed: same seed, same request sequence")
	fs.StringVar(&o.clientID, "client-id", "ensload", "X-Client-ID stamped on every request (server quota key)")
	fs.Int64Var(&o.maxInflight, "max-inflight", 512, "client-side in-flight cap; excess planned requests are dropped locally, not delayed")
	fs.Float64Var(&o.burstFactor, "burst-factor", 3, "rate multiplier during a burst second")
	fs.Float64Var(&o.burstProb, "burst-prob", 0.1, "probability any given second is a burst second")
	fs.Float64Var(&o.zipfS, "zipf-s", 1.3, "zipf skew over the target pool (must be > 1)")
	fs.IntVar(&o.scoutN, "targets", 500, "target pool size scouted from the server (synthesized if scouting fails)")
	fs.BoolVar(&o.adaptive, "adaptive", false, "pace with the crawler's AIMD controller instead of open-loop")
	fs.DurationVar(&o.assertP99, "assert-p99", 0, "exit non-zero if any data route's p99 exceeds this (0 = off)")
	fs.BoolVar(&o.assertNo5xx, "assert-no-5xx", false, "exit non-zero on any 5xx answer, sheds included")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.clients < 1 {
		o.clients = 1
	}
	if o.zipfS <= 1 {
		fmt.Fprintln(stderr, "ensload: -zipf-s must be > 1")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.selfhost {
		fmt.Fprintf(stderr, "ensload: generating %d-domain world (seed %d)\n", o.domains, o.worldSeed)
		cfg := world.DefaultConfig(o.domains)
		cfg.Seed = o.worldSeed
		res, err := world.Generate(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "ensload: generate world: %v\n", err)
			return 1
		}
		stack := serve.New(res, nil, serve.Config{Seed: o.worldSeed, Registry: obs.NewRegistry()})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "ensload: listen: %v\n", err)
			return 1
		}
		srv := &http.Server{Handler: stack.Handler, ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
		o.target = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "ensload: self-hosting on %s\n", o.target)
	}
	o.target = strings.TrimRight(o.target, "/")

	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	t := scout(ctx, hc, o, stderr)
	plans := buildSchedule(planConfig{
		seed: o.seed, rps: o.rps, duration: o.duration,
		burstFactor: o.burstFactor, burstProb: o.burstProb, zipfS: o.zipfS,
	}, t)
	fmt.Fprintf(stderr, "ensload: %d requests planned over %v (%d targets, seed %d)\n",
		len(plans), o.duration, len(t.ids), o.seed)

	stats := newStatSet()
	var localDrops int64
	start := time.Now()
	if o.adaptive {
		localDrops = runAdaptive(ctx, hc, o, plans, stats)
	} else {
		localDrops = runOpenLoop(ctx, hc, o, plans, stats)
	}
	elapsed := time.Since(start)

	sums := stats.summarize(elapsed)
	writeBench(stdout, sums, localDrops)
	writeHuman(stderr, sums, elapsed, localDrops)

	code := 0
	if o.assertP99 > 0 {
		for _, s := range sums {
			if !isDataRoute(s.route) || s.ok == 0 {
				continue
			}
			if s.p99 > o.assertP99 {
				fmt.Fprintf(stderr, "ensload: ASSERT FAILED: %s p99 %v > %v\n", s.route, s.p99, o.assertP99)
				code = 1
			}
		}
	}
	if o.assertNo5xx {
		for _, s := range sums {
			if s.g5x > 0 {
				fmt.Fprintf(stderr, "ensload: ASSERT FAILED: %s answered %d responses >= 500\n", s.route, s.g5x)
				code = 1
			}
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "ensload: interrupted before the schedule completed")
		if code == 0 {
			code = 1
		}
	}
	return code
}

func isDataRoute(route string) bool {
	for _, r := range dataRoutes {
		if r == route {
			return true
		}
	}
	return false
}

// statSet is the per-route stats table, fixed at start so the hot path
// never takes a map-write lock.
type statSet struct {
	byRoute map[string]*routeStats
}

func newStatSet() *statSet {
	s := &statSet{byRoute: make(map[string]*routeStats)}
	for _, r := range append(append([]string{}, dataRoutes...), routeHealthz) {
		s.byRoute[r] = &routeStats{}
	}
	return s
}

func (s *statSet) summarize(elapsed time.Duration) []summary {
	routes := make([]string, 0, len(s.byRoute))
	for r := range s.byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	out := make([]summary, 0, len(routes))
	for _, r := range routes {
		out = append(out, s.byRoute[r].summarize(r, elapsed))
	}
	return out
}

// scout pulls a real target pool from the server — registration ids
// double as subgraph cursors and opensea token ids, registrants as
// etherscan/rpc addresses — so the generated load touches data that
// exists. Any failure falls back to a synthesized pool: the schedule
// stays deterministic either way, the server just answers empty pages.
func scout(ctx context.Context, hc *http.Client, o options, stderr io.Writer) targets {
	q := fmt.Sprintf(`{ registrations(first: %d) { id registrant } }`, o.scoutN)
	body, _ := json.Marshal(map[string]string{"query": q})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.target+"/subgraph", strings.NewReader(string(body)))
	if err != nil {
		return synthesize(o.scoutN)
	}
	req.Header.Set("Content-Type", "application/json")
	overload.SetRequestHeaders(req, o.clientID)
	//lint:allow iodiscipline open-loop load generator measures the raw server; retry or backoff here would hide the very overload it exists to produce
	resp, err := hc.Do(req)
	if err != nil {
		fmt.Fprintf(stderr, "ensload: scout failed (%v), synthesizing targets\n", err)
		return synthesize(o.scoutN)
	}
	defer resp.Body.Close()
	var payload struct {
		Data struct {
			Registrations []struct {
				ID         string `json:"id"`
				Registrant string `json:"registrant"`
			} `json:"registrations"`
		} `json:"data"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&payload) != nil ||
		len(payload.Data.Registrations) == 0 {
		fmt.Fprintf(stderr, "ensload: scout got status %d, synthesizing targets\n", resp.StatusCode)
		return synthesize(o.scoutN)
	}
	var t targets
	seen := make(map[string]bool)
	for _, reg := range payload.Data.Registrations {
		if reg.ID != "" {
			t.ids = append(t.ids, reg.ID)
		}
		if reg.Registrant != "" && !seen[reg.Registrant] {
			seen[reg.Registrant] = true
			t.addrs = append(t.addrs, reg.Registrant)
		}
	}
	if len(t.ids) == 0 || len(t.addrs) == 0 {
		return synthesize(o.scoutN)
	}
	return t
}

// fire executes one planned request and records its outcome. The body
// is always drained so the transport can reuse the connection.
func fire(ctx context.Context, hc *http.Client, o options, p request, st *routeStats) (status int, err error) {
	var rd io.Reader
	if p.body != "" {
		rd = strings.NewReader(p.body)
	}
	req, rerr := http.NewRequestWithContext(ctx, p.method, o.target+p.path, rd)
	if rerr != nil {
		st.observe(0, 0, true)
		return 0, rerr
	}
	if p.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	overload.SetRequestHeaders(req, o.clientID)
	t0 := time.Now()
	//lint:allow iodiscipline open-loop load generator measures the raw server; retry or backoff here would hide the very overload it exists to produce
	resp, derr := hc.Do(req)
	if derr != nil {
		st.observe(0, 0, true)
		return 0, derr
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close() //lint:allow droppederr body already drained; the response was measured either way
	st.observe(resp.StatusCode, time.Since(t0), false)
	return resp.StatusCode, nil
}

// runOpenLoop fires the plan on schedule. The plan is split round-robin
// across -clients scheduler goroutines; each sleeps until a request's
// planned offset and fires it in a fresh goroutine, so one slow answer
// never delays the next arrival. The only brake is -max-inflight: at
// the cap a planned request is counted as a local drop and skipped —
// visible in the report, never a silent slowdown.
func runOpenLoop(ctx context.Context, hc *http.Client, o options, plans []request, stats *statSet) int64 {
	var inflight, drops atomic.Int64
	var reqWG, schedWG sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.clients; c++ {
		schedWG.Add(1)
		go func(c int) {
			defer schedWG.Done()
			for i := c; i < len(plans); i += o.clients {
				p := plans[i]
				if d := time.Until(start.Add(p.due)); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				if ctx.Err() != nil {
					return
				}
				if inflight.Load() >= o.maxInflight {
					drops.Add(1)
					continue
				}
				inflight.Add(1)
				reqWG.Add(1)
				go func(p request) {
					defer reqWG.Done()
					defer inflight.Add(-1)
					_, _ = fire(ctx, hc, o, p, stats.byRoute[p.route])
				}(p)
			}
		}(c)
	}
	schedWG.Wait()
	reqWG.Wait()
	return drops.Load()
}

// runAdaptive replays the same plan through one shared AIMD controller:
// -clients workers drain the schedule in order, each request waiting
// for a rate token and an in-flight slot first. 429/503 answers feed
// back as shed signals (with the server's Retry-After hint), so the
// run settles at the rate the server is willing to serve — the polite
// crawler's view of the same workload. Planned offsets are ignored;
// the controller owns pacing. Requests the context cancels before
// dispatch count as local drops.
func runAdaptive(ctx context.Context, hc *http.Client, o options, plans []request, stats *statSet) int64 {
	ad := crawler.NewAdaptive(crawler.AdaptiveConfig{
		Source:      "ensload",
		InitialRate: o.rps / 4,
		MaxRate:     o.rps * 2,
		MaxWorkers:  o.clients,
		MinWorkers:  1,
	})
	ch := make(chan request)
	go func() {
		defer close(ch)
		for _, p := range plans {
			select {
			case ch <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	var drops atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if err := ad.Wait(ctx); err != nil {
					drops.Add(1)
					continue
				}
				if err := ad.Acquire(ctx); err != nil {
					drops.Add(1)
					continue
				}
				t0 := time.Now()
				status, err := fire(ctx, hc, o, p, stats.byRoute[p.route])
				lat := time.Since(t0)
				ad.Release()
				switch {
				case err != nil:
					ad.Observe(err, lat)
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					ad.Observe(crawler.RetryAfter(fmt.Errorf("server shed: status %d", status), 0), lat)
				default:
					ad.Observe(nil, lat)
				}
			}
		}()
	}
	wg.Wait()
	return drops.Load()
}
