package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"ensdropcatch/internal/keccak"
)

// Route names used for stats and bench output.
const (
	routeSubgraph  = "subgraph"
	routeEtherscan = "etherscan"
	routeOpenSea   = "opensea"
	routeRPC       = "rpc"
	routeHealthz   = "healthz"
)

// dataRoutes are the routes behind the server's overload gate; the
// -assert-p99 gate applies to these.
var dataRoutes = []string{routeSubgraph, routeEtherscan, routeOpenSea, routeRPC}

// request is one planned request: everything needed to fire it, plus
// its scheduled offset from run start.
type request struct {
	route  string
	method string
	path   string
	body   string
	due    time.Duration
}

// targets is the id/address pool requests draw from, either scouted
// from a live server or synthesized.
type targets struct {
	ids   []string // label hashes: subgraph cursors, opensea token ids
	addrs []string // registrant addresses: etherscan, rpc balance
}

// synthesize fills a target pool without a server: keccak-derived
// pseudo label hashes and addresses, deterministic in i.
func synthesize(n int) targets {
	var t targets
	for i := 0; i < n; i++ {
		sum := keccak.Sum256([]byte(fmt.Sprintf("ensload-%d", i)))
		t.ids = append(t.ids, "0x"+hexString(sum[:]))
		t.addrs = append(t.addrs, "0x"+hexString(sum[:20]))
	}
	return t
}

func hexString(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = digits[c>>4]
		out[2*i+1] = digits[c&0x0f]
	}
	return string(out)
}

// planConfig shapes a schedule.
type planConfig struct {
	seed        int64
	rps         float64
	duration    time.Duration
	burstFactor float64 // rate multiplier during a burst second
	burstProb   float64 // probability any second is a burst second
	zipfS       float64 // zipf skew over the target pool
}

// buildSchedule produces the full deterministic request sequence: the
// per-second burst schedule, the route mix, and every target choice
// come from one seeded generator, so the same seed against the same
// world replays the same requests in the same order. Only the wall
// clock at which they fire varies run to run.
//
// The mix is fixed: 40% subgraph pages, 25% etherscan txlists, 20%
// opensea event pages, 10% rpc, 5% healthz — roughly the request
// blend one full crawl cycle of the three sources produces.
func buildSchedule(cfg planConfig, t targets) []request {
	r := rand.New(rand.NewSource(cfg.seed))
	var zipf *rand.Zipf
	if len(t.ids) > 1 {
		zipf = rand.NewZipf(r, cfg.zipfS, 1, uint64(len(t.ids)-1))
	}
	pick := func(pool []string) string {
		if len(pool) == 0 {
			return ""
		}
		if zipf == nil || len(pool) == 1 {
			return pool[0]
		}
		i := zipf.Uint64()
		if i >= uint64(len(pool)) {
			i = uint64(len(pool)) - 1
		}
		return pool[i]
	}

	seconds := int(cfg.duration.Seconds() + 0.999)
	var plans []request
	for s := 0; s < seconds; s++ {
		mult := 1.0
		if r.Float64() < cfg.burstProb {
			mult = cfg.burstFactor
		}
		n := int(cfg.rps*mult + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			due := time.Duration(s)*time.Second + time.Duration(float64(i)/float64(n)*float64(time.Second))
			plans = append(plans, makeRequest(r, pick, t, due))
		}
	}
	return plans
}

func makeRequest(r *rand.Rand, pick func([]string) string, t targets, due time.Duration) request {
	switch draw := r.Intn(100); {
	case draw < 40:
		cursor := ""
		if r.Intn(10) > 0 { // 10% first pages, 90% deep cursors
			cursor = pick(t.ids)
		}
		q := fmt.Sprintf(`{ registrationEvents(first: 100, orderBy: id, where: {id_gt: %q}) { id type label labelName registrant expiryDate costWei premiumWei timestamp blockNumber txHash } }`, cursor)
		body, err := json.Marshal(map[string]string{"query": q})
		if err != nil {
			panic(err) // a string map cannot fail to marshal
		}
		return request{route: routeSubgraph, method: http.MethodPost, path: "/subgraph", body: string(body), due: due}
	case draw < 65:
		addr := pick(t.addrs)
		return request{route: routeEtherscan, method: http.MethodGet,
			path: "/etherscan/api?module=account&action=txlist&address=" + addr + "&startblock=0&page=1&offset=100&apikey=ensload", due: due}
	case draw < 85:
		if r.Intn(5) == 0 { // 20% full-stream pages
			return request{route: routeOpenSea, method: http.MethodGet, path: "/opensea/events?limit=50", due: due}
		}
		return request{route: routeOpenSea, method: http.MethodGet,
			path: "/opensea/events?token_id=" + pick(t.ids) + "&limit=50", due: due}
	case draw < 95:
		if r.Intn(2) == 0 {
			return request{route: routeRPC, method: http.MethodPost, path: "/rpc",
				body: `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`, due: due}
		}
		body, err := json.Marshal(map[string]any{
			"jsonrpc": "2.0", "id": 1, "method": "eth_getBalance", "params": []string{pick(t.addrs)}})
		if err != nil {
			panic(err)
		}
		return request{route: routeRPC, method: http.MethodPost, path: "/rpc", body: string(body), due: due}
	default:
		return request{route: routeHealthz, method: http.MethodGet, path: "/healthz", due: due}
	}
}
