package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testPlanConfig(seed int64) planConfig {
	return planConfig{seed: seed, rps: 50, duration: 5 * time.Second,
		burstFactor: 3, burstProb: 0.2, zipfS: 1.3}
}

// The whole point of the generator: one seed, one schedule.
func TestScheduleDeterministic(t *testing.T) {
	tg := synthesize(100)
	a := buildSchedule(testPlanConfig(7), tg)
	b := buildSchedule(testPlanConfig(7), tg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := buildSchedule(testPlanConfig(8), tg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleMixAndBursts(t *testing.T) {
	tg := synthesize(100)
	cfg := testPlanConfig(1)
	cfg.duration = 60 * time.Second
	plans := buildSchedule(cfg, tg)
	counts := map[string]int{}
	for _, p := range plans {
		counts[p.route]++
		if p.due < 0 || p.due >= cfg.duration {
			t.Fatalf("due %v outside schedule", p.due)
		}
	}
	total := len(plans)
	// The mix is drawn per request, so allow generous slack around the
	// nominal 40/25/20/10/5 split.
	for route, want := range map[string]float64{
		routeSubgraph: 0.40, routeEtherscan: 0.25, routeOpenSea: 0.20,
		routeRPC: 0.10, routeHealthz: 0.05,
	} {
		got := float64(counts[route]) / float64(total)
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("route %s: %.3f of mix, want near %.2f", route, got, want)
		}
	}
	// Burst seconds fire more than the baseline: with burstProb 0.2 over
	// 60s, at least one burst second is overwhelmingly likely.
	perSecond := map[int]int{}
	for _, p := range plans {
		perSecond[int(p.due/time.Second)]++
	}
	burst := 0
	for _, n := range perSecond {
		if float64(n) > cfg.rps*1.5 {
			burst++
		}
	}
	if burst == 0 {
		t.Error("no burst seconds in 60s schedule")
	}
	if total <= int(cfg.rps)*60 {
		t.Errorf("total %d not above baseline %d despite bursts", total, int(cfg.rps)*60)
	}
}

func TestSynthesizeShapes(t *testing.T) {
	tg := synthesize(10)
	if len(tg.ids) != 10 || len(tg.addrs) != 10 {
		t.Fatalf("pool sizes: %d ids, %d addrs", len(tg.ids), len(tg.addrs))
	}
	for i := range tg.ids {
		if len(tg.ids[i]) != 66 || !strings.HasPrefix(tg.ids[i], "0x") {
			t.Errorf("id %q not a 32-byte hex hash", tg.ids[i])
		}
		if len(tg.addrs[i]) != 42 || !strings.HasPrefix(tg.addrs[i], "0x") {
			t.Errorf("addr %q not a 20-byte hex address", tg.addrs[i])
		}
	}
}

// writeBench output must parse as go-bench lines the way cmd/benchjson
// does: name, iteration count, then value/unit pairs.
func TestBenchOutputParseable(t *testing.T) {
	st := &routeStats{}
	for i := 0; i < 100; i++ {
		st.observe(200, time.Duration(i+1)*time.Millisecond, false)
	}
	st.observe(503, 0, false)
	st.observe(404, 0, false)
	var buf bytes.Buffer
	writeBench(&buf, []summary{st.summarize(routeSubgraph, 10*time.Second)}, 3)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("short bench line: %q", line)
		}
		if !strings.HasPrefix(fields[0], "BenchmarkLoad/") {
			t.Fatalf("bad name: %q", fields[0])
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			t.Fatalf("iteration count %q: %v", fields[1], err)
		}
		if (len(fields)-2)%2 != 0 {
			t.Fatalf("odd value/unit tail: %q", line)
		}
		for i := 2; i < len(fields); i += 2 {
			if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
				t.Fatalf("value %q in %q: %v", fields[i], line, err)
			}
		}
	}
	out := buf.String()
	for _, unit := range []string{"ns/op", "p50_ns", "p99_ns", "p999_ns", "shed_rate", "error_rate", "rps", "local_drops"} {
		if !strings.Contains(out, unit) {
			t.Errorf("missing unit %q in output:\n%s", unit, out)
		}
	}
}

func TestRouteStatsClasses(t *testing.T) {
	st := &routeStats{}
	st.observe(200, time.Millisecond, false)
	st.observe(304, time.Millisecond, false)
	st.observe(429, 0, false)
	st.observe(503, 0, false)
	st.observe(500, 0, false)
	st.observe(404, 0, false)
	st.observe(0, 0, true)
	s := st.summarize("x", time.Second)
	if s.ok != 2 || s.shed != 2 || s.e5 != 1 || s.e4 != 1 || s.tr != 1 {
		t.Fatalf("classes: %+v", s)
	}
	if s.g5x != 2 { // the 503 shed and the 500 both count for -assert-no-5xx
		t.Fatalf("gate5xx = %d, want 2", s.g5x)
	}
	if s.completed() != 7 {
		t.Fatalf("completed = %d", s.completed())
	}
	if got := s.shedRate(); got != 2.0/7.0 {
		t.Fatalf("shedRate = %v", got)
	}
	if got := s.errorRate(); got != 3.0/7.0 {
		t.Fatalf("errorRate = %v", got)
	}
}

// End-to-end: a short self-hosted open-loop run completes, reports every
// route, and passes its own assert gates.
func TestRunSelfhostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a world and a 2s load run")
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-selfhost", "-domains", "200", "-world-seed", "3",
		"-rps", "40", "-duration", "2s", "-clients", "4", "-seed", "11",
		"-assert-no-5xx",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, route := range append(append([]string{}, dataRoutes...), routeHealthz) {
		if !strings.Contains(out.String(), "BenchmarkLoad/"+route+" ") {
			t.Errorf("no bench line for %s:\n%s", route, out.String())
		}
	}
	if !strings.Contains(out.String(), "BenchmarkLoad/total ") {
		t.Error("no total line")
	}
}

func TestRunAssertP99Fails(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a world and a 1s load run")
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-selfhost", "-domains", "100",
		"-rps", "20", "-duration", "1s", "-clients", "2",
		"-assert-p99", "1ns", // nothing real answers in a nanosecond
	}, &out, &errb)
	if code == 0 {
		t.Fatalf("want non-zero exit\nstderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "ASSERT FAILED") {
		t.Fatalf("no assert diagnostic:\n%s", errb.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-zipf-s", "0.5"}, &out, &errb); code != 2 {
		t.Fatalf("zipf-s guard: exit %d", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("flag parse: exit %d", code)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i))
	}
	if q := quantile(sorted, 0.5); q != 50 {
		t.Errorf("p50 = %d", q)
	}
	if q := quantile(sorted, 0.99); q != 99 {
		t.Errorf("p99 = %d", q)
	}
	if q := quantile(sorted, 1); q != 100 {
		t.Errorf("p100 = %d", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %d", q)
	}
}
