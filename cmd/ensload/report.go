package main

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// routeStats accumulates one route's outcomes. Latencies are kept
// exactly (one duration per successful request) so the reported
// quantiles are true sample quantiles, not histogram estimates — the
// point of a load generator is to measure the server, not approximate
// it.
//
// The classes are disjoint: ok (2xx/304), shed (429/503, the server's
// overload signals), err4 (other 4xx), err5 (other 5xx), transport
// (connection failures). gate5xx overlaps them: every status >= 500
// including shed 503s, the counter the -assert-no-5xx gate reads.
type routeStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	ok        int64
	shed      int64
	err4      int64
	err5      int64
	transport int64
	gate5xx   int64
}

func (s *routeStats) observe(status int, latency time.Duration, transportErr bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case transportErr:
		s.transport++
	case status == 429 || status == 503:
		s.shed++
	case status >= 500:
		s.err5++
	case status >= 400:
		s.err4++
	default:
		s.ok++
		s.latencies = append(s.latencies, latency)
	}
	if !transportErr && status >= 500 {
		s.gate5xx++
	}
}

// summary is a finished route's numbers.
type summary struct {
	route                     string
	ok, shed, e4, e5, tr, g5x int64
	mean                      time.Duration
	p50, p99, p999            time.Duration
	rps                       float64
}

func (s *routeStats) summarize(route string, elapsed time.Duration) summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := summary{route: route, ok: s.ok, shed: s.shed, e4: s.err4, e5: s.err5, tr: s.transport, g5x: s.gate5xx}
	if len(s.latencies) > 0 {
		sorted := make([]time.Duration, len(s.latencies))
		copy(sorted, s.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, l := range sorted {
			sum += l
		}
		out.mean = sum / time.Duration(len(sorted))
		out.p50 = quantile(sorted, 0.5)
		out.p99 = quantile(sorted, 0.99)
		out.p999 = quantile(sorted, 0.999)
	}
	if elapsed > 0 {
		out.rps = float64(s.ok) / elapsed.Seconds()
	}
	return out
}

// quantile is the nearest-rank sample quantile of a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// completed is every request that got an answer or a transport error.
func (s summary) completed() int64 { return s.ok + s.shed + s.e4 + s.e5 + s.tr }

// shedRate is sheds over completed requests.
func (s summary) shedRate() float64 {
	if c := s.completed(); c > 0 {
		return float64(s.shed) / float64(c)
	}
	return 0
}

// errorRate is non-shed errors (4xx, 5xx, transport) over completed.
func (s summary) errorRate() float64 {
	if c := s.completed(); c > 0 {
		return float64(s.e4+s.e5+s.tr) / float64(c)
	}
	return 0
}

// writeBench emits one go-bench-format line per route, parseable by
// cmd/benchjson — `ensload ... | benchjson -o BENCH_LOAD.json` archives
// a load run exactly like a `go test -bench` run. The iteration count
// is successful requests; ns/op is their mean latency.
func writeBench(w io.Writer, sums []summary, localDrops int64) {
	var tot summary
	for _, s := range sums {
		if s.completed() == 0 {
			continue
		}
		fmt.Fprintf(w, "BenchmarkLoad/%s %d %d ns/op %d p50_ns %d p99_ns %d p999_ns %.4f shed_rate %.4f error_rate %.1f rps\n",
			s.route, s.ok, s.mean.Nanoseconds(), s.p50.Nanoseconds(), s.p99.Nanoseconds(), s.p999.Nanoseconds(),
			s.shedRate(), s.errorRate(), s.rps)
		tot.ok += s.ok
		tot.shed += s.shed
		tot.e4 += s.e4
		tot.e5 += s.e5
		tot.tr += s.tr
		tot.rps += s.rps
	}
	fmt.Fprintf(w, "BenchmarkLoad/total %d %.4f shed_rate %.4f error_rate %.1f rps %d local_drops\n",
		tot.ok, tot.shedRate(), tot.errorRate(), tot.rps, localDrops)
}

// writeHuman emits the operator-facing table.
func writeHuman(w io.Writer, sums []summary, elapsed time.Duration, localDrops int64) {
	fmt.Fprintf(w, "ensload: %v elapsed, %d requests dropped at the client (inflight cap)\n",
		elapsed.Round(time.Millisecond), localDrops)
	fmt.Fprintf(w, "%-10s %8s %6s %5s %5s %5s %9s %9s %9s %8s\n",
		"route", "ok", "shed", "4xx", "5xx", "conn", "p50", "p99", "p999", "rps")
	for _, s := range sums {
		fmt.Fprintf(w, "%-10s %8d %6d %5d %5d %5d %9s %9s %9s %8.1f\n",
			s.route, s.ok, s.shed, s.e4, s.e5, s.tr,
			s.p50.Round(time.Microsecond), s.p99.Round(time.Microsecond), s.p999.Round(time.Microsecond), s.rps)
	}
}
