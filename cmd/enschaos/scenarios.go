package main

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"ensdropcatch/internal/chaos/plan"
)

// Built-in campaign scenarios, committed next to the runner so a drill
// is one command with no files to stage. Each document is a plan.Plan
// in JSON; a test validates every one of them against plan.Validate.
//
//go:embed scenarios/*.json
var scenarioFS embed.FS

// scenarioNames lists the built-in campaigns, sorted.
func scenarioNames() []string {
	entries, err := fs.ReadDir(scenarioFS, "scenarios")
	if err != nil {
		return nil // embed cannot fail at runtime; keep the caller simple
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// loadScenario resolves a built-in campaign by name.
func loadScenario(name string) (*plan.Plan, error) {
	data, err := fs.ReadFile(scenarioFS, "scenarios/"+name+".json")
	if err != nil {
		return nil, fmt.Errorf("enschaos: unknown campaign %q (built-ins: %s)",
			name, strings.Join(scenarioNames(), ", "))
	}
	p, err := plan.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("enschaos: campaign %q: %w", name, err)
	}
	return p, nil
}
