package main

import (
	"bytes"
	"context"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/chaos/plan"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/leakcheck"
)

// Every committed scenario document must validate against the plan
// schema, carry its file's name, and declare at least one SLO — a
// campaign nobody asserts on is not a drill.
func TestScenariosValidate(t *testing.T) {
	entries, err := fs.ReadDir(scenarioFS, "scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no built-in scenarios committed")
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		p, err := loadScenario(name)
		if err != nil {
			t.Errorf("scenario %s: %v", e.Name(), err)
			continue
		}
		if p.Name != name {
			t.Errorf("scenario %s declares name %q; file and plan names must match", e.Name(), p.Name)
		}
		if p.Unit != plan.UnitRequests {
			t.Errorf("scenario %s uses unit %q; built-ins promise request-clock determinism", e.Name(), p.Unit)
		}
		slos := 0
		for i := range p.Phases {
			if p.Phases[i].SLO != nil {
				slos++
			}
		}
		if slos == 0 {
			t.Errorf("scenario %s declares no SLOs", e.Name())
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	_, err := loadScenario("no-such-campaign")
	if err == nil {
		t.Fatal("unknown campaign did not error")
	}
	if !strings.Contains(err.Error(), "blackout-recovery") {
		t.Fatalf("error %q does not list the built-ins", err)
	}
}

// TestChaosSmoke is the CI chaos gate (make chaos-smoke): a seeded
// blackout+recovery campaign run twice through the full pipeline under
// -race. run() itself asserts the robustness contract — identical phase
// reports across runs, per-phase SLOs, and byte-identical convergence
// with a fault-free crawl — so this test passes only if all three hold,
// and leakcheck adds the no-goroutine-leaks clause.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos drill")
	}
	leakcheck.Check(t)
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-campaign", "blackout-recovery", "-domains", "200", "-runs", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("enschaos exited %d\nstderr:\n%s", code, errb.String())
	}
	stderr := errb.String()
	for _, want := range []string{"determinism OK", "convergence OK", "PASSED"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	// CHAOS_REPORT must be go-bench lines the way cmd/benchjson parses
	// them: name, iterations, then (value, unit) pairs.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("CHAOS_REPORT has %d lines, want at least warmup/blackout/recovery/total:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if !strings.HasPrefix(fields[0], "BenchmarkChaos/blackout-recovery/") {
			t.Errorf("unexpected report line %q", line)
			continue
		}
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Errorf("line %q is not bench-shaped", line)
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Errorf("line %q: iterations %q not an integer", line, fields[1])
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
				t.Errorf("line %q: value %q not numeric", line, fields[i])
			}
		}
	}
}

// okTransport answers every request 200 without touching the network,
// so the outage drill below measures only the campaign's decisions.
type okTransport struct{}

func (okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  make(http.Header),
		Body:    io.NopCloser(strings.NewReader("ok")),
		Request: req,
	}, nil
}

// The acceptance property, end to end: during a wall-clock blackout a
// budgeted client issues measurably fewer upstream requests than an
// unbudgeted one. Fail-fast only damps load when the caller pauses
// before restarting (as drill() does); the pause here models that.
func TestRetryBudgetDampsOutageE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock outage drill")
	}
	noSleep := func(context.Context, time.Duration) error { return nil }
	outage := func(budget *crawler.RetryBudget) int64 {
		p := &plan.Plan{
			Name: "outage", Unit: plan.UnitMillis,
			Phases: []plan.Phase{{
				Name: "blackout", Offset: 0, Duration: 300,
				Rules: []plan.Rule{{Mode: plan.ModeBlackout}},
			}},
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		camp := chaos.NewCampaign(p, chaos.Config{Seed: 1})
		hc := &http.Client{Transport: camp.RoundTripper(okTransport{})}
		cfg := crawler.RetryConfig{Attempts: 30, BaseDelay: time.Millisecond, Sleep: noSleep, Budget: budget}
		for !camp.Done() {
			_ = crawler.Retry(context.Background(), cfg, func(ctx context.Context) error {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://chaos.invalid/x", nil)
				if err != nil {
					return err
				}
				resp, err := hc.Do(req)
				if err != nil {
					return err
				}
				resp.Body.Close()
				return nil
			})
			time.Sleep(10 * time.Millisecond) // the restart pause
		}
		var tot int64
		for _, r := range camp.Report() {
			tot += r.Requests
		}
		return tot
	}
	with := outage(crawler.NewRetryBudget("outage-e2e", 0.1, 10))
	without := outage(nil)
	if with >= without {
		t.Fatalf("budgeted outage issued %d upstream requests, unbudgeted %d — no damping", with, without)
	}
	t.Logf("outage volume: %d budgeted vs %d unbudgeted", with, without)
}
