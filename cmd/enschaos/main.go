// Command enschaos runs a deterministic chaos campaign against the full
// crawl pipeline and proves the robustness contract end to end: it
// generates a seeded world, serves it in-process through the real stack
// (internal/serve: gate, quotas, cache), injures the client's traffic
// through a phased chaos.Campaign on the request clock, and crawls the
// three sources into a dataset with the resilient clients — retry
// budgets, resumable spool/checkpoint, optional breakers and hedging.
// A build attempt that dies mid-campaign (a dry retry budget failing
// fast is the designed outcome of a blackout) is restarted and resumes
// from its checkpoint, exactly like the operator runbook says.
//
// After the drill it:
//
//   - asserts every per-phase SLO the scenario declares,
//   - with -runs N > 1, re-runs the whole drill and requires the phase
//     reports to be identical — the determinism contract: under
//     plan.UnitRequests the fault schedule is a pure function of
//     (scenario, seed, request sequence),
//   - with -verify-clean, crawls the same world fault-free and requires
//     the persisted datasets to be byte-identical — faults may cost
//     time and restarts, never rows,
//   - emits CHAOS_REPORT as go-bench lines cmd/benchjson can archive:
//
//	enschaos -campaign blackout-recovery -domains 250 -runs 2 | benchjson -o CHAOS_REPORT.json
//	enschaos -scenario drills/my-campaign.json -budget-burst 0
//	enschaos -list
//
// Determinism needs a serial request stream, so -tx-workers defaults to
// 1 and breakers/hedging default off (both consult wall time: cooldown
// expiry and latency estimates would let timing reorder the request
// sequence). Turning them on is still a valid — just non-reproducible —
// drill of the full client stack.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/chaos/plan"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/serve"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func main() {
	// Signal handling lives here, not in run(): the signal watcher
	// goroutine is process-lifetime, and tests call run() directly
	// under a goroutine-leak check.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	campaign     string
	scenario     string
	list         bool
	domains      int
	worldSeed    int64
	seed         int64
	txWorkers    int
	retries      int
	budgetBurst  float64
	budgetRatio  float64
	breaker      bool
	hedge        bool
	maxRestarts  int
	restartPause time.Duration
	runs         int
	verifyClean  bool
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("enschaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.campaign, "campaign", "blackout-recovery", "built-in scenario name (see -list)")
	fs.StringVar(&o.scenario, "scenario", "", "path to a scenario JSON file (overrides -campaign)")
	fs.BoolVar(&o.list, "list", false, "list built-in campaigns and exit")
	fs.IntVar(&o.domains, "domains", 250, "world size")
	fs.Int64Var(&o.worldSeed, "world-seed", 1, "world generation seed")
	fs.Int64Var(&o.seed, "seed", 42, "campaign fault-schedule seed")
	fs.IntVar(&o.txWorkers, "tx-workers", 1, "transaction-crawl concurrency (1 keeps the request clock deterministic)")
	fs.IntVar(&o.retries, "retries", 12, "client retry attempts per call")
	fs.Float64Var(&o.budgetBurst, "budget-burst", 10, "retry-budget burst per source (0 disables the budget: unbounded retry amplification)")
	fs.Float64Var(&o.budgetRatio, "budget-ratio", 0.1, "retry-budget refill per successful first attempt")
	fs.BoolVar(&o.breaker, "breaker", false, "enable circuit breakers (wall-time cooldowns; breaks request-clock determinism)")
	fs.BoolVar(&o.hedge, "hedge", false, "enable hedged reads (wall-time latency estimates; breaks request-clock determinism)")
	fs.IntVar(&o.maxRestarts, "max-restarts", 25, "build restarts before the drill is declared failed")
	fs.DurationVar(&o.restartPause, "restart-pause", 50*time.Millisecond, "pause between build restarts (where fail-fast damping shows)")
	fs.IntVar(&o.runs, "runs", 1, "drill repetitions; > 1 asserts identical phase reports across runs")
	fs.BoolVar(&o.verifyClean, "verify-clean", true, "crawl fault-free too and require byte-identical datasets")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.list {
		for _, name := range scenarioNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if o.runs < 1 {
		o.runs = 1
	}

	var p *plan.Plan
	var err error
	if o.scenario != "" {
		p, err = plan.LoadFile(o.scenario)
	} else {
		p, err = loadScenario(o.campaign)
	}
	if err != nil {
		fmt.Fprintf(stderr, "enschaos: %v\n", err)
		return 2
	}
	if p.Unit == plan.UnitMillis && o.runs > 1 {
		fmt.Fprintf(stderr, "enschaos: warning: %s uses the wall clock; -runs determinism checks will likely fail\n", p.Name)
	}

	fmt.Fprintf(stderr, "enschaos: generating %d-domain world (seed %d)\n", o.domains, o.worldSeed)
	cfg := world.DefaultConfig(o.domains)
	cfg.Seed = o.worldSeed
	res, err := world.Generate(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "enschaos: generate world: %v\n", err)
		return 1
	}
	store := subgraph.BuildIndex(res.Chain)
	opts := dataset.BuildOptions{Start: cfg.Start, End: cfg.End, TxWorkers: o.txWorkers, MarketWorkers: 1}

	work, err := os.MkdirTemp("", "enschaos-*")
	if err != nil {
		fmt.Fprintf(stderr, "enschaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(work)

	var reports [][]chaos.PhaseReport
	var restarts []int
	var camp *chaos.Campaign
	chaosDir := filepath.Join(work, "chaos")
	for i := 0; i < o.runs; i++ {
		c, ds, n, err := drill(ctx, res, store, p, o, opts, filepath.Join(work, fmt.Sprintf("run%d", i)), stderr)
		if err != nil {
			fmt.Fprintf(stderr, "enschaos: drill run %d: %v\n", i+1, err)
			return 1
		}
		camp = c
		reports = append(reports, c.Report())
		restarts = append(restarts, n)
		if i == 0 {
			if err := ds.Save(chaosDir); err != nil {
				fmt.Fprintf(stderr, "enschaos: save chaos dataset: %v\n", err)
				return 1
			}
		}
		fmt.Fprintf(stderr, "enschaos: drill run %d/%d converged after %d restart(s)\n", i+1, o.runs, n)
	}

	code := 0
	for i := 1; i < len(reports); i++ {
		if !sameReports(reports[0], reports[i]) {
			fmt.Fprintf(stderr, "enschaos: DETERMINISM FAILED: run %d phase report differs from run 1\nrun 1: %s\nrun %d: %s\n",
				i+1, mustJSON(reports[0]), i+1, mustJSON(reports[i]))
			code = 1
		}
	}
	if code == 0 && o.runs > 1 {
		fmt.Fprintf(stderr, "enschaos: determinism OK: %d runs, identical phase reports\n", o.runs)
	}

	for _, serr := range camp.CheckSLOs() {
		fmt.Fprintf(stderr, "enschaos: SLO FAILED: %v\n", serr)
		code = 1
	}

	if o.verifyClean {
		fmt.Fprintln(stderr, "enschaos: running fault-free reference crawl")
		csg, ces, cos := cleanClients(res, store)
		cleanOpts := opts
		cleanOpts.ResumeDir = ""
		cleanDS, err := dataset.Build(ctx, csg, ces, cos, cleanOpts)
		if err != nil {
			fmt.Fprintf(stderr, "enschaos: clean reference crawl: %v\n", err)
			return 1
		}
		cleanDir := filepath.Join(work, "clean")
		if err := cleanDS.Save(cleanDir); err != nil {
			fmt.Fprintf(stderr, "enschaos: save clean dataset: %v\n", err)
			return 1
		}
		if err := compareDirs(cleanDir, chaosDir); err != nil {
			fmt.Fprintf(stderr, "enschaos: CONVERGENCE FAILED: %v\n", err)
			code = 1
		} else {
			fmt.Fprintln(stderr, "enschaos: convergence OK: chaos dataset byte-identical to clean run")
		}
	}

	writeChaosBench(stdout, p.Name, reports[0], restarts[0])
	if code == 0 {
		fmt.Fprintf(stderr, "enschaos: campaign %s PASSED\n", p.Name)
	}
	return code
}

// drill runs one full campaign: a fresh server stack, a fresh campaign
// bound to the scenario, and a build-until-converged loop. The campaign
// and its virtual clock persist across restarts — a restart is the same
// outage, observed by a process that came back.
func drill(ctx context.Context, res *world.Result, store *subgraph.Store, p *plan.Plan,
	o options, opts dataset.BuildOptions, dir string, stderr io.Writer) (*chaos.Campaign, *dataset.Dataset, int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, 0, err
	}
	// The server's own etherscan rate limit is set out of the way: the
	// only faults in a drill must be the campaign's, not self-inflicted
	// 429s from an unpaced client.
	stack := serve.New(res, store, serve.Config{Registry: obs.NewRegistry(), Seed: o.worldSeed, EtherscanRate: 1 << 20})
	srv := &http.Server{Handler: stack.Handler, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	camp := chaos.NewCampaign(p, chaos.Config{
		Seed:       o.seed,
		RetryAfter: 5 * time.Millisecond,
		Delay:      2 * time.Millisecond,
		StormDelay: 10 * time.Millisecond,
	})
	transport := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
	defer transport.CloseIdleConnections()
	hc := &http.Client{Timeout: 10 * time.Second, Transport: camp.RoundTripper(transport)}

	opts.ResumeDir = filepath.Join(dir, "resume")
	restarts := 0
	for {
		// Fresh clients (and fresh retry budgets) per attempt: a restarted
		// process starts with a full budget, like the real crawler would.
		sg, es, osc := hostileClients(base, hc, o)
		ds, err := dataset.Build(ctx, sg, es, osc, opts)
		if err == nil {
			return camp, ds, restarts, nil
		}
		if ctx.Err() != nil {
			return camp, nil, restarts, err
		}
		restarts++
		if restarts > o.maxRestarts {
			return camp, nil, restarts, fmt.Errorf("gave up after %d restarts: %w", restarts, err)
		}
		fmt.Fprintf(stderr, "enschaos: build attempt %d died (%v); resuming\n", restarts, err)
		if o.restartPause > 0 {
			t := time.NewTimer(o.restartPause)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return camp, nil, restarts, ctx.Err()
			}
		}
	}
}

// hostileClients builds the three source clients with the resilience
// stack under test: capped backoff, retry budgets, and (opted in)
// breakers and hedging, all sharing the campaign-injured HTTP client.
func hostileClients(base string, hc *http.Client, o options) (*subgraph.Client, *etherscan.Client, *opensea.Client) {
	sleep := cappedSleep(2 * time.Millisecond)

	sg := subgraph.NewClient(base + "/subgraph")
	es := etherscan.NewClient(base+"/etherscan", "enschaos")
	osc := opensea.NewClient(base + "/opensea")
	sg.HTTPClient, es.HTTPClient, osc.HTTPClient = hc, hc, hc
	sg.Sleep, es.Sleep, osc.Sleep = sleep, sleep, sleep
	sg.MaxRetries, es.MaxRetries, osc.MaxRetries = o.retries, o.retries, o.retries
	sg.ClientID, osc.ClientID = "enschaos", "enschaos"
	es.MinInterval = 0

	if o.budgetBurst > 0 {
		sg.Budget = crawler.NewRetryBudget("subgraph-chaos", o.budgetRatio, o.budgetBurst)
		es.Budget = crawler.NewRetryBudget("etherscan-chaos", o.budgetRatio, o.budgetBurst)
		osc.Budget = crawler.NewRetryBudget("opensea-chaos", o.budgetRatio, o.budgetBurst)
	}
	if o.breaker {
		sg.Breaker = crawler.NewBreaker("subgraph-chaos", 10, 50*time.Millisecond)
		es.Breaker = crawler.NewBreaker("etherscan-chaos", 10, 50*time.Millisecond)
		osc.Breaker = crawler.NewBreaker("opensea-chaos", 10, 50*time.Millisecond)
	}
	if o.hedge {
		sg.Hedger = crawler.NewHedger(crawler.HedgeConfig{Source: "subgraph-chaos", Breaker: sg.Breaker, Budget: sg.Budget})
		es.Hedger = crawler.NewHedger(crawler.HedgeConfig{Source: "etherscan-chaos", Breaker: es.Breaker, Budget: es.Budget})
		osc.Hedger = crawler.NewHedger(crawler.HedgeConfig{Source: "opensea-chaos", Breaker: osc.Breaker, Budget: osc.Budget})
	}
	return sg, es, osc
}

// cleanClients serves the same world fault-free for the convergence
// reference, through an in-process handler transport — the clean run
// needs no chaos layer and no real listener.
func cleanClients(res *world.Result, store *subgraph.Store) (*subgraph.Client, *etherscan.Client, *opensea.Client) {
	stack := serve.New(res, store, serve.Config{Registry: obs.NewRegistry(), EtherscanRate: 1 << 20})
	hc := &http.Client{Timeout: 30 * time.Second, Transport: handlerTransport{stack.Handler}}
	sg := subgraph.NewClient("http://clean.internal/subgraph")
	es := etherscan.NewClient("http://clean.internal/etherscan", "enschaos")
	osc := opensea.NewClient("http://clean.internal/opensea")
	sg.HTTPClient, es.HTTPClient, osc.HTTPClient = hc, hc, hc
	es.MinInterval = 0
	return sg, es, osc
}

// handlerTransport serves requests straight into an http.Handler,
// avoiding a second listener for the clean reference crawl.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// sameReports compares two phase-report slices structurally.
func sameReports(a, b []chaos.PhaseReport) bool {
	return string(mustJSON(a)) == string(mustJSON(b))
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // report types marshal by construction
	}
	return b
}

// cappedSleep keeps retry backoff and Retry-After waits short so a
// drill runs in seconds while still exercising the wait paths.
func cappedSleep(max time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if d > max {
			d = max
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

// compareDirs errors unless want and got hold exactly the same relative
// file paths with exactly the same bytes.
func compareDirs(want, got string) error {
	list := func(root string) (map[string][]byte, error) {
		files := map[string][]byte{}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[rel] = b
			return nil
		})
		return files, err
	}
	wantFiles, err := list(want)
	if err != nil {
		return err
	}
	gotFiles, err := list(got)
	if err != nil {
		return err
	}
	// Walk both file sets in sorted order so a divergence report reads
	// the same on every run.
	rels := make([]string, 0, len(wantFiles)+len(gotFiles))
	for rel := range wantFiles {
		rels = append(rels, rel)
	}
	for rel := range gotFiles {
		if _, ok := wantFiles[rel]; !ok {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	var errs []error
	for _, rel := range rels {
		wb, inWant := wantFiles[rel]
		gb, inGot := gotFiles[rel]
		switch {
		case !inGot:
			errs = append(errs, fmt.Errorf("missing file %s in chaos output", rel))
		case !inWant:
			errs = append(errs, fmt.Errorf("unexpected file %s in chaos output", rel))
		case string(wb) != string(gb):
			errs = append(errs, fmt.Errorf("%s differs (%d vs %d bytes)", rel, len(wb), len(gb)))
		}
	}
	return errors.Join(errs...)
}

// writeChaosBench emits CHAOS_REPORT: one go-bench line per phase plus
// a total, parseable by cmd/benchjson (`enschaos ... | benchjson -o
// CHAOS_REPORT.json`). The iteration count is the phase's requests;
// clean_frac regresses downward like a throughput metric would.
func writeChaosBench(w io.Writer, name string, reps []chaos.PhaseReport, restarts int) {
	var totReq, totClean int64
	for _, r := range reps {
		if r.Requests == 0 && r.Phase == chaos.IdlePhase {
			continue
		}
		frac := 0.0
		if r.Requests > 0 {
			frac = float64(r.Clean) / float64(r.Requests)
		}
		fmt.Fprintf(w, "BenchmarkChaos/%s/%s %d %d clean %d injected %.4f clean_frac\n",
			name, r.Phase, r.Requests, r.Clean, r.Requests-r.Clean, frac)
		totReq += r.Requests
		totClean += r.Clean
	}
	frac := 0.0
	if totReq > 0 {
		frac = float64(totClean) / float64(totReq)
	}
	fmt.Fprintf(w, "BenchmarkChaos/%s/total %d %d clean %d injected %.4f clean_frac %d restarts\n",
		name, totReq, totClean, totReq-totClean, frac, restarts)
}
