package main

import (
	"context"
	"fmt"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/walletsim"
	"ensdropcatch/internal/world"
)

// contextTODO centralizes the tool's background context.
func contextTODO() context.Context { return context.Background() }

// walletSurvey reproduces Appendix B against up to 25 expired,
// still-resolving names from the generated world, then appends the
// countermeasure wallet's row.
func walletSurvey(res *world.Result, an *core.Analyzer) ([][]string, error) {
	var labels []string
	for _, h := range an.Pop.ExpiredNotRereg {
		if h.Domain.Label == "" {
			continue
		}
		labels = append(labels, h.Domain.Label)
		if len(labels) >= 25 {
			break
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("no expired names to survey")
	}
	now := res.Config.End

	var rows [][]string
	for _, row := range walletsim.Survey(walletsim.StockWallets(res.ENS), labels, now) {
		rows = append(rows, []string{row.Wallet, row.Version, yesNo(row.DisplaysWarning)})
	}
	for _, row := range walletsim.Survey([]walletsim.Wallet{walletsim.NewGuarded(res.ENS)}, labels, now) {
		rows = append(rows, []string{row.Wallet, row.Version, yesNo(row.DisplaysWarning)})
	}
	return rows, nil
}

// resolutionLog renders the authoritative loss measurement from the
// simulated vendor resolution data — the follow-up study the paper's
// Limitations section calls for (only available for generated worlds; a
// crawled dataset has no off-chain resolution log, exactly the paper's
// predicament).
func (r *renderer) resolutionLog(res *world.Result) {
	r.section("Authoritative losses from wallet resolution logs (§6 follow-up)")
	rep := r.an.LossesFromResolutionLog(res.ResolutionLog)
	heuristic := r.an.FinancialLosses()
	fmt.Print(report.Table(
		[]string{"metric", "value"},
		[][]string{
			{"via-ENS payments observed", report.Count(rep.TotalResolutions)},
			{"stale resolutions (expired name, old owner)", report.Count(rep.StaleResolutions)},
			{"authoritative misdirected payments", report.Count(len(rep.Misdirected))},
			{"authoritative misdirected USD", report.USD(rep.MisdirectedUSD)},
			{"conservative heuristic flagged (for comparison)", report.Count(heuristic.TxsAll)},
			{"conservative heuristic USD", report.USD(heuristic.USDAll)},
		}))
	fmt.Println("\nWith vendor data the measurement needs no heuristic; the paper could not")
	fmt.Println("obtain it (\"vendors' reluctance to share such data\").")
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}
