// Command ensanalyze runs the paper's complete analysis over a dataset and
// prints every table and figure of the evaluation: re-registration
// overview (§4.1, Figures 2-5), the feature comparison (§4.3, Table 1 and
// Figure 6), the resale market (§4.2), the financial-loss analysis (§4.4,
// Figures 7-10), and the wallet survey (Appendix B, Table 2).
//
// Input is either a crawled dataset (-data: a JSONL directory or binary
// dataset.bin written by enscrawl/ensworld) or a freshly generated
// in-memory world (-domains). With -snapshot, a generated world is cached
// as a binary snapshot on first run and loaded directly on later runs,
// skipping regeneration entirely.
//
// Examples:
//
//	ensanalyze -data ./data
//	ensanalyze -domains 30000 -seed 1
//	ensanalyze -domains 10000 -csv ./series
//	ensanalyze -domains 100000 -snapshot ./world.bin
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/report"
	"ensdropcatch/internal/stats"
	"ensdropcatch/internal/world"
)

func main() {
	var (
		dataDir     = flag.String("data", "", "dataset to load: a JSONL directory or a binary snapshot file written by enscrawl/ensworld")
		domains     = flag.Int("domains", 0, "generate a world of this size instead of loading -data")
		seed        = flag.Int64("seed", 1, "generation seed for -domains")
		snapshot    = flag.String("snapshot", "", "with -domains: load this binary snapshot if it exists, else generate and save it (a cache keyed by nothing — delete it when -domains/-seed change)")
		csvDir      = flag.String("csv", "", "also write figure series as CSV into this directory")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof during the analysis (empty = disabled)")
		workers     = flag.Int("workers", 0, "worker count for parallel generation and analysis (0 = GOMAXPROCS); results are identical for every value")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *metricsAddr != "" {
		dbg, err := obs.StartDebugServer(*metricsAddr, obs.Default, logger)
		if err != nil {
			logger.Error("metrics listener", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
	}

	ds, svc, err := loadDataset(*dataDir, *snapshot, *domains, *seed, *workers, logger)
	if err != nil {
		logger.Error("load", "err", err)
		os.Exit(1)
	}

	an := core.NewAnalyzer(ds, pricing.NewOracle())
	an.Workers = *workers
	r := &renderer{an: an, csvDir: *csvDir}

	if err := ds.Validate(); err != nil {
		logger.Warn("dataset validation", "err", err)
	}

	r.collectionStats()
	r.figure2()
	r.figure3()
	r.survival()
	r.figure4()
	r.figure5()
	r.table1AndFigure6()
	r.resale()
	r.losses()
	if svc != nil {
		r.resolutionLog(svc)
		r.table2(svc)
	}
	if r.err != nil {
		logger.Error("render", "err", r.err)
		os.Exit(1)
	}
}

// loadDataset loads from disk or generates a world. When generated, the
// live ENS service is returned too so Table 2's wallet survey can run.
// A -snapshot that already exists short-circuits generation (no world.Result,
// so the wallet survey is skipped — same trade as -data).
func loadDataset(dir, snapshot string, domains int, seed int64, workers int, logger *slog.Logger) (*dataset.Dataset, *world.Result, error) {
	switch {
	case dir != "":
		start := time.Now()
		ds, err := dataset.Load(dir)
		if err != nil {
			return nil, nil, err
		}
		logger.Info("dataset loaded", "dir", dir, "domains", len(ds.Domains),
			"txs", len(ds.Txs), "elapsed", time.Since(start).Round(time.Millisecond))
		return ds, nil, nil
	case domains > 0:
		if snapshot != "" {
			if _, err := os.Stat(snapshot); err == nil {
				start := time.Now()
				ds, err := dataset.Load(snapshot)
				if err != nil {
					return nil, nil, fmt.Errorf("load snapshot %s (delete it to regenerate): %w", snapshot, err)
				}
				logger.Info("snapshot loaded", "path", snapshot, "domains", len(ds.Domains),
					"txs", len(ds.Txs), "elapsed", time.Since(start).Round(time.Millisecond))
				return ds, nil, nil
			} else if !os.IsNotExist(err) {
				return nil, nil, err
			}
		}
		cfg := world.DefaultConfig(domains)
		cfg.Seed = seed
		cfg.Workers = workers
		start := time.Now()
		res, err := world.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		ds, err := dataset.FromWorld(contextTODO(), res, dataset.BuildOptions{Logger: logger})
		if err != nil {
			return nil, nil, err
		}
		logger.Info("world generated", "domains", domains,
			"txs", len(ds.Txs), "elapsed", time.Since(start).Round(time.Millisecond))
		if snapshot != "" {
			start = time.Now()
			if err := ds.SaveSnapshot(snapshot, dataset.WithFormat(dataset.FormatBinary)); err != nil {
				return nil, nil, fmt.Errorf("save snapshot: %w", err)
			}
			logger.Info("snapshot saved", "path", snapshot,
				"elapsed", time.Since(start).Round(time.Millisecond))
		}
		return ds, res, nil
	default:
		return nil, nil, fmt.Errorf("one of -data or -domains is required")
	}
}

type renderer struct {
	an     *core.Analyzer
	csvDir string
	err    error
}

func (r *renderer) section(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func (r *renderer) writeCSV(name string, headers []string, rows [][]string) {
	if r.csvDir == "" || r.err != nil {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		r.err = err
		return
	}
	f, err := os.Create(r.csvDir + "/" + name)
	if err != nil {
		r.err = err
		return
	}
	defer f.Close()
	if err := report.CSV(f, headers, rows); err != nil {
		r.err = err
	}
}

func (r *renderer) collectionStats() {
	st := r.an.CollectionStats()
	r.section("Data Collection (§3)")
	fmt.Print(report.Table(
		[]string{"metric", "value"},
		[][]string{
			{"ENS domains", report.Count(st.Domains)},
			{"subdomains", report.Count(st.Subdomains)},
			{"registration events", report.Count(st.Events)},
			{"unrecoverable names", report.Count(st.Unrecovered)},
			{"recovery rate", report.Percent(st.RecoveryRate)},
			{"transactions", report.Count(st.Transactions)},
		}))
	pop := r.an.Pop
	fmt.Print("\n", report.Table(
		[]string{"population", "count"},
		[][]string{
			{"re-registered (dropcaught)", report.Count(len(pop.Reregistered))},
			{"expired, never re-registered", report.Count(len(pop.ExpiredNotRereg))},
			{"re-registered by same owner", report.Count(len(pop.SameOwnerRereg))},
			{"active at window end", report.Count(len(pop.ActiveAtEnd))},
		}))
}

func (r *renderer) figure2() {
	points := r.an.MonthlyEvents()
	r.section("Figure 2: monthly registrations / expirations / re-registrations")
	rows := make([][]string, 0, len(points))
	csvRows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{p.Month, report.Count(p.Registrations), report.Count(p.Expirations), report.Count(p.Reregistrations)})
		csvRows = append(csvRows, []string{p.Month, fmt.Sprint(p.Registrations), fmt.Sprint(p.Expirations), fmt.Sprint(p.Reregistrations)})
	}
	fmt.Print(report.Table([]string{"month", "registrations", "expirations", "re-registrations"}, rows))
	month, peak := r.an.PeakMonthlyReregistrations()
	fmt.Printf("\npeak monthly re-registrations: %s in %s (paper: 25,193 at 3.1M scale)\n", report.Count(peak), month)
	r.writeCSV("figure2_monthly.csv", []string{"month", "registrations", "expirations", "reregistrations"}, csvRows)
}

func (r *renderer) figure3() {
	st := r.an.ReregistrationDelays()
	r.section("Figure 3: days between expiration and re-registration")
	fmt.Print(report.HistogramASCII(stats.Histogram(st.DelaysDays, 24), 48))
	fmt.Printf("\nre-registrations: %s total\n", report.Count(st.Total))
	fmt.Printf("  at a positive premium (auction): %s (paper: 16,092)\n", report.Count(st.AtPremium))
	fmt.Printf("  on the day the premium ended:    %s (paper: 20,014)\n", report.Count(st.SameDayAsPremiumEnd))
	fmt.Printf("  within 14 days of premium end:   %s (paper: 56,792)\n", report.Count(st.ShortlyAfterPremiumEnd))
	var csvRows [][]string
	for _, d := range st.DelaysDays {
		csvRows = append(csvRows, []string{fmt.Sprintf("%.2f", d)})
	}
	r.writeCSV("figure3_delays_days.csv", []string{"delay_days"}, csvRows)
}

func (r *renderer) survival() {
	rep := r.an.CatchSurvival()
	r.section("Time-to-catch survival (censoring-corrected Figure 3)")
	fmt.Printf("released names: %s, caught: %s\n\n", report.Count(rep.Released), report.Count(rep.Caught))
	var rows [][]string
	for _, day := range []float64{1, 7, 21, 60, 90, 180, 365} {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f days", day),
			report.Percent(1 - stats.SurvivalAt(rep.All, day)),
			report.Percent(1 - stats.SurvivalAt(rep.ByIncomeTercile[0], day)),
			report.Percent(1 - stats.SurvivalAt(rep.ByIncomeTercile[1], day)),
			report.Percent(1 - stats.SurvivalAt(rep.ByIncomeTercile[2], day)),
		})
	}
	fmt.Print(report.Table(
		[]string{"t after release", "caught (all)", "low income", "mid income", "high income"}, rows))
	fmt.Println("\nhigher-income names are caught earlier — §4.3's income effect as a")
	fmt.Println("time-to-catch gradient, with window-end censoring handled properly.")
}

func (r *renderer) figure4() {
	freq := r.an.ReregFrequency()
	r.section("Figure 4: times a domain was re-registered by a different owner")
	var rows, csvRows [][]string
	for k := 1; ; k++ {
		n, ok := freq[k]
		if !ok {
			if k > 8 {
				break
			}
			continue
		}
		rows = append(rows, []string{fmt.Sprint(k), report.Count(n)})
		csvRows = append(csvRows, []string{fmt.Sprint(k), fmt.Sprint(n)})
	}
	fmt.Print(report.Table([]string{"re-registrations", "domains"}, rows))
	multi := 0
	for k, n := range freq {
		if k >= 2 {
			multi += n
		}
	}
	fmt.Printf("\ndomains registered more than twice: %s (paper: 12,614)\n", report.Count(multi))
	r.writeCSV("figure4_frequency.csv", []string{"reregistrations", "domains"}, csvRows)
}

func (r *renderer) figure5() {
	act := r.an.ReregistrantCDF()
	r.section("Figure 5: re-registrations per unique address (CDF)")
	fmt.Print(report.CDFASCII(act.CDF))
	fmt.Printf("\naddresses with >1 re-registration: %s (paper: 19,763)\n", report.Count(act.MultipleCatchers))
	fmt.Printf("top catchers: %v (paper: 5,070 / 3,165 / 2,421)\n", act.Top)
	var csvRows [][]string
	for _, p := range act.CDF {
		csvRows = append(csvRows, []string{fmt.Sprintf("%.0f", p.Value), fmt.Sprintf("%.6f", p.Fraction)})
	}
	r.writeCSV("figure5_reregistrant_cdf.csv", []string{"reregistrations", "cdf"}, csvRows)
}

func (r *renderer) table1AndFigure6() {
	tbl, err := r.an.FeatureComparison()
	if err != nil {
		r.err = err
		return
	}
	r.section("Table 1: re-registered vs control features")
	var rows [][]string
	for _, row := range tbl.Rows {
		var rv, cv, rank string
		if row.Numeric {
			rv = fmt.Sprintf("%.1f", row.ReregMean)
			cv = fmt.Sprintf("%.1f", row.ControlMean)
			rank = fmt.Sprintf("%.2g", row.PRank)
		} else {
			rv = fmt.Sprintf("%s (%s)", report.Count(row.ReregCount), report.Percent(row.ReregFrac))
			cv = fmt.Sprintf("%s (%s)", report.Count(row.ControlCount), report.Percent(row.ControlFrac))
			rank = "-"
		}
		sig := "yes"
		if !row.Significant {
			sig = "NO"
		}
		rows = append(rows, []string{row.Feature, rv, cv, fmt.Sprintf("%.2g", row.P), rank, sig})
	}
	fmt.Print(report.Table([]string{"feature", "re-registered", "control", "p (t/z)", "p (rank)", "significant"}, rows))
	fmt.Printf("\ngroup size: %s each (paper: 241,283)\n", report.Count(tbl.GroupSize))

	r.section("Figure 6: income (USD) of previous owners — CDFs")
	rcdf, ccdf := tbl.IncomeCDFs()
	fmt.Println("re-registered:")
	fmt.Print(report.CDFASCII(rcdf))
	fmt.Println("control:")
	fmt.Print(report.CDFASCII(ccdf))
	var csvRows [][]string
	for _, v := range tbl.ReregIncome {
		csvRows = append(csvRows, []string{"rereg", fmt.Sprintf("%.2f", v)})
	}
	for _, v := range tbl.ControlIncome {
		csvRows = append(csvRows, []string{"control", fmt.Sprintf("%.2f", v)})
	}
	r.writeCSV("figure6_income.csv", []string{"group", "income_usd"}, csvRows)
}

func (r *renderer) resale() {
	rep := r.an.ResaleMarket()
	r.section("Resale market (§4.2)")
	fmt.Print(report.Table(
		[]string{"metric", "value", "paper"},
		[][]string{
			{"re-registered domains", report.Count(rep.Reregistered), "241,283"},
			{"listed on OpenSea", fmt.Sprintf("%s (%s)", report.Count(rep.Listed), report.Percent(rep.ListedFraction)), "19,987 (8%)"},
			{"sold", report.Count(rep.Sold), "12,130"},
			{"median sale price", report.USD(rep.MedianSaleUSD()), "-"},
		}))
}

func (r *renderer) losses() {
	rep := r.an.FinancialLosses()
	r.section("Financial losses (§4.4)")

	funds := r.an.HijackableFunds()
	fmt.Println("Figure 7: hijackable USD sent to expired domains' wallets")
	fmt.Print(report.HistogramASCII(stats.LogHistogram(funds, 12), 48))

	fmt.Println("\nFigure 8: misdirected USD per affected domain")
	amounts := rep.MisdirectedAmounts()
	fmt.Print(report.HistogramASCII(stats.LogHistogram(amounts, 12), 48))

	fmt.Println("\nFigure 9/11: transactions from common sender c to a1 vs a2")
	scatter := rep.TxScatter()
	oneToOne := 0
	for _, p := range scatter {
		if p.ToA1 == 1 && p.ToA2 == 1 {
			oneToOne++
		}
	}
	fmt.Printf("  points: %d; exact one-to-one: %d\n", len(scatter), oneToOne)

	fmt.Print("\n", report.Table(
		[]string{"metric", "measured", "paper"},
		[][]string{
			{"domains (non-custodial c)", report.Count(rep.DomainsNonCustodial), "484"},
			{"domains (incl. Coinbase c)", report.Count(rep.DomainsWithCoinbase), "940"},
			{"transactions (non-custodial)", report.Count(rep.TxsNonCustodial), "1,617"},
			{"transactions (all)", report.Count(rep.TxsAll), "2,633"},
			{"unique senders (non-custodial)", report.Count(rep.UniqueSendersNonC), "195"},
			{"unique senders (all)", report.Count(rep.UniqueSendersAll), "201"},
			{"avg USD per domain (non-cust.)", report.USD(rep.AvgUSDPerDomainNonCustodial()), "1,944 USD"},
			{"avg USD per domain (all)", report.USD(rep.AvgUSDPerDomainAll()), "1,877 USD"},
		}))

	if studies := rep.CaseStudies(3); len(studies) > 0 {
		fmt.Println("\nCase studies (cf. profittrailer.eth / spambot.eth in §4.4):")
		for _, s := range studies {
			fmt.Printf("  * %s\n", s.Narrative)
		}
	}

	profits := rep.CatcherProfits()
	fmt.Println("\nFigure 10: re-registration cost vs income from common senders")
	fmt.Print(report.Table(
		[]string{"metric", "measured", "paper"},
		[][]string{
			{"catcher addresses in scenario", report.Count(len(profits.Catchers)), "-"},
			{"profitable fraction", report.Percent(profits.ProfitableFraction), "91%"},
			{"average profit", report.USD(profits.AvgProfitUSD), "4,700 USD"},
		}))

	var csvRows [][]string
	for _, p := range profits.Catchers {
		csvRows = append(csvRows, []string{p.Address.Hex(), fmt.Sprintf("%.2f", p.CostUSD), fmt.Sprintf("%.2f", p.IncomeUSD)})
	}
	r.writeCSV("figure10_cost_vs_income.csv", []string{"address", "cost_usd", "income_usd"}, csvRows)
	csvRows = nil
	for _, p := range scatter {
		kind := "noncustodial"
		if p.Kind == core.SenderCoinbase {
			kind = "coinbase"
		}
		csvRows = append(csvRows, []string{fmt.Sprint(p.ToA1), fmt.Sprint(p.ToA2), kind})
	}
	r.writeCSV("figure9_scatter.csv", []string{"txs_to_a1", "txs_to_a2", "sender_kind"}, csvRows)
}

func (r *renderer) table2(res *world.Result) {
	r.section("Table 2: wallet expiry warnings (Appendix B)")
	rows, err := walletSurvey(res, r.an)
	if err != nil {
		r.err = err
		return
	}
	fmt.Print(report.Table([]string{"wallet", "version", "displays warning"}, rows))
}
