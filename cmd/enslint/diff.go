package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// affectedPackages resolves the dependency cone of a git diff: the
// packages (among patterns) whose directory contains a file changed
// since ref, plus every package whose transitive imports include one of
// those. Only that cone can have a new lint finding — a package whose
// full dependency closure is untouched type-checks (and therefore
// analyzes) identically — so -diff runs skip everything else.
func affectedPackages(ref string, patterns []string) ([]string, error) {
	gitOut, err := exec.Command("git", "diff", "--name-only", ref, "--", "*.go", "go.mod", "go.sum").Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %w", ref, stderrOf(err))
	}
	gitRoot, err := exec.Command("git", "rev-parse", "--show-toplevel").Output()
	if err != nil {
		return nil, fmt.Errorf("git rev-parse --show-toplevel: %w", stderrOf(err))
	}
	root := strings.TrimSpace(string(gitRoot))

	changedDirs := map[string]bool{}
	var modTouched bool
	for _, line := range strings.Split(strings.TrimSpace(string(gitOut)), "\n") {
		if line == "" {
			continue
		}
		if base := filepath.Base(line); base == "go.mod" || base == "go.sum" {
			modTouched = true
			continue
		}
		changedDirs[filepath.Join(root, filepath.Dir(line))] = true
	}
	if modTouched {
		// A module-graph change can affect every package; analyze the
		// full pattern set rather than guessing.
		return patterns, nil
	}
	if len(changedDirs) == 0 {
		return nil, nil
	}

	// One `go list` round-trip: import path, directory, and the full
	// transitive dependency list per package under the patterns.
	// Tab-separated — argv cannot carry NUL, and neither import paths
	// nor build dirs contain tabs.
	listArgs := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{join .Deps \" \"}}"}, patterns...)
	listOut, err := exec.Command("go", listArgs...).Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", stderrOf(err))
	}

	type pkg struct {
		path string
		dir  string
		deps []string
	}
	var pkgs []pkg
	changedPaths := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(listOut)), "\n") {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			continue
		}
		p := pkg{path: parts[0], dir: parts[1], deps: strings.Fields(parts[2])}
		pkgs = append(pkgs, p)
		if changedDirs[p.dir] {
			changedPaths[p.path] = true
		}
	}

	// .Deps is already transitive, so one pass finds the whole cone:
	// a package is affected iff it changed or imports (at any depth)
	// a changed package.
	var affected []string
	for _, p := range pkgs {
		if changedPaths[p.path] {
			affected = append(affected, p.path)
			continue
		}
		for _, d := range p.deps {
			if changedPaths[d] {
				affected = append(affected, p.path)
				break
			}
		}
	}
	sort.Strings(affected)
	return affected, nil
}

// stderrOf surfaces an ExitError's captured stderr, which is where git
// and the go tool explain themselves.
func stderrOf(err error) error {
	if ee, ok := err.(*exec.ExitError); ok && len(bytes.TrimSpace(ee.Stderr)) > 0 {
		return fmt.Errorf("%w: %s", err, bytes.TrimSpace(ee.Stderr))
	}
	return err
}
