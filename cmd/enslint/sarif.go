package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"strings"
)

// vetDiag is one diagnostic in the `go vet -json` stream, tagged with
// the analyzer that produced it.
type vetDiag struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

// parseVetJSON decodes the `go vet -json` stream: interleaved `# pkg`
// comment lines and JSON objects of the shape
// {"pkgpath": {"analyzer": [{"posn": "file:line:col", "message": …}]}}.
func parseVetJSON(raw []byte) []vetDiag {
	var jsonOnly bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
			continue
		}
		jsonOnly.Write(sc.Bytes())
		jsonOnly.WriteByte('\n')
	}

	type rawDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var out []vetDiag
	dec := json.NewDecoder(&jsonOnly)
	for dec.More() {
		var block map[string]map[string][]rawDiag
		if err := dec.Decode(&block); err != nil {
			break
		}
		for _, byAnalyzer := range block {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					out = append(out, vetDiag{Analyzer: analyzer, File: file, Line: line, Col: col, Message: d.Message})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// splitPosn parses "path:line:col" (path may contain colons only on
// windows, which this toolchain does not target).
func splitPosn(p string) (file string, line, col int) {
	parts := strings.Split(p, ":")
	if len(parts) < 3 {
		return p, 0, 0
	}
	file = strings.Join(parts[:len(parts)-2], ":")
	line, _ = strconv.Atoi(parts[len(parts)-2])
	col, _ = strconv.Atoi(parts[len(parts)-1])
	return file, line, col
}

// writeSARIF renders diagnostics as a single-run SARIF 2.1.0 log, the
// interchange format CI annotation tooling consumes.
func writeSARIF(path string, diags []vetDiag) error {
	type region struct {
		StartLine   int `json:"startLine,omitempty"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type artifactLocation struct {
		URI string `json:"uri"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           region           `json:"region"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type message struct {
		Text string `json:"text"`
	}
	type result struct {
		RuleID    string     `json:"ruleId"`
		Level     string     `json:"level"`
		Message   message    `json:"message"`
		Locations []location `json:"locations"`
	}
	type rule struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	type driver struct {
		Name  string `json:"name"`
		Rules []rule `json:"rules"`
	}
	type tool struct {
		Driver driver `json:"driver"`
	}
	type sarifRun struct {
		Tool    tool     `json:"tool"`
		Results []result `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	seen := map[string]bool{}
	var rules []rule
	results := make([]result, 0, len(diags))
	for _, d := range diags {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			rules = append(rules, rule{ID: d.Analyzer, Name: d.Analyzer})
		}
		results = append(results, result{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: message{Text: d.Message},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: d.File},
				Region:           region{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    tool{Driver: driver{Name: "enslint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
