package main

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// suppression is one //lint:allow directive in production source.
type suppression struct {
	File     string // slash-separated, relative to the scan root
	Line     int
	Analyzer string
	Reason   string
}

// findSuppressions walks the tree under root for //lint:allow sites in
// production Go source. Tests, fixtures (testdata), vendored code, and
// build output are excluded: a suppression only "counts" when it
// weakens a check on code that ships. Files are parsed, not grepped, so
// prose that merely *mentions* the directive (analyzer docs, string
// literals) does not count — only a comment that begins with it does,
// matching lintutil's own matching rule.
func findSuppressions(root string) ([]suppression, error) {
	var out []suppression
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", "bin", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		sups, err := scanFile(root, path)
		if err != nil {
			return err
		}
		out = append(out, sups...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

func scanFile(root, path string) ([]suppression, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	rel = filepath.ToSlash(rel)

	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
			analyzer, reason, _ := strings.Cut(rest, " ")
			out = append(out, suppression{
				File:     rel,
				Line:     fset.Position(c.Pos()).Line,
				Analyzer: analyzer,
				Reason:   strings.TrimSpace(reason),
			})
		}
	}
	return out, nil
}
