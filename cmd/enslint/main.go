// Command enslint runs the project's custom go/analysis suite
// (internal/lint): detrand, maporder, iodiscipline, floatfold, and
// droppederr — the mechanical form of the determinism and
// fault-tolerance rules PR 2 and PR 3 established.
//
// It works in two modes:
//
//	enslint ./...           # multichecker mode: analyzes packages
//	go vet -vettool=enslint # unitchecker mode (what mode 1 uses inside)
//
// Multichecker mode re-executes `go vet -vettool=<self>` so the go
// command does the package loading; that keeps the binary free of any
// build-graph machinery and works offline. Exit status is non-zero iff
// a diagnostic was reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ensdropcatch/internal/lint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: enslint <packages>  (e.g. enslint ./...)")
		os.Exit(2)
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "enslint:", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "enslint:", err)
		os.Exit(2)
	}
}

// vetProtocol reports whether the arguments look like the go vet
// unitchecker protocol (a *.cfg file per package, or -V=full / flag
// queries) rather than a package pattern typed by a human.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") || a == "-flags" {
			return true
		}
	}
	return false
}
