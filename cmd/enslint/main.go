// Command enslint runs the project's go/analysis suite (internal/lint):
// the nine custom analyzers — detrand, maporder, iodiscipline,
// floatfold, droppederr, ctxflow, mutexguard, hotpathalloc, boundedres
// — plus the upstream lostcancel and copylocks passes.
//
// It works in two modes:
//
//	enslint [flags] <packages>   # driver mode: analyzes packages
//	go vet -vettool=enslint      # unitchecker mode (what mode 1 uses inside)
//
// Driver mode re-executes `go vet -vettool=<self>` so the go command
// does the package loading; that keeps the binary free of any
// build-graph machinery and works offline. Exit status is non-zero iff
// a diagnostic was reported.
//
// Driver flags:
//
//	-diff <ref>          analyze only packages changed since the git ref,
//	                     plus every package that (transitively) depends on
//	                     one — the dependency cone a change can break
//	-enable a,b          run only the named analyzers
//	-disable a,b         run all but the named analyzers
//	-json                emit go vet's JSON diagnostic stream
//	-sarif <file>        also convert diagnostics to SARIF 2.1.0 at <file>
//	-list-suppressions   print every //lint:allow site under the current
//	                     module and exit
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ensdropcatch/internal/lint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}
	os.Exit(run(args, os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("enslint", flag.ExitOnError)
	diffRef := fs.String("diff", "", "analyze only packages changed since this git ref, plus their reverse-dependency cone")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit the go vet JSON diagnostic stream")
	sarifPath := fs.String("sarif", "", "write diagnostics as SARIF 2.1.0 to this file")
	listSup := fs.Bool("list-suppressions", false, "print every //lint:allow site under the current module and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: enslint [flags] <packages>  (e.g. enslint ./...)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *listSup {
		sups, err := findSuppressions(".")
		if err != nil {
			fmt.Fprintln(stderr, "enslint:", err)
			return 2
		}
		for _, s := range sups {
			fmt.Fprintf(stdout, "%s:%d: %s — %s\n", s.File, s.Line, s.Analyzer, s.Reason)
		}
		fmt.Fprintf(stdout, "%d suppressions\n", len(sups))
		return 0
	}

	pkgs := fs.Args()
	if len(pkgs) == 0 {
		fs.Usage()
		return 2
	}

	if *diffRef != "" {
		affected, err := affectedPackages(*diffRef, pkgs)
		if err != nil {
			fmt.Fprintln(stderr, "enslint:", err)
			return 2
		}
		if len(affected) == 0 {
			fmt.Fprintf(stderr, "enslint: no Go packages affected since %s\n", *diffRef)
			return 0
		}
		fmt.Fprintf(stderr, "enslint: %d package(s) in the change cone of %s\n", len(affected), *diffRef)
		pkgs = affected
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "enslint:", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	wantJSON := *jsonOut || *sarifPath != ""
	if wantJSON {
		vetArgs = append(vetArgs, "-json")
	}
	for _, name := range splitList(*enable) {
		vetArgs = append(vetArgs, "-"+name)
	}
	for _, name := range splitList(*disable) {
		vetArgs = append(vetArgs, "-"+name+"=false")
	}
	vetArgs = append(vetArgs, pkgs...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = stdout
	cmd.Stdin = os.Stdin
	var captured bytes.Buffer
	if wantJSON {
		// `go vet -json` writes the diagnostic stream to stderr (and
		// exits 0 regardless); tee it so it is both shown and parsable.
		cmd.Stderr = io.MultiWriter(&captured, stderr)
	} else {
		cmd.Stderr = stderr
	}
	runErr := cmd.Run()

	if wantJSON {
		diags := parseVetJSON(captured.Bytes())
		if *sarifPath != "" {
			if err := writeSARIF(*sarifPath, diags); err != nil {
				fmt.Fprintln(stderr, "enslint:", err)
				return 2
			}
		}
		// Recover the conventional exit status from the parsed stream.
		if runErr == nil && len(diags) > 0 {
			return 1
		}
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(stderr, "enslint:", runErr)
		return 2
	}
	return 0
}

// vetProtocol reports whether the arguments look like the go vet
// unitchecker protocol (a *.cfg file per package, or -V=full / flag
// queries) rather than a package pattern typed by a human.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") || a == "-flags" {
			return true
		}
	}
	return false
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
