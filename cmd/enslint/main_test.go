package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ensdropcatch/internal/lint"
)

func TestVetProtocol(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{[]string{"./..."}, false},
		{[]string{"./internal/world/", "./internal/core/"}, false},
		{[]string{}, false},
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
	} {
		if got := vetProtocol(tc.args); got != tc.want {
			t.Errorf("vetProtocol(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestAnalyzerRoster(t *testing.T) {
	want := []string{
		"detrand", "maporder", "iodiscipline", "floatfold", "droppederr",
		"ctxflow", "mutexguard", "hotpathalloc", "boundedres",
		"lostcancel", "copylocks",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %s, want %s", i, a.Name, want[i])
		}
	}
	if n := len(lint.Custom()); n != 9 {
		t.Errorf("Custom() returned %d analyzers, want 9", n)
	}
}

func TestParseVetJSON(t *testing.T) {
	raw := `# scratch/internal/world
{
	"scratch/internal/world": {
		"detrand": [
			{"posn": "/tmp/x/bad.go:5:31", "message": "time.Now in a deterministic package"}
		]
	}
}
`
	diags := parseVetJSON([]byte(raw))
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	d := diags[0]
	if d.Analyzer != "detrand" || d.File != "/tmp/x/bad.go" || d.Line != 5 || d.Col != 31 {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

// TestSuppressionBaseline pins the set of //lint:allow sites in
// production source to the committed lint_suppressions.txt. A new
// suppression (or a removed one) must come with a baseline edit, so it
// is always a visible, reviewable diff.
func TestSuppressionBaseline(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	sups, err := findSuppressions(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range sups {
		got = append(got, s.File+" "+s.Analyzer)
		if s.Reason == "" {
			t.Errorf("%s:%d: //lint:allow %s has no reason", s.File, s.Line, s.Analyzer)
		}
	}

	data, err := os.ReadFile(filepath.Join(repoRoot, "lint_suppressions.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}

	if len(got) != len(want) {
		t.Errorf("suppression count drifted: %d in tree, %d in baseline — regenerate with `enslint -list-suppressions` and update lint_suppressions.txt", len(got), len(want))
	}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("baseline mismatch at entry %d: tree has %q, baseline has %q", i, got[i], want[i])
		}
	}
}

// TestDiffCone verifies -diff's package selection: a change to one
// package selects that package and its reverse dependencies, and
// nothing else.
func TestDiffCone(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping git/go-tool round-trips in -short mode")
	}
	scratch := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(scratch, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.23\n")
	write("a/a.go", "package a\n\nfunc A() int { return 1 }\n")
	write("b/b.go", "package b\n\nfunc B() int { return 2 }\n")
	write("c/c.go", "package c\n\nimport \"scratch/a\"\n\nfunc C() int { return a.A() }\n")

	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-c", "user.email=t@t", "-c", "user.name=t"}, args...)...)
		cmd.Dir = scratch
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "seed")

	// Touch package a only.
	write("a/a.go", "package a\n\nfunc A() int { return 3 }\n")

	t.Chdir(scratch)
	affected, err := affectedPackages("HEAD", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"scratch/a", "scratch/c"}
	if len(affected) != len(want) {
		t.Fatalf("affected = %v, want %v", affected, want)
	}
	for i := range want {
		if affected[i] != want[i] {
			t.Fatalf("affected = %v, want %v", affected, want)
		}
	}

	// Nothing changed relative to the working tree state once committed.
	git("add", ".")
	git("commit", "-q", "-m", "change a")
	affected, err = affectedPackages("HEAD", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Fatalf("affected after commit = %v, want none", affected)
	}
}

// TestEndToEnd builds enslint and exercises the driver end to end: the
// real tree's deterministic packages pass, a scratch module seeded with
// a violation fails, analyzer selection flags change the outcome, and
// -sarif produces a well-formed SARIF log with the finding.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-tool round-trips in -short mode")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "enslint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/enslint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building enslint: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "./internal/world/")
	clean.Dir = repoRoot
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("enslint on clean package failed: %v\n%s", err, out)
	}

	// A scratch module with a time.Now in a deterministic package path.
	scratch := t.TempDir()
	pkgDir := filepath.Join(scratch, "internal", "world")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(scratch, "go.mod"), []byte("module scratch\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package world\n\nimport \"time\"\n\nfunc Bad() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(pkgDir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	runIn := func(dir string, args ...string) ([]byte, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			return out, 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("enslint did not run: %v\n%s", err, out)
		}
		return out, ee.ExitCode()
	}

	out, code := runIn(scratch, "./...")
	if code == 0 {
		t.Fatalf("enslint passed a seeded time.Now violation:\n%s", out)
	}

	// Disabling the one analyzer that fires must make the tree pass…
	if out, code := runIn(scratch, "-disable", "detrand", "./..."); code != 0 {
		t.Fatalf("-disable detrand still failed (%d):\n%s", code, out)
	}
	// …and enabling only an analyzer that does not fire must too.
	if out, code := runIn(scratch, "-enable", "maporder", "./..."); code != 0 {
		t.Fatalf("-enable maporder failed (%d):\n%s", code, out)
	}

	// SARIF: the finding lands in the log with the right rule id.
	sarifPath := filepath.Join(t.TempDir(), "lint.sarif")
	if out, code := runIn(scratch, "-sarif", sarifPath, "./..."); code == 0 {
		t.Fatalf("-sarif run passed a seeded violation:\n%s", out)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "enslint" {
		t.Fatalf("unexpected SARIF envelope: %s", data)
	}
	found := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID == "detrand" && strings.Contains(r.Message.Text, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Fatalf("SARIF log missing the detrand finding: %s", data)
	}
}
