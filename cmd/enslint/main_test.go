package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"ensdropcatch/internal/lint"
)

func TestVetProtocol(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{[]string{"./..."}, false},
		{[]string{"./internal/world/", "./internal/core/"}, false},
		{[]string{}, false},
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
	} {
		if got := vetProtocol(tc.args); got != tc.want {
			t.Errorf("vetProtocol(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestAnalyzerRoster(t *testing.T) {
	want := []string{"detrand", "maporder", "iodiscipline", "floatfold", "droppederr"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %s, want %s", i, a.Name, want[i])
		}
	}
}

// TestEndToEnd builds enslint and runs it over a deterministic package
// of the real tree (must pass) and over a scratch module seeded with a
// violation (must fail). Skipped in -short mode: it shells out to the
// go tool twice.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-tool round-trips in -short mode")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "enslint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/enslint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building enslint: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "./internal/world/")
	clean.Dir = repoRoot
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("enslint on clean package failed: %v\n%s", err, out)
	}

	// A scratch module with a time.Now in a deterministic package path.
	scratch := t.TempDir()
	pkgDir := filepath.Join(scratch, "internal", "world")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(scratch, "go.mod"), []byte("module scratch\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package world\n\nimport \"time\"\n\nfunc Bad() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(pkgDir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	dirty := exec.Command(bin, "./...")
	dirty.Dir = scratch
	out, err := dirty.CombinedOutput()
	if err == nil {
		t.Fatalf("enslint passed a seeded time.Now violation:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("enslint did not run: %v\n%s", err, out)
	}
	if ee.ExitCode() == 0 {
		t.Fatalf("expected non-zero exit, got 0:\n%s", out)
	}
}
