package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func entry(ns, bytesOp, allocs float64, metrics map[string]float64) Entry {
	return Entry{Iterations: 1, NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocs, Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	oldE := map[string]Entry{
		"BenchmarkA": entry(100, 1000, 50, map[string]float64{"MB/s": 200, "rps": 300}),
	}
	newE := map[string]Entry{
		"BenchmarkA": entry(130, 1000, 40, map[string]float64{"MB/s": 120, "rps": 330}),
	}
	byKey := map[string]Delta{}
	for _, d := range Compare(oldE, newE, 0.15, nil) {
		byKey[d.Metric] = d
	}
	if !byKey["ns_per_op"].Regression { // +30% time
		t.Error("ns_per_op +30% not flagged")
	}
	if byKey["bytes_per_op"].Regression { // unchanged
		t.Error("unchanged bytes_per_op flagged")
	}
	if byKey["allocs_per_op"].Regression { // improvement
		t.Error("alloc improvement flagged")
	}
	if !byKey["MB/s"].Regression { // -40% throughput
		t.Error("MB/s -40% not flagged")
	}
	if byKey["rps"].Regression { // +10% throughput
		t.Error("rps improvement flagged")
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	oldE := map[string]Entry{"BenchmarkA": entry(100, 0, 0, nil)}
	newE := map[string]Entry{"BenchmarkA": entry(114, 0, 0, nil)}
	for _, d := range Compare(oldE, newE, 0.15, nil) {
		if d.Regression {
			t.Errorf("+14%% inside 15%% tolerance flagged: %+v", d)
		}
	}
}

func TestCompareSkipsMissing(t *testing.T) {
	oldE := map[string]Entry{
		"BenchmarkGone":   entry(100, 0, 0, nil),
		"BenchmarkShared": entry(100, 0, 0, map[string]float64{"only_old": 5}),
	}
	newE := map[string]Entry{
		"BenchmarkNew":    entry(100, 0, 0, nil),
		"BenchmarkShared": entry(90, 0, 0, map[string]float64{"only_new": 7}),
	}
	deltas := Compare(oldE, newE, 0.15, nil)
	if len(deltas) != 1 || deltas[0].Bench != "BenchmarkShared" || deltas[0].Metric != "ns_per_op" {
		t.Fatalf("deltas = %+v, want just BenchmarkShared ns_per_op", deltas)
	}
}

func TestCompareFieldsFilter(t *testing.T) {
	oldE := map[string]Entry{"BenchmarkA": entry(100, 1000, 50, nil)}
	newE := map[string]Entry{"BenchmarkA": entry(500, 5000, 51, nil)}
	deltas := Compare(oldE, newE, 0.15, map[string]bool{"allocs_per_op": true})
	if len(deltas) != 1 || deltas[0].Metric != "allocs_per_op" {
		t.Fatalf("deltas = %+v, want only allocs_per_op", deltas)
	}
	if deltas[0].Regression {
		t.Error("+2% allocs flagged at 15% tolerance")
	}
}

func writeArchive(t *testing.T, dir, name string, e map[string]Entry) string {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldP := writeArchive(t, dir, "old.json", map[string]Entry{
		"BenchmarkA": entry(100, 0, 50, nil),
		"BenchmarkB": entry(100, 0, 0, nil),
	})
	badP := writeArchive(t, dir, "bad.json", map[string]Entry{
		"BenchmarkA": entry(100, 0, 150, nil), // 3x the allocs
		"BenchmarkB": entry(100, 0, 0, nil),
	})
	goodP := writeArchive(t, dir, "good.json", map[string]Entry{
		"BenchmarkA": entry(101, 0, 50, nil),
		"BenchmarkB": entry(99, 0, 0, nil),
	})

	var buf bytes.Buffer
	if code := runCompare(oldP, badP, 0.15, "", &buf); code != 1 {
		t.Fatalf("regression run: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION BenchmarkA allocs_per_op") {
		t.Fatalf("missing regression line:\n%s", buf.String())
	}

	buf.Reset()
	if code := runCompare(oldP, goodP, 0.15, "", &buf); code != 0 {
		t.Fatalf("clean run: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "0 regression(s)") {
		t.Fatalf("missing summary:\n%s", buf.String())
	}

	// Disjoint archives have nothing to say — that is a gate failure,
	// not a silent pass.
	otherP := writeArchive(t, dir, "other.json", map[string]Entry{"BenchmarkZ": entry(1, 0, 0, nil)})
	buf.Reset()
	if code := runCompare(oldP, otherP, 0.15, "", &buf); code != 1 {
		t.Fatalf("disjoint run: exit %d", code)
	}

	if code := runCompare(filepath.Join(dir, "missing.json"), goodP, 0.15, "", &buf); code != 1 {
		t.Fatal("missing file not an error")
	}
}
