package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// higherBetter lists the metrics where a drop is the regression.
// Everything else — times, allocations, bytes, rates of bad outcomes —
// regresses upward.
var higherBetter = map[string]bool{
	"MB/s": true,
	"rps":  true,
}

// Delta is one (benchmark, metric) comparison.
type Delta struct {
	Bench, Metric string
	Old, New      float64
	Change        float64 // fractional: (new-old)/old, sign-adjusted by nothing
	Regression    bool
}

// flatten folds an Entry's fixed fields and custom metrics into one
// name->value map. Zero-valued fixed fields mean "not reported" in the
// go-bench format (B/op and allocs/op only appear under -benchmem), so
// they are omitted rather than compared as zeros.
func flatten(e Entry) map[string]float64 {
	m := map[string]float64{}
	if e.NsPerOp > 0 {
		m["ns_per_op"] = e.NsPerOp
	}
	if e.BytesPerOp > 0 {
		m["bytes_per_op"] = e.BytesPerOp
	}
	if e.AllocsPerOp > 0 {
		m["allocs_per_op"] = e.AllocsPerOp
	}
	for k, v := range e.Metrics {
		m[k] = v
	}
	return m
}

// Compare diffs two benchmark archives metric by metric. Benchmarks or
// metrics present on only one side are skipped (renames and new
// benchmarks are not regressions); a metric regresses when it moves the
// wrong way by more than tolerance (fractional). fields, when non-empty,
// restricts the comparison to those metric names.
func Compare(oldE, newE map[string]Entry, tolerance float64, fields map[string]bool) []Delta {
	names := make([]string, 0, len(oldE))
	for name := range oldE {
		if _, ok := newE[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []Delta
	for _, name := range names {
		om, nm := flatten(oldE[name]), flatten(newE[name])
		metrics := make([]string, 0, len(om))
		for metric := range om {
			if _, ok := nm[metric]; ok {
				metrics = append(metrics, metric)
			}
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			if len(fields) > 0 && !fields[metric] {
				continue
			}
			o, n := om[metric], nm[metric]
			if o == 0 {
				continue // no baseline to take a fraction of
			}
			d := Delta{Bench: name, Metric: metric, Old: o, New: n, Change: (n - o) / o}
			if higherBetter[metric] {
				d.Regression = d.Change < -tolerance
			} else {
				d.Regression = d.Change > tolerance
			}
			out = append(out, d)
		}
	}
	return out
}

// runCompare is the -compare entry point: load both archives, diff,
// print every regression (and the overall counts), and return 1 if
// anything regressed.
func runCompare(oldPath, newPath string, tolerance float64, fieldList string, w io.Writer) int {
	oldE, err := loadEntries(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	newE, err := loadEntries(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fields := map[string]bool{}
	for _, f := range strings.Split(fieldList, ",") {
		if f = strings.TrimSpace(f); f != "" {
			fields[f] = true
		}
	}
	deltas := Compare(oldE, newE, tolerance, fields)
	regressions := 0
	for _, d := range deltas {
		if d.Regression {
			regressions++
			fmt.Fprintf(w, "REGRESSION %s %s: %g -> %g (%+.1f%%, tolerance %.0f%%)\n",
				d.Bench, d.Metric, d.Old, d.New, 100*d.Change, 100*tolerance)
		}
	}
	fmt.Fprintf(w, "benchjson: compared %d metrics across %d benchmarks: %d regression(s)\n",
		len(deltas), countBenches(deltas), regressions)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: nothing to compare (no shared benchmarks/metrics)")
		return 1
	}
	if regressions > 0 {
		return 1
	}
	return 0
}

func countBenches(deltas []Delta) int {
	seen := map[string]bool{}
	for _, d := range deltas {
		seen[d.Bench] = true
	}
	return len(seen)
}

func loadEntries(path string) (map[string]Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries map[string]Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}
