package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ensdropcatch
BenchmarkFigure8MisdirectedAmounts-8   	       2	 666109732 ns/op	       940 domains_all	      1877 paper_avg_usd_all	  123456 B/op	    1234 allocs/op
BenchmarkTable1FeatureComparison-8     	      12	  91714715 ns/op	      3.27 paper_income_ratio
BenchmarkMapOverhead
BenchmarkMapOverhead-8                 	 1000000	      1042 ns/op
PASS
ok  	ensdropcatch	42.1s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	fig8 := entries["BenchmarkFigure8MisdirectedAmounts"]
	if fig8.NsPerOp != 666109732 || fig8.Iterations != 2 {
		t.Errorf("fig8 = %+v", fig8)
	}
	if fig8.BytesPerOp != 123456 || fig8.AllocsPerOp != 1234 {
		t.Errorf("fig8 mem stats = %+v", fig8)
	}
	if fig8.Metrics["domains_all"] != 940 || fig8.Metrics["paper_avg_usd_all"] != 1877 {
		t.Errorf("fig8 metrics = %v", fig8.Metrics)
	}
	t1 := entries["BenchmarkTable1FeatureComparison"]
	if t1.NsPerOp != 91714715 || t1.Metrics["paper_income_ratio"] != 3.27 {
		t.Errorf("table1 = %+v", t1)
	}
	if e := entries["BenchmarkMapOverhead"]; e.NsPerOp != 1042 {
		t.Errorf("overhead = %+v (status-only line must not clobber the result)", e)
	}
}

func TestStripCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-16":       "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub_case": "BenchmarkFoo/sub_case",
		"BenchmarkFoo/sub-8":    "BenchmarkFoo/sub",
	} {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
