// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived and diffed across
// commits (the Makefile bench target writes BENCH_PR3.json with it).
//
// Every `Benchmark*` line becomes one entry keyed by benchmark name (the
// -cpu suffix stripped): iterations, ns/op, B/op, allocs/op, and every
// custom metric reported via b.ReportMetric.
//
// Example:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_PR3.json
//
// With -compare it instead diffs two archived documents and exits
// non-zero when any shared metric moved the wrong way by more than
// -tolerance — the CI regression gate:
//
//	benchjson -compare BENCH_SERVE.json bench_now.json -tolerance 0.15
//	benchjson -compare old.json new.json -fields allocs_per_op
//
// Times, bytes, allocations, and bad-outcome rates regress upward;
// MB/s and rps regress downward. Benchmarks or metrics present on only
// one side are skipped, so renames and additions never trip the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two archived JSON documents: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional drift per metric in -compare mode")
	fields := flag.String("fields", "", "comma-separated metric names to compare (default all shared metrics)")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) > 2 {
			// Accept trailing flags after the two file operands
			// (`-compare old.json new.json -tolerance 0.2`), which the
			// flag package alone stops parsing at the first operand.
			if err := flag.CommandLine.Parse(args[2:]); err != nil {
				os.Exit(2)
			}
		}
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(args[0], args[1], *tolerance, *fields, os.Stdout))
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	entries, err := Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		names := make([]string, 0, len(entries))
		for n := range entries {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(names), *out)
	}
}

// Parse reads `go test -bench` output and returns entries keyed by
// benchmark name. A name appearing more than once (e.g. -count>1) keeps
// its last result.
func Parse(r io.Reader) (map[string]Entry, error) {
	entries := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := stripCPUSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // status line like "BenchmarkFoo", not a result
		}
		e := Entry{Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates (value, unit).
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "MB/s":
				e.Metrics["MB/s"] = v
			default:
				e.Metrics[unit] = v
			}
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		entries[name] = e
	}
	return entries, sc.Err()
}

// stripCPUSuffix removes the trailing -N GOMAXPROCS marker go test adds.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
