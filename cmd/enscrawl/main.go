// Command enscrawl reproduces the paper's data-collection pipeline
// (Figure 1) against a running ensworld server (or any endpoints with the
// same shapes): it pages the full registration history out of the
// subgraph, crawls per-address transaction lists from the Etherscan API
// under its rate limit, fetches custodial labels, pulls marketplace events
// for re-registered names, and writes the assembled dataset to a
// directory.
//
// While crawling it logs periodic progress summaries (addresses
// done/total, ETA) and, with -metrics-addr, exposes live /metrics,
// /debug/pprof/*, and /debug/vars endpoints for the crawl in flight.
//
// Example:
//
//	enscrawl -base http://127.0.0.1:8080 -out ./data -workers 8 -metrics-addr :9090
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
)

func main() {
	var (
		base        = flag.String("base", "http://127.0.0.1:8080", "ensworld base URL")
		out         = flag.String("out", "data", "output dataset directory")
		workers     = flag.Int("workers", 8, "concurrent transaction crawlers")
		apiKey      = flag.String("apikey", "enscrawl", "etherscan API key (rate-limit bucket)")
		rps         = flag.Float64("rps", float64(etherscan.DefaultRatePerSecond), "etherscan request pacing per second")
		resume      = flag.String("resume", "", "spool/checkpoint directory; an interrupted crawl restarts where it stopped")
		fsync       = flag.Bool("fsync", false, "fsync the spool, checkpoint, and saved dataset at every commit (survives power loss, costs throughput)")
		format      = flag.String("format", "json", "saved dataset encoding: json (directory of JSONL, diff-friendly) or binary (columnar dataset.bin, fast to load at scale)")
		snapEvery   = flag.Int("snapshot-every", 0, "with -resume, write a binary spool snapshot every N completed addresses so the next resume replays only the spool tail (0 = default 256, negative = off)")
		breaker     = flag.Int("breaker-threshold", 8, "consecutive transport failures before a source's circuit opens (0 = breakers off)")
		cooldown    = flag.Duration("breaker-cooldown", 15*time.Second, "how long an open circuit waits before probing the source again")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics and /debug/pprof on this address while crawling (empty = disabled)")
		progress    = flag.Duration("progress", 10*time.Second, "interval between crawl-progress summaries (done/total, ETA)")
		adaptive    = flag.Bool("adaptive", false, "tune request rate and concurrency with AIMD from server 429/503 + Retry-After feedback instead of fixed -rps pacing")
		clientID    = flag.String("client-id", "", "identity sent as X-Client-ID for server-side per-client quotas (defaults to -apikey)")
		budgetBurst = flag.Float64("retry-budget", 10, "per-source retry-budget burst: retries beyond this bucket fail fast instead of storming an outage (0 = unbounded retries)")
		budgetRatio = flag.Float64("retry-ratio", 0.1, "fraction of a retry token deposited per successful first attempt")
		hedge       = flag.Bool("hedge", false, "hedge tail-slow idempotent reads with one speculative duplicate (gated by breaker state and retry budget)")
		hedgeSigma  = flag.Float64("hedge-sigma", 3, "with -hedge, deviation multiplier in the hedge-delay estimate (mean + sigma·dev)")
	)
	traceFlags := registerTraceFlags(flag.CommandLine, false)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Fail on a bad -format before hours of crawling, not after.
	outFormat, err := dataset.ParseFormat(*format)
	if err != nil {
		logger.Error("flags", "err", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The clients pick the process-wide tracer up through trace.Start, so
	// installing it is all the wiring the crawl needs; each page fetch,
	// retry attempt, and backoff becomes a span in the local store and a
	// traceparent header on the wire.
	tracer := traceFlags.tracer()
	if tracer != nil {
		trace.SetDefault(tracer)
		logger.Info("tracing enabled",
			"sample", traceFlags.sample, "store", traceFlags.capacity, "slow", traceFlags.slow)
	}

	if *metricsAddr != "" {
		var mounts []obs.Mount
		if tracer != nil {
			th := trace.Handler(tracer.Store())
			mounts = append(mounts,
				obs.Mount{Pattern: "/debug/traces", Handler: th},
				obs.Mount{Pattern: "/debug/traces/", Handler: th})
		}
		dbg, err := obs.StartDebugServer(*metricsAddr, obs.Default, logger, mounts...)
		if err != nil {
			logger.Error("metrics listener", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
	}

	esClient := etherscan.NewClient(*base+"/etherscan", *apiKey)
	if *rps > 0 {
		esClient.MinInterval = time.Duration(float64(time.Second) / *rps)
	} else {
		esClient.MinInterval = 0
	}
	sgClient := subgraph.NewClient(*base + "/subgraph")
	osClient := opensea.NewClient(*base + "/opensea")
	if *breaker > 0 {
		esClient.Breaker = crawler.NewBreaker("etherscan", *breaker, *cooldown)
		sgClient.Breaker = crawler.NewBreaker("subgraph", *breaker, *cooldown)
		osClient.Breaker = crawler.NewBreaker("opensea", *breaker, *cooldown)
	}
	if *budgetBurst > 0 {
		esClient.Budget = crawler.NewRetryBudget("etherscan", *budgetRatio, *budgetBurst)
		sgClient.Budget = crawler.NewRetryBudget("subgraph", *budgetRatio, *budgetBurst)
		osClient.Budget = crawler.NewRetryBudget("opensea", *budgetRatio, *budgetBurst)
	}
	if *hedge {
		// Only the idempotent read paths hedge; the hedger shares the
		// source's breaker and budget so speculation respects both gates.
		sgClient.Hedger = crawler.NewHedger(crawler.HedgeConfig{
			Source: "subgraph", Breaker: sgClient.Breaker, Budget: sgClient.Budget, TailSigma: *hedgeSigma})
		esClient.Hedger = crawler.NewHedger(crawler.HedgeConfig{
			Source: "etherscan", Breaker: esClient.Breaker, Budget: esClient.Budget, TailSigma: *hedgeSigma})
		osClient.Hedger = crawler.NewHedger(crawler.HedgeConfig{
			Source: "opensea", Breaker: osClient.Breaker, Budget: osClient.Budget, TailSigma: *hedgeSigma})
	}
	id := *clientID
	if id == "" {
		id = *apiKey
	}
	esClient.ClientID, sgClient.ClientID, osClient.ClientID = id, id, id
	if *adaptive {
		// AIMD owns pacing: start from -rps and let server feedback
		// steer; the fixed MinInterval limiter would fight it.
		esClient.MinInterval = 0
		initial := *rps
		if initial <= 0 {
			initial = float64(etherscan.DefaultRatePerSecond)
		}
		esClient.Adaptive = crawler.NewAdaptive(crawler.AdaptiveConfig{
			Source: "etherscan", InitialRate: initial, MaxWorkers: *workers})
		sgClient.Adaptive = crawler.NewAdaptive(crawler.AdaptiveConfig{
			Source: "subgraph", InitialRate: initial, MaxWorkers: *workers})
		osClient.Adaptive = crawler.NewAdaptive(crawler.AdaptiveConfig{
			Source: "opensea", InitialRate: initial, MaxWorkers: *workers})
	}

	start := time.Now()
	ds, err := dataset.Build(ctx,
		sgClient,
		esClient,
		osClient,
		dataset.BuildOptions{TxWorkers: *workers, ResumeDir: *resume, FsyncCheckpoint: *fsync,
			SpoolSnapshotEvery: *snapEvery, Logger: logger, ProgressEvery: *progress},
	)
	if err != nil {
		logger.Error("crawl", "err", err)
		os.Exit(1)
	}
	logger.Info("crawl complete",
		"domains", len(ds.Domains),
		"txs", len(ds.Txs),
		"elapsed", time.Since(start).Round(time.Millisecond))
	if st := tracer.Store(); st != nil {
		logger.Info("trace store",
			"stored", st.Len(), "dropped", st.Dropped(), "evicted", st.Evicted())
	}
	if err := ds.Validate(); err != nil {
		logger.Warn("dataset validation", "err", err)
	}

	saveOpts := []dataset.SaveOption{dataset.WithFormat(outFormat)}
	if *fsync {
		saveOpts = append(saveOpts, dataset.WithSync())
	}
	if err := ds.Save(*out, saveOpts...); err != nil {
		logger.Error("save", "err", err)
		os.Exit(1)
	}
	logger.Info("dataset written", "dir", *out, "format", outFormat)
}
