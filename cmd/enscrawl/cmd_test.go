package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"
)

func TestTraceFlagsInHelp(t *testing.T) {
	fs := flag.NewFlagSet("enscrawl", flag.ContinueOnError)
	o := registerTraceFlags(fs, false)
	var help bytes.Buffer
	fs.SetOutput(&help)
	fs.PrintDefaults()
	for _, name := range []string{"trace", "trace-sample", "trace-store", "trace-slow", "trace-seed"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Errorf("flag -%s not registered", name)
			continue
		}
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage text", name)
		}
		if !strings.Contains(help.String(), "-"+name) {
			t.Errorf("help output does not mention -%s", name)
		}
	}
	if o.enabled {
		t.Error("crawl tracing should default off (zero-allocation hot path)")
	}
}

func TestTracerConstruction(t *testing.T) {
	off := &traceOpts{}
	if off.tracer() != nil {
		t.Fatal("disabled opts built a tracer")
	}
	on := &traceOpts{enabled: true, sample: 0.5, capacity: 32, slow: 100 * time.Millisecond, seed: 7}
	tr := on.tracer()
	if tr == nil {
		t.Fatal("enabled opts built no tracer")
	}
	if got := tr.Store().Capacity(); got != 32 {
		t.Errorf("store capacity = %d, want 32", got)
	}
}
