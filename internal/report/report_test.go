package report

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ensdropcatch/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"feature", "value"}, [][]string{
		{"income", "69,980"},
		{"len", "8"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "feature") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "69,980") {
		t.Errorf("row: %q", lines[2])
	}
	// Short cells padded: every line should have the same trimmed-right
	// column starts; just assert the rule is at least as wide as header.
	if len(lines[1]) < len("feature") {
		t.Error("rule too short")
	}
}

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"a", "b"}, [][]string{{"1", "with|pipe"}, {"2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "| a | b |" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "|---|---|" {
		t.Errorf("rule = %q", lines[1])
	}
	if !strings.Contains(lines[2], `with\|pipe`) {
		t.Errorf("pipe not escaped: %q", lines[2])
	}
	if lines[3] != "| 2 |  |" {
		t.Errorf("short row = %q", lines[3])
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{"1", "two,with,commas"}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"two,with,commas"`) {
		t.Errorf("csv quoting broken: %q", got)
	}
}

func TestUSDAndCount(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{4700, "4,700 USD"},
		{0, "0 USD"},
		{999, "999 USD"},
		{1000, "1,000 USD"},
		{69980.4, "69,980 USD"},
		{1234567, "1,234,567 USD"},
		{-1234, "-1,234 USD"},
	}
	for _, c := range cases {
		if got := USD(c.v); got != c.want {
			t.Errorf("USD(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := Count(241283); got != "241,283" {
		t.Errorf("Count = %q", got)
	}
	if got := Count(-5); got != "-5" {
		t.Errorf("Count(-5) = %q", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.451); got != "45.1%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestHistogramASCII(t *testing.T) {
	bins := []stats.HistBin{
		{Lo: 0, Hi: 10, Count: 5},
		{Lo: 10, Hi: 20, Count: 50},
		{Lo: 20, Hi: 30, Count: 0},
	}
	out := HistogramASCII(bins, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("max bin not full width")
	}
	if strings.Contains(lines[2], "#") {
		t.Error("empty bin drew a bar")
	}
	// Non-zero bins always draw at least one cell.
	if !strings.Contains(lines[0], "#") {
		t.Error("small bin invisible")
	}
	if HistogramASCII(nil, 10) != "(empty)\n" {
		t.Error("empty histogram")
	}
}

func TestCDFASCII(t *testing.T) {
	cdf := stats.ECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	out := CDFASCII(cdf)
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p100") {
		t.Errorf("CDF output missing percentiles: %q", out)
	}
	if CDFASCII(nil) != "(empty)\n" {
		t.Error("empty CDF")
	}
}

func TestQuickGroupDigitsRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		s := Count(int(n))
		plain := strings.ReplaceAll(s, ",", "")
		var back uint64
		for _, c := range plain {
			back = back*10 + uint64(c-'0')
		}
		return back == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
