// Package report renders analysis results as aligned ASCII tables, CSV
// series, and terminal histograms/CDFs — the output layer of the
// ensanalyze tool and the benchmark harness, producing the same rows and
// series the paper's tables and figures report.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"ensdropcatch/internal/stats"
)

// Table renders rows as an aligned ASCII table with a header rule.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", w-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// MarkdownTable renders rows as a GitHub-flavored markdown table.
func MarkdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	b.WriteString("|")
	for range headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV writes headers and rows in CSV format.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// USD formats a dollar amount with thousands separators ("4,700 USD").
func USD(v float64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	whole := int64(math.Round(v))
	s := groupDigits(whole)
	if neg {
		s = "-" + s
	}
	return s + " USD"
}

// Count formats an integer with thousands separators.
func Count(n int) string {
	if n < 0 {
		return "-" + groupDigits(int64(-n))
	}
	return groupDigits(int64(n))
}

func groupDigits(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// Percent formats a fraction as "45.1%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", 100*frac)
}

// HistogramASCII renders bins as horizontal bars of at most width cells.
func HistogramASCII(bins []stats.HistBin, width int) string {
	if len(bins) == 0 {
		return "(empty)\n"
	}
	if width <= 0 {
		width = 50
	}
	maxCount := 0
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		bar := 0
		if maxCount > 0 {
			bar = b.Count * width / maxCount
		}
		if b.Count > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%14s - %-14s |%s %d\n",
			compactFloat(b.Lo), compactFloat(b.Hi), strings.Repeat("#", bar), b.Count)
	}
	return sb.String()
}

// CDFASCII renders an empirical CDF as value/percentile rows sampled at
// round fractions.
func CDFASCII(points []stats.CDFPoint) string {
	if len(points) == 0 {
		return "(empty)\n"
	}
	var sb strings.Builder
	fractions := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}
	idx := 0
	for _, f := range fractions {
		for idx < len(points)-1 && points[idx].Fraction < f {
			idx++
		}
		fmt.Fprintf(&sb, "  p%-3.0f <= %s\n", f*100, compactFloat(points[idx].Value))
	}
	return sb.String()
}

func compactFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
