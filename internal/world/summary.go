package world

import (
	"fmt"
	"strings"
)

// Summary aggregates a generated world's ground truth into the headline
// counts tools and tests report.
type Summary struct {
	Domains        int
	Subdomains     int
	Transactions   int
	Resolutions    int // via-ENS payments in the resolution log
	Expired        int // first registration ended inside the window
	Dropcaught     int
	SelfRecovered  int
	ActiveAtEnd    int
	Unindexed      int
	MisdirectedTxs int
	MisdirectedUSD float64
	HijackableUSD  float64
	Listed         int
	Sold           int
}

// Summarize computes the Summary for a generated world.
func (r *Result) Summarize() Summary {
	s := Summary{
		Domains:      len(r.Truth.Domains),
		Transactions: r.Chain.TxCount(),
		Resolutions:  len(r.ResolutionLog),
	}
	for _, d := range r.Truth.Domains {
		s.Subdomains += d.Subdomains
		s.MisdirectedTxs += d.MisdirectedTxs
		s.MisdirectedUSD += d.MisdirectedUSD
		s.HijackableUSD += d.HijackableUSD
		if d.Unindexed {
			s.Unindexed++
		}
		if d.Listed {
			s.Listed++
		}
		if d.Sold {
			s.Sold++
		}
		if d.ExpiredBy(r.Config.End) {
			s.Expired++
			switch {
			case d.Dropcaught:
				s.Dropcaught++
			default:
				for _, c := range d.Cycles {
					if c.SameOwnerAsPrev {
						s.SelfRecovered++
						break
					}
				}
			}
		} else {
			s.ActiveAtEnd++
		}
	}
	return s
}

// String renders the summary as a compact multi-line report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "domains=%d subdomains=%d txs=%d resolutions=%d\n",
		s.Domains, s.Subdomains, s.Transactions, s.Resolutions)
	fmt.Fprintf(&b, "expired=%d dropcaught=%d selfRecovered=%d active=%d unindexed=%d\n",
		s.Expired, s.Dropcaught, s.SelfRecovered, s.ActiveAtEnd, s.Unindexed)
	fmt.Fprintf(&b, "misdirected: %d txs / %.0f USD; hijackable %.0f USD; listed=%d sold=%d",
		s.MisdirectedTxs, s.MisdirectedUSD, s.HijackableUSD, s.Listed, s.Sold)
	return b.String()
}
