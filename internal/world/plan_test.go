package world

import (
	"math"
	"sort"
	"testing"
	"time"

	"ensdropcatch/internal/ens"
)

// Unit tests for the planner's sampling machinery: the distributions that
// shape the population must actually have the moments the calibration
// assumes.

func newTestPlanner(seed int64) *domainPlanner {
	cfg := DefaultConfig(10)
	cfg.Seed = seed
	return newPlanner(cfg).domainPlanner(0)
}

func TestPoissonMean(t *testing.T) {
	p := newTestPlanner(1)
	for _, lambda := range []float64{0.5, 2.2, 6.3} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(p.poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.1+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestLognormalMedian(t *testing.T) {
	p := newTestPlanner(2)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = p.lognormal(1500, 2.2)
	}
	// Median of a lognormal is its median parameter.
	med := quickSelectMedian(vals)
	if med < 1200 || med > 1900 {
		t.Errorf("lognormal median = %v, want ~1500", med)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
}

func quickSelectMedian(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func TestGeometricMean(t *testing.T) {
	p := newTestPlanner(3)
	const q = 0.5
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(p.geometric(q))
	}
	want := (1 - q) / q
	if mean := sum / n; math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric(%v) mean = %v, want %v", q, mean, want)
	}
}

func TestSampleRegTimeWithinWindowAndShaped(t *testing.T) {
	p := newTestPlanner(4)
	cfg := p.cfg
	byYear := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		ts := p.sampleRegTime()
		if ts < cfg.Start || ts >= cfg.End {
			t.Fatalf("registration time %d outside window", ts)
		}
		byYear[time.Unix(ts, 0).UTC().Year()]++
	}
	// Figure 2's shape: 2022 is the peak year, 2020 the lightest full year.
	if !(byYear[2022] > byYear[2021] && byYear[2021] > byYear[2020]) {
		t.Errorf("registration volume not increasing into 2022: %v", byYear)
	}
	if byYear[2022] < byYear[2023] {
		t.Errorf("2023 should decline from the 2022 peak: %v", byYear)
	}
}

func TestSampleDurationBounds(t *testing.T) {
	p := newTestPlanner(5)
	oneYear := 0
	const n = 5000
	for i := 0; i < n; i++ {
		d := p.sampleDuration()
		if d < ens.MinRegistrationDuration {
			t.Fatalf("duration %v below registrar minimum", d)
		}
		if d > 3*year {
			t.Fatalf("duration %v above 3 years", d)
		}
		if d == year {
			oneYear++
		}
	}
	// One-year registrations dominate (~68%).
	if frac := float64(oneYear) / n; frac < 0.55 || frac > 0.8 {
		t.Errorf("one-year fraction = %v", frac)
	}
}

func TestPlanCatchTimeAlwaysInWindow(t *testing.T) {
	p := newTestPlanner(6)
	cfg := p.cfg
	// Expiries whose auction still fits well inside the window.
	for i := 0; i < 3000; i++ {
		expiry := cfg.Start + int64(i%700)*86400
		if ens.PremiumEndTime(expiry) >= cfg.End-86400*2 {
			continue
		}
		at, premium := p.planCatchTime(expiry, p.rng.NormFloat64()*2)
		if at < ens.ReleaseTime(expiry) {
			t.Fatalf("catch %d before release", at)
		}
		if premium < 0 {
			t.Fatalf("negative premium %v", premium)
		}
		if premium > 0 && at > ens.PremiumEndTime(expiry) {
			t.Fatal("positive premium after auction end")
		}
	}
}

func TestRegMonthWeightShape(t *testing.T) {
	peak := regMonthWeight(time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC))
	early := regMonthWeight(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC))
	late := regMonthWeight(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	if !(peak > early && peak > late) {
		t.Errorf("weights not peaked in 2022: peak=%v early=%v late=%v", peak, early, late)
	}
	if early <= 0 || late <= 0 {
		t.Error("non-positive month weight")
	}
}
