package world

import (
	"fmt"
	"math"
	"math/rand"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
)

// SenderKind classifies a sending address the way the paper's custodial
// filter does.
type SenderKind int

const (
	// NonCustodial wallets belong to a single user and can resolve ENS.
	NonCustodial SenderKind = iota
	// Coinbase is the one custodial exchange that resolves ENS.
	Coinbase
	// OtherCustodial exchanges cannot resolve ENS; their transactions
	// are filtered out of the loss analysis.
	OtherCustodial
)

// String returns the kind name.
func (k SenderKind) String() string {
	switch k {
	case NonCustodial:
		return "non-custodial"
	case Coinbase:
		return "coinbase"
	case OtherCustodial:
		return "other-custodial"
	default:
		return fmt.Sprintf("senderkind(%d)", int(k))
	}
}

// senderPool hands out sending addresses. Custodial pools are small and
// heavily reused (many users behind few addresses); the non-custodial pool
// is large with Zipf-distributed reuse (a few businesses pay many names).
//
// The pool itself is immutable after construction and shared by every
// per-domain planner; randomness comes in through the caller's rng so
// picks stay on the caller's deterministic stream.
type senderPool struct {
	coinbase       []ethtypes.Address
	otherCustodial []ethtypes.Address
	nonCustodial   []ethtypes.Address
	coinbaseShare  float64
	otherShare     float64
}

func newSenderPool(cfg Config) *senderPool {
	sp := &senderPool{
		coinbaseShare: cfg.CoinbaseShare,
		otherShare:    cfg.OtherCustodialShare,
	}
	for i := 0; i < cfg.CoinbaseAddresses; i++ {
		sp.coinbase = append(sp.coinbase, ethtypes.DeriveAddress(fmt.Sprintf("coinbase-hot-%03d", i)))
	}
	for i := 0; i < cfg.OtherCustodialAddresses; i++ {
		sp.otherCustodial = append(sp.otherCustodial, ethtypes.DeriveAddress(fmt.Sprintf("exchange-hot-%04d", i)))
	}
	// A large, mildly skewed pool: most senders pay one or two names;
	// a few businesses pay several. Heavy concentration is what the
	// custodial filter exists for, so non-custodial reuse stays modest.
	n := cfg.NumDomains*2 + 100
	for i := 0; i < n; i++ {
		sp.nonCustodial = append(sp.nonCustodial, ethtypes.DeriveAddress(fmt.Sprintf("user-wallet-%07d", i)))
	}
	return sp
}

// zipf builds the non-custodial reuse distribution over the caller's rng
// (rand.Zipf binds an rng at construction, so each planner needs its own).
func (sp *senderPool) zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 2.0, 20, uint64(len(sp.nonCustodial)-1))
}

// pick returns a sender address and its kind.
func (sp *senderPool) pick(rng *rand.Rand, zipf *rand.Zipf) (ethtypes.Address, SenderKind) {
	r := rng.Float64()
	switch {
	case r < sp.coinbaseShare:
		return sp.coinbase[rng.Intn(len(sp.coinbase))], Coinbase
	case r < sp.coinbaseShare+sp.otherShare:
		return sp.otherCustodial[rng.Intn(len(sp.otherCustodial))], OtherCustodial
	default:
		return sp.nonCustodial[zipf.Uint64()], NonCustodial
	}
}

// catcherPool models the dropcatcher population as two tiers, matching
// Figure 5's shape: a small professional tier whose top addresses catch
// thousands of names at full scale (5,070 / 3,165 / 2,421), and a large
// amateur tier of mostly one-off catchers.
type catcherPool struct {
	pros     []ethtypes.Address
	amateurs []ethtypes.Address
	// proShare of catches go to the professional tier.
	proShare float64
}

func newCatcherPool(numDomains int) *catcherPool {
	cp := &catcherPool{proShare: 0.12}
	for i := 0; i < 20; i++ {
		cp.pros = append(cp.pros, ethtypes.DeriveAddress(fmt.Sprintf("dropcatcher-pro-%02d", i)))
	}
	n := numDomains/2 + 100
	for i := 0; i < n; i++ {
		cp.amateurs = append(cp.amateurs, ethtypes.DeriveAddress(fmt.Sprintf("dropcatcher-%06d", i)))
	}
	return cp
}

// zipf builds the professional-tier concentration distribution over the
// caller's rng.
func (cp *catcherPool) zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 3, uint64(len(cp.pros)-1))
}

func (cp *catcherPool) pick(rng *rand.Rand, zipf *rand.Zipf) ethtypes.Address {
	if rng.Float64() < cp.proShare {
		return cp.pros[zipf.Uint64()]
	}
	return cp.amateurs[rng.Intn(len(cp.amateurs))]
}

// lexScore scores how attractive a label's lexical shape is to a
// dropcatcher, encoding Table 1's observed preferences: dictionary words
// and short names are prized; word+digit mixes, hyphens, and underscores
// are shunned; pure numerics are neutral-to-collectible; adult terms are
// roughly neutral.
func lexScore(f lexical.Features) float64 {
	s := 0.0
	switch {
	case f.IsDictionaryWord:
		s += 2.3
	case f.ContainsDictionaryWord:
		s += 0.35
	}
	if f.ContainsBrandName {
		s += 0.45
	}
	if f.ContainsDigit && !f.IsNumeric {
		s -= 2.4
	}
	// Pure numerics are caught at roughly the population rate (Table 1:
	// 13.9% vs 13.5%); short ones get the generic length bonus below
	// (the "999 club" collectible market).
	if f.ContainsHyphen {
		s -= 0.95
	}
	if f.ContainsUnderscore {
		s -= 1.9
	}
	switch {
	case f.Length <= 4:
		s += 0.9
	case f.Length <= 6:
		s += 0.3
	case f.Length >= 12:
		s -= 0.5
	}
	if f.ContainsAdultWord {
		s -= 0.1
	}
	return s
}

// incomeScore converts pre-expiry wallet income to a value-score component.
func incomeScore(incomeUSD float64) float64 {
	return 0.80 * (math.Log10(1+incomeUSD) - 3.2)
}

// logistic is the standard sigmoid.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
