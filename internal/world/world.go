package world

import (
	"bytes"
	"fmt"
	"sort"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// Result bundles everything a generated world exposes: the chain with its
// full transaction and event history, the deployed ENS service, the
// marketplace event stream, the custodial address lists (the paper sources
// these from Etherscan labels), and the ground truth for validation.
type Result struct {
	Config  Config
	Chain   *chain.Chain
	ENS     *ens.Service
	Oracle  *pricing.Oracle
	Truth   *Truth
	OpenSea []OpenSeaEvent
	// ResolutionLog records every via-ENS payment's resolution event —
	// the vendor-side data the paper could not obtain.
	ResolutionLog []ResolutionRecord

	// CoinbaseAddrs and OtherCustodialAddrs are the known custodial
	// sending addresses (25 and 558 on mainnet).
	CoinbaseAddrs       []ethtypes.Address
	OtherCustodialAddrs []ethtypes.Address
}

// Generate builds a complete synthetic world from cfg. It is deterministic
// in cfg.Seed. Generation fails only on internal inconsistencies (a planned
// event the contracts reject), which indicates a bug rather than bad input.
func Generate(cfg Config) (*Result, error) {
	if cfg.NumDomains <= 0 {
		return nil, fmt.Errorf("world: NumDomains must be positive, got %d", cfg.NumDomains)
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("world: empty window [%d, %d)", cfg.Start, cfg.End)
	}

	p := newPlanner(cfg)
	p.plan()

	sort.Slice(p.events, func(i, j int) bool {
		if p.events[i].ts != p.events[j].ts {
			return p.events[i].ts < p.events[j].ts
		}
		return p.events[i].seq < p.events[j].seq
	})

	c := chain.New(cfg.Start - 86400)
	oracle := pricing.NewOracle()
	svc := ens.Deploy(c, oracle)

	fund := func(addr ethtypes.Address, need ethtypes.Wei) {
		if bal := c.BalanceOf(addr); bal.Cmp(need) < 0 {
			c.Mint(addr, need.Sub(bal).Add(ethtypes.Ether(1)))
		}
	}
	var resolutionLog []ResolutionRecord

	for idx := range p.events {
		ev := &p.events[idx]
		switch ev.kind {
		case evRegister, evRegisterUnindexed:
			price := svc.PriceWei(ev.label, ev.duration, ev.ts)
			fund(ev.from, price)
			var rcpt *chain.Receipt
			var err error
			if ev.kind == evRegisterUnindexed {
				rcpt, err = svc.RegisterUnindexed(ev.ts, ev.from, ev.to, ev.label, ev.duration, price)
			} else {
				rcpt, err = svc.Register(ev.ts, ev.from, ev.to, ev.label, ev.duration, price)
			}
			if err != nil {
				return nil, fmt.Errorf("world: register %q at %d: %w", ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: register %q at %d reverted: %w", ev.label, ev.ts, rcpt.Err)
			}
		case evRenew:
			price := svc.PriceWei(ev.label, ev.duration, ev.ts)
			fund(ev.from, price)
			rcpt, err := svc.Renew(ev.ts, ev.from, ev.label, ev.duration, price)
			if err != nil {
				return nil, fmt.Errorf("world: renew %q at %d: %w", ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: renew %q at %d reverted: %w", ev.label, ev.ts, rcpt.Err)
			}
		case evSetAddr:
			rcpt, err := svc.SetAddr(ev.ts, ev.from, ev.label, ev.to)
			if err != nil {
				return nil, fmt.Errorf("world: setAddr %q at %d: %w", ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: setAddr %q at %d reverted: %w", ev.label, ev.ts, rcpt.Err)
			}
		case evTransferName:
			rcpt, err := svc.TransferName(ev.ts, ev.from, ev.label, ev.to)
			if err != nil {
				return nil, fmt.Errorf("world: transfer %q at %d: %w", ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: transfer %q at %d reverted: %w", ev.label, ev.ts, rcpt.Err)
			}
		case evSend:
			amount := ethtypes.EtherFloat(oracle.ETH(ev.usd, ev.ts))
			if amount.IsZero() {
				amount = ethtypes.NewWei(1)
			}
			fund(ev.from, amount)
			rcpt, err := c.Transfer(ev.ts, ev.from, ev.to, amount)
			if err != nil {
				return nil, fmt.Errorf("world: send at %d: %w", ev.ts, err)
			}
			if ev.truthMis {
				p.truth.MisdirectedTxHashes[rcpt.Tx.Hash] = true
			}
			if ev.truthInt {
				p.truth.IntentionalTxHashes[rcpt.Tx.Hash] = true
			}
			if ev.viaENS {
				resolutionLog = append(resolutionLog, ResolutionRecord{
					Name:     ev.label,
					Sender:   ev.from,
					Resolved: ev.to,
					At:       ev.ts,
					TxHash:   rcpt.Tx.Hash,
				})
			}
		case evCreateSubdomain:
			rcpt, err := svc.CreateSubdomain(ev.ts, ev.from, ev.label, ev.subLabel, ev.to)
			if err != nil {
				return nil, fmt.Errorf("world: subdomain %s.%s at %d: %w", ev.subLabel, ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: subdomain %s.%s at %d reverted: %w", ev.subLabel, ev.label, ev.ts, rcpt.Err)
			}
		case evSetSubAddr:
			rcpt, err := svc.SetSubdomainAddr(ev.ts, ev.from, ev.subLabel+"."+ev.label, ev.to)
			if err != nil {
				return nil, fmt.Errorf("world: sub setAddr %s.%s at %d: %w", ev.subLabel, ev.label, ev.ts, err)
			}
			if rcpt.Err != nil {
				return nil, fmt.Errorf("world: sub setAddr %s.%s at %d reverted: %w", ev.subLabel, ev.label, ev.ts, rcpt.Err)
			}
		default:
			return nil, fmt.Errorf("world: unknown event kind %d", ev.kind)
		}
	}

	// Total order — (timestamp, token, type, price, seller, buyer) — the
	// same tiebreaks dataset persistence uses for market events, so the
	// served event stream cannot depend on planner emission order or sort
	// stability when timestamps collide.
	sort.Slice(p.opensea, func(i, j int) bool {
		a, b := &p.opensea[i], &p.opensea[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if c := bytes.Compare(a.TokenID[:], b.TokenID[:]); c != 0 {
			return c < 0
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.PriceUSD != b.PriceUSD {
			return a.PriceUSD < b.PriceUSD
		}
		if c := bytes.Compare(a.Seller[:], b.Seller[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(a.Buyer[:], b.Buyer[:]) < 0
	})

	return &Result{
		Config:              cfg,
		Chain:               c,
		ENS:                 svc,
		Oracle:              oracle,
		Truth:               p.truth,
		OpenSea:             p.opensea,
		ResolutionLog:       resolutionLog,
		CoinbaseAddrs:       p.senders.coinbase,
		OtherCustodialAddrs: p.senders.otherCustodial,
	}, nil
}
