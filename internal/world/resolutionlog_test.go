package world

import (
	"testing"
)

func TestResolutionLogIntegrity(t *testing.T) {
	res := world3k(t)
	if len(res.ResolutionLog) == 0 {
		t.Fatal("empty resolution log")
	}
	for i, rec := range res.ResolutionLog {
		if rec.Name == "" {
			t.Fatalf("entry %d has no name", i)
		}
		tx, err := res.Chain.TxByHash(rec.TxHash)
		if err != nil {
			t.Fatalf("entry %d: tx not on chain: %v", i, err)
		}
		if tx.From != rec.Sender || tx.To != rec.Resolved || tx.Timestamp != rec.At {
			t.Fatalf("entry %d inconsistent with chain tx", i)
		}
	}
}

func TestResolutionLogCoversMisdirected(t *testing.T) {
	res := world3k(t)
	inLog := map[string]bool{}
	for _, rec := range res.ResolutionLog {
		inLog[rec.TxHash.Hex()] = true
	}
	// Every ground-truth misdirected transaction was, by definition, sent
	// through the name, so it must appear in the resolution log.
	for h := range res.Truth.MisdirectedTxHashes {
		if !inLog[h.Hex()] {
			t.Errorf("misdirected tx %s missing from resolution log", h)
		}
	}
	// Intentional payments were typed by address, never resolved.
	for h := range res.Truth.IntentionalTxHashes {
		if inLog[h.Hex()] {
			t.Errorf("intentional tx %s appears in resolution log", h)
		}
	}
}

func TestSubdomainsOnChain(t *testing.T) {
	res := world3k(t)
	want := 0
	for _, d := range res.Truth.Domains {
		want += d.Subdomains
	}
	if got := res.ENS.SubdomainCount(); got != want {
		t.Errorf("registry has %d subdomains, truth %d", got, want)
	}
	if want == 0 {
		t.Fatal("no subdomains generated")
	}
	// Spot-check: a truth domain with subdomains resolves its subnames.
	for _, d := range res.Truth.Domains {
		if d.Subdomains == 0 {
			continue
		}
		found := false
		for _, sub := range []string{"pay", "wallet", "vault", "app", "dao", "mail", "nft", "shop"} {
			if s, ok := res.ENS.SubdomainOf(sub + "." + d.Label); ok {
				found = true
				if s.Parent.IsZero() || s.Owner.IsZero() {
					t.Errorf("subdomain %s.%s incomplete: %+v", sub, d.Label, s)
				}
			}
		}
		if !found {
			t.Errorf("domain %q claims %d subdomains but none found", d.Label, d.Subdomains)
		}
		return
	}
}
