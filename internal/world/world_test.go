package world

import (
	"testing"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/lexical"
)

// genSmall builds a moderate world once for the package's tests.
func genSmall(t *testing.T) *Result {
	t.Helper()
	cfg := DefaultConfig(3000)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

var cached *Result

func world3k(t *testing.T) *Result {
	t.Helper()
	if cached == nil {
		cached = genSmall(t)
	}
	return cached
}

func TestGenerateBasics(t *testing.T) {
	res := world3k(t)
	if len(res.Truth.Domains) != 3000 {
		t.Fatalf("domains = %d", len(res.Truth.Domains))
	}
	if res.Chain.TxCount() < 3000*5 {
		t.Errorf("suspiciously few transactions: %d", res.Chain.TxCount())
	}
	if len(res.CoinbaseAddrs) != 25 || len(res.OtherCustodialAddrs) != 558 {
		t.Errorf("custodial pools: %d coinbase, %d other", len(res.CoinbaseAddrs), len(res.OtherCustodialAddrs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(300)
	r1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Chain.TxCount() != r2.Chain.TxCount() {
		t.Errorf("tx counts differ: %d vs %d", r1.Chain.TxCount(), r2.Chain.TxCount())
	}
	if len(r1.Truth.Domains) != len(r2.Truth.Domains) {
		t.Fatal("domain counts differ")
	}
	for i := range r1.Truth.Domains {
		if r1.Truth.Domains[i].Label != r2.Truth.Domains[i].Label {
			t.Fatalf("label %d differs: %q vs %q", i, r1.Truth.Domains[i].Label, r2.Truth.Domains[i].Label)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig(10)
	cfg.End = cfg.Start
	if _, err := Generate(cfg); err == nil {
		t.Error("empty window accepted")
	}
}

func TestPopulationShape(t *testing.T) {
	res := world3k(t)
	cfg := res.Config

	var expired, caught, selfRecovered, active int
	for _, d := range res.Truth.Domains {
		switch {
		case d.FirstExpiry() >= cfg.End:
			active++
		default:
			expired++
			if d.Dropcaught {
				caught++
			}
			for _, c := range d.Cycles {
				if c.SameOwnerAsPrev {
					selfRecovered++
					break
				}
			}
		}
	}
	t.Logf("expired=%d (%.1f%%), caught=%d (%.1f%% of expired), selfRecovered=%d, active=%d",
		expired, 100*float64(expired)/3000, caught, 100*float64(caught)/float64(expired), selfRecovered, active)

	if frac := float64(expired) / 3000; frac < 0.30 || frac > 0.65 {
		t.Errorf("expired fraction %.2f outside [0.30, 0.65]", frac)
	}
	// Paper: 241K of ~1.41M expired ~= 17% of expired names re-registered.
	if frac := float64(caught) / float64(expired); frac < 0.10 || frac > 0.28 {
		t.Errorf("caught fraction of expired %.3f outside [0.10, 0.28]", frac)
	}
	if selfRecovered == 0 {
		t.Error("no self-recovered domains generated")
	}
}

func TestIncomeSkewTowardCaught(t *testing.T) {
	res := world3k(t)
	cfg := res.Config
	var caughtSum, controlSum float64
	var caughtN, controlN int
	for _, d := range res.Truth.Domains {
		if d.FirstExpiry() >= cfg.End {
			continue
		}
		if d.Dropcaught {
			caughtSum += d.IncomeUSD
			caughtN++
		} else {
			controlSum += d.IncomeUSD
			controlN++
		}
	}
	if caughtN == 0 || controlN == 0 {
		t.Fatal("empty groups")
	}
	ratio := (caughtSum / float64(caughtN)) / (controlSum / float64(controlN))
	t.Logf("income means: caught=%.0f control=%.0f ratio=%.2f",
		caughtSum/float64(caughtN), controlSum/float64(controlN), ratio)
	// Paper: 69,980 vs 21,400 => ratio ~3.3.
	if ratio < 1.8 || ratio > 8 {
		t.Errorf("income ratio %.2f outside [1.8, 8]", ratio)
	}
}

func TestLexicalSelection(t *testing.T) {
	res := world3k(t)
	cfg := res.Config
	ana := lexical.NewAnalyzer()

	var caughtDigit, controlDigit, caughtDict, controlDict int
	var caughtN, controlN int
	for _, d := range res.Truth.Domains {
		if d.FirstExpiry() >= cfg.End {
			continue
		}
		f := ana.Analyze(d.Label)
		if d.Dropcaught {
			caughtN++
			if f.ContainsDigit && !f.IsNumeric {
				caughtDigit++
			}
			if f.IsDictionaryWord {
				caughtDict++
			}
		} else {
			controlN++
			if f.ContainsDigit && !f.IsNumeric {
				controlDigit++
			}
			if f.IsDictionaryWord {
				controlDict++
			}
		}
	}
	digitCaught := float64(caughtDigit) / float64(caughtN)
	digitControl := float64(controlDigit) / float64(controlN)
	dictCaught := float64(caughtDict) / float64(caughtN)
	dictControl := float64(controlDict) / float64(controlN)
	t.Logf("non-numeric-digit: caught=%.3f control=%.3f; exact-dict: caught=%.3f control=%.3f",
		digitCaught, digitControl, dictCaught, dictControl)

	if digitCaught >= digitControl {
		t.Errorf("digit-containing names should be LESS re-registered: %.3f vs %.3f", digitCaught, digitControl)
	}
	if dictCaught <= dictControl {
		t.Errorf("dictionary words should be MORE re-registered: %.3f vs %.3f", dictCaught, dictControl)
	}
}

func TestCatchTimingClusters(t *testing.T) {
	res := world3k(t)
	var premium, sameDay, short, tail int
	for _, d := range res.Truth.Domains {
		if !d.Dropcaught || len(d.Cycles) < 2 {
			continue
		}
		prev, next := d.Cycles[0], d.Cycles[1]
		if next.SameOwnerAsPrev {
			continue
		}
		pe := ens.PremiumEndTime(prev.Expiry)
		switch delay := next.RegisteredAt - pe; {
		case delay < 0:
			premium++
			if next.PremiumUSD <= 0 {
				t.Errorf("%s caught during auction but premium = %v", d.Label, next.PremiumUSD)
			}
		case delay < 86400:
			sameDay++
		case delay < 15*86400:
			short++
		default:
			tail++
		}
	}
	total := premium + sameDay + short + tail
	t.Logf("catch delays: premium=%d sameDay=%d short=%d tail=%d (total %d)", premium, sameDay, short, tail, total)
	if total == 0 {
		t.Fatal("no catches")
	}
	if premium == 0 || sameDay == 0 || short == 0 || tail == 0 {
		t.Error("some delay cluster is empty")
	}
	if tail < sameDay {
		t.Error("long tail should dominate the same-day spike")
	}
}

func TestMisdirectedAndMarketplace(t *testing.T) {
	res := world3k(t)
	var misUSD float64
	var misTx, affected, listed, sold int
	for _, d := range res.Truth.Domains {
		misUSD += d.MisdirectedUSD
		misTx += d.MisdirectedTxs
		if d.MisdirectedTxs > 0 {
			affected++
		}
		if d.Listed {
			listed++
		}
		if d.Sold {
			sold++
		}
	}
	t.Logf("misdirected: %d txs on %d domains, %.0f USD total; marketplace: %d listed, %d sold; truth hashes=%d",
		misTx, affected, misUSD, listed, sold, len(res.Truth.MisdirectedTxHashes))
	if misTx == 0 {
		t.Error("no misdirected transactions generated")
	}
	if len(res.Truth.MisdirectedTxHashes) != misTx {
		t.Errorf("truth hash count %d != truth tx count %d", len(res.Truth.MisdirectedTxHashes), misTx)
	}
	if listed == 0 || sold == 0 || sold > listed {
		t.Errorf("marketplace counts off: %d listed, %d sold", listed, sold)
	}
	if len(res.OpenSea) < listed+sold {
		t.Errorf("opensea events %d < listings+sales %d", len(res.OpenSea), listed+sold)
	}
}

func TestStaleResolutionOnChain(t *testing.T) {
	res := world3k(t)
	// Find a caught domain and confirm the chain-level invariant: after the
	// catch, the name resolves to the catcher's wallet.
	for _, d := range res.Truth.Domains {
		if !d.Dropcaught || len(d.Cycles) < 2 {
			continue
		}
		addr, ok := res.ENS.Resolve(d.Label)
		if !ok {
			t.Fatalf("caught domain %q does not resolve", d.Label)
		}
		last := d.Cycles[len(d.Cycles)-1]
		if d.Sold {
			continue // resolver points at the NFT buyer
		}
		if addr != last.Wallet {
			t.Fatalf("%q resolves to %s, want %s", d.Label, addr, last.Wallet)
		}
		return
	}
	t.Fatal("no caught domain found")
}
