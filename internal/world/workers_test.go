package world

import "testing"

// TestDomainSeedSpread guards the per-domain stream derivation: adjacent
// domain indexes (and adjacent world seeds) must yield distinct seeds, or
// neighboring domains would plan identical randomness.
func TestDomainSeedSpread(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := domainSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("domainSeed(1, %d) == domainSeed(1, %d)", i, prev)
		}
		seen[s] = i
	}
	if domainSeed(1, 0) == domainSeed(2, 0) {
		t.Fatal("adjacent world seeds collide at domain 0")
	}
}
