package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
	"ensdropcatch/internal/par"
)

type evKind uint8

const (
	evRegister evKind = iota
	evRegisterUnindexed
	evRenew
	evSetAddr
	evTransferName
	evSend
	evCreateSubdomain
	evSetSubAddr
)

// event is one planned action, executed against the chain in timestamp
// order.
type event struct {
	ts       int64
	seq      int32
	kind     evKind
	label    string // domain label; for subdomain ops the parent label
	subLabel string // subdomain label (evCreateSubdomain/evSetSubAddr)
	from     ethtypes.Address
	to       ethtypes.Address // register/transfer: new owner; setAddr: target; send: recipient
	usd      float64          // send amount in USD (converted at execution)
	duration time.Duration    // register/renew duration
	truthMis bool             // send is ground-truth misdirected
	truthInt bool             // send is intentional but matches the loss pattern
	viaENS   bool             // send was initiated by resolving the name
}

// senderRel is one sender-domain relationship during the first cycle.
type senderRel struct {
	addr       ethtypes.Address
	kind       SenderKind
	ensChannel bool
	lastTx     int64
	// preTenure marks contacts whose relationship with the owner
	// predates the domain registration.
	preTenure bool
}

// planner holds the world-level state: the shared immutable inputs every
// per-domain planner reads (pools, lexical analyzer, registration-time
// curve) and the merged output script.
type planner struct {
	cfg      Config
	lexGen   *lexical.Generator
	ana      *lexical.Analyzer
	senders  *senderPool
	catchers *catcherPool

	events  []event
	seq     int32
	truth   *Truth
	opensea []OpenSeaEvent

	monthStarts []int64 // month boundaries across [Start, End]
	monthCum    []float64
}

// domainPlanner plans one domain in isolation. It owns a private rng
// seeded from (world seed, domain index) and private Zipf samplers (a
// rand.Zipf binds its rng at construction), so domains can be planned on
// any worker in any order and still produce identical output. Everything
// else it holds is shared and read-only.
type domainPlanner struct {
	cfg         Config
	rng         *rand.Rand
	ana         *lexical.Analyzer
	senders     *senderPool
	catchers    *catcherPool
	monthStarts []int64
	monthCum    []float64
	nonCustZipf *rand.Zipf
	proZipf     *rand.Zipf

	events  []event
	opensea []OpenSeaEvent
	truth   *DomainTruth
}

func newPlanner(cfg Config) *planner {
	p := &planner{
		cfg:      cfg,
		lexGen:   lexical.NewGenerator(cfg.Seed+1, nil),
		ana:      lexical.NewAnalyzer(),
		senders:  newSenderPool(cfg),
		catchers: newCatcherPool(cfg.NumDomains),
		truth: &Truth{
			MisdirectedTxHashes: make(map[ethtypes.Hash]bool),
			IntentionalTxHashes: make(map[ethtypes.Hash]bool),
		},
	}
	p.buildRegTimeDist()
	return p
}

// domainPlanner builds the isolated planner for domain i.
func (p *planner) domainPlanner(i int) *domainPlanner {
	rng := rand.New(rand.NewSource(domainSeed(p.cfg.Seed, i)))
	return &domainPlanner{
		cfg:         p.cfg,
		rng:         rng,
		ana:         p.ana,
		senders:     p.senders,
		catchers:    p.catchers,
		monthStarts: p.monthStarts,
		monthCum:    p.monthCum,
		nonCustZipf: p.senders.zipf(rng),
		proZipf:     p.catchers.zipf(rng),
	}
}

// domainSeed derives the per-domain RNG seed from the world seed via a
// splitmix64-style mix, so adjacent domains get statistically unrelated
// streams and each domain's plan depends only on (seed, i).
func domainSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// buildRegTimeDist sets up the monthly registration-volume curve of
// Figure 2: rising through 2021-2022, peaking in early-mid 2022, then
// declining through 2023.
func (p *planner) buildRegTimeDist() {
	t := time.Unix(p.cfg.Start, 0).UTC()
	end := time.Unix(p.cfg.End, 0).UTC()
	cur := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
	var weights []float64
	for cur.Before(end) {
		p.monthStarts = append(p.monthStarts, cur.Unix())
		weights = append(weights, regMonthWeight(cur))
		cur = cur.AddDate(0, 1, 0)
	}
	p.monthStarts = append(p.monthStarts, end.Unix())
	total := 0.0
	p.monthCum = make([]float64, len(weights))
	for i, w := range weights {
		total += w
		p.monthCum[i] = total
	}
	for i := range p.monthCum {
		p.monthCum[i] /= total
	}
}

func regMonthWeight(m time.Time) float64 {
	idx := (m.Year()-2020)*12 + int(m.Month()-1) // Jan 2020 = 0
	switch {
	case idx < 11: // 2020
		return 1.2
	case idx < 23: // 2021: ramp 2 -> 4.5
		return 2 + 2.5*float64(idx-11)/11
	case idx < 29: // 2022 H1: ramp 5 -> 8
		return 5 + 3*float64(idx-23)/5
	case idx < 35: // 2022 H2: 8 -> 5.5
		return 8 - 2.5*float64(idx-29)/5
	default: // 2023: 4.5 declining to 2
		return math.Max(2, 4.5-2.5*float64(idx-35)/8)
	}
}

func (p *domainPlanner) sampleRegTime() int64 {
	u := p.rng.Float64()
	i := sort.SearchFloat64s(p.monthCum, u)
	if i >= len(p.monthCum) {
		i = len(p.monthCum) - 1
	}
	lo, hi := p.monthStarts[i], p.monthStarts[i+1]
	return lo + p.rng.Int63n(hi-lo)
}

// push appends a planned event. The global seq tie-breaker is assigned
// later, when the planner merges the per-domain scripts in domain order.
func (p *domainPlanner) push(ev event) {
	p.events = append(p.events, ev)
}

// Distribution helpers.

func (p *domainPlanner) poisson(lambda float64) int {
	// Knuth's algorithm; fine for the small lambdas used here.
	l := math.Exp(-lambda)
	k := 0
	prod := 1.0
	for {
		prod *= p.rng.Float64()
		if prod <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func (p *domainPlanner) lognormal(median, sigma float64) float64 {
	return median * math.Exp(p.rng.NormFloat64()*sigma)
}

// geometric returns a non-negative count with success probability q per
// trial (mean (1-q)/q).
func (p *domainPlanner) geometric(q float64) int {
	k := 0
	for p.rng.Float64() > q && k < 50 {
		k++
	}
	return k
}

func (p *domainPlanner) days(lo, hi float64) int64 {
	return int64((lo + p.rng.Float64()*(hi-lo)) * 86400)
}

// subdomainLabels are the delegation names owners typically create.
var subdomainLabels = []string{"pay", "wallet", "vault", "app", "dao", "mail", "nft", "shop"}

// plan generates the full event script and ground truth. Labels are drawn
// sequentially up front (the generator dedupes against a shared set), then
// each domain is planned in isolation on the worker pool and the resulting
// scripts are merged back in domain order, assigning the global seq
// tie-breakers. The output is therefore identical for every worker count.
func (p *planner) plan() {
	n := p.cfg.NumDomains
	labels := make([]string, n)
	cats := make([]lexical.Category, n)
	for i := 0; i < n; i++ {
		labels[i], cats[i] = p.lexGen.Next()
	}

	pool := par.New("world_plan", p.cfg.Workers)
	plans := par.Map(pool, n, func(i int) *domainPlanner {
		dp := p.domainPlanner(i)
		dp.planDomain(i, labels[i], cats[i])
		return dp
	})

	for _, dp := range plans {
		p.truth.Domains = append(p.truth.Domains, dp.truth)
		for _, ev := range dp.events {
			ev.seq = p.seq
			p.seq++
			p.events = append(p.events, ev)
		}
		p.opensea = append(p.opensea, dp.opensea...)
	}
}

func (p *domainPlanner) planDomain(i int, label string, cat lexical.Category) {
	cfg := p.cfg
	truth := &DomainTruth{Label: label, Category: cat}
	p.truth = truth

	owner := ethtypes.DeriveAddress(fmt.Sprintf("owner-%07d", i))
	migration := p.rng.Float64() < cfg.MigrationFraction

	var regAt, expiry int64
	var dur time.Duration
	if migration {
		// Legacy cohort: registration recorded at window start, expiry
		// pinned near the migration deadline.
		regAt = cfg.Start + p.rng.Int63n(86400*7)
		expiry = cfg.MigrationDeadline + p.days(-10, 20)
		dur = time.Duration(expiry-regAt) * time.Second
	} else {
		regAt = p.sampleRegTime()
		dur = p.sampleDuration()
		expiry = regAt + int64(dur/time.Second)
	}

	kind := evRegister
	if p.rng.Float64() < cfg.UnindexedFraction {
		kind = evRegisterUnindexed
		truth.Unindexed = true
	}
	p.push(event{ts: regAt, kind: kind, label: label, from: owner, to: owner, duration: dur})
	p.push(event{ts: regAt + 3600, kind: evSetAddr, label: label, from: owner, to: owner})

	// Renewals extend the first cycle.
	renewals := 0
	renewProb := cfg.RenewProb
	if migration {
		renewProb = cfg.MigrationRenewProb
	}
	for expiry < cfg.End && p.rng.Float64() < renewProb {
		renewAt := expiry - p.days(1, 30)
		if renewAt <= regAt+3600 {
			renewAt = expiry - 3600
		}
		p.push(event{ts: renewAt, kind: evRenew, label: label, from: owner, duration: year})
		expiry += int64(year / time.Second)
		renewals++
		renewProb = cfg.RenewProb
	}

	cycle1 := CycleTruth{Owner: owner, Wallet: owner, RegisteredAt: regAt, Expiry: expiry, Renewals: renewals}
	truth.Cycles = append(truth.Cycles, cycle1)

	// Ownership transfer for long-lived survivors only (keeps transfer
	// history orthogonal to the dropcatch pipeline).
	if expiry > cfg.End && p.rng.Float64() < cfg.TransferProb {
		at := regAt + p.days(30, 200)
		if at < cfg.End {
			newOwner := ethtypes.DeriveAddress(fmt.Sprintf("owner-%07d-t", i))
			p.push(event{ts: at, kind: evTransferName, label: label, from: owner, to: newOwner})
			p.push(event{ts: at + 3600, kind: evSetAddr, label: label, from: newOwner, to: newOwner})
		}
	}

	// Subdomains: some owners delegate names like pay.gold.eth. Created
	// early in the tenure (before any survivor transfer).
	if p.rng.Float64() < cfg.SubdomainProb {
		k := 1 + p.geometric(0.5)
		for t := 0; t < k && t < len(subdomainLabels); t++ {
			at := regAt + p.days(5, 25)
			if at >= expiry-3600 || at >= cfg.End-3600 {
				continue
			}
			subOwner := owner
			if p.rng.Float64() < 0.3 {
				subOwner = ethtypes.DeriveAddress(fmt.Sprintf("subowner-%07d-%d", i, t))
			}
			sub := subdomainLabels[t]
			p.push(event{ts: at, kind: evCreateSubdomain, label: label, subLabel: sub, from: owner, to: subOwner})
			p.push(event{ts: at + 600, kind: evSetSubAddr, label: label, subLabel: sub, from: subOwner, to: subOwner})
			truth.Subdomains++
		}
	}

	// First-cycle income.
	tenureEnd := expiry
	if tenureEnd > cfg.End {
		tenureEnd = cfg.End
	}
	rels, income, txCount := p.planIncome(truth, label, owner, regAt, tenureEnd)
	truth.IncomeUSD = income
	truth.Senders = len(rels)
	truth.Transactions = txCount

	if expiry >= cfg.End {
		return // still active (or in grace) at the end of the window
	}

	// The name expired inside the window.
	premiumEnd := ens.PremiumEndTime(expiry)
	if premiumEnd >= cfg.End-86400*2 {
		// Grace or auction extends beyond the window: nobody can have
		// re-registered yet. Stale senders may still pay the old wallet.
		p.planStaleSends(truth, label, rels, owner, expiry, cfg.End, income, txCount)
		return
	}

	// Value the name the way dropcatchers do.
	feats := p.ana.Analyze(label)
	v := lexScore(feats) + incomeScore(income) + p.rng.NormFloat64()*0.6
	pCatch := cfg.CatchBase * logistic(v-cfg.CatchThreshold)

	if p.rng.Float64() < cfg.SelfRecoverProb {
		// The original owner buys their own name back after the auction.
		at := premiumEnd + p.days(0, 5)
		if at < cfg.End {
			p.planStaleSends(truth, label, rels, owner, expiry, at, income, txCount)
			p.push(event{ts: at, kind: evRegister, label: label, from: owner, to: owner, duration: year})
			truth.Cycles = append(truth.Cycles, CycleTruth{
				Owner: owner, Wallet: owner, RegisteredAt: at,
				Expiry: at + int64(year/time.Second), SameOwnerAsPrev: true,
			})
		}
		return
	}

	if p.rng.Float64() >= pCatch {
		// Expired, never re-registered: the control population.
		p.planStaleSends(truth, label, rels, owner, expiry, cfg.End, income, txCount)
		return
	}

	// Dropcaught. Decide when, by whom, and what follows.
	catchAt, _ := p.planCatchTime(expiry, v)
	if catchAt >= cfg.End-3600 {
		p.planStaleSends(truth, label, rels, owner, expiry, cfg.End, income, txCount)
		return
	}
	p.planStaleSends(truth, label, rels, owner, expiry, catchAt, income, txCount)
	p.planCatchCycles(i, truth, label, rels, owner, expiry, catchAt, v)
}

func (p *domainPlanner) sampleDuration() time.Duration {
	r := p.rng.Float64()
	switch {
	case r < 0.68:
		return year
	case r < 0.83:
		return 2 * year
	case r < 0.88:
		return 3 * year
	default:
		// Short registrations between the 28-day minimum and ~6 months.
		return ens.MinRegistrationDuration + time.Duration(p.rng.Int63n(int64(5*30*24)))*time.Hour
	}
}

// planIncome creates the first-cycle income transactions and returns the
// sender relationships, total USD income, and transaction count.
func (p *domainPlanner) planIncome(truth *DomainTruth, label string, wallet ethtypes.Address, from, to int64) ([]senderRel, float64, int) {
	cfg := p.cfg
	income := p.lognormal(cfg.IncomeMedianUSD, cfg.IncomeSigma)
	factor := math.Log10(1+income) / 3.5
	if factor < 0.4 {
		factor = 0.4
	}
	if factor > 2.0 {
		factor = 2.0
	}
	n := 1 + p.poisson(cfg.SenderMean*factor)

	rels := make([]senderRel, 0, n)
	type plannedTx struct {
		rel int
		ts  int64
		w   float64
	}
	var txs []plannedTx
	span := to - from
	if span < 86400 {
		span = 86400
	}
	for s := 0; s < n; s++ {
		addr, kind := p.senders.pick(p.rng, p.nonCustZipf)
		rel := senderRel{
			addr:       addr,
			kind:       kind,
			ensChannel: kind != OtherCustodial && p.rng.Float64() < cfg.ENSChannelProb,
		}
		k := 1 + p.poisson(2.2)
		for t := 0; t < k; t++ {
			ts := from + 86400 + p.rng.Int63n(span)
			if ts > to {
				ts = to
			}
			if ts > rel.lastTx {
				rel.lastTx = ts
			}
			txs = append(txs, plannedTx{rel: s, ts: ts, w: p.rng.ExpFloat64()})
		}
		// Some contacts already paid this owner before the domain
		// existed — payments attributable to the relationship, not the
		// name. They are emitted directly (outside the income split).
		if room := from - p.cfg.Start - 2*86400; room > 86400 && p.rng.Float64() < cfg.PreTenureProb {
			rel.preTenure = true
			for t := 0; t < 1+p.rng.Intn(2); t++ {
				ts := p.cfg.Start + 86400 + p.rng.Int63n(room)
				p.push(event{ts: ts, kind: evSend, from: rel.addr, to: wallet, usd: p.lognormal(120, 1.2)})
			}
		}
		rels = append(rels, rel)
	}
	var totalW float64
	for _, tx := range txs {
		totalW += tx.w
	}
	for _, tx := range txs {
		amount := income * tx.w / totalW
		p.push(event{ts: tx.ts, kind: evSend, label: label, from: rels[tx.rel].addr, to: wallet, usd: amount, viaENS: rels[tx.rel].ensChannel})
	}
	return rels, income, len(txs)
}

// planStaleSends models senders who keep paying an expired name's wallet
// before any re-registration (Figure 7's hijackable funds). The window is
// [expiry, until).
func (p *domainPlanner) planStaleSends(truth *DomainTruth, label string, rels []senderRel, wallet ethtypes.Address, expiry, until int64, income float64, txCount int) {
	if until <= expiry+3600 || txCount == 0 {
		return
	}
	perTx := income / float64(txCount)
	span := until - expiry - 3600
	for _, rel := range rels {
		if p.rng.Float64() >= p.cfg.StaleSendProb {
			continue
		}
		k := 1 + p.geometric(0.5)
		for t := 0; t < k; t++ {
			ts := expiry + 3600 + p.rng.Int63n(span)
			amount := perTx * p.rng.ExpFloat64()
			if amount < 0.01 {
				amount = 0.01
			}
			truth.HijackableUSD += amount
			p.push(event{ts: ts, kind: evSend, label: label, from: rel.addr, to: wallet, usd: amount, viaENS: rel.ensChannel})
		}
	}
}

// planCatchTime picks the re-registration instant, reproducing Figure 3's
// clustering: premium payers inside the auction, a spike on the day the
// premium ends, a bump shortly after, and a long exponential tail.
func (p *domainPlanner) planCatchTime(expiry int64, v float64) (int64, float64) {
	cfg := p.cfg
	release := ens.ReleaseTime(expiry)
	premiumEnd := ens.PremiumEndTime(expiry)

	if v > 1.6 && p.rng.Float64() < cfg.PremiumPayerProb {
		// Pay a positive premium: sample a target premium and invert the
		// halving curve to find the day.
		target := p.lognormal(60, 2.0)
		if target > 60000 {
			target = 60000
		}
		if target < 1 {
			target = 1
		}
		endVal := float64(ens.PremiumStartUSD) * math.Pow(0.5, 21)
		daysIn := math.Log2(float64(ens.PremiumStartUSD) / (target + endVal))
		if daysIn < 0 {
			daysIn = 0
		}
		if daysIn > 20.95 {
			daysIn = 20.95
		}
		at := release + int64(daysIn*86400)
		return at, ens.PremiumUSDAt(expiry, at)
	}

	r := p.rng.Float64()
	switch {
	case r < cfg.SameDayProb:
		return premiumEnd + p.rng.Int63n(86400), 0
	case r < cfg.SameDayProb+cfg.ShortDelayProb:
		return premiumEnd + 86400 + p.days(0, 13), 0
	default:
		delay := int64(p.rng.ExpFloat64() * cfg.TailDelayMeanDays * 86400)
		at := premiumEnd + 86400 + delay
		if at >= p.cfg.End {
			// Fold the overshoot back into the available window.
			avail := p.cfg.End - premiumEnd - 7200
			if avail <= 0 {
				return p.cfg.End, 0
			}
			at = premiumEnd + 3600 + p.rng.Int63n(avail)
		}
		return at, 0
	}
}

// planCatchCycles emits the dropcatch registration, subsequent renewals or
// re-drops (Figure 4's multi-cycle names), the misdirected payments of the
// paper's loss scenario, catcher-side noise income, and OpenSea resales.
func (p *domainPlanner) planCatchCycles(i int, truth *DomainTruth, label string, rels []senderRel, a1 ethtypes.Address, prevExpiry, catchAt int64, v float64) {
	cfg := p.cfg
	truth.Dropcaught = true

	catcher := p.catchers.pick(p.rng, p.proZipf)
	if catcher == a1 {
		catcher = ethtypes.DeriveAddress(fmt.Sprintf("dropcatcher-extra-%07d", i))
	}

	dur := year
	if p.rng.Float64() < 0.30 {
		dur = ens.MinRegistrationDuration + time.Duration(p.rng.Int63n(int64(60*24)))*time.Hour
	}
	p.push(event{ts: catchAt, kind: evRegister, label: label, from: catcher, to: catcher, duration: dur})
	p.push(event{ts: catchAt + 7200, kind: evSetAddr, label: label, from: catcher, to: catcher})

	expiry := catchAt + int64(dur/time.Second)
	renewals := 0
	for expiry < cfg.End && p.rng.Float64() < 0.25 {
		renewAt := expiry - p.days(1, 20)
		if renewAt <= catchAt+7200 {
			renewAt = expiry - 3600
		}
		p.push(event{ts: renewAt, kind: evRenew, label: label, from: catcher, duration: year})
		expiry += int64(year / time.Second)
		renewals++
	}
	premiumPaid := ens.PremiumUSDAt(prevExpiry, catchAt)
	truth.Cycles = append(truth.Cycles, CycleTruth{
		Owner: catcher, Wallet: catcher, RegisteredAt: catchAt,
		Expiry: expiry, Renewals: renewals, PremiumUSD: premiumPaid,
	})

	// Misdirected payments: first-cycle ENS-channel senders who keep
	// paying through the name, now resolving to the catcher.
	misWindowEnd := expiry
	if misWindowEnd > cfg.End {
		misWindowEnd = cfg.End
	}
	if misWindowEnd > catchAt+7200+3600 {
		span := misWindowEnd - catchAt - 7200 - 3600
		for _, rel := range rels {
			// Confounder classes the heuristic must handle.
			if rel.preTenure {
				// A pre-existing contact of a1 may also pay a2 for
				// unrelated reasons (not via the name).
				if p.rng.Float64() < cfg.PreTenureToA2Prob {
					ts := catchAt + 7200 + 3600 + p.rng.Int63n(span)
					p.push(event{ts: ts, kind: evSend, from: rel.addr, to: catcher, usd: p.lognormal(150, 1.3)})
				}
				continue
			}
			if rel.kind == OtherCustodial {
				// A shared exchange address that paid a1 may pay a2 on
				// behalf of a completely different user.
				if p.rng.Float64() < cfg.CustodialCoincidenceProb {
					ts := catchAt + 7200 + 3600 + p.rng.Int63n(span)
					p.push(event{ts: ts, kind: evSend, from: rel.addr, to: catcher, usd: p.lognormal(250, 1.4)})
				}
				continue
			}
			if !rel.ensChannel {
				continue
			}
			if p.rng.Float64() >= cfg.MisdirectProb {
				continue
			}
			split := p.rng.Float64() < cfg.SplitSenderProb
			intentional := split || p.rng.Float64() < cfg.IntentionalProb
			k := 1 + p.geometric(0.62) // mostly single transactions
			if k > 4 {
				k = 4
			}
			for t := 0; t < k; t++ {
				ts := catchAt + 7200 + 3600 + p.rng.Int63n(span)
				amount := p.lognormal(300, 1.6)
				ev := event{ts: ts, kind: evSend, label: label, from: rel.addr, to: catcher, usd: amount}
				if intentional {
					// Intentional payments are typed by address, not
					// resolved through the name.
					ev.truthInt = true
				} else {
					ev.truthMis = true
					ev.viaENS = true
					truth.MisdirectedUSD += amount
					truth.MisdirectedTxs++
				}
				p.push(ev)
			}
			if split {
				// The sender also pays the old wallet again — the
				// pattern that must disqualify them from the heuristic.
				ts := catchAt + 7200 + 3600 + p.rng.Int63n(span)
				p.push(event{ts: ts, kind: evSend, from: rel.addr, to: a1, usd: p.lognormal(300, 1.6)})
			}
		}
	}

	// Unrelated income to the catcher wallet (noise the heuristic must
	// not attribute to the domain). These counterparties are the
	// catcher's own contacts, distinct from the domain's sender circle.
	if p.rng.Float64() < cfg.CatcherNoiseProb && misWindowEnd > catchAt+86400 {
		k := 1 + p.poisson(1.5)
		span := misWindowEnd - catchAt - 86400
		for t := 0; t < k; t++ {
			ts := catchAt + 86400 + p.rng.Int63n(span+1)
			noiseSender := ethtypes.DeriveAddress(fmt.Sprintf("biz-contact-%07d-%d", i, t))
			p.push(event{ts: ts, kind: evSend, from: noiseSender, to: catcher, usd: p.lognormal(200, 1.5)})
		}
	}

	// OpenSea resale.
	sold := false
	if p.rng.Float64() < cfg.ListProb {
		listAt := catchAt + p.days(5, 60)
		if listAt < cfg.End {
			price := p.lognormal(450, 1.6)
			truth.Listed = true
			p.opensea = append(p.opensea, OpenSeaEvent{
				Kind: OSList, Label: label, TokenID: ens.LabelHash(label),
				Seller: catcher, PriceUSD: price, Timestamp: listAt,
			})
			if p.rng.Float64() < cfg.SoldProb {
				saleAt := listAt + p.days(1, 45)
				if saleAt < cfg.End && saleAt < expiry-86400 {
					buyer := ethtypes.DeriveAddress(fmt.Sprintf("nft-buyer-%07d", i))
					truth.Sold = true
					truth.SalePriceUSD = price
					sold = true
					p.opensea = append(p.opensea, OpenSeaEvent{
						Kind: OSSale, Label: label, TokenID: ens.LabelHash(label),
						Seller: catcher, Buyer: buyer, PriceUSD: price, Timestamp: saleAt,
					})
					p.push(event{ts: saleAt, kind: evSend, from: buyer, to: catcher, usd: price})
					p.push(event{ts: saleAt + 600, kind: evTransferName, label: label, from: catcher, to: buyer})
					p.push(event{ts: saleAt + 1200, kind: evSetAddr, label: label, from: buyer, to: buyer})
				}
			}
		}
	}

	// Multi-cycle drops: the catcher lets the name lapse and it is caught
	// again (recursion capped at a few cycles).
	if !sold && expiry < cfg.End && len(truth.Cycles) < 5 {
		premiumEnd := ens.PremiumEndTime(expiry)
		if premiumEnd < cfg.End-86400*2 {
			pAgain := logistic(v-cfg.CatchThreshold) * cfg.RecatchFactor
			if pAgain > 0.9 {
				pAgain = 0.9
			}
			if p.rng.Float64() < pAgain {
				nextAt, _ := p.planCatchTime(expiry, v)
				if nextAt < cfg.End-3600 {
					p.planCatchCycles(i, truth, label, nil, catcher, expiry, nextAt, v)
				}
			}
		}
	}
}
