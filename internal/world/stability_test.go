package world

import (
	"testing"

	"ensdropcatch/internal/lexical"
)

// TestSeedStability: the headline calibration properties must hold across
// seeds, not just the test seed — the analysis results are functions of
// the mechanisms, not of one lucky RNG stream.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed generation")
	}
	ana := lexical.NewAnalyzer()
	for _, seed := range []int64{2, 3, 5} {
		cfg := DefaultConfig(2000)
		cfg.Seed = seed
		res, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var expired, caught int
		var caughtIncome, controlIncome float64
		var caughtDigit, controlDigit, caughtN, controlN int
		for _, d := range res.Truth.Domains {
			if d.FirstExpiry() >= cfg.End {
				continue
			}
			expired++
			f := ana.Analyze(d.Label)
			if d.Dropcaught {
				caught++
				caughtIncome += d.IncomeUSD
				caughtN++
				if f.ContainsDigit && !f.IsNumeric {
					caughtDigit++
				}
			} else {
				controlIncome += d.IncomeUSD
				controlN++
				if f.ContainsDigit && !f.IsNumeric {
					controlDigit++
				}
			}
		}
		if expired == 0 || caught == 0 {
			t.Fatalf("seed %d: degenerate (expired=%d caught=%d)", seed, expired, caught)
		}
		catchRate := float64(caught) / float64(expired)
		if catchRate < 0.08 || catchRate > 0.30 {
			t.Errorf("seed %d: catch rate %.3f out of band", seed, catchRate)
		}
		incomeRatio := (caughtIncome / float64(caughtN)) / (controlIncome / float64(controlN))
		if incomeRatio < 1.5 {
			t.Errorf("seed %d: income ratio %.2f lost its direction", seed, incomeRatio)
		}
		digitCaught := float64(caughtDigit) / float64(caughtN)
		digitControl := float64(controlDigit) / float64(controlN)
		if digitCaught >= digitControl {
			t.Errorf("seed %d: digit direction inverted (%.3f vs %.3f)", seed, digitCaught, digitControl)
		}
		t.Logf("seed %d: catchRate=%.3f incomeRatio=%.2f digit=%.3f/%.3f",
			seed, catchRate, incomeRatio, digitCaught, digitControl)
	}
}

// TestPaperRateLossConfig validates the paper-rate configuration: with
// MisdirectProb dialed to the observed per-sender rate, the affected
// domain count lands near the scaled paper value (940 of 3.103M).
func TestPaperRateLossConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("large world")
	}
	cfg := PaperScaleLossConfig(12000)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	affected := 0
	for _, d := range res.Truth.Domains {
		if d.MisdirectedTxs > 0 {
			affected++
		}
	}
	// Scaled expectation: 940 * 12000/3103000 ~= 3.6. Poisson noise at
	// this scale is large; accept a broad band around it.
	if affected > 20 {
		t.Errorf("paper-rate config produced %d affected domains; expected a handful", affected)
	}
	t.Logf("paper-rate config: %d affected domains (scaled expectation ~3.6)", affected)
}
