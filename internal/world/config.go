// Package world generates a synthetic ENS ecosystem: a population of owners
// registering, renewing, and abandoning .eth names; senders paying them
// through ENS or by raw address; and dropcatchers re-registering expired
// names weighted by the income and lexical value the paper's Table 1
// identifies. It drives the internal/chain and internal/ens substrates to
// produce a full on-chain history (Feb 2020 - Sep 2023, like the paper's
// window), plus an OpenSea-style event stream and ground-truth labels the
// analysis pipeline can be validated against — but never reads.
package world

import "ensdropcatch/internal/ens"

// Unix timestamps delimiting the paper's measurement window.
const (
	// DefaultStart is 2020-02-01T00:00:00Z.
	DefaultStart int64 = 1580515200
	// DefaultMigrationDeadline is 2020-05-04T00:00:00Z, the renewal
	// deadline of the 2020 ENS contract migration that caused the
	// expiration spike in Figure 2.
	DefaultMigrationDeadline int64 = 1588550400
	// DefaultEnd is 2023-09-30T00:00:00Z.
	DefaultEnd int64 = 1696032000
)

// Config controls the generated world. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	Seed       int64
	NumDomains int
	Start, End int64
	// Workers bounds the per-domain planning fan-out; 0 means GOMAXPROCS.
	// The generated world is identical for every value (planning streams
	// are derived per domain, not from a shared sequential rng).
	Workers int
	// MigrationDeadline is the forced expiry date of the legacy cohort.
	MigrationDeadline int64

	// MigrationFraction of domains belong to the pre-2020 cohort whose
	// registration is backdated to Start and expires at the migration
	// deadline unless renewed.
	MigrationFraction float64
	// MigrationRenewProb is the probability a legacy owner renews by the
	// deadline.
	MigrationRenewProb float64
	// RenewProb is the per-expiry probability an owner renews a name.
	RenewProb float64
	// UnindexedFraction of registrations bypass the controller so the
	// subgraph never learns their plaintext label (the paper's ~34K
	// unrecoverable names, ~1%).
	UnindexedFraction float64
	// TransferProb is the probability an active name is transferred to a
	// new owner once during a cycle (a sale outside our marketplace).
	TransferProb float64
	// SubdomainProb is the probability a domain's owner creates
	// subdomains (the paper's dataset includes 846,752 of them,
	// ~0.27 per 2LD).
	SubdomainProb float64

	// IncomeMedianUSD and IncomeSigma parametrize the lognormal
	// pre-expiry income of a domain's wallet.
	IncomeMedianUSD float64
	IncomeSigma     float64
	// SenderMean is the Poisson mean of additional senders per domain
	// (every domain has at least one).
	SenderMean float64
	// StaleSendProb is the probability a sender keeps paying a wallet
	// after its domain expired (the hijackable funds of Figure 7).
	StaleSendProb float64

	// CatchBase scales the overall dropcatch probability; CatchThreshold
	// centers the logistic over the domain value score.
	CatchBase      float64
	CatchThreshold float64
	// SelfRecoverProb is the probability the ORIGINAL owner re-registers
	// their own expired name after the auction (not a dropcatch).
	SelfRecoverProb float64
	// RecatchFactor multiplies the catch probability for names dropped a
	// second or later time (Figure 4's multi-cycle names).
	RecatchFactor float64

	// PremiumPayerProb is the probability a high-value catch happens
	// during the Dutch auction at a positive premium.
	PremiumPayerProb float64
	// SameDayProb / ShortDelayProb control the Figure 3 clustering at and
	// just after the premium end.
	SameDayProb    float64
	ShortDelayProb float64
	// TailDelayMeanDays is the mean of the exponential long-tail
	// re-registration delay.
	TailDelayMeanDays float64

	// MisdirectProb is the per-(ENS-channel sender) probability of
	// continuing to pay through the re-registered name, i.e. sending
	// funds to the new owner (the paper's financial-loss scenario).
	// The paper-scale rate is ~0.0012; the default is inflated so the
	// loss figures have usable sample sizes at 1/50 scale (documented in
	// EXPERIMENTS.md).
	MisdirectProb float64
	// SplitSenderProb is the probability a continuing sender ALSO pays
	// the old owner again after the re-registration — a confounder the
	// conservative heuristic must exclude.
	SplitSenderProb float64
	// IntentionalProb is the fraction of post-catch payments to the new
	// owner that are intentional (ground truth: not misdirected), the
	// false-positive class the paper's Limitations section discusses.
	IntentionalProb float64
	// PreTenureProb is the probability a sender's relationship with an
	// owner predates the domain registration (payments before the
	// registration date), the class the heuristic's "only while a1 held
	// d" clause excludes.
	PreTenureProb float64
	// PreTenureToA2Prob is the probability such a pre-existing contact
	// also pays the new owner after the catch for unrelated reasons —
	// the false positive the clause protects against.
	PreTenureToA2Prob float64
	// CustodialCoincidenceProb is the probability a non-Coinbase
	// custodial address that paid a1 also pays a2 post-catch (different
	// users behind the shared address) — what the custodial filter
	// removes.
	CustodialCoincidenceProb float64
	// CatcherNoiseProb is the probability a catcher wallet receives
	// unrelated income from fresh senders.
	CatcherNoiseProb float64

	// ListProb is the probability a caught name is listed on OpenSea;
	// SoldProb the conditional probability a listing sells.
	ListProb float64
	SoldProb float64

	// CoinbaseAddresses and OtherCustodialAddresses size the custodial
	// sender pools (paper: 25 Coinbase, 558 other custodial).
	CoinbaseAddresses       int
	OtherCustodialAddresses int
	// CoinbaseShare / OtherCustodialShare of sender slots come from the
	// custodial pools; the rest are non-custodial.
	CoinbaseShare       float64
	OtherCustodialShare float64
	// ENSChannelProb is the probability an ENS-capable sender pays via
	// the name rather than a pasted raw address.
	ENSChannelProb float64
}

// DefaultConfig returns the calibrated configuration for n domains.
func DefaultConfig(n int) Config {
	return Config{
		Seed:               1,
		NumDomains:         n,
		Start:              DefaultStart,
		End:                DefaultEnd,
		MigrationDeadline:  DefaultMigrationDeadline,
		MigrationFraction:  0.13,
		MigrationRenewProb: 0.55,
		RenewProb:          0.42,
		UnindexedFraction:  0.010,
		TransferProb:       0.03,
		SubdomainProb:      0.13,

		IncomeMedianUSD: 1500,
		IncomeSigma:     2.2,
		SenderMean:      6.3,
		StaleSendProb:   0.15,

		CatchBase:       1.0,
		CatchThreshold:  1.75,
		SelfRecoverProb: 0.05,
		RecatchFactor:   0.75,

		PremiumPayerProb:  0.22,
		SameDayProb:       0.08,
		ShortDelayProb:    0.13,
		TailDelayMeanDays: 150,

		MisdirectProb:    0.015,
		SplitSenderProb:  0.10,
		IntentionalProb:  0.05,
		CatcherNoiseProb: 0.30,

		PreTenureProb:            0.04,
		PreTenureToA2Prob:        0.25,
		CustodialCoincidenceProb: 0.05,

		ListProb: 0.083,
		SoldProb: 0.61,

		CoinbaseAddresses:       25,
		OtherCustodialAddresses: 558,
		CoinbaseShare:           0.25,
		OtherCustodialShare:     0.20,
		ENSChannelProb:          0.50,
	}
}

// PaperScaleLossConfig returns DefaultConfig(n) with the loss-scenario rate
// dialed down to the paper-observed per-sender rate, for experiments that
// compare absolute scaled counts instead of distribution shapes.
func PaperScaleLossConfig(n int) Config {
	cfg := DefaultConfig(n)
	cfg.MisdirectProb = 0.0012
	return cfg
}

// year is the default registration duration unit.
const year = ens.Year
