package world

import (
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
)

// CycleTruth records one registration cycle of a domain: a registration by
// one owner, its renewals, and the resulting final expiry.
type CycleTruth struct {
	Owner           ethtypes.Address
	Wallet          ethtypes.Address // resolver target during the cycle
	RegisteredAt    int64
	Expiry          int64 // final expiry after renewals
	Renewals        int
	PremiumUSD      float64 // premium paid at registration (0 outside auction)
	SameOwnerAsPrev bool    // true when the cycle is a self-recovery
}

// DomainTruth is the generator's ground truth for one domain. The analysis
// pipeline must recover these facts from crawled data alone; tests compare
// its output against this.
type DomainTruth struct {
	Label     string
	Category  lexical.Category
	Unindexed bool

	Cycles []CycleTruth

	// Dropcaught is true when some cycle's owner differs from the
	// previous cycle's owner (the paper's re-registration definition).
	Dropcaught bool

	// IncomeUSD is the USD income the first owner's wallet received
	// during their tenure (the Table 1 income feature).
	IncomeUSD float64
	// Senders is the number of unique senders paying the first owner.
	Senders int
	// Transactions is the number of income transactions to the first
	// owner during their tenure.
	Transactions int

	// HijackableUSD is the income sent to the expired name's wallet
	// between expiry and re-registration (Figure 7).
	HijackableUSD float64

	// MisdirectedUSD / MisdirectedTxs total the truly mistaken payments
	// delivered to a later owner via the stale name (Figures 8-10).
	MisdirectedUSD float64
	MisdirectedTxs int

	// Listed/Sold record OpenSea resale ground truth; SalePriceUSD is the
	// sale price when Sold.
	Listed       bool
	Sold         bool
	SalePriceUSD float64

	// Subdomains created under the name during the first cycle.
	Subdomains int
}

// ResolutionRecord is one wallet-side ENS resolution event: a sender
// resolved Name and sent funds to the resolved address. This is the
// off-chain data the paper could not obtain from wallet vendors (§6,
// Limitations); the simulation can produce it, enabling the authoritative
// loss measurement the paper calls for as follow-up work.
type ResolutionRecord struct {
	Name     string // label without ".eth"
	Sender   ethtypes.Address
	Resolved ethtypes.Address
	At       int64
	TxHash   ethtypes.Hash
}

// FirstExpiry returns the expiry that ended the first cycle, or 0 if the
// domain never had a completed first cycle.
func (d *DomainTruth) FirstExpiry() int64 {
	if len(d.Cycles) == 0 {
		return 0
	}
	return d.Cycles[0].Expiry
}

// ExpiredBy reports whether the domain's first cycle had expired by t.
func (d *DomainTruth) ExpiredBy(t int64) bool {
	e := d.FirstExpiry()
	return e != 0 && e < t
}

// Truth aggregates ground truth for the whole world.
type Truth struct {
	Domains []*DomainTruth
	// MisdirectedTxHashes lists the chain transactions that ground truth
	// marks as mistaken payments to a new owner.
	MisdirectedTxHashes map[ethtypes.Hash]bool
	// IntentionalTxHashes lists post-catch payments to a new owner that
	// were intentional — the false-positive class for the heuristic.
	IntentionalTxHashes map[ethtypes.Hash]bool
}

// OpenSeaEventKind distinguishes marketplace events.
type OpenSeaEventKind int

const (
	// OSList is a listing creation.
	OSList OpenSeaEventKind = iota
	// OSSale is a completed sale.
	OSSale
)

// OpenSeaEvent is one marketplace event for the opensea substrate to serve.
type OpenSeaEvent struct {
	Kind      OpenSeaEventKind
	Label     string
	TokenID   ethtypes.Hash
	Seller    ethtypes.Address
	Buyer     ethtypes.Address // zero for listings
	PriceUSD  float64
	Timestamp int64
}
