package world

import (
	"strings"
	"testing"
)

func TestSummarizeConsistency(t *testing.T) {
	res := world3k(t)
	s := res.Summarize()

	if s.Domains != 3000 {
		t.Errorf("domains = %d", s.Domains)
	}
	if s.Expired+s.ActiveAtEnd != s.Domains {
		t.Errorf("expired %d + active %d != %d", s.Expired, s.ActiveAtEnd, s.Domains)
	}
	if s.Dropcaught+s.SelfRecovered > s.Expired {
		t.Error("caught + self-recovered exceeds expired")
	}
	if s.Sold > s.Listed {
		t.Error("sold exceeds listed")
	}
	if s.Transactions != res.Chain.TxCount() {
		t.Errorf("txs = %d, chain has %d", s.Transactions, res.Chain.TxCount())
	}
	if s.Resolutions != len(res.ResolutionLog) {
		t.Error("resolution count mismatch")
	}
	if s.MisdirectedTxs != len(res.Truth.MisdirectedTxHashes) {
		t.Errorf("misdirected %d != truth hashes %d", s.MisdirectedTxs, len(res.Truth.MisdirectedTxHashes))
	}

	text := s.String()
	for _, want := range []string{"domains=3000", "dropcaught=", "misdirected:"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
}
