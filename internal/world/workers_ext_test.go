package world_test

// External test package: dataset imports world, so the fingerprint
// comparison has to live outside package world to avoid an import cycle.

import (
	"context"
	"testing"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/world"
)

// TestGenerateWorkerCountIndependent is the world half of the PR's
// determinism contract: the generated world — and therefore the assembled
// dataset — must be byte-for-byte identical no matter how many workers
// plan the domains. The comparison goes through the dataset fingerprint,
// which covers every domain event, transaction, custodial list, and
// market record.
func TestGenerateWorkerCountIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two full worlds")
	}
	fingerprint := func(workers int) uint64 {
		cfg := world.DefaultConfig(800)
		cfg.Seed = 42
		cfg.Workers = workers
		res, err := world.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(workers=%d): %v", workers, err)
		}
		ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
		if err != nil {
			t.Fatalf("FromWorld(workers=%d): %v", workers, err)
		}
		return ds.Fingerprint()
	}
	seq := fingerprint(1)
	if got := fingerprint(8); got != seq {
		t.Fatalf("dataset fingerprint differs across worker counts: workers=1 %x, workers=8 %x", seq, got)
	}
}
