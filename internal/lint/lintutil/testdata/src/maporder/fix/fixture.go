// Cross-analyzer fixture: proves a //lint:allow directive suppresses
// exactly the analyzer it names. Both functions violate maporder; only
// the directive that says "maporder" silences it.
package fix

import "sort"

// A detrand-named allow on a maporder violation changes nothing.
func allowNamesOtherAnalyzer(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow detrand MARK:cross-name this names the wrong analyzer
	}
	return keys
}

// The correctly named allow suppresses it.
func allowNamesThisAnalyzer(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder MARK:cross-ok order consumed as a set downstream
	}
	return keys
}

// Unrelated clean code so the fixture is not all violations.
func sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
