// Driver fixture for the //lint:allow escape hatch, checked by
// TestWrapSuppression with exact line assertions (no // want comments
// here: the reason-less-directive case reports on the directive's own
// line, which cannot also carry a want annotation without the
// annotation becoming part of the directive's reason text). The test
// locates lines by the MARK: tokens in the directive reasons and
// trailing comments.
package world

import "time"

// Suppressed by a same-line directive with a reason.
func suppressedSameLine() time.Time {
	return time.Now() //lint:allow detrand MARK:same-line suppression fixture
}

// Suppressed by a directive on the line directly above.
func suppressedLineAbove() time.Time {
	//lint:allow detrand MARK:line-above suppression fixture
	return time.Now()
}

// A directive naming a different analyzer must not suppress detrand.
func wrongAnalyzerName() time.Time {
	//lint:allow maporder MARK:wrong-name directive, detrand must still fire
	return time.Now() // MARK:wrong-name-violation
}

// A reason-less directive is itself reported and does not suppress the
// original diagnostic.
func reasonlessDirective() time.Time {
	//lint:allow detrand
	return time.Now() // MARK:reasonless-violation
}

// Plain violation, no directive anywhere near it.
func plainViolation() time.Time {
	return time.Now() // MARK:plain-violation
}

// A directive two lines up is out of range and must not suppress.
func directiveTooFar() time.Time {
	//lint:allow detrand MARK:too-far directive two lines up is out of range

	return time.Now() // MARK:too-far-violation
}
