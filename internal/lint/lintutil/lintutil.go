// Package lintutil holds the shared machinery of the enslint analyzer
// suite: the list of deterministic packages, helpers for scoping
// analyzers to non-test files, and the //lint:allow escape hatch that
// every analyzer honors.
//
// Escape-hatch policy: a diagnostic may be suppressed by placing
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or on the line directly above it. The reason is
// mandatory — an allow directive without one is itself reported, so
// every suppression in the tree documents why the rule does not apply.
// A directive names exactly one analyzer and suppresses only that
// analyzer's diagnostics on that line.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DeterministicPkgs lists the slash-separated package-path suffixes that
// must be byte-reproducible from a seed: the synthetic world, the core
// analyses, the dataset builder, the lexical feature extractor, the
// statistics kit, and the ENS name/auction mechanics. A stray wall-clock
// or unseeded RNG read in any of them silently changes the world a seed
// generates or the report a dataset yields.
var DeterministicPkgs = []string{
	"internal/world",
	"internal/core",
	"internal/dataset",
	"internal/lexical",
	"internal/stats",
	"internal/ens",
	"internal/auction",
	// PR 9: pure transform and serving-support packages added since —
	// hashing, JSON encoding, response caching, and the bench-compare
	// tool must all be reproducible byte for byte.
	"internal/keccak",
	"internal/httpjson",
	"internal/pagecache",
	"cmd/benchjson",
	// PR 10: the campaign planner is the contract that a fault schedule
	// is a pure function of (plan, seed, tick) — any clock or RNG read
	// inside it would break cross-run drill determinism.
	"internal/chaos/plan",
}

// IsDeterministicPkg reports whether the import path denotes one of the
// packages in DeterministicPkgs (matched as a whole slash-delimited
// segment sequence, so "internal/ens" does not match "internal/ensfoo").
func IsDeterministicPkg(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) ||
			strings.Contains(path, "/"+p+"/") || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IsObsPkg reports whether the import path is the observability
// package (internal/obs), whose counters/gauges/histograms must not be
// driven from unordered map iteration.
func IsObsPkg(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// IsTestFile reports whether the file a node belongs to is a _test.go
// file. The determinism and I/O-discipline rules govern production
// code; tests may use wall clocks and raw HTTP freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles returns the pass's files excluding _test.go files.
func NonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !IsTestFile(pass.Fset, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

const allowPrefix = "//lint:allow "

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// parseAllows collects the //lint:allow directives of a file.
func parseAllows(fset *token.FileSet, f *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, allowDirective{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Wrap returns the analyzer with the //lint:allow escape hatch layered
// over its Report function. A diagnostic at line L is dropped iff a
// directive naming this analyzer sits on line L or line L-1. Directives
// without a reason are reported as violations in their own right, so
// the hatch cannot be used silently.
func Wrap(a *analysis.Analyzer) *analysis.Analyzer {
	inner := a.Run
	wrapped := *a
	wrapped.Run = func(pass *analysis.Pass) (interface{}, error) {
		// Line → directives for this analyzer, across all files.
		allows := map[int][]allowDirective{}
		for _, f := range pass.Files {
			for _, d := range parseAllows(pass.Fset, f) {
				if d.analyzer != a.Name {
					continue
				}
				if d.reason == "" {
					pass.Report(analysis.Diagnostic{
						Pos:     d.pos,
						Message: "//lint:allow " + a.Name + " needs a reason: //lint:allow " + a.Name + " <why the rule does not apply here>",
					})
					continue
				}
				allows[d.line] = append(allows[d.line], d)
			}
		}
		origReport := pass.Report
		pass.Report = func(d analysis.Diagnostic) {
			line := pass.Fset.Position(d.Pos).Line
			if len(allows[line]) > 0 || len(allows[line-1]) > 0 {
				return
			}
			origReport(d)
		}
		return inner(pass)
	}
	return &wrapped
}
