package lintutil_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/detrand"
	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/lintutil"
	"ensdropcatch/internal/lint/maporder"
)

func TestIsDeterministicPkg(t *testing.T) {
	for path, want := range map[string]bool{
		"ensdropcatch/internal/world":   true,
		"ensdropcatch/internal/core":    true,
		"ensdropcatch/internal/ens":     true,
		"internal/stats":                true,
		"ensdropcatch/internal/ensfoo":  false, // segment match, not prefix match
		"ensdropcatch/internal/crawler": false,
		"ensdropcatch/internal/obs":     false,
	} {
		if got := lintutil.IsDeterministicPkg(path); got != want {
			t.Errorf("IsDeterministicPkg(%q) = %v, want %v", path, got, want)
		}
	}
}

// markLine returns the 1-based line of the fixture file containing the
// marker, so the assertions survive fixture edits.
func markLine(t *testing.T, file, marker string) int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, file)
	return 0
}

type diagAt struct {
	line    int
	message string // substring the diagnostic must contain
}

func assertDiags(t *testing.T, a *analysis.Analyzer, pkgPath string, fset func(analysis.Diagnostic) int, diags []analysis.Diagnostic, want []diagAt) {
	t.Helper()
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got diagnostic at line %d: %s", fset(d), d.Message)
		}
		t.Fatalf("%s on %s: got %d diagnostics, want %d", a.Name, pkgPath, len(diags), len(want))
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if fset(d) == w.line && strings.Contains(d.Message, w.message) {
				found = true
				break
			}
		}
		if !found {
			for _, d := range diags {
				t.Logf("got diagnostic at line %d: %s", fset(d), d.Message)
			}
			t.Errorf("missing diagnostic at line %d containing %q", w.line, w.message)
		}
	}
}

// TestWrapSuppression drives the wrapped detrand analyzer over a fixture
// that violates it six times, with directives arranged so that exactly
// two violations are legally suppressed. The reason-less directive is
// itself reported, and the original diagnostic it failed to suppress
// survives.
func TestWrapSuppression(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "ensdropcatch", "internal", "world", "fixture.go")
	wrapped := lintutil.Wrap(detrand.Analyzer)
	diags, fset := linttest.DiagnosticsPos(t, wrapped, "ensdropcatch/internal/world")
	line := func(d analysis.Diagnostic) int { return fset.Position(d.Pos).Line }

	reasonless := markLine(t, fixture, "MARK:reasonless-violation") - 1
	want := []diagAt{
		{markLine(t, fixture, "MARK:wrong-name-violation"), "time.Now"},
		{reasonless, "needs a reason"},
		{markLine(t, fixture, "MARK:reasonless-violation"), "time.Now"},
		{markLine(t, fixture, "MARK:plain-violation"), "time.Now"},
		{markLine(t, fixture, "MARK:too-far-violation"), "time.Now"},
	}
	assertDiags(t, wrapped, "ensdropcatch/internal/world", line, diags, want)

	// And the two suppressed sites really are absent.
	for _, marker := range []string{"MARK:same-line", "MARK:line-above"} {
		l := markLine(t, fixture, marker)
		for _, d := range diags {
			if dl := line(d); dl == l || dl == l+1 {
				t.Errorf("diagnostic at line %d should be suppressed by %s directive: %s", dl, marker, d.Message)
			}
		}
	}
}

// TestWrapCrossAnalyzer proves a directive suppresses exactly the
// analyzer it names: two identical maporder violations, one annotated
// //lint:allow detrand (wrong name — still reported), one annotated
// //lint:allow maporder (suppressed).
func TestWrapCrossAnalyzer(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "maporder", "fix", "fixture.go")
	wrapped := lintutil.Wrap(maporder.Analyzer)
	diags, fset := linttest.DiagnosticsPos(t, wrapped, "maporder/fix")
	line := func(d analysis.Diagnostic) int { return fset.Position(d.Pos).Line }

	want := []diagAt{
		{markLine(t, fixture, "MARK:cross-name"), "append to keys"},
	}
	assertDiags(t, wrapped, "maporder/fix", line, diags, want)
}
