// Package lint assembles the enslint analyzer suite: project-specific
// go/analysis checkers that mechanically enforce the pipeline's
// determinism, I/O-discipline, and dropped-error invariants. The rules
// were won empirically — PR 2 (fault tolerance) and PR 3 (parallel
// determinism) each shipped regressions that golden tests caught only
// after the fact; these analyzers reject the same bug classes at
// compile review time.
//
// Every analyzer is wrapped with lintutil.Wrap, which implements the
// //lint:allow <analyzer> <reason> escape hatch (see lintutil).
package lint

import (
	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/detrand"
	"ensdropcatch/internal/lint/droppederr"
	"ensdropcatch/internal/lint/floatfold"
	"ensdropcatch/internal/lint/iodiscipline"
	"ensdropcatch/internal/lint/lintutil"
	"ensdropcatch/internal/lint/maporder"
)

// Analyzers returns the full suite, escape hatch included, in a stable
// order. cmd/enslint and the driver tests share this list so the CI
// binary and the tests can never disagree about what is enforced.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lintutil.Wrap(detrand.Analyzer),
		lintutil.Wrap(maporder.Analyzer),
		lintutil.Wrap(iodiscipline.Analyzer),
		lintutil.Wrap(floatfold.Analyzer),
		lintutil.Wrap(droppederr.Analyzer),
	}
}
