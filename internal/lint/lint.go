// Package lint assembles the enslint analyzer suite: project-specific
// go/analysis checkers that mechanically enforce the pipeline's
// determinism, I/O-discipline, dropped-error, context-flow,
// lock-discipline, allocation, and boundedness invariants. The rules
// were won empirically — PR 2 (fault tolerance) and PR 3 (parallel
// determinism) each shipped regressions that golden tests caught only
// after the fact; PR 5 (deadline propagation), PR 6 (bounded trace
// store), and PR 8 (hot-path allocation wins) relied on runtime tests
// alone until this generation of analyzers promoted them to
// compile-review checks.
//
// Two vintages coexist:
//
//   - the PR 4 syntactic set: detrand, maporder, iodiscipline,
//     floatfold, droppederr;
//   - the control-flow set, built on go/cfg (the ctrlflow pass — the
//     same dataflow substrate the upstream lostcancel analyzer uses):
//     ctxflow, mutexguard, hotpathalloc, boundedres.
//
// Two upstream x/tools analyzers ride along: lostcancel (contexts
// whose cancel function can be lost on a return path) and copylocks
// (locks copied by value — the other half of mutexguard's contract).
// nilness, the third candidate, needs go/ssa, which the Go
// distribution's vendored x/tools does not ship and offline builds
// cannot fetch; copylocks stands in as the second upstream check.
//
// Every custom analyzer is wrapped with lintutil.Wrap, which implements
// the //lint:allow <analyzer> <reason> escape hatch (see lintutil).
// The upstream pair is deliberately left unwrapped: their diagnostics
// are always true positives, so there is nothing to suppress.
package lint

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"

	"ensdropcatch/internal/lint/boundedres"
	"ensdropcatch/internal/lint/ctxflow"
	"ensdropcatch/internal/lint/detrand"
	"ensdropcatch/internal/lint/droppederr"
	"ensdropcatch/internal/lint/floatfold"
	"ensdropcatch/internal/lint/hotpathalloc"
	"ensdropcatch/internal/lint/iodiscipline"
	"ensdropcatch/internal/lint/lintutil"
	"ensdropcatch/internal/lint/maporder"
	"ensdropcatch/internal/lint/mutexguard"
)

// Analyzers returns the full suite — nine custom analyzers (escape
// hatch included) plus the two upstream ones — in a stable order.
// cmd/enslint and the driver tests share this list so the CI binary
// and the tests can never disagree about what is enforced.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lintutil.Wrap(detrand.Analyzer),
		lintutil.Wrap(maporder.Analyzer),
		lintutil.Wrap(iodiscipline.Analyzer),
		lintutil.Wrap(floatfold.Analyzer),
		lintutil.Wrap(droppederr.Analyzer),
		lintutil.Wrap(ctxflow.Analyzer),
		lintutil.Wrap(mutexguard.Analyzer),
		lintutil.Wrap(hotpathalloc.Analyzer),
		lintutil.Wrap(boundedres.Analyzer),
		lostcancel.Analyzer,
		copylock.Analyzer,
	}
}

// Custom returns just the project-specific analyzers, wrapped — the
// set every //lint:allow directive must name.
func Custom() []*analysis.Analyzer {
	all := Analyzers()
	return all[:9]
}
