// Negative fixture: no `// guarded by` annotations means no contract to
// enforce — the analyzer stays silent even for lock-free access.
package clean

import "sync"

type plain struct {
	mu sync.Mutex
	n  int
}

func (p *plain) Touch() {
	p.n++
}

func (p *plain) Locked() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}
