// Positive and negative cases for the `// guarded by <mu>` contract:
// annotated fields must be accessed with the named mutex held on every
// path, and an unlock on a provably-unlocked path is a double unlock.
package fix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) DeferInc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// The *Locked naming convention: entered with the lock already held.
func (c *counter) incLocked() {
	c.n++
}

func (c *counter) BadInc() {
	c.n++ // want "write to c.n without c.mu exclusively held"
}

func (c *counter) BadRead() int {
	return c.n // want "read of c.n without c.mu held"
}

// The lock is held on only one of the two incoming paths: the merge
// point is not provably locked.
func (c *counter) MaybeLock(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to c.n without c.mu exclusively held"
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) DoubleUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.mu.Unlock() // want "double unlock"
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// RLock suffices for reads.
func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Writes need the exclusive lock.
func (t *table) Put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

// Writing under the read lock is still a race.
func (t *table) BadPut(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want "write to t.m without t.mu exclusively held"
}

// The RLocked suffix marks functions entered with the read lock held:
// good enough for reads, not for writes.
func (t *table) sizeRLocked() int {
	return len(t.m)
}

type box struct {
	sync.Mutex
	v int // guarded by Mutex
}

func (b *box) Set(x int) {
	b.Lock()
	b.v = x
	b.Unlock()
}

func (b *box) BadSet(x int) {
	b.v = x // want "write to b.v without b exclusively held"
}

type phantom struct {
	mu sync.Mutex
	n  int // guarded by lock // want "guarded-by annotation names \"lock\""
}

func (p *phantom) Use() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}
