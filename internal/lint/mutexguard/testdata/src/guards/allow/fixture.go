// Suppression fixture: a deliberate lock-free read of a guarded field,
// documented with //lint:allow.
package allow

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (g *gauge) Inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *gauge) Peek() int {
	//lint:allow mutexguard advisory lock-free peek; staleness is acceptable and measured
	return g.n
}
