package mutexguard_test

import (
	"testing"

	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/lintutil"
	"ensdropcatch/internal/lint/mutexguard"
)

func TestMutexguard(t *testing.T) {
	linttest.Run(t, mutexguard.Analyzer,
		"guards/fix",   // positive: annotated structs, good and bad access
		"guards/clean", // negative: no annotations, nothing to enforce
	)
}

// TestMutexguardSuppression proves the //lint:allow hatch works for
// this analyzer.
func TestMutexguardSuppression(t *testing.T) {
	raw := linttest.Diagnostics(t, mutexguard.Analyzer, "guards/allow")
	if len(raw) != 1 {
		t.Fatalf("raw analyzer found %d diagnostics, want 1", len(raw))
	}
	wrapped := linttest.Diagnostics(t, lintutil.Wrap(mutexguard.Analyzer), "guards/allow")
	for _, d := range wrapped {
		t.Errorf("suppressed fixture still reports: %s", d.Message)
	}
}
