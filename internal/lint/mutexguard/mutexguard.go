// Package mutexguard defines a control-flow analyzer that enforces
// `// guarded by <mu>` annotations on struct fields: every read and
// write of an annotated field must happen with the named mutex held on
// every path through the enclosing function, and unlocking a mutex
// that cannot be held is flagged as a double unlock.
//
// The concurrency-heavy structs of the serving stack (the overload
// gate, the page cache, the trace store, the metrics registry, the
// breaker/adaptive controllers) all follow the same convention: a `mu`
// field with a comment block saying which fields it guards. Until now
// that contract lived in comments and -race runs; a forgotten Lock on
// a new code path is invisible until the scheduler happens to
// interleave two writers. This analyzer makes the comment checkable.
//
// Mechanics (per function, over the ctrlflow CFG — the same dataflow
// substrate upstream lostcancel uses):
//
//   - a field annotated `// guarded by mu` may only be accessed where
//     dataflow proves mu is held: for writes the exclusive lock, for
//     reads any of Lock/RLock (RWMutex);
//   - lock state is tracked per mutex *expression* (g.mu, c.mu, a
//     package-level struct with an embedded Mutex, …) through branches
//     and loops with a worklist fixpoint; a merge point is "held" only
//     if every incoming path holds the lock;
//   - mu.Unlock()/RUnlock() where the lock is provably not held is a
//     double unlock;
//   - `defer mu.Unlock()` keeps the lock held to the end of the
//     function (the unlock runs at return);
//   - functions whose name ends in "Locked" (the repo's established
//     convention: admitLocked, estimateLocked, evictLocked, …) are
//     assumed to be entered with the exclusive lock held; "RLocked"
//     likewise for the read lock. Function literals start unlocked —
//     a closure that needs the lock takes it itself (releaseFunc) or
//     annotates.
package mutexguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer enforces `// guarded by <mu>` field annotations.
var Analyzer = &analysis.Analyzer{
	Name:     "mutexguard",
	Doc:      "annotated fields (`// guarded by <mu>`) must be accessed with the mutex held on every path; flag double unlocks",
	Run:      run,
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
}

// guard records one annotated field: the field object and the name of
// the sibling mutex field guarding it ("" means the mutex is embedded
// and locked through the struct value itself).
type guard struct {
	mutexField string
	rw         bool // guarding mutex is a sync.RWMutex
}

// lockState is the per-mutex dataflow lattice: a set of possible
// states. The empty set means "unreached".
type lockState uint8

const (
	stUnheld lockState = 1 << iota
	stRHeld
	stWHeld
)

func (s lockState) definitelyHeldWrite() bool { return s != 0 && s&^stWHeld == 0 }
func (s lockState) definitelyHeldRead() bool  { return s != 0 && s&stUnheld == 0 }
func (s lockState) definitelyUnheld() bool    { return s != 0 && s&^stUnheld == 0 }

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Pre-pass: selector expressions that are written (assignment
	// targets, x.f[k] = v container mutations, IncDec, &x.f escapes).
	writes := map[*ast.SelectorExpr]bool{}
	for _, f := range lintutil.NonTestFiles(pass) {
		markWrites(f, writes)
	}

	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			entry := stUnheld
			if strings.HasSuffix(fd.Name.Name, "RLocked") {
				entry = stRHeld
			} else if strings.HasSuffix(fd.Name.Name, "Locked") {
				entry = stWHeld
			}
			checkCFG(pass, guards, writes, g, entry)
			// Function literals nested in this declaration get their own
			// CFGs and start unlocked.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if lg := cfgs.FuncLit(lit); lg != nil {
						checkCFG(pass, guards, writes, lg, stUnheld)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// collectGuards parses `// guarded by <mu>` field annotations from the
// package's struct declarations. The named guard must be a sibling
// field (or the struct's embedded Mutex/RWMutex). Malformed
// annotations are reported rather than silently ignored.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	out := map[types.Object]guard{}
	for _, f := range lintutil.NonTestFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				sibling, rw, found := findMutexField(pass, st, mu)
				if !found {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex/sync.RWMutex field", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = guard{mutexField: sibling, rw: rw}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's trailing or
// doc comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			idx := strings.Index(text, "guarded by ")
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len("guarded by "):])
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSuffix(strings.TrimSpace(name), ".")
			if name != "" {
				return name, true
			}
		}
	}
	return "", false
}

// findMutexField resolves the guard name against the struct's fields:
// a named sync.Mutex/RWMutex sibling, or the embedded form where the
// annotation names the type ("Mutex"/"RWMutex").
func findMutexField(pass *analysis.Pass, st *ast.StructType, name string) (field string, rw, found bool) {
	for _, f := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		isMu, isRW := mutexType(t)
		if !isMu {
			continue
		}
		if len(f.Names) == 0 { // embedded
			if name == "Mutex" || name == "RWMutex" {
				return "", isRW, true
			}
			continue
		}
		for _, fn := range f.Names {
			if fn.Name == name {
				return name, isRW, true
			}
		}
	}
	return "", false, false
}

func mutexType(t types.Type) (isMutex, isRW bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// checkCFG runs the lock-held dataflow over one function CFG and
// reports unguarded accesses and double unlocks.
func checkCFG(pass *analysis.Pass, guards map[types.Object]guard, writes map[*ast.SelectorExpr]bool, g *cfg.CFG, entry lockState) {
	// States are keyed per mutex expression string ("g.mu", "c.mu",
	// "nodeCache"); in[b] maps mutexKey → lockState at block entry.
	in := make([]map[string]lockState, len(g.Blocks))
	for i := range in {
		in[i] = nil // nil = unreached
	}
	if len(g.Blocks) == 0 {
		return
	}
	in[0] = map[string]lockState{} // empty map: default state applies

	// Worklist fixpoint.
	work := []int32{0}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[idx]
		state := cloneState(in[idx])
		applyBlock(pass, guards, writes, b, state, entry, false)
		for _, succ := range b.Succs {
			merged, changed := mergeState(in[succ.Index], state, entry)
			if changed {
				in[succ.Index] = merged
				work = append(work, succ.Index)
			}
		}
	}

	// Second pass: report, with final entry states (fixpoint reached).
	for idx, b := range g.Blocks {
		if in[idx] == nil {
			continue
		}
		state := cloneState(in[idx])
		applyBlock(pass, guards, writes, b, state, entry, true)
	}
}

func cloneState(m map[string]lockState) map[string]lockState {
	out := make(map[string]lockState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeState unions possible lock states at a merge point. A key
// missing from either side means that path is still at the function's
// entry default, so the default is folded into the union — a lock taken
// on only one incoming path merges to "maybe held", not "held".
func mergeState(dst, src map[string]lockState, entry lockState) (map[string]lockState, bool) {
	if dst == nil {
		return cloneState(src), true
	}
	changed := false
	for k, v := range src {
		old, ok := dst[k]
		if !ok {
			old = entry
		}
		if old|v != old {
			changed = true
		}
		dst[k] = old | v
	}
	for k, old := range dst {
		if _, ok := src[k]; !ok && old|entry != old {
			dst[k] = old | entry
			changed = true
		}
	}
	return dst, changed
}

// get returns the tracked state for a mutex key, defaulting to the
// function's entry assumption.
func get(state map[string]lockState, key string, entry lockState) lockState {
	if s, ok := state[key]; ok {
		return s
	}
	return entry
}

// applyBlock walks one basic block in order, updating lock states at
// Lock/Unlock calls and (when report is set) checking guarded accesses.
func applyBlock(pass *analysis.Pass, guards map[types.Object]guard, writes map[*ast.SelectorExpr]bool, b *cfg.Block, state map[string]lockState, entry lockState, report bool) {
	for _, node := range b.Nodes {
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // analyzed separately with its own CFG
			case *ast.DeferStmt:
				deferred[n.Call] = true
			case *ast.CallExpr:
				mu, op := lockOp(pass, n)
				if op == "" {
					break
				}
				if deferred[n] {
					// defer mu.Unlock(): releases at return; the lock
					// stays held for the rest of the flow.
					break
				}
				cur := get(state, mu, entry)
				switch op {
				case "Lock":
					state[mu] = stWHeld
				case "RLock":
					state[mu] = stRHeld
				case "Unlock", "RUnlock":
					if report && cur.definitelyUnheld() {
						pass.Reportf(n.Pos(), "%s.%s with the lock not held: double unlock (or unlock on a never-locked path) panics at runtime", mu, op)
					}
					state[mu] = stUnheld
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil {
					break
				}
				gd, ok := guards[obj]
				if !ok {
					break
				}
				mu := mutexKey(n, gd)
				if !report {
					break
				}
				cur := get(state, mu, entry)
				if writes[n] {
					if !cur.definitelyHeldWrite() {
						pass.Reportf(n.Pos(), "write to %s without %s exclusively held on every path (annotated `guarded by`); take %s.Lock() first", render(n), mu, mu)
					}
				} else if !cur.definitelyHeldRead() {
					pass.Reportf(n.Pos(), "read of %s without %s held on every path (annotated `guarded by`); take %s.Lock() or RLock() first", render(n), mu, mu)
				}
			}
			return true
		})
	}
}

// mutexKey renders the mutex expression that must be held for an
// access to sel: the access base plus the guard field name, or the
// base alone when the mutex is embedded.
func mutexKey(sel *ast.SelectorExpr, gd guard) string {
	base := render(sel.X)
	if gd.mutexField == "" {
		return base
	}
	return base + "." + gd.mutexField
}

// lockOp classifies a call as a mutex operation and returns the
// rendered mutex expression and the operation name.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return render(sel.X), sel.Sel.Name
}

// markWrites records a file's write targets into writes: selector
// expressions on the left of assignments, container mutations through
// an index (x.f[k] = v), IncDec statements, and unary & escapes.
func markWrites(f *ast.File, writes map[*ast.SelectorExpr]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if sel, ok := unparen(ix.X).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// render prints a selector chain ("g.mu", "nodeCache") — non-ident
// bases (method calls, index expressions) render as <expr> and never
// match a lock key, which fails safe: unmatched accesses use the
// entry default.
func render(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return render(v.X) + "." + v.Sel.Name
	}
	return "<expr>"
}
