// Package linttest is a self-contained analysistest replacement for the
// enslint suite. golang.org/x/tools/go/analysis/analysistest needs
// go/packages (not vendored, and its `go list` round-trip needs more
// machinery than these tests do), so this harness does the small part
// analysistest we actually use:
//
//   - fixture packages live under testdata/src/<import/path>/*.go;
//   - every fixture file line may carry `// want "regexp"` (repeatable)
//     naming the diagnostics the analyzer must report on that line;
//   - Run type-checks the fixture, runs the analyzer, and fails the
//     test on any missing or unexpected diagnostic.
//
// Imports inside fixtures resolve against the real world: paths under
// this module (ensdropcatch/...) type-check the actual repository
// source, so a fixture can exercise crawler.Retry or par.Map against
// the real signatures; everything else goes through the stdlib source
// importer. Both work offline.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run checks the analyzer against each fixture package in turn.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkg := range pkgPaths {
		pkg := pkg
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			t.Helper()
			diags, fset, files := analyze(t, a, pkg)
			check(t, fset, files, diags)
		})
	}
}

// Diagnostics runs the analyzer over one fixture package and returns
// the raw diagnostics; lintutil's driver tests use this to assert
// suppression behavior directly.
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgPath string) []analysis.Diagnostic {
	t.Helper()
	diags, _, _ := analyze(t, a, pkgPath)
	return diags
}

// DiagnosticsPos is Diagnostics plus the FileSet, so callers can turn
// diagnostic positions back into fixture line numbers.
func DiagnosticsPos(t *testing.T, a *analysis.Analyzer, pkgPath string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	diags, fset, _ := analyze(t, a, pkgPath)
	return diags, fset
}

func analyze(t *testing.T, a *analysis.Analyzer, pkgPath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	fset := token.NewFileSet()
	files := parseDir(t, fset, dir)
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	imp := newImporter(t, fset)
	conf := types.Config{Importer: imp, Error: func(err error) { t.Errorf("fixture type error: %v", err) }}
	info := newInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	// Run the analyzer's requirements first (transitively, in
	// dependency order) so CFG-based analyzers — ours and the upstream
	// ctrlflow/lostcancel/copylock set — get their ResultOf inputs.
	// Facts are kept in an in-memory store shared across the chain;
	// dependency diagnostics are dropped (only the target analyzer is
	// under test).
	facts := map[factKey]analysis.Fact{}
	results := map[*analysis.Analyzer]interface{}{}
	var diags []analysis.Diagnostic
	var runOne func(cur *analysis.Analyzer, record bool)
	runOne = func(cur *analysis.Analyzer, record bool) {
		if _, done := results[cur]; done {
			return
		}
		for _, req := range cur.Requires {
			runOne(req, false)
		}
		report := func(analysis.Diagnostic) {}
		if record {
			report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		}
		pass := &analysis.Pass{
			Analyzer:   cur,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report:     report,
			ReadFile:   os.ReadFile,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				stored, ok := facts[factKey{obj, reflect.TypeOf(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				}
				return ok
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				facts[factKey{obj, reflect.TypeOf(fact)}] = fact
			},
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := cur.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", cur.Name, err)
		}
		results[cur] = res
	}
	runOne(a, true)
	return diags, fset, files
}

// factKey identifies one exported fact: the object it attaches to and
// the concrete fact type.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	return files
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want "re"` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, a := range args {
					re, err := regexp.Compile(a[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// moduleImporter resolves this module's import paths against the
// repository source tree and everything else against the stdlib source
// importer. Both paths work without network or pre-built export data.
type moduleImporter struct {
	t       *testing.T
	fset    *token.FileSet
	std     types.Importer
	modPath string
	modDir  string
	cache   map[string]*types.Package
}

func newImporter(t *testing.T, fset *token.FileSet) *moduleImporter {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above the test directory")
		}
		dir = parent
	}
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		t.Fatal("linttest: no module line in go.mod")
	}
	return &moduleImporter{
		t:       t,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		modPath: modPath,
		modDir:  dir,
		cache:   map[string]*types.Package{},
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
		dir := filepath.Join(m.modDir, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("linttest: resolving %s: %w", path, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: m}
		pkg, err := conf.Check(path, m.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("linttest: type-checking %s: %w", path, err)
		}
		m.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err == nil {
		m.cache[path] = pkg
	}
	return pkg, err
}
