// Negative fixture: not a deterministic package, so wall clocks and the
// global generator are allowed (the crawler's retry jitter, for one,
// depends on them).
package notdet

import (
	"math/rand"
	"time"
)

func free() int64 {
	_ = rand.Intn(10)
	_ = rand.Float64()
	return time.Now().UnixNano()
}
