// Positive fixture: this package path ends in internal/world, so the
// determinism rules apply.
package world

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()                // want "time.Now in deterministic package"
	_ = time.Since(t)              // want "time.Since in deterministic package"
	return time.Unix(0, 0).Unix() // constructing times from data is fine
}

func globalRand() {
	_ = rand.Intn(10)         // want "global rand.Intn"
	_ = rand.Float64()        // want "global rand.Float64"
	rand.Shuffle(3, swap)     // want "global rand.Shuffle"
	_ = rand.Perm(4)          // want "global rand.Perm"
	_ = rand.Int63()          // want "global rand.Int63"
	_ = rand.NormFloat64()    // want "global rand.NormFloat64"
}

func swap(i, j int) {}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded constructors are allowed
	z := rand.NewZipf(rng, 2, 20, 99)     // explicit source threaded through
	_ = z.Uint64()
	_ = rng.Intn(10) // methods on a seeded *rand.Rand are allowed
	return rng.Float64()
}
