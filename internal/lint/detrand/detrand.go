// Package detrand defines an analyzer that keeps nondeterminism out of
// the packages whose output must be a pure function of the seed.
//
// In a deterministic package (lintutil.DeterministicPkgs) it flags:
//
//   - time.Now and time.Since — wall-clock reads. The world generator,
//     dataset builder, and analyses must derive every timestamp from
//     the seeded simulation clock, never from the host.
//   - every package-level function of math/rand and math/rand/v2
//     (rand.Intn, rand.Float64, rand.Shuffle, rand.Perm, rand.Read, …)
//     — these draw from the process-global generator, whose stream is
//     shared across goroutines and therefore schedule-dependent. Only
//     explicitly seeded sources threaded through parameters are
//     allowed: rand.New, rand.NewSource, and rand.NewZipf stay legal,
//     as do all methods on a *rand.Rand value.
//
// PR 3 exists because exactly this class of bug is invisible in review:
// a single global-rand draw in a worker makes the world depend on the
// goroutine schedule, and the golden workers=1-vs-8 tests only catch it
// after the fact.
package detrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer flags wall-clock and global-RNG use in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid time.Now and global math/rand in deterministic (seed-reproducible) packages",
	Run:  run,
}

// seededConstructors are the math/rand package-level functions that do
// not touch the global generator: they build a generator from a caller
// supplied seed or source.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.IsDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn on a seeded source) are fine;
			// only package-level functions reach the global state.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
					pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: derive timestamps from the seeded simulation clock, not the host wall clock", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s in deterministic package %s: draws from the process-global generator (schedule-dependent); thread an explicitly seeded *rand.Rand instead", fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
