package detrand_test

import (
	"testing"

	"ensdropcatch/internal/lint/detrand"
	"ensdropcatch/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, detrand.Analyzer,
		"ensdropcatch/internal/world",  // positive: deterministic package
		"ensdropcatch/internal/notdet", // negative: free to use wall clock + global rand
	)
}
