// Negative fixture: internal/ethrpc is not one of the crawl-client
// packages, so the discipline does not apply (its in-process test
// doubles talk to local listeners).
package ethrpc

import "net/http"

func Free(c *http.Client, req *http.Request) {
	c.Do(req)
	http.Get("http://localhost")
}
