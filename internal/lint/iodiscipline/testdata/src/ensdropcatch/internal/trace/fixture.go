// Positive fixture: the package path ends in internal/trace, so the
// I/O discipline applies. trace ships inside every crawl client's
// request path (Inject sets headers, Middleware serves them) — if it
// ever grew an outbound exporter, that HTTP must ride the same
// retry/breaker stack as the clients it instruments.
package trace

import (
	"context"
	"net/http"
)

// A hypothetical span exporter calling the transport directly: flagged.
func exportSpans(c *http.Client, req *http.Request) {
	c.Do(req)                        // want "outside crawler discipline"
	http.Get("http://collector")     // want "outside crawler discipline"
	http.NewRequest("GET", "x", nil) // want "context-less http.NewRequest"
}

// Header propagation mutates a request the *caller* will send under its
// own discipline; no transport call happens here, so nothing is
// flagged.
func inject(req *http.Request, header string) {
	req.Header.Set("traceparent", header)
}

// Context-carrying request construction is fine anywhere.
func buildRequest(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, "http://collector", nil)
}
