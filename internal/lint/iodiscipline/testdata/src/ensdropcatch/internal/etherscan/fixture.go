// Positive fixture: the package path ends in internal/etherscan, so the
// I/O discipline applies. It imports the real crawler package, so the
// Retry/Breaker recognition runs against the true signatures.
package etherscan

import (
	"context"
	"net/http"

	"ensdropcatch/internal/crawler"
)

// Naked transport in an exported function: always flagged.
func Naked(c *http.Client, req *http.Request) {
	c.Do(req)                               // want "outside crawler discipline"
	http.Get("http://x")                    // want "outside crawler discipline"
	http.Head("http://x")                   // want "outside crawler discipline"
	http.NewRequest("GET", "http://x", nil) // want "context-less http.NewRequest"
}

// Inside a crawler.Retry closure: disciplined.
func UnderRetry(ctx context.Context, c *http.Client, req *http.Request) error {
	return crawler.Retry(ctx, crawler.DefaultRetry(), func(ctx context.Context) error {
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		return resp.Body.Close()
	})
}

// Inside a Breaker.Do closure: disciplined.
func UnderBreaker(b *crawler.Breaker, c *http.Client, req *http.Request) error {
	return b.Do(func() error {
		_, err := c.Do(req)
		return err
	})
}

// An unexported helper whose only callers sit inside Retry closures is
// disciplined transitively (the doOnce pattern).
func viaHelper(ctx context.Context, c *http.Client, req *http.Request) error {
	return crawler.Retry(ctx, crawler.DefaultRetry(), func(ctx context.Context) error {
		return doOnce(c, req)
	})
}

func doOnce(c *http.Client, req *http.Request) error {
	_, err := c.Do(req) // reached only through Retry: allowed
	return err
}

// Two levels of helpers still resolve (fixed point).
func viaTwoHelpers(ctx context.Context, c *http.Client, req *http.Request) error {
	return crawler.Retry(ctx, crawler.DefaultRetry(), func(ctx context.Context) error {
		return levelOne(c, req)
	})
}

func levelOne(c *http.Client, req *http.Request) error { return levelTwo(c, req) }

func levelTwo(c *http.Client, req *http.Request) error {
	_, err := c.Do(req) // reached only through Retry via levelOne: allowed
	return err
}

// A helper with even one undisciplined caller loses the exemption.
func leakyHelper(c *http.Client, req *http.Request) error {
	_, err := c.Do(req) // want "outside crawler discipline"
	return err
}

func UndisciplinedCaller(c *http.Client, req *http.Request) { leakyHelper(c, req) }

func alsoDisciplinedCaller(ctx context.Context, c *http.Client, req *http.Request) error {
	return crawler.Retry(ctx, crawler.DefaultRetry(), func(ctx context.Context) error {
		return leakyHelper(c, req)
	})
}

// Request construction with a context is fine anywhere.
func BuildRequest(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, "http://x", nil)
}
