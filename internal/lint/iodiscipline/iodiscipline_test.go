package iodiscipline_test

import (
	"testing"

	"ensdropcatch/internal/lint/iodiscipline"
	"ensdropcatch/internal/lint/linttest"
)

func TestIodiscipline(t *testing.T) {
	linttest.Run(t, iodiscipline.Analyzer,
		"ensdropcatch/internal/etherscan", // positive: client package
		"ensdropcatch/internal/trace",     // positive: rides the client request path
		"ensdropcatch/internal/ethrpc",    // negative: discipline does not apply
	)
}
