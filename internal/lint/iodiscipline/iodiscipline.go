// Package iodiscipline defines an analyzer that keeps every network
// round-trip of the crawl clients behind the crawler package's
// fault-tolerance machinery.
//
// Inside the client packages (internal/etherscan, internal/subgraph,
// internal/opensea) a raw transport call — http.Get/Post/Head/PostForm,
// anything on http.DefaultClient, or (*http.Client).Do — may only
// execute under crawler.Retry or (*crawler.Breaker).Do. A call site is
// disciplined when:
//
//   - it sits lexically inside a function literal passed to
//     crawler.Retry or (*crawler.Breaker).Do, or
//   - it sits in an unexported function all of whose intra-package
//     callers are themselves disciplined (computed to a fixed point,
//     so retry → doOnce → helper chains of any depth are recognized).
//
// Exported functions cannot be proven disciplined (callers outside the
// package are invisible to a per-package analyzer), so a raw transport
// call in one is always flagged. Context-less http.NewRequest is also
// flagged: every request must carry the crawl's context so breaker
// cooldowns and shutdown cancel in-flight I/O.
package iodiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer flags raw HTTP that bypasses crawler.Retry/Limiter/Breaker.
var Analyzer = &analysis.Analyzer{
	Name: "iodiscipline",
	Doc:  "forbid raw HTTP in crawl-client packages outside crawler.Retry / Breaker.Do discipline",
	Run:  run,
}

// clientPkgs are the package-path suffixes the discipline applies to.
var clientPkgs = []string{
	"internal/etherscan",
	"internal/subgraph",
	"internal/opensea",
	// trace ships in every client's request path (Inject, Middleware);
	// raw outbound HTTP from it would bypass the retry/breaker stack.
	"internal/trace",
	// The load harness speaks raw HTTP *by design* (an open-loop
	// generator must not retry or back off), so its transport calls are
	// in scope precisely to force each one to carry a //lint:allow
	// explaining that intent.
	"cmd/ensload",
	// PR 10: the chaos runner builds hostile *and* clean client stacks;
	// any raw HTTP it issued itself would be traffic the campaign clock
	// never ticks for, silently skewing the fault schedule.
	"cmd/enschaos",
}

func isClientPkg(path string) bool {
	for _, p := range clientPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func isCrawlerPkg(path string) bool {
	return path == "internal/crawler" || strings.HasSuffix(path, "/internal/crawler")
}

// rawSite is one raw transport call found in the package.
type rawSite struct {
	call *ast.CallExpr
	desc string
	fn   *types.Func // enclosing top-level function, nil at package scope
	safe bool        // lexically inside a Retry/Breaker.Do literal
}

// callEdge records one intra-package call to a named function.
type callEdge struct {
	callee *types.Func
	fn     *types.Func // enclosing top-level function
	safe   bool        // lexically inside a Retry/Breaker.Do literal
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !isClientPkg(pass.Pkg.Path()) {
		return nil, nil
	}

	var sites []rawSite
	var edges []callEdge

	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosing, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			// Function literals passed to crawler.Retry / Breaker.Do;
			// code inside them is disciplined by construction.
			safeLits := map[*ast.FuncLit]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDisciplineCall(pass, call) {
					for _, arg := range call.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							safeLits[lit] = true
						}
					}
				}
				return true
			})

			inSafe := func(pos ast.Node) bool {
				for lit := range safeLits {
					if lit.Body.Pos() <= pos.Pos() && pos.End() <= lit.Body.End() {
						return true
					}
				}
				return false
			}

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if desc, bad := rawTransport(pass, call); bad {
					sites = append(sites, rawSite{call: call, desc: desc, fn: enclosing, safe: inSafe(call)})
				}
				if callee := staticCallee(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
					edges = append(edges, callEdge{callee: callee, fn: enclosing, safe: inSafe(call)})
				}
				return true
			})
		}
	}

	// Fixed point: a function is "disciplined" when it has at least one
	// intra-package caller and every intra-package call to it is either
	// inside a Retry/Breaker literal or inside a disciplined function.
	// Exported functions are never disciplined (outside callers are
	// invisible).
	disciplined := map[*types.Func]bool{}
	callers := map[*types.Func][]callEdge{}
	for _, e := range edges {
		callers[e.callee] = append(callers[e.callee], e)
	}
	for changed := true; changed; {
		changed = false
		for callee, es := range callers {
			if disciplined[callee] || callee.Exported() {
				continue
			}
			ok := true
			for _, e := range es {
				if !e.safe && !disciplined[e.fn] {
					ok = false
					break
				}
			}
			if ok {
				disciplined[callee] = true
				changed = true
			}
		}
	}

	for _, s := range sites {
		if s.safe || disciplined[s.fn] {
			continue
		}
		pass.Reportf(s.call.Pos(), "%s outside crawler discipline: raw transport calls in %s must run inside crawler.Retry or (*crawler.Breaker).Do so pacing, backoff, and breaker accounting cover them", s.desc, pass.Pkg.Path())
	}
	return nil, nil
}

// isDisciplineCall reports whether call is crawler.Retry(…) or
// (*crawler.Breaker).Do(…).
func isDisciplineCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || !isCrawlerPkg(fn.Pkg().Path()) {
		return false
	}
	if fn.Name() == "Retry" {
		return true
	}
	if fn.Name() == "Do" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}

// rawTransport classifies a call as a raw HTTP transport operation.
func rawTransport(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods: only the request-issuing ones on *http.Client.
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Name() == "Client" {
			switch fn.Name() {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "(*http.Client)." + fn.Name(), true
			}
		}
		return "", false
	}
	switch fn.Name() {
	case "Get", "Post", "PostForm", "Head":
		return "http." + fn.Name() + " (package-level, uses http.DefaultClient)", true
	case "NewRequest":
		return "context-less http.NewRequest (use http.NewRequestWithContext so cancellation and breaker cooldowns propagate)", true
	}
	return "", false
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
