// Positive fixture: the package path ends in internal/serve, the heart
// of the request path, where every context must flow from the caller.
package serve

import (
	"context"
	"net/http"
)

type store struct{}

func (s *store) Execute(q string) error                             { return nil }
func (s *store) ExecuteContext(ctx context.Context, q string) error { return nil }

func fetch(url string) error                                 { return nil }
func fetchWithContext(ctx context.Context, url string) error { return nil }

func process(k string) {}

// A fresh context in a handler detaches the subtree from the request
// deadline; the hint points at r.Context().
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background on a request path"
	_ = ctx
}

// context.TODO is the same violation wearing a different name.
func todoStage() {
	sub := context.TODO() // want "context.TODO on a request path"
	_ = sub
}

// Calling the context-free variant while holding a context drops the
// deadline on the floor: the Context sibling must be used.
func detach(ctx context.Context, s *store) error {
	if err := s.Execute("q"); err != nil { // want "Execute called with a context in scope: use ExecuteContext"
		return err
	}
	return s.ExecuteContext(ctx, "q")
}

// An *http.Request in scope counts as a context in scope (r.Context()).
func viaRequest(w http.ResponseWriter, r *http.Request) {
	_ = fetch("u") // want "fetch called with a context in scope: use fetchWithContext"
}

// A scan loop doing module-local work that never consults ctx cannot be
// cancelled.
func scanAll(ctx context.Context, keys []string) {
	for _, k := range keys { // want "scan loop never consults the in-scope context"
		process(k)
	}
}

// Checking ctx.Err() in the body makes the loop legal.
func scanCancellable(ctx context.Context, keys []string) {
	for _, k := range keys {
		if ctx.Err() != nil {
			return
		}
		process(k)
	}
}

// Pure in-memory iteration (no module-local calls) finishes fast and is
// exempt from the loop rule.
func sumOnly(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// With no context in scope the context-free variant is the only option.
func noCtxInScope(s *store) error {
	return s.Execute("q")
}

var warm context.Context

// init is exempt: process-lifetime setup legitimately starts from a
// fresh root context.
func init() {
	warm = context.Background()
}

// A nested literal is checked against its own parameter list: this one
// receives no context, so its loop has nothing to consult.
func makeWorker() func() {
	return func() {
		for i := 0; i < 3; i++ {
			process("warm")
		}
	}
}
