// Negative fixture: internal/stats is pure computation, outside the
// ctxflow scope — fresh contexts and ctx-free loops are not flagged.
package stats

import "context"

func process(k string) {}

func Background() context.Context {
	return context.Background()
}

func ScanAll(ctx context.Context, keys []string) {
	for _, k := range keys {
		process(k)
	}
}
