// Suppression fixture: one real ctxflow violation, documented with the
// //lint:allow escape hatch. The raw analyzer reports it; the wrapped
// analyzer (the one the driver runs) suppresses it.
package overload

import "context"

func janitorRoot(ctx context.Context) context.Context {
	//lint:allow ctxflow the janitor outlives any one request and detaches deliberately
	return context.Background()
}
