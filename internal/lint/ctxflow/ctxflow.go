// Package ctxflow defines an analyzer that keeps request contexts
// flowing through the serving and crawling layers.
//
// PR 5 built deadline propagation end to end: the overload middleware
// bounds every handler context, the backend scan loops abandon work on
// ctx.Err(), and the crawl clients thread the crawl context into every
// request so breaker cooldowns and shutdown cancel in-flight I/O. All
// of that is invisible plumbing — one `context.Background()` dropped
// into a handler chain silently detaches a subtree from its deadline,
// and no runtime test fails until a soak run happens to hit the
// now-unbounded path under load.
//
// In the scoped packages (the serve stack, the overload middleware,
// the crawl machinery, and the four backend servers) ctxflow flags:
//
//   - context.Background() and context.TODO() anywhere outside main and
//     init — request-path code always has a caller context to use
//     (a function parameter, or r.Context() on an *http.Request);
//   - calls that discard an in-scope context when the callee has a
//     context-accepting sibling (Execute vs ExecuteContext, NewRequest
//     vs NewRequestWithContext, …): the variant that takes a context
//     must be used whenever one is in scope;
//   - scan/retry loops that never consult the context: a for/range
//     loop doing intra-module work inside a function that receives a
//     ctx must reference it — pass it to a callee, check ctx.Err(), or
//     select on ctx.Done() — so long scans stay cancellable.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer keeps request contexts threaded through serve/crawl paths.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid fresh contexts and context-dropping calls on request paths; scan loops must stay cancellable",
	Run:  run,
}

// scopedPkgs are the package-path suffixes the rules apply to: the
// serving stack, the overload middleware, the crawl machinery, and the
// four backend server packages.
var scopedPkgs = []string{
	"internal/serve",
	"internal/overload",
	"internal/crawler",
	"internal/subgraph",
	"internal/etherscan",
	"internal/opensea",
	"internal/ethrpc",
}

func inScope(path string) bool {
	for _, p := range scopedPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
				continue
			}
			checkFunc(pass, fd.Type, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc applies the three rules to one function body. Nested
// function literals are checked in place: a literal's own context
// parameter (if any) shadows the enclosing one for the loop rule.
func checkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxVars := contextParams(pass, ft)
	reqVars := requestParams(pass, ft)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Type, n.Body)
			return false
		case *ast.CallExpr:
			checkFreshContext(pass, n, ctxVars, reqVars)
			checkContextSibling(pass, n, ctxVars, reqVars)
		case *ast.ForStmt:
			checkLoop(pass, n.Body, ctxVars)
		case *ast.RangeStmt:
			checkLoop(pass, n.Body, ctxVars)
		}
		return true
	})
}

// checkFreshContext flags context.Background()/context.TODO(). The
// rule is unconditional in scoped packages: request-path code always
// has a caller context, and the rare legitimate detachment (a
// background janitor goroutine) documents itself with //lint:allow.
func checkFreshContext(pass *analysis.Pass, call *ast.CallExpr, ctxVars, reqVars map[types.Object]bool) {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	hint := "thread the caller's context through"
	if len(ctxVars) > 0 {
		hint = "use the in-scope context parameter"
	} else if len(reqVars) > 0 {
		hint = "use r.Context()"
	}
	pass.Reportf(call.Pos(), "context.%s on a request path in %s detaches this subtree from the caller's deadline and cancellation: %s", fn.Name(), pass.Pkg.Path(), hint)
}

// checkContextSibling flags calls that ignore an in-scope context when
// the callee has a sibling that accepts one: method M alongside
// MContext/MWithContext, or function F alongside FWithContext. The
// caller is holding a context and choosing the variant that drops it.
func checkContextSibling(pass *analysis.Pass, call *ast.CallExpr, ctxVars, reqVars map[types.Object]bool) {
	if len(ctxVars) == 0 && len(reqVars) == 0 {
		return
	}
	fn := staticCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || takesContext(sig) {
		return
	}
	name := fn.Name()
	var sibling string
	if recv := sig.Recv(); recv != nil {
		for _, cand := range []string{name + "Context", name + "WithContext"} {
			if m := lookupMethod(recv.Type(), cand); m != nil && takesContext(m.Type().(*types.Signature)) {
				sibling = cand
				break
			}
		}
	} else if fn.Pkg() != nil {
		for _, cand := range []string{name + "Context", name + "WithContext"} {
			if o, ok := fn.Pkg().Scope().Lookup(cand).(*types.Func); ok && takesContext(o.Type().(*types.Signature)) {
				sibling = cand
				break
			}
		}
	}
	if sibling == "" {
		return
	}
	pass.Reportf(call.Pos(), "%s called with a context in scope: use %s so the request's deadline and cancellation reach the callee", name, sibling)
}

// checkLoop flags a loop body that performs intra-module work but never
// references any in-scope context: a scan that cannot be cancelled. A
// loop is exempt when it has no module-local calls (pure in-memory
// iteration finishes fast) or when any context variable is mentioned
// anywhere in the body (passed down, Err()-checked, or Done()-selected)
// — and when no context parameter is in scope at all.
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt, ctxVars map[types.Object]bool) {
	if len(ctxVars) == 0 {
		return
	}
	work := false
	usesCtx := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if ctxVars[obj] {
					usesCtx = true
				}
				// Any context-typed value in the body counts: a derived
				// context carries the parent's deadline.
				if isContextType(obj.Type()) {
					usesCtx = true
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(pass, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() != "context" {
				if sameModule(fn.Pkg().Path(), pass.Pkg.Path()) {
					work = true
				}
			}
		}
		return true
	})
	if work && !usesCtx {
		pass.Reportf(body.Pos(), "scan loop never consults the in-scope context: check ctx.Err() (or pass ctx to the work call) so a shed or timed-out request stops burning this loop's cycles")
	}
}

// sameModule reports whether two import paths share their first
// segment — a cheap "is this module-local work" test that holds for the
// real module and for scratch fixture modules alike.
func sameModule(a, b string) bool {
	fa, _, _ := strings.Cut(a, "/")
	fb, _, _ := strings.Cut(b, "/")
	return fa == fb
}

// contextParams collects the function's context.Context parameters.
func contextParams(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// requestParams collects *http.Request parameters (r.Context() is in
// scope through them).
func requestParams(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			ptr, ok := obj.Type().(*types.Pointer)
			if !ok {
				continue
			}
			if named, ok := ptr.Elem().(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request" {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// takesContext reports whether any parameter of sig is context.Context.
func takesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// lookupMethod finds a method by name on t or *t.
func lookupMethod(t types.Type, name string) *types.Func {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
