package ctxflow_test

import (
	"testing"

	"ensdropcatch/internal/lint/ctxflow"
	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/lintutil"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer,
		"ensdropcatch/internal/serve", // positive: request-path package
		"ensdropcatch/internal/stats", // negative: out of scope
	)
}

// TestCtxflowSuppression proves the //lint:allow hatch works for this
// analyzer: the fixture violates once, the wrapped analyzer stays quiet.
func TestCtxflowSuppression(t *testing.T) {
	raw := linttest.Diagnostics(t, ctxflow.Analyzer, "ensdropcatch/internal/overload")
	if len(raw) != 1 {
		t.Fatalf("raw analyzer found %d diagnostics, want 1", len(raw))
	}
	wrapped := linttest.Diagnostics(t, lintutil.Wrap(ctxflow.Analyzer), "ensdropcatch/internal/overload")
	for _, d := range wrapped {
		t.Errorf("suppressed fixture still reports: %s", d.Message)
	}
}
