// In the backend packages only the server/encode files are hot: this
// file's name starts with "server", so the rules apply.
package etherscan

func serverPayload() map[string]any {
	return map[string]any{"status": "1"} // want "map\[string\]any literal on a serve hot path"
}
