// The client half of a backend package runs on the crawl path, where
// the retry/breaker stack dominates cost — not hot, not flagged.
package etherscan

func clientPayload() map[string]any {
	return map[string]any{"status": "1"}
}
