// Positive fixture: internal/httpjson is hot package-wide — every
// construct the analyzer forbids appears here once.
package httpjson

import (
	"fmt"
	"net/http"
)

func adhoc() map[string]any {
	return map[string]any{"ok": true} // want "map\[string\]any literal on a serve hot path"
}

func boxed() []any {
	return []any{1, 2} // want "\[\]any literal on a serve hot path"
}

func mk() map[string]any {
	return make(map[string]any, 4) // want "make\(map\[string\]any\) on a serve hot path"
}

func format(id uint64) string {
	return fmt.Sprintf("0x%x", id) // want "fmt.Sprintf on a serve hot path"
}

func boxAppend(vals []int, out []any) []any {
	for _, v := range vals {
		out = append(out, v) // want "append of a concrete value into \[\]any"
	}
	return out
}

func join(keys []string) string {
	s := ""
	for _, k := range keys {
		s += k // want "string \+= inside a loop"
	}
	return s
}

func pairs(keys []string) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, "k="+k) // want "string concatenation inside a loop"
	}
	return out
}

// A handler over the allocation-site budget must restructure.
func heavy(w http.ResponseWriter, r *http.Request) { // want "handler heavy has 13 allocation sites \(budget 12\)"
	_ = make([]byte, 1)
	_ = make([]byte, 2)
	_ = make([]byte, 3)
	_ = make([]byte, 4)
	_ = make([]byte, 5)
	_ = make([]byte, 6)
	_ = make([]byte, 7)
	_ = make([]byte, 8)
	_ = make([]byte, 9)
	_ = make([]byte, 10)
	_ = make([]byte, 11)
	_ = make([]byte, 12)
	_ = make([]byte, 13)
}

// Under budget: no finding.
func light(w http.ResponseWriter, r *http.Request) {
	buf := make([]byte, 0, 64)
	buf = append(buf, '1')
	_, _ = w.Write(buf)
}

// fmt.Errorf stays legal — error paths are cold.
func coldError(err error) error {
	return fmt.Errorf("decode: %w", err)
}

// Constant-folded concatenation does not allocate per iteration.
func constConcat(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, "a"+"b")
	}
	return out
}

// Typed maps are the whole point: never flagged.
func typed() map[string]int {
	return map[string]int{"ok": 1}
}
