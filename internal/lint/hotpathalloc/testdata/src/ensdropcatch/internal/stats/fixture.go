// Negative fixture: internal/stats is offline analysis, out of scope —
// allocation style there is the profiler's business, not the linter's.
package stats

import "fmt"

func Describe(vals []float64) map[string]any {
	out := map[string]any{}
	for i, v := range vals {
		out[fmt.Sprintf("p%d", i)] = v
	}
	return out
}
