// Suppression fixture: a hot-package violation documented with
// //lint:allow because the function never runs on the serve path.
package keccak

import "fmt"

func DebugString(sum [32]byte) string {
	//lint:allow hotpathalloc debug-only formatter for tests and the CLI, never on the serve path
	return fmt.Sprintf("%x", sum)
}
