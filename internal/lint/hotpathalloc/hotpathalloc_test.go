package hotpathalloc_test

import (
	"testing"

	"ensdropcatch/internal/lint/hotpathalloc"
	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/lintutil"
)

func TestHotpathalloc(t *testing.T) {
	linttest.Run(t, hotpathalloc.Analyzer,
		"ensdropcatch/internal/httpjson",  // positive: whole package hot
		"ensdropcatch/internal/etherscan", // positive in server_*.go, negative elsewhere
		"ensdropcatch/internal/stats",     // negative: out of scope
	)
}

// TestHotpathallocSuppression proves the //lint:allow hatch works for
// this analyzer.
func TestHotpathallocSuppression(t *testing.T) {
	raw := linttest.Diagnostics(t, hotpathalloc.Analyzer, "ensdropcatch/internal/keccak")
	if len(raw) != 1 {
		t.Fatalf("raw analyzer found %d diagnostics, want 1", len(raw))
	}
	wrapped := linttest.Diagnostics(t, lintutil.Wrap(hotpathalloc.Analyzer), "ensdropcatch/internal/keccak")
	for _, d := range wrapped {
		t.Errorf("suppressed fixture still reports: %s", d.Message)
	}
}
