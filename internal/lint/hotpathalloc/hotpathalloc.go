// Package hotpathalloc defines an analyzer that freezes PR 8's serve
// hot-path allocation wins so they cannot silently regress.
//
// PR 8 cut the subgraph page handler from 2562 to 162 allocs/request
// by replacing map[string]any responses with typed structs pooled
// through internal/httpjson, unrolling keccak, and caching rendered
// pages. Those wins are currently guarded by AllocsPerRun budgets in
// internal/serve — runtime tests that fire only when the benchmarks
// run. This analyzer rejects the offending *constructs* at lint time,
// in the packages that are on the serve hot path:
//
//   - map[string]any (or map[string]interface{}) composite literals
//     and make calls — ad-hoc JSON responses; every response must be a
//     typed struct encoded through internal/httpjson;
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln — per-request formatting
//     allocates and reflects; use strconv or append onto a pooled
//     buffer (fmt.Errorf stays legal: error paths are cold);
//   - string concatenation with + inside loops — quadratic allocation;
//     build through a strings.Builder or byte slice;
//   - composite literals of type []any and appends of non-interface
//     values into []any — interface boxing allocates per element;
//   - HTTP handler functions with more allocation *sites* than the
//     budget (an approximation of allocs/request that is checkable
//     without running: make/new/composite-literal/[]byte(…)/string(…)
//     expressions) — a handler above the budget restructures or
//     documents itself with //lint:allow.
//
// Scope: internal/httpjson, internal/serve, internal/pagecache,
// internal/keccak, and internal/ens package-wide, plus the server and
// encode files of the four backend packages (their client halves run
// on the crawl path, where the retry/breaker stack dominates cost).
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer freezes serve hot-path allocation discipline.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid map[string]any responses, per-request fmt formatting, loop string concat, and []any boxing on serve hot paths; budget handler alloc sites",
	Run:  run,
}

// AllocBudget is the maximum allocation sites a handler-shaped
// function may contain before it must restructure or annotate.
const AllocBudget = 12

// hotPkgs are package-path suffixes where the whole package is hot.
var hotPkgs = []string{
	"internal/httpjson",
	"internal/serve",
	"internal/pagecache",
	"internal/keccak",
	"internal/ens",
}

// serverFilePkgs are packages where only the serving half is hot: the
// rules apply to files whose base name starts with "server" or
// "encode" (the simulation servers and their response encoders).
var serverFilePkgs = []string{
	"internal/subgraph",
	"internal/etherscan",
	"internal/opensea",
	"internal/ethrpc",
}

func pkgIn(path string, set []string) bool {
	for _, p := range set {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	wholePkg := pkgIn(pass.Pkg.Path(), hotPkgs)
	serverFiles := pkgIn(pass.Pkg.Path(), serverFilePkgs)
	if !wholePkg && !serverFiles {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass) {
		if serverFiles && !wholePkg {
			base := baseName(pass, f)
			if !strings.HasPrefix(base, "server") && !strings.HasPrefix(base, "encode") {
				continue
			}
		}
		checkFile(pass, f)
	}
	return nil, nil
}

func baseName(pass *analysis.Pass, f *ast.File) string {
	name := pass.Fset.Position(f.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Construct checks, file-wide.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if isStringAnyMap(t) {
				pass.Reportf(n.Pos(), "map[string]any literal on a serve hot path: ad-hoc JSON responses reflect and allocate per request — use a typed response struct through internal/httpjson (the PR 8 contract)")
			}
			if isAnySlice(t) {
				pass.Reportf(n.Pos(), "[]any literal on a serve hot path: every element is boxed into an interface — use a concrete element type")
			}
		case *ast.CallExpr:
			checkMakeMap(pass, n)
			checkFmt(pass, n)
			checkAppendBoxing(pass, n)
		case *ast.ForStmt:
			checkLoopConcat(pass, n.Body)
		case *ast.RangeStmt:
			checkLoopConcat(pass, n.Body)
		}
		return true
	})

	// Handler alloc-site budget.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !isHandlerShaped(pass, fd) {
			continue
		}
		sites := countAllocSites(pass, fd.Body)
		if sites > AllocBudget {
			pass.Reportf(fd.Name.Pos(), "handler %s has %d allocation sites (budget %d): per-request garbage on the hot path — pool buffers (httpjson), hoist allocations, or annotate why this handler is cold", fd.Name.Name, sites, AllocBudget)
		}
	}
}

func checkMakeMap(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	if isStringAnyMap(pass.TypesInfo.TypeOf(call.Args[0])) {
		pass.Reportf(call.Pos(), "make(map[string]any) on a serve hot path: use a typed response struct through internal/httpjson")
	}
}

func checkFmt(pass *analysis.Pass, call *ast.CallExpr) {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln":
		pass.Reportf(call.Pos(), "fmt.%s on a serve hot path: formatting reflects and allocates per request — use strconv, or append onto a pooled buffer (fmt.Errorf on error paths stays legal)", fn.Name())
	}
}

// checkAppendBoxing flags append(dst, v) where dst is []any and v is a
// concrete (non-interface) value: the append boxes per element.
func checkAppendBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if !isAnySlice(pass.TypesInfo.TypeOf(call.Args[0])) {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			pass.Reportf(call.Pos(), "append of a concrete value into []any boxes per element on a serve hot path: use a concrete slice type")
			return
		}
	}
}

// checkLoopConcat flags string + concatenation inside a loop body
// (excluding nested function literals, which have their own context).
func checkLoopConcat(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if n.Op.String() != "+" {
				return true
			}
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				if isConstExpr(pass, n) {
					return true
				}
				pass.Reportf(n.Pos(), "string concatenation inside a loop on a serve hot path allocates a fresh string per iteration: build through a strings.Builder or byte slice")
				return false
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil {
					if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string += inside a loop on a serve hot path is quadratic: build through a strings.Builder or byte slice")
					}
				}
			}
		}
		return true
	})
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// countAllocSites counts syntactic allocation points: make, new,
// composite literals, []byte(string) / string([]byte) conversions, and
// append calls. Nested function literals count toward their enclosing
// handler — they run per request too.
func countAllocSites(pass *analysis.Pass, body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CompositeLit:
			n++
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make", "new", "append":
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						n++
					}
				}
			}
			// Conversions that copy: []byte(s), string(b).
			if len(v.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() {
					t := tv.Type.Underlying()
					argT := pass.TypesInfo.TypeOf(v.Args[0])
					if argT != nil && isByteStringConv(t, argT.Underlying()) {
						n++
					}
				}
			}
		}
		return true
	})
	return n
}

// isByteStringConv reports a []byte <-> string conversion, either way.
func isByteStringConv(to, from types.Type) bool {
	return (isByteSlice(to) && isString(from)) || (isString(to) && isByteSlice(from))
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func isString(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isHandlerShaped reports an HTTP handler: func(w http.ResponseWriter,
// r *http.Request) signatures and ServeHTTP methods.
func isHandlerShaped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	return isNetHTTPNamed(params.At(0).Type(), "ResponseWriter") &&
		isPtrToNetHTTPNamed(params.At(1).Type(), "Request")
}

func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
}

func isPtrToNetHTTPNamed(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNetHTTPNamed(ptr.Elem(), name)
}

func isStringAnyMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if !isString(m.Key().Underlying()) {
		return false
	}
	iface, ok := m.Elem().Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 0
}

func isAnySlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 0
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
