// Package floatfold defines an analyzer that forbids accumulating
// floating-point values from inside concurrent execution contexts.
//
// Float addition does not associate: (a+b)+c and a+(b+c) round
// differently, so a sum folded in goroutine-completion order differs
// run to run even when every worker computes identical shards. PR 3's
// contract is that par.Map/par.ForEach produce per-index results and
// the fold happens sequentially after the gather — this analyzer makes
// that contract mechanical. It flags `+=` / `-=` (and `x = x + …`
// spelled out) on a float variable captured from an enclosing scope
// when the assignment executes:
//
//   - inside a function literal passed to par.Map / par.ForEach /
//     crawler.ForEach / crawler.ForEachPolicy, or
//   - inside a `go` statement.
//
// Integer accumulation under a mutex or atomics is exact and is not
// flagged; the rule is specifically about float rounding order.
package floatfold

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer flags captured-float accumulation in parallel closures.
var Analyzer = &analysis.Analyzer{
	Name: "floatfold",
	Doc:  "forbid float += accumulation inside par.Map/par.ForEach closures and goroutines; fold sequentially after the gather",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range lintutil.NonTestFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.CallExpr:
				if !isParCall(pass, stmt) {
					return true
				}
				for _, arg := range stmt.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkClosure(pass, lit, "closure passed to "+calleeLabel(pass, stmt))
					}
				}
			case *ast.GoStmt:
				if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
					checkClosure(pass, lit, "goroutine")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkClosure reports float accumulation into variables captured from
// outside lit within lit's body (including nested literals, which run
// on the same worker).
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok.String() {
		case "+=", "-=":
			if len(as.Lhs) == 1 {
				reportCaptured(pass, lit, as.Lhs[0], as.Tok.String(), where)
			}
		case "=":
			// x = x + y / x = y + x spelled out.
			for i := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if bin, ok := as.Rhs[i].(*ast.BinaryExpr); ok &&
					(bin.Op.String() == "+" || bin.Op.String() == "-") &&
					(sameObj(pass, as.Lhs[i], bin.X) || sameObj(pass, as.Lhs[i], bin.Y)) {
					reportCaptured(pass, lit, as.Lhs[i], "= "+as.Lhs[i].(*ast.Ident).Name+" "+bin.Op.String(), where)
				}
			}
		}
		return true
	})
}

func reportCaptured(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, op, where string) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || !isFloat(obj.Type()) {
		return
	}
	// Captured: declared outside the closure body.
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return
	}
	pass.Reportf(lhs.Pos(), "float accumulation %s into captured %s inside %s: fold order follows goroutine completion, so the sum differs run to run; return per-index results and fold sequentially after the gather", op, obj.Name(), where)
}

func sameObj(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, ok1 := a.(*ast.Ident)
	bi, ok2 := b.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	ao := pass.TypesInfo.ObjectOf(ai)
	return ao != nil && ao == pass.TypesInfo.ObjectOf(bi)
}

// isParCall reports whether the callee is par.Map/par.ForEach or
// crawler.ForEach/ForEachPolicy.
func isParCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	switch {
	case p == "internal/par" || strings.HasSuffix(p, "/internal/par"):
		return fn.Name() == "Map" || fn.Name() == "ForEach"
	case p == "internal/crawler" || strings.HasSuffix(p, "/internal/crawler"):
		return fn.Name() == "ForEach" || fn.Name() == "ForEachPolicy"
	}
	return false
}

func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := staticCallee(pass, call)
	if fn == nil {
		return "parallel helper"
	}
	parts := strings.Split(fn.Pkg().Path(), "/")
	return parts[len(parts)-1] + "." + fn.Name()
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
