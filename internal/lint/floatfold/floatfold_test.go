package floatfold_test

import (
	"testing"

	"ensdropcatch/internal/lint/floatfold"
	"ensdropcatch/internal/lint/linttest"
)

func TestFloatfold(t *testing.T) {
	linttest.Run(t, floatfold.Analyzer, "floatfold/fix")
}
