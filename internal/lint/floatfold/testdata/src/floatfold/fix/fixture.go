// Fixtures for floatfold: shared float accumulation from concurrent
// closures. Imports the real par and crawler packages so the worker-pool
// entry points are matched against their true signatures.
package fix

import (
	"context"
	"sync"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/par"
)

// Accumulating a captured float inside a par.ForEach body races AND
// folds in scheduler order; float addition does not associate.
func forEachFold(p *par.Pool, xs []float64) float64 {
	var sum float64
	par.ForEach(p, len(xs), func(i int) {
		sum += xs[i] // want "float accumulation .* captured sum"
	})
	return sum
}

// The sanctioned pattern: par.Map into per-index slots, then a single
// sequential fold outside the closure.
func mapThenFold(p *par.Pool, xs []float64) float64 {
	parts := par.Map(p, len(xs), func(i int) float64 {
		return xs[i] * xs[i]
	})
	var sum float64
	for _, v := range parts {
		sum += v
	}
	return sum
}

// A float local to the closure is private per call and fine.
func localAccumulator(p *par.Pool, xs [][]float64, out []float64) {
	par.ForEach(p, len(xs), func(i int) {
		var rowSum float64
		for _, v := range xs[i] {
			rowSum += v
		}
		out[i] = rowSum
	})
}

// Integer accumulation commutes exactly; it may still race, but that is
// the race detector's job, not this analyzer's.
func intFold(p *par.Pool, xs []int) int {
	var n int
	par.ForEach(p, len(xs), func(i int) {
		n += xs[i]
	})
	return n
}

// The spelled-out form x = x + v is the same fold.
func spelledOut(p *par.Pool, xs []float64) float64 {
	var total float64
	par.ForEach(p, len(xs), func(i int) {
		total = total + xs[i] // want "float accumulation .* captured total"
	})
	return total
}

// Plain goroutines get the same treatment.
func goStmt(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += x // want "float accumulation .* captured sum"
		}()
	}
	wg.Wait()
	return sum
}

// crawler.ForEach worker bodies are concurrent too.
func crawlerFold(ctx context.Context, items []float64) (float64, error) {
	var sum float64
	err := crawler.ForEach(ctx, 4, items, func(ctx context.Context, v float64) error {
		sum += v // want "float accumulation .* captured sum"
		return nil
	})
	return sum, err
}

// Sequential closures (not passed to a pool, not a go statement) fold in
// program order and are fine.
func sequentialClosure(xs []float64) float64 {
	var sum float64
	add := func(v float64) { sum += v }
	for _, x := range xs {
		add(x)
	}
	return sum
}
