// Fixture proving the vendored upstream copylocks analyzer really runs
// in this suite: a mutex copied by value splits the lock from its data.
package locks

import "sync"

type T struct {
	mu sync.Mutex
	n  int
}

func byValue(t T) int { // want "byValue passes lock by value: upstream/locks.T contains sync.Mutex"
	return t.n
}

var sink T

func assign(a *T) {
	sink = *a // want "assignment copies lock value to sink: upstream/locks.T contains sync.Mutex"
}

func byPointer(t *T) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
