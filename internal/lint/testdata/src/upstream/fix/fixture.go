// Fixture proving the vendored upstream lostcancel analyzer really runs
// in this suite: a context whose cancel function is lost on a return
// path leaks the context's resources.
package fix

import "context"

func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "the cancel function returned by context.WithCancel should be called, not discarded, to avoid a context leak"
	return ctx
}

func leakyPath(parent context.Context, bad bool) context.Context {
	ctx, cancel := context.WithCancel(parent) // want "the cancel function is not used on all paths \(possible context leak\)"
	if bad {
		return ctx // want "this return statement may be reached without using the cancel var defined on line 14"
	}
	cancel()
	return ctx
}

func clean(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}
