// Fixtures for maporder: order-dependent effects inside range-over-map.
package fix

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"

	"ensdropcatch/internal/obs"
)

// Appending to an outer slice with no later sort leaks map order.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

// The collect-keys-then-sort idiom restores a total order and is legal.
func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with the collected values also counts as a rescue.
func appendThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Serializing from inside the loop bakes the random order into bytes.
func encodeInLoop(m map[string]int, enc *json.Encoder, w io.Writer) {
	for k, v := range m {
		enc.Encode(v)                 // want "Encode inside range over map"
		w.Write([]byte(k))            // want "Write inside range over map"
		fmt.Fprintf(w, "%s=%d", k, v) // want "fmt.Fprintf inside range over map"
	}
}

// Metric emission from map iteration makes exposition order random.
func metricsInLoop(m map[string]int, c *obs.Counter) {
	for range m {
		c.Inc() // want "metric Inc inside range over map"
	}
}

// Float folds are order-dependent; ints commute exactly and are fine.
func folds(m map[string]float64, n map[string]int) (float64, int) {
	var fsum float64
	var isum int
	for _, v := range m {
		fsum += v // want "float accumulation into fsum"
	}
	for _, v := range n {
		isum += v
	}
	return fsum, isum
}

// maps.Keys is an unordered iterator over the map; same rules apply.
func iterKeys(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

// Ranging over a slice is always fine, whatever the body does.
func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		w.Write([]byte(x))
	}
}

// Filling another map from a map range is order-free and legal.
func mapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
