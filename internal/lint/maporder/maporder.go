// Package maporder defines an analyzer that flags `range` over a map
// when the loop body does something iteration-order-dependent. Go
// randomizes map iteration order on purpose, so any of the following
// inside a map range makes output differ run to run:
//
//   - appending to a slice declared outside the loop — unless that
//     slice is handed to sort/slices sorting later in the same
//     function (the collect-keys-then-sort idiom);
//   - writing to an encoder, writer, or printer (Encode, Write,
//     Fprintf, …) — serialized bytes inherit the random order;
//   - emitting metrics (Inc/Add/Observe/Set on internal/obs types) —
//     exposition and first-registration order become nondeterministic;
//   - accumulating floats with += or -= — float addition does not
//     commute in rounding, so even a commutative-looking fold drifts.
//
// Ranges over maps.Keys/maps.Values/maps.All iterators are treated as
// map ranges: the iterator inherits the map's random order. This is
// exactly the bug class behind PR 3's fingerprint drift, where crawl
// completion order leaked into the dataset's serialized byte stream.
package maporder

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer flags order-dependent work inside range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent effects (appends feeding output, encoding, metrics, float folds) inside range over a map",
	Run:  run,
}

var emissionMethods = map[string]bool{
	"Encode":      true,
	"EncodeToken": true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

var fmtEmitters = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
	"Print":    true,
	"Printf":   true,
	"Println":  true,
}

var metricMethods = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Observe": true,
	"Set":     true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range lintutil.NonTestFiles(pass) {
		// Walk function by function so the sort-rescue check can scan
		// the statements that follow a loop in the same body.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody inspects the direct statements of one function body; nested
// function literals get their own checkBody via the outer Inspect.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // handled as its own function
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rng) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

// isMapRange reports whether the range expression is a map or one of the
// maps package's unordered iterators.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if t := pass.TypesInfo.TypeOf(rng.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	if call, ok := rng.X.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "maps" {
			switch fn.Name() {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	return false
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			if stmt != rng && isMapRange(pass, stmt) {
				return false // the nested map range reports for itself
			}
		case *ast.AssignStmt:
			checkAssign(pass, fnBody, rng, stmt)
		case *ast.CallExpr:
			checkCall(pass, stmt)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	// Float accumulation: sum += v does not commute in rounding.
	if (as.Tok.String() == "+=" || as.Tok.String() == "-=") && len(as.Lhs) == 1 {
		if obj := outerObj(pass, as.Lhs[0], rng); obj != nil && isFloat(obj.Type()) {
			pass.Reportf(as.Pos(), "float accumulation into %s inside range over map: float folds are order-dependent and map order is random; collect into a keyed structure and fold over sorted keys", obj.Name())
			return
		}
	}
	// s = append(s, …) into an outer slice.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		obj := outerObj(pass, as.Lhs[i], rng)
		if obj == nil {
			continue
		}
		if sortedAfter(pass, fnBody, rng, obj) {
			continue
		}
		pass.Reportf(call.Pos(), "append to %s inside range over map: iteration order is random, so the slice's element order differs run to run; sort the map's keys first or sort %s before it is used", obj.Name(), obj.Name())
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtEmitters[fn.Name()] {
		pass.Reportf(call.Pos(), "fmt.%s inside range over map: emitted order is random; iterate sorted keys instead", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recvPkg := fn.Pkg()
	if emissionMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(), "%s inside range over map: serialized output inherits the random iteration order; iterate sorted keys instead", sel.Sel.Name)
		return
	}
	if metricMethods[sel.Sel.Name] && recvPkg != nil && lintutil.IsObsPkg(recvPkg.Path()) {
		pass.Reportf(call.Pos(), "metric %s inside range over map: emission/registration order becomes nondeterministic; iterate sorted keys instead", sel.Sel.Name)
	}
}

// outerObj resolves expr to a variable declared outside the range body,
// or nil if it is not a plain identifier or is loop-local.
func outerObj(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // declared by the loop itself
	}
	return obj
}

// sortedAfter reports whether, after the range loop, the enclosing
// function calls a sort/slices function with obj among its arguments —
// the collect-then-sort idiom that restores a total order.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
