package maporder_test

import (
	"testing"

	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "maporder/fix")
}
