package droppederr_test

import (
	"testing"

	"ensdropcatch/internal/lint/droppederr"
	"ensdropcatch/internal/lint/linttest"
)

func TestDroppederr(t *testing.T) {
	linttest.Run(t, droppederr.Analyzer,
		"ensdropcatch/internal/crawler", // positive: spool/checkpoint path
		"ensdropcatch/internal/trace",   // positive: trace store/debug handler path
		"ensdropcatch/internal/stats",   // negative: pure computation
	)
}
