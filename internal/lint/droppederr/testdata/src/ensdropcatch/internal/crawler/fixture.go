// Positive fixture: the package path ends in internal/crawler, one of
// the spool/checkpoint/report error paths where a dropped error becomes
// corrupt data.
package crawler

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

var ErrSpoolCorrupt = errors.New("spool corrupt")

// Discarding an already-bound error value is always flagged.
func blankErr(f *os.File) {
	_, err := f.Write([]byte("x"))
	_ = err // want "error value discarded"
}

// A bare call statement whose error result vanishes is flagged; the
// explicit `_ =` discard is the documented opt-out.
func ignoredCalls(f *os.File, enc *json.Encoder, v any) {
	f.Close()     // want "error result of Close ignored"
	enc.Encode(v) // want "error result of Encode ignored"
	f.Sync()      // want "error result of Sync ignored"
	_ = f.Close() // explicit discard: the open error path is already being reported
}

// defer f.Close() on a read-only handle is the standard idiom.
func deferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// Writers documented never to fail are carved out.
func infallibleWriters() string {
	var b strings.Builder
	b.WriteString("spool ") // strings.Builder never errors
	h := sha256.New()
	h.Write([]byte("header")) // hash.Hash.Write never errors
	b.WriteString(fmt.Sprintf("%x", h.Sum(nil)))
	return b.String()
}

// fmt.Errorf over an error must keep the wrap chain intact.
func wrapChain(err error) error {
	if err != nil {
		return fmt.Errorf("flush spool: %v", err) // want "without %w"
	}
	return nil
}

func wrappedOK(err error) error {
	if err != nil {
		return fmt.Errorf("flush spool: %w", err)
	}
	return nil
}

// Checking the error is, of course, the real fix.
func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return fmt.Errorf("close spool: %w", err)
	}
	return nil
}
