// Negative fixture: internal/stats is pure computation, not a durable
// I/O path, so droppederr does not police it.
package stats

import (
	"fmt"
	"os"
)

func outOfScope(f *os.File, err error) error {
	f.Close()
	_ = err
	return fmt.Errorf("stats: %v", err)
}
