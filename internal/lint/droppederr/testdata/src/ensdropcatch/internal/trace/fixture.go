// Positive fixture: the package path ends in internal/trace. The trace
// store and debug handler sit on the observability error path — a
// silently failed Encode there serves an operator a truncated span tree
// with a 200 status.
package trace

import (
	"encoding/json"
	"net/http"
)

// A bare Encode statement whose error vanishes is flagged.
func serveTrace(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v) // want "error result of Encode ignored"
}

// The explicit `_ =` discard is the documented opt-out: once headers
// are written, an Encode failure means the client went away and there
// is nothing left to report to.
func serveTraceDiscarded(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Discarding an already-bound error value is always flagged.
func blankErr(w http.ResponseWriter, v any) {
	err := json.NewEncoder(w).Encode(v)
	_ = err // want "error value discarded"
}
