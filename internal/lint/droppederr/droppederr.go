// Package droppederr defines an analyzer that hunts silently dropped
// errors on the paths where a swallowed failure corrupts data rather
// than crashing: the spool/checkpoint machinery, the dataset
// builder/persister, report emission, the crawl clients, and the
// command binaries.
//
// In those packages it flags:
//
//   - `_ = err` where err is an error-typed variable (or field) — a
//     value someone captured and then threw away. Discarding a *call*
//     with `_ = f.Close()` is deliberately exempt: that is the
//     standard, greppable opt-out for close-on-error-path cleanups,
//     visible in review precisely because the blank assignment is
//     explicit;
//   - a call whose results are entirely discarded (expression
//     statement) when the callee is a Write/Close/Encode-family
//     function returning an error. A spool Write whose error vanishes
//     is exactly how a torn checkpoint line becomes silent data loss.
//     Deferred calls are exempt (the `defer f.Close()` read-side
//     idiom), as are the never-failing writers strings.Builder,
//     bytes.Buffer, and hash.Hash;
//   - fmt.Errorf with an error among its arguments but no %w verb:
//     wrapping with %v/%s severs the chain, so errors.Is against
//     sentinels like crawler.ErrSpoolCorrupt or a *RetryAfterError
//     stops matching and retry/resume logic silently degrades.
package droppederr

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer flags dropped errors and chain-severing wrapping on
// data-integrity-critical paths.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarded errors from Write/Close/Encode and %w-less error wrapping in spool/checkpoint/report/client paths",
	Run:  run,
}

// errPathPkgs are the package-path suffixes where a dropped error means
// corrupted or silently incomplete data.
var errPathPkgs = []string{
	"internal/crawler",
	"internal/dataset",
	"internal/report",
	"internal/recovery",
	"internal/etherscan",
	"internal/subgraph",
	"internal/opensea",
	"internal/overload",
	"internal/trace",
	// PR 9: the serving stack added since PR 4 — a swallowed Write or
	// Close on these paths loses a response or leaks a descriptor.
	"internal/httpjson",
	"internal/pagecache",
	"internal/serve",
	// PR 10: the filesystem seam every durable write goes through — a
	// dropped error here is exactly the torn-write bug the fault
	// injector exists to provoke.
	"internal/vfs",
	"internal/keccak",
}

// mustCheckCallees are method/function names whose error results must
// not be discarded in scope.
var mustCheckCallees = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Close":       true,
	"Encode":      true,
	"Flush":       true,
	"Sync":        true,
	"Mark":        true,
}

func inScope(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") {
		return true
	}
	for _, p := range errPathPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass) {
		// Deferred calls are collected first so the ExprStmt walk can
		// skip them.
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				checkBlankErr(pass, stmt)
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && !deferred[call] {
					checkIgnoredCall(pass, call)
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, stmt)
			}
			return true
		})
	}
	return nil, nil
}

// checkBlankErr flags `_ = err`: a blank assignment whose right-hand
// side is an error-typed variable or field. Calls on the RHS are the
// explicit opt-out idiom and stay legal.
func checkBlankErr(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			continue
		}
		switch as.Rhs[i].(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			continue
		}
		if t := pass.TypesInfo.TypeOf(as.Rhs[i]); t != nil && isErrorType(t) {
			pass.Reportf(lhs.Pos(), "error value discarded with `_ = %s`: handle it, propagate it, or annotate why it cannot matter — silent drops on this path turn faults into corrupt data", exprString(as.Rhs[i]))
			return
		}
	}
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "…"
}

// checkIgnoredCall flags expression-statement calls to Write/Close/…
// whose error result is discarded.
func checkIgnoredCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mustCheckCallees[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	// The never-fails carve-out keys on the receiver expression's type:
	// hash.Hash embeds io.Writer, so the method object alone would say
	// "io", not "hash".
	if t := pass.TypesInfo.TypeOf(sel.X); t != nil && neverFails(t) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s ignored: a failed %s on this path is data loss, not noise — check it or annotate why it cannot matter", sel.Sel.Name, sel.Sel.Name)
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error but format
// it with something other than %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isErrorType(t) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w: the wrap chain is severed, so errors.Is/errors.As against sentinels (crawler.ErrSpoolCorrupt, *crawler.RetryAfterError) stop matching; use %%w or strip the cause deliberately")
			return
		}
	}
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// neverFails reports whether the receiver is one of the writers whose
// Write/WriteString are documented to always return a nil error:
// strings.Builder, bytes.Buffer, and the hash.Hash family (the dataset
// fingerprint leans on the hash guarantee).
func neverFails(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") ||
		(pkg == "bytes" && name == "Buffer") ||
		pkg == "hash" || strings.HasPrefix(pkg, "hash/") ||
		strings.HasPrefix(pkg, "crypto/")
}
