package lint_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"

	"ensdropcatch/internal/lint/linttest"
)

// The upstream pair rides along in the suite (see Analyzers). These
// fixtures prove the vendored analyzers actually run and report under
// our harness — not just that they are present in the roster.

func TestUpstreamLostcancel(t *testing.T) {
	linttest.Run(t, lostcancel.Analyzer, "upstream/fix")
}

func TestUpstreamCopylocks(t *testing.T) {
	linttest.Run(t, copylock.Analyzer, "upstream/locks")
}
