// Package boundedres defines an analyzer that proves every long-lived
// map or slice grown on a request path has a bound.
//
// The serving stack accumulates state per request by design — the page
// cache stores rendered responses, the quota table tracks client
// buckets, the trace store retains sampled traces, the metrics
// registry materializes label children. Each of those is bounded
// (LRU eviction, least-recently-seen eviction, capacity-with-eviction,
// label-cardinality caps) because PR 5–8 made them so after real
// incidents: an unbounded container written by client-controlled
// input is a memory-exhaustion denial of service waiting for traffic.
// The invariant lived in each container's own tests; this analyzer
// makes it structural.
//
// Mechanics, per scoped package:
//
//   - request-path functions are HTTP handlers (func(w, r) shapes,
//     ServeHTTP methods, functions building http.HandlerFunc literals)
//     plus everything they reach through intra-package static calls,
//     computed to a fixed point;
//   - a *growth write* is a map store (x.f[k] = v) or self-append
//     (x.f = append(x.f, …)) whose target is a struct field or
//     package-level variable of map/slice type;
//   - a growth write on a request path is legal only if the package
//     contains *bound evidence* for the same container: a delete or
//     clear of it, a reslice assignment (x.f = x.f[…]), or a len(x.f)
//     comparison (the `if len(m) < max` guard idiom). Otherwise the
//     write is flagged; truly unbounded-by-design containers document
//     themselves with //lint:allow boundedres <reason>.
//
// Two refinements keep the rule about *long-lived* state:
//
//   - fields of locals the function freshly allocates (x := T{…},
//     x := &T{…}, new(T)) are exempt — a response struct or parse tree
//     built per request dies with the request, so its growth is bounded
//     by the request's own input;
//   - a function that is a root only because it *builds* an
//     http.HandlerFunc contributes just the literal's body (and its
//     callees) to the request path: the enclosing function runs once at
//     wiring time, and its own writes are setup, not traffic.
//
// Channels are exempt: their capacity is fixed at make time.
package boundedres

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ensdropcatch/internal/lint/lintutil"
)

// Analyzer proves request-path container growth is bounded.
var Analyzer = &analysis.Analyzer{
	Name: "boundedres",
	Doc:  "long-lived maps/slices grown on request paths must show bound evidence (eviction, reslice, or len guard) in their package",
	Run:  run,
}

// scopedPkgs are the package-path suffixes with request-path state.
var scopedPkgs = []string{
	"internal/serve",
	"internal/overload",
	"internal/pagecache",
	"internal/trace",
	"internal/obs",
	"internal/httpjson",
	"internal/crawler",
	"internal/subgraph",
	"internal/etherscan",
	"internal/opensea",
	"internal/ethrpc",
}

func inScope(path string) bool {
	for _, p := range scopedPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// growthWrite is one container-growing statement.
type growthWrite struct {
	pos    token.Pos
	target types.Object // the container field or package-level var
	desc   string
	fn     *types.Func // enclosing function declaration (nil at pkg scope)
	inLit  bool        // lexically inside a func literal of fn
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	var writes []growthWrite
	evidence := map[types.Object]bool{}
	rootAll := map[*types.Func]bool{}           // whole body is request-path
	rootLit := map[*types.Func]bool{}           // only handler literals are
	edgesAll := map[*types.Func][]*types.Func{} // caller -> callees (same package)
	edgesLit := map[*types.Func][]*types.Func{} // …from inside func literals only

	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if isHandlerShaped(pass, fd) || fd.Name.Name == "ServeHTTP" {
				rootAll[fn] = true
			}
			fresh := freshLocals(pass, fd.Body)
			var walk func(n ast.Node, inLit bool)
			walk = func(root ast.Node, inLit bool) {
				ast.Inspect(root, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncLit:
						if n == root {
							return true
						}
						walk(n.Body, true)
						return false
					case *ast.AssignStmt:
						collectWrites(pass, n, fn, inLit, fresh, &writes)
						collectResliceEvidence(pass, n, evidence)
					case *ast.CallExpr:
						collectCallEvidence(pass, n, evidence)
						if callee := staticCallee(pass, n); callee != nil && callee.Pkg() == pass.Pkg {
							edgesAll[fn] = append(edgesAll[fn], callee)
							if inLit {
								edgesLit[fn] = append(edgesLit[fn], callee)
							}
						}
						// Building an http.HandlerFunc marks the enclosing
						// function as a literal root: the literal's body runs
						// per request; the rest of the function is wiring.
						if isHandlerFuncConv(pass, n) {
							rootLit[fn] = true
						}
					case *ast.BinaryExpr:
						collectLenEvidence(pass, n, evidence)
					}
					return true
				})
			}
			walk(fd.Body, false)
		}
	}

	// Fixed point: everything reachable from a root is request-path.
	// Full roots contribute all their call edges; literal-only roots
	// contribute just the edges made from inside their literals.
	reachable := map[*types.Func]bool{}
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if fn == nil || reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, callee := range edgesAll[fn] {
			mark(callee)
		}
	}
	for fn := range rootAll {
		mark(fn)
	}
	for fn := range rootLit {
		if rootAll[fn] || reachable[fn] {
			continue
		}
		for _, callee := range edgesLit[fn] {
			mark(callee)
		}
	}

	for _, w := range writes {
		onPath := reachable[w.fn] || (rootLit[w.fn] && w.inLit)
		if !onPath {
			continue
		}
		if evidence[w.target] {
			continue
		}
		pass.Reportf(w.pos, "%s grows on a request path with no bound evidence in the package (no delete/clear, reslice, or len guard): client traffic can grow it without limit — evict, cap, or annotate why it is bounded elsewhere", w.desc)
	}
	return nil, nil
}

// freshLocals collects local variables every one of whose ident-LHS
// assignments is a fresh allocation (T{…}, &T{…}, new(T), make(…)).
// Growth through fields of such locals is bounded by the life of the
// value the function just built, so it is exempt.
func freshLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			// Multi-value assignment: the RHS is a call, not a literal.
			for _, lhs := range as.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil {
						tainted[obj] = true
					}
				}
			}
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := identObj(pass, id)
			if obj == nil {
				continue
			}
			if isFreshAlloc(pass, as.Rhs[i]) {
				fresh[obj] = true
			} else {
				tainted[obj] = true
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isFreshAlloc reports T{…}, &T{…}, new(T), and make(…) expressions.
func isFreshAlloc(pass *analysis.Pass, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		return id.Name == "new" || id.Name == "make"
	}
	return false
}

// collectWrites records map stores and self-appends whose target is a
// struct field or package-level variable. Fields reached through a
// freshly-allocated local are skipped — the container dies with the
// value this function just built.
func collectWrites(pass *analysis.Pass, as *ast.AssignStmt, fn *types.Func, inLit bool, fresh map[types.Object]bool, out *[]growthWrite) {
	for i, lhs := range as.Lhs {
		// x.f[k] = v — map store.
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
			if obj := containerObj(pass, ix.X); obj != nil && isMap(obj.Type()) && !viaFreshLocal(pass, ix.X, obj, fresh) {
				*out = append(*out, growthWrite{pos: lhs.Pos(), target: obj, desc: "map " + render(ix.X), fn: fn, inLit: inLit})
			}
			continue
		}
		// x.f = append(x.f, …) — self-append.
		obj := containerObj(pass, lhs)
		if obj == nil || !isSlice(obj.Type()) || i >= len(as.Rhs) {
			continue
		}
		call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if len(call.Args) == 0 || containerObj(pass, call.Args[0]) != obj {
			continue
		}
		if viaFreshLocal(pass, lhs, obj, fresh) {
			continue
		}
		*out = append(*out, growthWrite{pos: lhs.Pos(), target: obj, desc: "slice " + render(lhs), fn: fn, inLit: inLit})
	}
}

// viaFreshLocal reports whether a field container is reached through a
// base identifier the enclosing function freshly allocated.
func viaFreshLocal(pass *analysis.Pass, e ast.Expr, obj types.Object, fresh map[types.Object]bool) bool {
	vr, ok := obj.(*types.Var)
	if !ok || !vr.IsField() {
		return false
	}
	id := baseIdent(e)
	if id == nil {
		return false
	}
	base := identObj(pass, id)
	return base != nil && fresh[base]
}

// baseIdent walks selector/index chains to the leftmost identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// collectCallEvidence records delete(x.f, …) and clear(x.f).
func collectCallEvidence(pass *analysis.Pass, call *ast.CallExpr, evidence map[types.Object]bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "delete" && id.Name != "clear") || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if obj := containerObj(pass, call.Args[0]); obj != nil {
		evidence[obj] = true
	}
}

// collectResliceEvidence records x.f = x.f[…] truncations.
func collectResliceEvidence(pass *analysis.Pass, as *ast.AssignStmt, evidence map[types.Object]bool) {
	for i, lhs := range as.Lhs {
		obj := containerObj(pass, lhs)
		if obj == nil || i >= len(as.Rhs) {
			continue
		}
		if hasSliceOf(pass, as.Rhs[i], obj) {
			evidence[obj] = true
		}
	}
}

// hasSliceOf reports whether expr contains a slice expression over the
// container (x.f[:n], append(x.f[:0], …), …).
func hasSliceOf(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sl, ok := n.(*ast.SliceExpr); ok && containerObj(pass, sl.X) == obj {
			found = true
		}
		return !found
	})
	return found
}

// collectLenEvidence records len(x.f) used in a comparison — the
// `if len(m) < max` growth guard and the `for len(m) > max { evict }`
// eviction loop both count.
func collectLenEvidence(pass *analysis.Pass, be *ast.BinaryExpr, evidence map[types.Object]bool) {
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		call, ok := unparen(side).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if obj := containerObj(pass, call.Args[0]); obj != nil {
			evidence[obj] = true
		}
	}
}

// containerObj resolves an expression to the object of a struct field
// or package-level variable of map/slice type; nil otherwise.
func containerObj(pass *analysis.Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch v := unparen(e).(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[v.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[v]
	}
	vr, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	// Fields and package-level vars are long-lived; function locals are
	// not (their growth is bounded by the request that owns them).
	if !vr.IsField() && (vr.Parent() == nil || vr.Parent() != vr.Pkg().Scope()) {
		return nil
	}
	if !isMap(vr.Type()) && !isSlice(vr.Type()) {
		return nil
	}
	return vr
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isHandlerFuncConv reports http.HandlerFunc(…) conversions.
func isHandlerFuncConv(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return false
	}
	return tn.Pkg().Path() == "net/http" && tn.Name() == "HandlerFunc"
}

// isHandlerShaped reports func(w http.ResponseWriter, r *http.Request).
func isHandlerShaped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	return isNetHTTPNamed(params.At(0).Type(), "ResponseWriter") &&
		isPtrToRequest(params.At(1).Type())
}

func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
}

func isPtrToRequest(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNetHTTPNamed(ptr.Elem(), "Request")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func render(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return render(v.X) + "." + v.Sel.Name
	}
	return "container"
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
