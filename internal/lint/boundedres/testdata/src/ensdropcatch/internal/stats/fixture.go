// Negative fixture: internal/stats is outside the boundedres scope —
// even a handler-shaped function growing a package map is not flagged.
package stats

import "net/http"

var tally = map[string]int{}

func Handle(w http.ResponseWriter, r *http.Request) {
	tally[r.URL.Path] = 1
}
