// Suppression fixture: a genuinely unbounded request-path container,
// documented with //lint:allow instead of evidence.
package trace

import "net/http"

type store struct {
	all map[string]int
}

func (s *store) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	//lint:allow boundedres bounded by the fixture harness, which issues a fixed request set
	s.all[r.URL.Path] = 1
}
