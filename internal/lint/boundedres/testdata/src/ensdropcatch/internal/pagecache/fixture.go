// Positive fixture: internal/pagecache holds request-path state, so
// every long-lived container grown from a handler needs bound evidence.
package pagecache

import "net/http"

type server struct {
	seen    map[string]int
	history []string
	quota   map[string]int
	ring    []string
	evicted map[string]int
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.seen[r.URL.Path] = 1                    // want "map s.seen grows on a request path"
	s.history = append(s.history, r.URL.Path) // want "slice s.history grows on a request path"
	s.admit(r.URL.Path)
	s.remember(r.URL.Path)
	s.trim(r.URL.Path)
}

// A len comparison is bound evidence: the `if len(m) < max` guard.
func (s *server) admit(k string) {
	if len(s.quota) < 1024 {
		s.quota[k] = 1
	}
}

// delete is bound evidence: grow-then-evict.
func (s *server) remember(k string) {
	s.evicted[k] = 1
	for len(s.evicted) > 8 {
		for old := range s.evicted {
			delete(s.evicted, old)
			break
		}
	}
}

// A reslice assignment is bound evidence: a ring that truncates itself.
func (s *server) trim(k string) {
	s.ring = append(s.ring, k)
	if len(s.ring) > 64 {
		s.ring = s.ring[1:]
	}
}

var hits = map[string]int{}

// Package-level containers are long-lived too.
func count(w http.ResponseWriter, r *http.Request) {
	hits[r.URL.Path] = 1 // want "map hits grows on a request path"
}

type mux struct {
	routes   map[string]http.Handler
	inFlight map[string]int
}

// install runs once at wiring time: its own writes are setup, but the
// handler literal it builds runs per request.
func (m *mux) install() http.Handler {
	m.routes["/status"] = nil
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight[r.URL.Path] = 1 // want "map m.inFlight grows on a request path"
	})
}

type page struct {
	rows map[string]int
}

// A freshly-allocated local dies with the request: growth through it is
// bounded by the request's own input.
func render(w http.ResponseWriter, r *http.Request) {
	p := &page{rows: map[string]int{}}
	p.rows[r.URL.Path] = 1
}

var cold = map[string]int{}

// seed is not reachable from any handler: startup work, not traffic.
func seed(keys []string) {
	for _, k := range keys {
		cold[k] = 1
	}
}
