package boundedres_test

import (
	"testing"

	"ensdropcatch/internal/lint/boundedres"
	"ensdropcatch/internal/lint/linttest"
	"ensdropcatch/internal/lint/lintutil"
)

func TestBoundedres(t *testing.T) {
	linttest.Run(t, boundedres.Analyzer,
		"ensdropcatch/internal/pagecache", // positive: request-path state
		"ensdropcatch/internal/stats",     // negative: out of scope
	)
}

// TestBoundedresSuppression proves the //lint:allow hatch works for
// this analyzer.
func TestBoundedresSuppression(t *testing.T) {
	raw := linttest.Diagnostics(t, boundedres.Analyzer, "ensdropcatch/internal/trace")
	if len(raw) != 1 {
		t.Fatalf("raw analyzer found %d diagnostics, want 1", len(raw))
	}
	wrapped := linttest.Diagnostics(t, lintutil.Wrap(boundedres.Analyzer), "ensdropcatch/internal/trace")
	for _, d := range wrapped {
		t.Errorf("suppressed fixture still reports: %s", d.Message)
	}
}
