package keccak

import (
	"bytes"
	"testing"
)

// FuzzStreamingEqualsOneShot checks the core sponge invariant under
// arbitrary inputs and split points: any chunking of Write calls must
// produce the same digest as the one-shot Sum256.
func FuzzStreamingEqualsOneShot(f *testing.F) {
	f.Add([]byte(""), uint16(0))
	f.Add([]byte("abc"), uint16(1))
	f.Add(bytes.Repeat([]byte{0x5a}, 137), uint16(68))
	f.Add(bytes.Repeat([]byte{0xff}, 400), uint16(136))
	f.Fuzz(func(t *testing.T, data []byte, splitRaw uint16) {
		split := int(splitRaw) % (len(data) + 1)
		h := New256()
		h.Write(data[:split])
		h.Write(data[split:])
		streamed := h.Sum(nil)
		oneShot := Sum256(data)
		if !bytes.Equal(streamed, oneShot[:]) {
			t.Fatalf("streaming %x != one-shot %x (split %d, len %d)", streamed, oneShot, split, len(data))
		}
	})
}
