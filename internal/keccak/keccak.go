// Package keccak implements the legacy Keccak-256 hash function used by
// Ethereum. It is the pre-NIST variant of SHA3-256: the sponge construction
// and permutation are identical to FIPS 202, but multi-rate padding uses the
// original 0x01 domain byte instead of SHA-3's 0x06. Ethereum addresses,
// transaction hashes, event topics, and ENS namehashes are all computed with
// this function, so the rest of the repository builds on this package.
package keccak

import (
	"hash"
	"math/bits"
)

// Size is the digest size of Keccak-256 in bytes.
const Size = 32

// rate is the sponge rate for Keccak-256 in bytes (1600/8 - 2*Size).
const rate = 136

// roundConstants holds the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// keccakF applies the full 24-round Keccak-f[1600] permutation. The
// whole state lives in named locals for the duration: theta, rho-pi,
// and chi are fully unrolled with no scratch array and no bounds
// checks, which roughly doubles throughput over the array-indexed
// form this replaced (BenchmarkSum256). This function dominates
// everything from transaction hashing to brute-force name recovery.
func keccakF(a *[25]uint64) {
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	a5, a6, a7, a8, a9 := a[5], a[6], a[7], a[8], a[9]
	a10, a11, a12, a13, a14 := a[10], a[11], a[12], a[13], a[14]
	a15, a16, a17, a18, a19 := a[15], a[16], a[17], a[18], a[19]
	a20, a21, a22, a23, a24 := a[20], a[21], a[22], a[23], a[24]

	for round := 0; round < 24; round++ {
		// theta: column parities, then xor each lane with its d value.
		c0 := a0 ^ a5 ^ a10 ^ a15 ^ a20
		c1 := a1 ^ a6 ^ a11 ^ a16 ^ a21
		c2 := a2 ^ a7 ^ a12 ^ a17 ^ a22
		c3 := a3 ^ a8 ^ a13 ^ a18 ^ a23
		c4 := a4 ^ a9 ^ a14 ^ a19 ^ a24
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		a0 ^= d0
		a1 ^= d1
		a2 ^= d2
		a3 ^= d3
		a4 ^= d4
		a5 ^= d0
		a6 ^= d1
		a7 ^= d2
		a8 ^= d3
		a9 ^= d4
		a10 ^= d0
		a11 ^= d1
		a12 ^= d2
		a13 ^= d3
		a14 ^= d4
		a15 ^= d0
		a16 ^= d1
		a17 ^= d2
		a18 ^= d3
		a19 ^= d4
		a20 ^= d0
		a21 ^= d1
		a22 ^= d2
		a23 ^= d3
		a24 ^= d4
		// rho and pi: rotate each lane into its destination.
		b0 := a0
		b10 := bits.RotateLeft64(a1, 1)
		b20 := bits.RotateLeft64(a2, 62)
		b5 := bits.RotateLeft64(a3, 28)
		b15 := bits.RotateLeft64(a4, 27)
		b16 := bits.RotateLeft64(a5, 36)
		b1 := bits.RotateLeft64(a6, 44)
		b11 := bits.RotateLeft64(a7, 6)
		b21 := bits.RotateLeft64(a8, 55)
		b6 := bits.RotateLeft64(a9, 20)
		b7 := bits.RotateLeft64(a10, 3)
		b17 := bits.RotateLeft64(a11, 10)
		b2 := bits.RotateLeft64(a12, 43)
		b12 := bits.RotateLeft64(a13, 25)
		b22 := bits.RotateLeft64(a14, 39)
		b23 := bits.RotateLeft64(a15, 41)
		b8 := bits.RotateLeft64(a16, 45)
		b18 := bits.RotateLeft64(a17, 15)
		b3 := bits.RotateLeft64(a18, 21)
		b13 := bits.RotateLeft64(a19, 8)
		b14 := bits.RotateLeft64(a20, 18)
		b24 := bits.RotateLeft64(a21, 2)
		b9 := bits.RotateLeft64(a22, 61)
		b19 := bits.RotateLeft64(a23, 56)
		b4 := bits.RotateLeft64(a24, 14)
		// chi: per-row nonlinear mix, written straight back into a.
		a0 = b0 ^ (^b1 & b2)
		a1 = b1 ^ (^b2 & b3)
		a2 = b2 ^ (^b3 & b4)
		a3 = b3 ^ (^b4 & b0)
		a4 = b4 ^ (^b0 & b1)
		a5 = b5 ^ (^b6 & b7)
		a6 = b6 ^ (^b7 & b8)
		a7 = b7 ^ (^b8 & b9)
		a8 = b8 ^ (^b9 & b5)
		a9 = b9 ^ (^b5 & b6)
		a10 = b10 ^ (^b11 & b12)
		a11 = b11 ^ (^b12 & b13)
		a12 = b12 ^ (^b13 & b14)
		a13 = b13 ^ (^b14 & b10)
		a14 = b14 ^ (^b10 & b11)
		a15 = b15 ^ (^b16 & b17)
		a16 = b16 ^ (^b17 & b18)
		a17 = b17 ^ (^b18 & b19)
		a18 = b18 ^ (^b19 & b15)
		a19 = b19 ^ (^b15 & b16)
		a20 = b20 ^ (^b21 & b22)
		a21 = b21 ^ (^b22 & b23)
		a22 = b22 ^ (^b23 & b24)
		a23 = b23 ^ (^b24 & b20)
		a24 = b24 ^ (^b20 & b21)
		// iota
		a0 ^= roundConstants[round]
	}

	a[0], a[1], a[2], a[3], a[4] = a0, a1, a2, a3, a4
	a[5], a[6], a[7], a[8], a[9] = a5, a6, a7, a8, a9
	a[10], a[11], a[12], a[13], a[14] = a10, a11, a12, a13, a14
	a[15], a[16], a[17], a[18], a[19] = a15, a16, a17, a18, a19
	a[20], a[21], a[22], a[23], a[24] = a20, a21, a22, a23, a24
}

// digest is the streaming sponge state for Keccak-256.
type digest struct {
	state [25]uint64
	buf   [rate]byte
	n     int // bytes buffered in buf
}

// New256 returns a new hash.Hash computing the legacy Keccak-256 digest.
func New256() hash.Hash { return &digest{} }

func (d *digest) Size() int      { return Size }
func (d *digest) BlockSize() int { return rate }

func (d *digest) Reset() {
	d.state = [25]uint64{}
	d.n = 0
}

func (d *digest) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		n := copy(d.buf[d.n:], p)
		d.n += n
		p = p[n:]
		if d.n == rate {
			d.absorb()
		}
	}
	return written, nil
}

// absorb XORs the full buffer into the state and permutes.
func (d *digest) absorb() {
	for i := 0; i < rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	keccakF(&d.state)
	d.n = 0
}

// Sum appends the current digest to b and returns the result. The receiver
// state is not modified, so callers may continue writing afterwards.
func (d *digest) Sum(b []byte) []byte {
	dup := *d
	// Multi-rate padding with the legacy Keccak domain byte 0x01.
	dup.buf[dup.n] = 0x01
	for i := dup.n + 1; i < rate; i++ {
		dup.buf[i] = 0
	}
	dup.buf[rate-1] |= 0x80
	dup.n = rate
	dup.absorb()
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[8*i:], dup.state[i])
	}
	return append(b, out[:]...)
}

// Sum256 returns the Keccak-256 digest of data. The one-shot path avoids
// the streaming digest's buffering and state copies; it is the hot
// function behind address derivation, namehashing, and brute-force label
// recovery.
func Sum256(data []byte) [Size]byte {
	var state [25]uint64
	for len(data) >= rate {
		for i := 0; i < rate/8; i++ {
			state[i] ^= le64(data[8*i:])
		}
		keccakF(&state)
		data = data[rate:]
	}
	var block [rate]byte
	copy(block[:], data)
	block[len(data)] = 0x01
	block[rate-1] |= 0x80
	for i := 0; i < rate/8; i++ {
		state[i] ^= le64(block[8*i:])
	}
	keccakF(&state)
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[8*i:], state[i])
	}
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
