// Package keccak implements the legacy Keccak-256 hash function used by
// Ethereum. It is the pre-NIST variant of SHA3-256: the sponge construction
// and permutation are identical to FIPS 202, but multi-rate padding uses the
// original 0x01 domain byte instead of SHA-3's 0x06. Ethereum addresses,
// transaction hashes, event topics, and ENS namehashes are all computed with
// this function, so the rest of the repository builds on this package.
package keccak

import (
	"hash"
	"math/bits"
)

// Size is the digest size of Keccak-256 in bytes.
const Size = 32

// rate is the sponge rate for Keccak-256 in bytes (1600/8 - 2*Size).
const rate = 136

// roundConstants holds the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotc holds the rho-step rotation offset for lane i = x + 5*y.
var rotc = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// piDst[i] is the destination lane of lane i in the combined rho-pi step:
// B[y][(2x+3y) mod 5] = rot(A[x][y]).
var piDst = func() (dst [25]int) {
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			dst[x+5*y] = y + 5*((2*x+3*y)%5)
		}
	}
	return dst
}()

// keccakF applies the full 24-round Keccak-f[1600] permutation to the
// state. The steps are unrolled and use the rotate intrinsic; this
// function dominates everything from transaction hashing to brute-force
// name recovery.
func keccakF(a *[25]uint64) {
	var b [25]uint64
	for round := 0; round < 24; round++ {
		// theta
		c0 := a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20]
		c1 := a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21]
		c2 := a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22]
		c3 := a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23]
		c4 := a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24]
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		for y := 0; y < 25; y += 5 {
			a[y] ^= d0
			a[y+1] ^= d1
			a[y+2] ^= d2
			a[y+3] ^= d3
			a[y+4] ^= d4
		}
		// rho and pi
		for i := 0; i < 25; i++ {
			b[piDst[i]] = bits.RotateLeft64(a[i], int(rotc[i]))
		}
		// chi
		for y := 0; y < 25; y += 5 {
			b0, b1, b2, b3, b4 := b[y], b[y+1], b[y+2], b[y+3], b[y+4]
			a[y] = b0 ^ (^b1 & b2)
			a[y+1] = b1 ^ (^b2 & b3)
			a[y+2] = b2 ^ (^b3 & b4)
			a[y+3] = b3 ^ (^b4 & b0)
			a[y+4] = b4 ^ (^b0 & b1)
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

// digest is the streaming sponge state for Keccak-256.
type digest struct {
	state [25]uint64
	buf   [rate]byte
	n     int // bytes buffered in buf
}

// New256 returns a new hash.Hash computing the legacy Keccak-256 digest.
func New256() hash.Hash { return &digest{} }

func (d *digest) Size() int      { return Size }
func (d *digest) BlockSize() int { return rate }

func (d *digest) Reset() {
	d.state = [25]uint64{}
	d.n = 0
}

func (d *digest) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		n := copy(d.buf[d.n:], p)
		d.n += n
		p = p[n:]
		if d.n == rate {
			d.absorb()
		}
	}
	return written, nil
}

// absorb XORs the full buffer into the state and permutes.
func (d *digest) absorb() {
	for i := 0; i < rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	keccakF(&d.state)
	d.n = 0
}

// Sum appends the current digest to b and returns the result. The receiver
// state is not modified, so callers may continue writing afterwards.
func (d *digest) Sum(b []byte) []byte {
	dup := *d
	// Multi-rate padding with the legacy Keccak domain byte 0x01.
	dup.buf[dup.n] = 0x01
	for i := dup.n + 1; i < rate; i++ {
		dup.buf[i] = 0
	}
	dup.buf[rate-1] |= 0x80
	dup.n = rate
	dup.absorb()
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[8*i:], dup.state[i])
	}
	return append(b, out[:]...)
}

// Sum256 returns the Keccak-256 digest of data. The one-shot path avoids
// the streaming digest's buffering and state copies; it is the hot
// function behind address derivation, namehashing, and brute-force label
// recovery.
func Sum256(data []byte) [Size]byte {
	var state [25]uint64
	for len(data) >= rate {
		for i := 0; i < rate/8; i++ {
			state[i] ^= le64(data[8*i:])
		}
		keccakF(&state)
		data = data[rate:]
	}
	var block [rate]byte
	copy(block[:], data)
	block[len(data)] = 0x01
	block[rate-1] |= 0x80
	for i := 0; i < rate/8; i++ {
		state[i] ^= le64(block[8*i:])
	}
	keccakF(&state)
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[8*i:], state[i])
	}
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
