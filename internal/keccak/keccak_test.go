package keccak

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Known-answer vectors for legacy Keccak-256 (Ethereum variant).
var kats = []struct {
	in  string
	out string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"},
	{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
}

func TestSum256KnownAnswers(t *testing.T) {
	for _, kat := range kats {
		got := Sum256([]byte(kat.in))
		if hex.EncodeToString(got[:]) != kat.out {
			t.Errorf("Sum256(%q) = %x, want %s", kat.in, got, kat.out)
		}
	}
}

func TestHashInterface(t *testing.T) {
	h := New256()
	if h.Size() != 32 {
		t.Fatalf("Size() = %d, want 32", h.Size())
	}
	if h.BlockSize() != 136 {
		t.Fatalf("BlockSize() = %d, want 136", h.BlockSize())
	}
	h.Write([]byte("abc"))
	sum := h.Sum(nil)
	want, _ := hex.DecodeString(kats[1].out)
	if !bytes.Equal(sum, want) {
		t.Errorf("streaming Sum = %x, want %x", sum, want)
	}
}

func TestSumDoesNotMutateState(t *testing.T) {
	h := New256()
	h.Write([]byte("ab"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("Sum mutated state: %x vs %x", first, second)
	}
	h.Write([]byte("c"))
	want, _ := hex.DecodeString(kats[1].out)
	if got := h.Sum(nil); !bytes.Equal(got, want) {
		t.Errorf("write-after-Sum = %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage data that should be discarded"))
	h.Reset()
	h.Write([]byte("abc"))
	want, _ := hex.DecodeString(kats[1].out)
	if got := h.Sum(nil); !bytes.Equal(got, want) {
		t.Errorf("after Reset = %x, want %x", got, want)
	}
}

func TestMultiBlockInput(t *testing.T) {
	// An input longer than the 136-byte rate exercises intermediate absorbs.
	long := strings.Repeat("a", 1000)
	whole := Sum256([]byte(long))

	h := New256()
	for i := 0; i < len(long); i += 7 {
		end := i + 7
		if end > len(long) {
			end = len(long)
		}
		h.Write([]byte(long[i:end]))
	}
	if chunked := h.Sum(nil); !bytes.Equal(chunked, whole[:]) {
		t.Errorf("chunked write = %x, whole write = %x", chunked, whole)
	}
}

func TestExactRateBoundary(t *testing.T) {
	// Inputs of length rate-1, rate, rate+1 hit all padding branches.
	for _, n := range []int{135, 136, 137, 272} {
		in := bytes.Repeat([]byte{0x5a}, n)
		h := New256()
		h.Write(in)
		if got, want := h.Sum(nil), Sum256(in); !bytes.Equal(got, want[:]) {
			t.Errorf("len %d: streaming %x != one-shot %x", n, got, want)
		}
	}
}

func TestQuickChunkingEquivalence(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		h := New256()
		cut := int(split) % (len(data) + 1)
		h.Write(data[:cut])
		h.Write(data[cut:])
		whole := Sum256(data)
		return bytes.Equal(h.Sum(nil), whole[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDigestLength(t *testing.T) {
	f := func(data []byte) bool {
		sum := Sum256(data)
		return len(sum) == Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctInputsDistinctDigests(t *testing.T) {
	seen := map[[32]byte]string{}
	inputs := []string{"", "a", "b", "aa", "ab", "ba", "eth", "ens", "gold.eth", "gold.eth "}
	for _, in := range inputs {
		sum := Sum256([]byte(in))
		if prev, dup := seen[sum]; dup {
			t.Fatalf("collision between %q and %q", prev, in)
		}
		seen[sum] = in
	}
}

func BenchmarkSum256_32B(b *testing.B) {
	buf := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		Sum256(buf)
	}
}

func BenchmarkSum256_1KiB(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(buf)
	}
}
