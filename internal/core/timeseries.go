package core

import (
	"sort"
	"time"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/stats"
)

// MonthlyPoint is one month of Figure 2's series.
type MonthlyPoint struct {
	Month           string // "2020-02"
	Registrations   int
	Expirations     int
	Reregistrations int
}

// MonthlyEvents computes Figure 2: registrations, expirations, and
// re-registrations per calendar month across the window.
func (a *Analyzer) MonthlyEvents() []MonthlyPoint {
	type counts struct{ reg, exp, rereg int }
	byMonth := map[string]*counts{}
	get := func(ts int64) *counts {
		m := time.Unix(ts, 0).UTC().Format("2006-01")
		c := byMonth[m]
		if c == nil {
			c = &counts{}
			byMonth[m] = c
		}
		return c
	}
	cutoff := a.DS.End
	for _, h := range a.Pop.Histories {
		reregs := map[int]bool{}
		for _, j := range h.Reregistrations() {
			reregs[j] = true
		}
		for i, t := range h.Tenures {
			if t.RegisteredAt < cutoff {
				c := get(t.RegisteredAt)
				c.reg++
				if reregs[i] {
					c.rereg++
				}
			}
			if t.Expiry < cutoff {
				get(t.Expiry).exp++
			}
		}
	}
	months := make([]string, 0, len(byMonth))
	for m := range byMonth {
		months = append(months, m)
	}
	sort.Strings(months)
	out := make([]MonthlyPoint, 0, len(months))
	for _, m := range months {
		c := byMonth[m]
		out = append(out, MonthlyPoint{Month: m, Registrations: c.reg, Expirations: c.exp, Reregistrations: c.rereg})
	}
	return out
}

// PeakMonthlyReregistrations returns the highest monthly re-registration
// count (the paper reports 25,193 at full scale).
func (a *Analyzer) PeakMonthlyReregistrations() (string, int) {
	var bestMonth string
	best := 0
	for _, p := range a.MonthlyEvents() {
		if p.Reregistrations > best {
			best = p.Reregistrations
			bestMonth = p.Month
		}
	}
	return bestMonth, best
}

// ReregDelayStats is Figure 3 plus the premium-timing observations of
// §4.1: how long after expiry names are re-registered and how the catches
// cluster around the end of the premium auction.
type ReregDelayStats struct {
	// DelaysDays holds expiry -> re-registration delays in days, one per
	// owner-changing re-registration.
	DelaysDays []float64
	// AtPremium counts catches during the auction at a positive premium.
	AtPremium int
	// SameDayAsPremiumEnd counts catches within 24h of the premium
	// reaching zero.
	SameDayAsPremiumEnd int
	// ShortlyAfterPremiumEnd counts catches within 14 days of premium
	// end (inclusive of the same-day spike).
	ShortlyAfterPremiumEnd int
	// Total is the number of re-registration events considered.
	Total int
}

// ReregistrationDelays computes Figure 3.
func (a *Analyzer) ReregistrationDelays() ReregDelayStats {
	var st ReregDelayStats
	for _, h := range a.Pop.Reregistered {
		for _, j := range h.Reregistrations() {
			prev := h.Tenures[j-1]
			cur := h.Tenures[j]
			st.Total++
			st.DelaysDays = append(st.DelaysDays, float64(cur.RegisteredAt-prev.Expiry)/86400)
			pe := h.PremiumEndOf(j - 1)
			switch delta := cur.RegisteredAt - pe; {
			case delta < 0:
				st.AtPremium++
			case delta < 86400:
				st.SameDayAsPremiumEnd++
				st.ShortlyAfterPremiumEnd++
			case delta < 14*86400:
				st.ShortlyAfterPremiumEnd++
			}
		}
	}
	sort.Float64s(st.DelaysDays)
	return st
}

// PremiumPaidCount counts re-registrations that paid a positive premium
// (the paper's 16,092), cross-checked against the registration event's
// premium field rather than timing.
func (a *Analyzer) PremiumPaidCount() int {
	n := 0
	for _, h := range a.Pop.Reregistered {
		for _, j := range h.Reregistrations() {
			if h.Tenures[j].PremiumPositive() {
				n++
			}
		}
	}
	return n
}

// ReregFrequency computes Figure 4: how many domains were re-registered
// exactly k times, for each k >= 1.
func (a *Analyzer) ReregFrequency() map[int]int {
	out := map[int]int{}
	for _, h := range a.Pop.Reregistered {
		out[len(h.Reregistrations())]++
	}
	return out
}

// ReregistrantActivity is Figure 5's data: how many expired names each
// unique address re-registered.
type ReregistrantActivity struct {
	// PerAddress maps catcher address to its re-registration count.
	PerAddress map[ethtypes.Address]int
	// CDF is the empirical distribution of counts.
	CDF []stats.CDFPoint
	// MultipleCatchers counts addresses with more than one catch.
	MultipleCatchers int
	// Top lists the highest counts in descending order (up to 10).
	Top []int
}

// ReregistrantCDF computes Figure 5.
func (a *Analyzer) ReregistrantCDF() ReregistrantActivity {
	act := ReregistrantActivity{PerAddress: map[ethtypes.Address]int{}}
	for _, h := range a.Pop.Reregistered {
		for _, j := range h.Reregistrations() {
			act.PerAddress[h.Tenures[j].FirstOwner]++
		}
	}
	counts := make([]float64, 0, len(act.PerAddress))
	var all []int
	for _, n := range act.PerAddress {
		//lint:allow maporder stats.ECDF sorts its input and `all` is sorted below; MultipleCatchers is an order-free count
		counts = append(counts, float64(n))
		all = append(all, n)
		if n > 1 {
			act.MultipleCatchers++
		}
	}
	act.CDF = stats.ECDF(counts)
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	if len(all) > 10 {
		all = all[:10]
	}
	act.Top = all
	return act
}
