package core

// Regression test for the incomeOf window: the paper's income profile
// covers [registration, min(expiry, window end)) half-open. An earlier
// implementation extended the window one second past the boundary (end+1),
// letting a transaction at exactly the expiry instant count as tenure
// income.

import (
	"testing"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/pricing"
)

func TestIncomeOfWindowBoundaries(t *testing.T) {
	f := newLossFixture()
	c := sender("income-c")
	f.tx(c, f.a1, regA1, 1)      // at registration: included
	f.tx(c, f.a1, expiryA1-1, 1) // last included second
	f.tx(c, f.a1, expiryA1, 1)   // at expiry: excluded (half-open)
	f.tx(c, f.a1, expiryA1+1, 1) // after expiry: excluded

	// A second domain whose expiry outlives the window: the cutoff is the
	// window end instead.
	owner := sender("income-owner2")
	d := &dataset.Domain{LabelHash: ens.LabelHash("survivor"), Label: "survivor"}
	d.Events = []dataset.Event{
		{Type: dataset.EvRegistered, Registrant: owner, Timestamp: regA1, Expiry: fixtureEnd + 10000, CostWei: "1000000000000000000"},
	}
	f.ds.Domains[d.LabelHash] = d
	f.tx(c, owner, fixtureEnd-1, 1) // last included second
	f.tx(c, owner, fixtureEnd, 1)   // at window end: excluded

	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))

	usd, senders, txs := an.incomeOf(an.Pop.Histories[ens.LabelHash("victim")], 0)
	if txs != 2 || senders != 1 {
		t.Errorf("victim income = %d txs from %d senders, want 2 txs from 1 sender", txs, senders)
	}
	perTx := an.Oracle.USD(1, regA1)
	if want := 2 * perTx; usd != want {
		t.Errorf("victim income USD = %v, want %v", usd, want)
	}

	_, _, txs = an.incomeOf(an.Pop.Histories[ens.LabelHash("survivor")], 0)
	if txs != 1 {
		t.Errorf("survivor income = %d txs, want 1 (tx at window end excluded)", txs)
	}
}
