package core_test

// Golden determinism tests: the parallel analyses must produce
// byte-identical reports at every worker count. Each analyzer is built
// fresh (the memoized entry points would otherwise hide a second run), the
// reports are JSON-encoded, and the bytes compared. Run under -race via
// the Makefile race target.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/world"
)

func goldenDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := world.DefaultConfig(1500)
	cfg.Seed = 7
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParallelReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full world")
	}
	ds := goldenDataset(t)
	oracle := pricing.NewOracle()

	reports := func(workers int) (losses, features, survival []byte) {
		an := core.NewAnalyzer(ds, oracle)
		an.Workers = workers
		rep := an.ComputeFinancialLosses(core.DefaultLossOptions())
		tbl, err := an.ComputeFeatureComparison()
		if err != nil {
			t.Fatalf("FeatureComparison(workers=%d): %v", workers, err)
		}
		surv := an.ComputeCatchSurvival()
		return encode(t, rep), encode(t, tbl), encode(t, surv)
	}

	l1, f1, s1 := reports(1)
	l8, f8, s8 := reports(8)
	if !bytes.Equal(l1, l8) {
		t.Errorf("FinancialLosses differs between workers=1 (%d bytes) and workers=8 (%d bytes)", len(l1), len(l8))
	}
	if !bytes.Equal(f1, f8) {
		t.Errorf("FeatureComparison differs between workers=1 (%d bytes) and workers=8 (%d bytes)", len(f1), len(f8))
	}
	if !bytes.Equal(s1, s8) {
		t.Errorf("CatchSurvival differs between workers=1 (%d bytes) and workers=8 (%d bytes)", len(s1), len(s8))
	}

	// HijackableFunds rides the same pool; keep it honest too.
	an1 := core.NewAnalyzer(ds, oracle)
	an1.Workers = 1
	an8 := core.NewAnalyzer(ds, oracle)
	an8.Workers = 8
	if !bytes.Equal(encode(t, an1.HijackableFunds()), encode(t, an8.HijackableFunds())) {
		t.Error("HijackableFunds differs across worker counts")
	}
}

func TestMemoizedReportsReturnSamePointer(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full world")
	}
	an := core.NewAnalyzer(goldenDataset(t), pricing.NewOracle())
	if an.FinancialLosses() != an.FinancialLosses() {
		t.Error("FinancialLosses not memoized")
	}
	t1, err := an.FeatureComparison()
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := an.FeatureComparison()
	if t1 != t2 {
		t.Error("FeatureComparison not memoized")
	}
	an.Seed++ // a new seed must invalidate the feature memo
	t3, err := an.FeatureComparison()
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("FeatureComparison memo survived a Seed change")
	}
	if an.CatchSurvival() != an.CatchSurvival() {
		t.Error("CatchSurvival not memoized")
	}
}
