package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// §4.4 closes with case studies (profittrailer.eth, spambot.eth,
// cryptobuilders.eth): named domains whose transaction patterns make the
// misdirection concrete. CaseStudies extracts the same kind of narrative
// from a loss report.

// CaseStudy is one narrated finding.
type CaseStudy struct {
	Finding *DomainFinding
	// Narrative is a short paper-style description of what happened.
	Narrative string
}

// CaseStudies returns up to n findings, largest suspected loss first,
// each with a generated narrative.
func (r *LossReport) CaseStudies(n int) []CaseStudy {
	findings := append([]*DomainFinding(nil), r.Findings...)
	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].MisdirectedUSD() > findings[j].MisdirectedUSD()
	})
	if n > len(findings) {
		n = len(findings)
	}
	out := make([]CaseStudy, 0, n)
	for _, f := range findings[:n] {
		out = append(out, CaseStudy{Finding: f, Narrative: narrate(f)})
	}
	return out
}

func narrate(f *DomainFinding) string {
	name := f.Label + ".eth"
	if f.Label == "" {
		name = "a name known only by hash " + short(f.LabelHash.Hex())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The domain %s underwent registration by two different owners. ", name)
	fmt.Fprintf(&b, "After the first owner (%s) let it expire, %s re-registered it on %s for %.0f USD. ",
		short(f.A1.Hex()), short(f.A2.Hex()), day(f.CatchAt), f.CostUSD)
	for _, s := range f.Senders {
		kind := "a non-custodial address"
		if s.Kind == SenderCoinbase {
			kind = "a Coinbase address"
		}
		fmt.Fprintf(&b, "Sender %s (%s) had initiated %d transaction(s) to the previous owner while they held the domain, then sent %d transaction(s) totalling %.0f USD to the new owner — and never again to the previous one. ",
			short(s.Sender.Hex()), kind, s.TxsToA1, s.TxsToA2, s.USDToA2)
	}
	fmt.Fprintf(&b, "Suspected loss: %.0f USD.", f.MisdirectedUSD())
	return b.String()
}

func short(hex string) string {
	if len(hex) <= 12 {
		return hex
	}
	return hex[:8] + "…" + hex[len(hex)-4:]
}

func day(ts int64) string { return time.Unix(ts, 0).UTC().Format("2006-01-02") }
