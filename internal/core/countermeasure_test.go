package core

import (
	"testing"
	"time"
)

func TestCountermeasureCoverage(t *testing.T) {
	res, an := setup(t)
	rep := an.EvaluateCountermeasure(res.ResolutionLog, 90*24*time.Hour)
	if rep.Misdirected == 0 {
		t.Fatal("no misdirections to evaluate")
	}
	t.Logf("countermeasure @90d: %d/%d misdirected warned (%.0f%% of %.0f USD); %d stale warned",
		rep.Warned, rep.Misdirected, 100*rep.Coverage(), rep.MisdirectedUSD, rep.StaleWarned)

	if rep.Warned > rep.Misdirected {
		t.Error("warned exceeds misdirected")
	}
	if rep.Coverage() < 0 || rep.Coverage() > 1 {
		t.Errorf("coverage %.2f out of range", rep.Coverage())
	}
	// A 90-day window should intercept a substantial share: misdirected
	// payments cluster early in the new owner's tenure (senders pay on
	// their usual cadence).
	if rep.Coverage() < 0.15 {
		t.Errorf("coverage %.2f implausibly low for a 90-day window", rep.Coverage())
	}
	// All stale resolutions warn (expired-name warning).
	if rep.StaleWarned != rep.StaleResolutions {
		t.Errorf("stale warned %d != stale %d", rep.StaleWarned, rep.StaleResolutions)
	}
}

func TestCountermeasureMonotoneInWindow(t *testing.T) {
	res, an := setup(t)
	prev := -1.0
	for _, days := range []int{7, 30, 90, 180, 365} {
		rep := an.EvaluateCountermeasure(res.ResolutionLog, time.Duration(days)*24*time.Hour)
		cov := rep.Coverage()
		if cov < prev {
			t.Errorf("coverage decreased at %dd window: %.3f < %.3f", days, cov, prev)
		}
		prev = cov
	}
	// An enormous window warns on every misdirection inside a tenure.
	rep := an.EvaluateCountermeasure(res.ResolutionLog, 10*365*24*time.Hour)
	if rep.Warned != rep.Misdirected {
		t.Errorf("10y window warned %d of %d", rep.Warned, rep.Misdirected)
	}
}
