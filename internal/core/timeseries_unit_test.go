package core

// Hand-built unit tests for the time-series analyses, complementing the
// generator-driven integration tests with exact expectations.

import (
	"testing"
	"time"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

func ts(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t.Unix()
}

// tinyDataset: two domains.
//
//	"alpha": registered 2021-01-15 (expiry 2022-01-15), dropcaught
//	         2022-06-01 by a2 (expiry 2023-06-01).
//	"beta":  registered 2021-03-10, renewed once, expiry 2023-03-10,
//	         never re-registered.
func tinyDataset() (*dataset.Dataset, ethtypes.Address, ethtypes.Address) {
	ds := dataset.New(ts("2020-01-01"), ts("2023-10-01"))
	a1 := ethtypes.DeriveAddress("ts-a1")
	a2 := ethtypes.DeriveAddress("ts-a2")
	b1 := ethtypes.DeriveAddress("ts-b1")

	alpha := &dataset.Domain{LabelHash: ens.LabelHash("alpha"), Label: "alpha"}
	alpha.Events = []dataset.Event{
		{Type: dataset.EvRegistered, Registrant: a1, Timestamp: ts("2021-01-15"), Expiry: ts("2022-01-15")},
		{Type: dataset.EvRegistered, Registrant: a2, Timestamp: ts("2022-06-01"), Expiry: ts("2023-06-01"), PremiumWei: "1000"},
	}
	beta := &dataset.Domain{LabelHash: ens.LabelHash("beta"), Label: "beta"}
	beta.Events = []dataset.Event{
		{Type: dataset.EvRegistered, Registrant: b1, Timestamp: ts("2021-03-10"), Expiry: ts("2022-03-10")},
		{Type: dataset.EvRenewed, Timestamp: ts("2022-03-01"), Expiry: ts("2023-03-10")},
	}
	ds.Domains[alpha.LabelHash] = alpha
	ds.Domains[beta.LabelHash] = beta
	ds.Reindex()
	return ds, a1, a2
}

func tinyAnalyzer() *Analyzer {
	ds, _, _ := tinyDataset()
	return NewAnalyzer(ds, pricing.NewOracleNoise(0))
}

func TestMonthlyEventsExact(t *testing.T) {
	an := tinyAnalyzer()
	points := an.MonthlyEvents()
	byMonth := map[string]MonthlyPoint{}
	for _, p := range points {
		byMonth[p.Month] = p
	}
	if p := byMonth["2021-01"]; p.Registrations != 1 || p.Reregistrations != 0 {
		t.Errorf("2021-01 = %+v", p)
	}
	if p := byMonth["2021-03"]; p.Registrations != 1 {
		t.Errorf("2021-03 = %+v", p)
	}
	// alpha's first expiry counts as an expiration in 2022-01.
	if p := byMonth["2022-01"]; p.Expirations != 1 {
		t.Errorf("2022-01 = %+v", p)
	}
	// alpha's catch is both a registration and a re-registration.
	if p := byMonth["2022-06"]; p.Registrations != 1 || p.Reregistrations != 1 {
		t.Errorf("2022-06 = %+v", p)
	}
	// beta's renewal pushed its expiry to 2023-03: one expiration there,
	// none in 2022-03.
	if p := byMonth["2022-03"]; p.Expirations != 0 {
		t.Errorf("2022-03 = %+v", p)
	}
	if p := byMonth["2023-03"]; p.Expirations != 1 {
		t.Errorf("2023-03 = %+v", p)
	}
	// alpha's second expiry (2023-06) also lands inside the window.
	if p := byMonth["2023-06"]; p.Expirations != 1 {
		t.Errorf("2023-06 = %+v", p)
	}
}

func TestReregDelayExact(t *testing.T) {
	an := tinyAnalyzer()
	st := an.ReregistrationDelays()
	if st.Total != 1 || len(st.DelaysDays) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantDays := float64(ts("2022-06-01")-ts("2022-01-15")) / 86400
	if diff := st.DelaysDays[0] - wantDays; diff > 0.01 || diff < -0.01 {
		t.Errorf("delay = %v, want %v", st.DelaysDays[0], wantDays)
	}
	// 2022-06-01 is 137 days after expiry: grace (90) + auction (21) end
	// on day 111, so this catch is 26 days past premium end — not at
	// premium by timing, but the event says a premium was paid; the
	// PremiumPaidCount goes by the event.
	if st.AtPremium != 0 {
		t.Errorf("timing-based at-premium = %d, want 0", st.AtPremium)
	}
	if got := an.PremiumPaidCount(); got != 1 {
		t.Errorf("event-based premium count = %d, want 1", got)
	}
}

func TestReregistrantCDFExact(t *testing.T) {
	an := tinyAnalyzer()
	act := an.ReregistrantCDF()
	if len(act.PerAddress) != 1 || act.MultipleCatchers != 0 {
		t.Fatalf("activity = %+v", act)
	}
	if len(act.Top) != 1 || act.Top[0] != 1 {
		t.Errorf("top = %v", act.Top)
	}
}

func TestClassifyExact(t *testing.T) {
	an := tinyAnalyzer()
	if len(an.Pop.Reregistered) != 1 || an.Pop.Reregistered[0].Domain.Label != "alpha" {
		t.Errorf("re-registered = %v", names(an.Pop.Reregistered))
	}
	// beta's last expiry (2023-03-10) precedes the window end: expired,
	// never re-registered.
	if len(an.Pop.ExpiredNotRereg) != 1 || an.Pop.ExpiredNotRereg[0].Domain.Label != "beta" {
		t.Errorf("control pool = %v", names(an.Pop.ExpiredNotRereg))
	}
}

func names(hs []*History) []string {
	out := make([]string, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Domain.Label)
	}
	return out
}
