// Package core implements the paper's analysis pipeline — the primary
// contribution of the reproduction. Working purely from crawled data (the
// dataset package), it detects re-registrations (§4.1), compares lexical
// and transactional features against a control group (§4.3, Table 1),
// quantifies hijackable and misdirected funds with the conservative
// common-sender heuristic (§4.4, Figures 7-10), and analyzes the resale
// market (§4.2). It never reads the generator's ground truth.
package core

import (
	"bytes"
	"math/big"
	"sort"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
)

// Tenure is one continuous ownership span of a domain: a NameRegistered
// event plus the renewals that extended it, ending at its final expiry.
type Tenure struct {
	// FirstOwner is the registrant of the registration event.
	FirstOwner ethtypes.Address
	// LastOwner is the holder at the end of the tenure (differs from
	// FirstOwner if the name was transferred).
	LastOwner    ethtypes.Address
	RegisteredAt int64
	// Expiry is the final expiry after renewals within the tenure.
	Expiry int64
	// CostWei / PremiumWei are taken from the registration event.
	CostWei    string
	PremiumWei string
	Renewals   int
}

// PremiumPositive reports whether a positive premium was paid.
func (t *Tenure) PremiumPositive() bool {
	return weiStringPositive(t.PremiumWei)
}

func weiStringPositive(s string) bool {
	for _, c := range s {
		if c >= '1' && c <= '9' {
			return true
		}
	}
	return false
}

// weiStringToEth converts a decimal wei string to float64 ether.
func weiStringToEth(s string) float64 {
	if s == "" {
		return 0
	}
	i, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return 0
	}
	f, _ := new(big.Float).Quo(new(big.Float).SetInt(i), big.NewFloat(1e18)).Float64()
	return f
}

// History is a domain's reconstructed ownership timeline.
type History struct {
	Domain  *dataset.Domain
	Tenures []Tenure
}

// BuildHistory reconstructs the tenures of a domain from its event list.
func BuildHistory(d *dataset.Domain) *History {
	h := &History{Domain: d}
	for _, e := range d.Events {
		switch e.Type {
		case dataset.EvRegistered:
			h.Tenures = append(h.Tenures, Tenure{
				FirstOwner:   e.Registrant,
				LastOwner:    e.Registrant,
				RegisteredAt: e.Timestamp,
				Expiry:       e.Expiry,
				CostWei:      e.CostWei,
				PremiumWei:   e.PremiumWei,
			})
		case dataset.EvRenewed:
			if n := len(h.Tenures); n > 0 {
				h.Tenures[n-1].Expiry = e.Expiry
				h.Tenures[n-1].Renewals++
			}
		case dataset.EvTransferred:
			if n := len(h.Tenures); n > 0 {
				h.Tenures[n-1].LastOwner = e.Registrant
			}
		}
	}
	return h
}

// Reregistrations returns the tenure indexes j >= 1 where the new
// registrant differs from the previous tenure's last holder — the paper's
// definition of a dropcatch ("held by new wallets post-expiration vs
// pre-expiration").
func (h *History) Reregistrations() []int {
	var out []int
	for j := 1; j < len(h.Tenures); j++ {
		if h.Tenures[j].FirstOwner != h.Tenures[j-1].LastOwner {
			out = append(out, j)
		}
	}
	return out
}

// Reregistered reports whether the domain changed hands through an
// expire/re-register cycle at least once.
func (h *History) Reregistered() bool { return len(h.Reregistrations()) > 0 }

// ExpiredBy reports whether the domain's last tenure had expired before
// cutoff (so it was expired — and possibly available — at that time).
func (h *History) ExpiredBy(cutoff int64) bool {
	if len(h.Tenures) == 0 {
		return false
	}
	return h.Tenures[len(h.Tenures)-1].Expiry < cutoff
}

// FirstExpiredBy reports whether the FIRST tenure ended before cutoff —
// the membership test for the paper's expired population (re-registered
// domains expired at least once by construction).
func (h *History) FirstExpiredBy(cutoff int64) bool {
	return len(h.Tenures) > 0 && h.Tenures[0].Expiry < cutoff
}

// TenureEnd returns when tenure i stopped receiving the domain's traffic:
// the next tenure's registration, or cutoff for the last tenure.
func (h *History) TenureEnd(i int, cutoff int64) int64 {
	if i+1 < len(h.Tenures) {
		return h.Tenures[i+1].RegisteredAt
	}
	return cutoff
}

// Population is the classified domain universe of the study.
type Population struct {
	// Histories of every domain, keyed by label hash.
	Histories map[ethtypes.Hash]*History
	// All holds every history sorted by label hash, giving the parallel
	// analyses a fixed iteration order independent of map randomization.
	All []*History
	// Reregistered domains (>= 1 owner-changing re-registration).
	Reregistered []*History
	// ExpiredNotRereg domains expired (first tenure) but never taken by
	// a new owner — the control sampling pool.
	ExpiredNotRereg []*History
	// ActiveAtEnd domains whose registration outlived the window.
	ActiveAtEnd []*History
	// SameOwnerRereg expired and were re-registered by the same owner.
	SameOwnerRereg []*History
	// Unrecovered counts domains whose plaintext label is unknown (the
	// subgraph's API-limitation names).
	Unrecovered int
}

// Classify builds the population from a dataset, using the dataset's
// window end as the observation cutoff.
func Classify(ds *dataset.Dataset) *Population {
	pop := &Population{Histories: make(map[ethtypes.Hash]*History, len(ds.Domains))}
	cutoff := ds.End
	for lh, d := range ds.Domains {
		h := BuildHistory(d)
		pop.Histories[lh] = h
		pop.All = append(pop.All, h)
		if d.Label == "" {
			pop.Unrecovered++
		}
		switch {
		case h.Reregistered():
			pop.Reregistered = append(pop.Reregistered, h)
		case h.FirstExpiredBy(cutoff) && len(h.Tenures) > 1:
			pop.SameOwnerRereg = append(pop.SameOwnerRereg, h)
		case h.FirstExpiredBy(cutoff):
			pop.ExpiredNotRereg = append(pop.ExpiredNotRereg, h)
		default:
			pop.ActiveAtEnd = append(pop.ActiveAtEnd, h)
		}
	}
	// Deterministic ordering for downstream sampling. Byte comparison
	// orders identically to the former Hex() comparison without
	// allocating two strings per probe.
	for _, list := range [][]*History{pop.All, pop.Reregistered, pop.ExpiredNotRereg, pop.ActiveAtEnd, pop.SameOwnerRereg} {
		sort.Slice(list, func(i, j int) bool {
			return bytes.Compare(list[i].Domain.LabelHash[:], list[j].Domain.LabelHash[:]) < 0
		})
	}
	return pop
}

// ReleaseOf returns when tenure i's name became publicly available
// (expiry + grace period).
func (h *History) ReleaseOf(i int) int64 { return ens.ReleaseTime(h.Tenures[i].Expiry) }

// PremiumEndOf returns when tenure i's post-expiry auction premium reached
// zero.
func (h *History) PremiumEndOf(i int) int64 { return ens.PremiumEndTime(h.Tenures[i].Expiry) }
