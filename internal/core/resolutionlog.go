package core

import (
	"sort"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/world"
)

// The paper's Limitations section: "We hope that wallet providers will
// eventually share their resolution data with researchers so that
// follow-up work can more authoritatively quantify accidental ENS
// transactions." This file implements that follow-up against the
// simulation's vendor-side resolution log: for every payment initiated by
// resolving a name, decide authoritatively whether it reached a different
// owner than the one the sender had established the relationship with.

// ResolutionFinding is one authoritative misdirection: a via-ENS payment
// that landed with a later owner of a name the sender had previously paid
// under an earlier owner.
type ResolutionFinding struct {
	Name      string
	Sender    ethtypes.Address
	Recipient ethtypes.Address
	At        int64
	TxHash    ethtypes.Hash
	USD       float64
}

// ResolutionLogReport is the authoritative loss measurement.
type ResolutionLogReport struct {
	// TotalResolutions is the number of via-ENS payments observed.
	TotalResolutions int
	// StaleResolutions are payments resolved after the name's expiry but
	// before re-registration (they still reached the previous owner —
	// Figure 7's hijackable class, observed directly).
	StaleResolutions int
	// Misdirected payments reached a new owner.
	Misdirected []ResolutionFinding
	// MisdirectedUSD totals them.
	MisdirectedUSD float64
}

// LossesFromResolutionLog computes the authoritative misdirection report
// from vendor resolution data. A payment is misdirected when the tenure
// holding the name at payment time differs from the tenure during which
// the sender first paid through the name; it is stale when it happened
// after the covering tenure's expiry (still reaching the old owner).
func (a *Analyzer) LossesFromResolutionLog(log []world.ResolutionRecord) *ResolutionLogReport {
	rep := &ResolutionLogReport{}

	// First pass: each sender's first via-ENS tenure per name.
	type key struct {
		name   string
		sender ethtypes.Address
	}
	firstTenure := map[key]int{}
	ordered := append([]world.ResolutionRecord(nil), log...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })

	for _, rec := range ordered {
		rep.TotalResolutions++
		d, ok := a.DS.ByLabel(rec.Name)
		if !ok {
			continue
		}
		h := a.Pop.Histories[d.LabelHash]
		tenure := tenureAt(h, rec.At)
		if tenure < 0 {
			continue
		}
		k := key{rec.Name, rec.Sender}
		if first, seen := firstTenure[k]; seen {
			if tenure != first {
				rep.Misdirected = append(rep.Misdirected, ResolutionFinding{
					Name:      rec.Name,
					Sender:    rec.Sender,
					Recipient: rec.Resolved,
					At:        rec.At,
					TxHash:    rec.TxHash,
					USD:       a.Oracle.USD(txValueEth(a, rec.TxHash), rec.At),
				})
				rep.MisdirectedUSD += rep.Misdirected[len(rep.Misdirected)-1].USD
				continue
			}
		} else {
			firstTenure[k] = tenure
		}
		if rec.At > h.Tenures[tenure].Expiry {
			rep.StaleResolutions++
		}
	}
	return rep
}

// tenureAt returns the index of the tenure "holding" the name at time t:
// the last tenure registered at or before t (stale post-expiry resolution
// still belongs to that tenure until the next registration).
func tenureAt(h *History, t int64) int {
	idx := -1
	for i := range h.Tenures {
		if h.Tenures[i].RegisteredAt <= t {
			idx = i
		}
	}
	return idx
}

func txValueEth(a *Analyzer, hash ethtypes.Hash) float64 {
	if tx := a.txByHash(hash); tx != nil {
		return tx.ValueEth()
	}
	return 0
}
