package core

import (
	"context"
	"math"
	"testing"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/world"
)

var (
	testWorld *world.Result
	testAn    *Analyzer
)

func setup(t *testing.T) (*world.Result, *Analyzer) {
	t.Helper()
	if testWorld == nil {
		res, err := world.Generate(world.DefaultConfig(5000))
		if err != nil {
			t.Fatal(err)
		}
		ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		testWorld = res
		testAn = NewAnalyzer(ds, res.Oracle)
	}
	return testWorld, testAn
}

// truthSets indexes ground truth by label for comparisons.
func truthSets(res *world.Result) (caught, selfRec, expired map[string]bool) {
	caught = map[string]bool{}
	selfRec = map[string]bool{}
	expired = map[string]bool{}
	for _, d := range res.Truth.Domains {
		if d.Dropcaught {
			caught[d.Label] = true
		}
		for _, c := range d.Cycles {
			if c.SameOwnerAsPrev {
				selfRec[d.Label] = true
			}
		}
		if d.ExpiredBy(res.Config.End) {
			expired[d.Label] = true
		}
	}
	return caught, selfRec, expired
}

func TestClassifyRecoversGroundTruth(t *testing.T) {
	res, an := setup(t)
	caught, selfRec, _ := truthSets(res)

	gotCaught := map[string]bool{}
	for _, h := range an.Pop.Reregistered {
		gotCaught[h.Domain.Label] = true
	}
	// Every truth catch with a recoverable label must be detected.
	missed, spurious := 0, 0
	for label := range caught {
		if !gotCaught[label] {
			missed++
			t.Errorf("missed re-registration of %q", label)
		}
	}
	for label := range gotCaught {
		if label != "" && !caught[label] {
			spurious++
			t.Errorf("spurious re-registration of %q", label)
		}
	}
	_ = missed
	_ = spurious

	gotSelf := map[string]bool{}
	for _, h := range an.Pop.SameOwnerRereg {
		gotSelf[h.Domain.Label] = true
	}
	for label := range selfRec {
		if caught[label] {
			continue // later cycle changed owner; classified re-registered
		}
		if !gotSelf[label] {
			t.Errorf("self-recovery of %q classified wrong", label)
		}
	}
}

func TestPopulationPartition(t *testing.T) {
	_, an := setup(t)
	total := len(an.Pop.Reregistered) + len(an.Pop.ExpiredNotRereg) +
		len(an.Pop.ActiveAtEnd) + len(an.Pop.SameOwnerRereg)
	if total != len(an.Pop.Histories) {
		t.Errorf("partition sums to %d, universe is %d", total, len(an.Pop.Histories))
	}
	if len(an.Pop.Reregistered) == 0 || len(an.Pop.ExpiredNotRereg) == 0 {
		t.Fatal("degenerate population")
	}
}

func TestMonthlyEventsShape(t *testing.T) {
	res, an := setup(t)
	points := an.MonthlyEvents()
	if len(points) < 40 {
		t.Fatalf("only %d months", len(points))
	}
	var totalReg, totalRereg int
	expByMonth := map[string]int{}
	for _, p := range points {
		totalReg += p.Registrations
		totalRereg += p.Reregistrations
		expByMonth[p.Month] = p.Expirations
	}
	if totalRereg == 0 || totalReg < len(res.Truth.Domains) {
		t.Errorf("totals off: reg=%d rereg=%d", totalReg, totalRereg)
	}
	// The 2020 migration spike: May-June 2020 expirations dwarf March.
	if expByMonth["2020-05"]+expByMonth["2020-06"] < 5*expByMonth["2020-03"]+10 {
		t.Errorf("no migration expiration spike: %v vs %v", expByMonth["2020-05"], expByMonth["2020-03"])
	}
	_, peak := an.PeakMonthlyReregistrations()
	if peak == 0 {
		t.Error("zero peak re-registrations")
	}
}

func TestReregistrationDelays(t *testing.T) {
	_, an := setup(t)
	st := an.ReregistrationDelays()
	if st.Total == 0 {
		t.Fatal("no delays")
	}
	if len(st.DelaysDays) != st.Total {
		t.Fatal("delay count mismatch")
	}
	// Nothing can be re-registered during the 90-day grace period.
	if st.DelaysDays[0] < 90 {
		t.Errorf("min delay %.1f days < grace period", st.DelaysDays[0])
	}
	if st.AtPremium == 0 || st.SameDayAsPremiumEnd == 0 {
		t.Errorf("premium clusters empty: %+v", st)
	}
	if st.ShortlyAfterPremiumEnd < st.SameDayAsPremiumEnd {
		t.Error("shortly-after must include same-day")
	}
	// Premium-paid count from event premiums must match the timing-based
	// at-premium count (both observe the same catches).
	if paid := an.PremiumPaidCount(); paid != st.AtPremium {
		t.Errorf("premium paid %d != at-premium %d", paid, st.AtPremium)
	}
}

func TestReregFrequencyMatchesTruth(t *testing.T) {
	res, an := setup(t)
	freq := an.ReregFrequency()
	sum := 0
	multi := 0
	for k, v := range freq {
		sum += v
		if k >= 2 {
			multi += v
		}
	}
	if sum != len(an.Pop.Reregistered) {
		t.Errorf("frequency sums to %d, want %d", sum, len(an.Pop.Reregistered))
	}
	// Ground truth multi-cycle count (>= 2 owner-changing catches).
	truthMulti := 0
	for _, d := range res.Truth.Domains {
		changes := 0
		for i := 1; i < len(d.Cycles); i++ {
			if !d.Cycles[i].SameOwnerAsPrev && d.Cycles[i].Owner != d.Cycles[i-1].Owner {
				changes++
			}
		}
		if changes >= 2 {
			truthMulti++
		}
	}
	if multi != truthMulti {
		t.Errorf("multi-cycle domains %d, truth %d", multi, truthMulti)
	}
}

func TestReregistrantCDF(t *testing.T) {
	_, an := setup(t)
	act := an.ReregistrantCDF()
	if len(act.PerAddress) == 0 || act.MultipleCatchers == 0 {
		t.Fatalf("degenerate activity: %d addrs, %d multi", len(act.PerAddress), act.MultipleCatchers)
	}
	total := 0
	for _, n := range act.PerAddress {
		total += n
	}
	st := an.ReregistrationDelays()
	if total != st.Total {
		t.Errorf("per-address total %d != rereg events %d", total, st.Total)
	}
	for i := 1; i < len(act.Top); i++ {
		if act.Top[i] > act.Top[i-1] {
			t.Fatal("Top not descending")
		}
	}
	// The professional tier concentrates catches (paper top-3: 5,070 /
	// 3,165 / 2,421 at 3.1M scale ~= 8 / 5 / 4 at this test's scale).
	if act.Top[0] < 4 {
		t.Errorf("top catcher only %d catches; expected a professional tier", act.Top[0])
	}
	if act.CDF[len(act.CDF)-1].Fraction != 1 {
		t.Error("CDF does not reach 1")
	}
}

func TestFeatureComparisonTable1(t *testing.T) {
	_, an := setup(t)
	tbl, err := an.FeatureComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tbl.Rows))
	}
	byName := map[string]FeatureRow{}
	for _, r := range tbl.Rows {
		byName[r.Feature] = r
	}

	income := byName["average_income_USD"]
	ratio := income.ReregMean / income.ControlMean
	if ratio < 1.8 || ratio > 8 {
		t.Errorf("income ratio %.2f outside paper-like range (paper: 3.3)", ratio)
	}
	if !income.Significant {
		t.Error("income not significant")
	}
	// The rank test is robust to the income tail and must fire strongly.
	if income.PRank >= 0.001 {
		t.Errorf("income rank-test p = %v, want << 0.001", income.PRank)
	}

	length := byName["average_length"]
	if length.ReregMean >= length.ControlMean {
		t.Errorf("re-registered names should be shorter: %.2f vs %.2f", length.ReregMean, length.ControlMean)
	}

	digit := byName["contains_digit"]
	if digit.ReregFrac >= digit.ControlFrac || !digit.Significant {
		t.Errorf("contains_digit: %.3f vs %.3f (sig=%v)", digit.ReregFrac, digit.ControlFrac, digit.Significant)
	}
	dict := byName["is_dictionary_word"]
	if dict.ReregFrac <= dict.ControlFrac || !dict.Significant {
		t.Errorf("is_dictionary_word: %.3f vs %.3f (sig=%v)", dict.ReregFrac, dict.ControlFrac, dict.Significant)
	}
	hyph := byName["contains_hyphen"]
	if hyph.ReregFrac >= hyph.ControlFrac {
		t.Errorf("contains_hyphen: %.3f vs %.3f", hyph.ReregFrac, hyph.ControlFrac)
	}
	under := byName["contains_underscore"]
	if under.ReregFrac >= under.ControlFrac {
		t.Errorf("contains_underscore: %.3f vs %.3f", under.ReregFrac, under.ControlFrac)
	}

	rcdf, ccdf := tbl.IncomeCDFs()
	if len(rcdf) == 0 || len(ccdf) == 0 {
		t.Error("empty income CDFs")
	}
	t.Logf("income: rereg=%.0f control=%.0f ratio=%.2f; digit %.3f/%.3f; dict %.3f/%.3f",
		income.ReregMean, income.ControlMean, ratio, digit.ReregFrac, digit.ControlFrac, dict.ReregFrac, dict.ControlFrac)
}

func TestControlSamplingEqualSize(t *testing.T) {
	_, an := setup(t)
	control := an.SampleControl()
	want := len(an.Pop.Reregistered)
	if len(an.Pop.ExpiredNotRereg) >= want && len(control) != want {
		t.Errorf("control size %d, want %d", len(control), want)
	}
	// Deterministic given the seed.
	again := an.SampleControl()
	for i := range control {
		if control[i] != again[i] {
			t.Fatal("control sample not deterministic")
		}
	}
}

func TestFinancialLossesAgainstTruth(t *testing.T) {
	res, an := setup(t)
	report := an.FinancialLosses()
	if report.DomainsWithCoinbase == 0 || report.TxsAll == 0 {
		t.Fatalf("no findings: %+v", report)
	}
	if report.DomainsNonCustodial > report.DomainsWithCoinbase {
		t.Error("non-custodial domain count exceeds union count")
	}
	if report.TxsNonCustodial > report.TxsAll || report.USDNonCustodial > report.USDAll {
		t.Error("non-custodial totals exceed union totals")
	}

	// Precision/recall against ground truth over unique flagged hashes
	// (a transaction can satisfy the scenario for two domains caught by
	// the same address).
	flagged := map[ethtypes.Hash]bool{}
	for _, f := range report.Findings {
		for _, s := range f.Senders {
			for _, h := range s.TxHashes {
				flagged[h] = true
			}
		}
	}
	var tp, fp, intentional int
	for h := range flagged {
		switch {
		case res.Truth.MisdirectedTxHashes[h]:
			tp++
		case res.Truth.IntentionalTxHashes[h]:
			intentional++
		default:
			fp++
		}
	}
	totalTruth := len(res.Truth.MisdirectedTxHashes)
	precision := float64(tp) / float64(tp+fp+intentional)
	recall := float64(tp) / float64(totalTruth)
	t.Logf("loss heuristic: tp=%d fp=%d intentional=%d truth=%d precision=%.2f recall=%.2f",
		tp, fp, intentional, totalTruth, precision, recall)
	t.Logf("domains: %d nonC / %d all; txs %d/%d; avg USD %.0f/%.0f",
		report.DomainsNonCustodial, report.DomainsWithCoinbase,
		report.TxsNonCustodial, report.TxsAll,
		report.AvgUSDPerDomainNonCustodial(), report.AvgUSDPerDomainAll())
	// Precision is bounded below by cross-domain coincidences at heavy
	// catcher addresses — a class the paper's heuristic cannot separate
	// either (its Limitations section) and that inflates with our small
	// scale. The bound is looser than the paper-scale expectation.
	if precision < 0.5 {
		t.Errorf("precision %.2f too low — heuristic not conservative", precision)
	}
	if recall < 0.40 {
		t.Errorf("recall %.2f implausibly low", recall)
	}
}

func TestLossReportNeverFlagsCustodial(t *testing.T) {
	_, an := setup(t)
	report := an.FinancialLosses()
	for _, f := range report.Findings {
		for _, s := range f.Senders {
			if an.DS.IsCustodial(s.Sender) {
				t.Fatalf("custodial sender %s in findings", s.Sender)
			}
			if s.Kind == SenderCoinbase && !an.DS.IsCoinbase(s.Sender) {
				t.Fatal("mislabeled Coinbase sender")
			}
		}
	}
}

func TestHijackableFundsMatchTruth(t *testing.T) {
	res, an := setup(t)
	funds := an.HijackableFunds()
	if len(funds) == 0 {
		t.Fatal("no hijackable funds found")
	}
	var got float64
	for _, f := range funds {
		got += f
	}
	var want float64
	for _, d := range res.Truth.Domains {
		want += d.HijackableUSD
	}
	if want == 0 {
		t.Fatal("truth has no hijackable funds")
	}
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("hijackable total %.0f vs truth %.0f (rel %.3f)", got, want, rel)
	}
	for i := 1; i < len(funds); i++ {
		if funds[i] < funds[i-1] {
			t.Fatal("funds not sorted")
		}
	}
}

func TestScatterAndAmounts(t *testing.T) {
	_, an := setup(t)
	report := an.FinancialLosses()
	pts := report.TxScatter()
	if len(pts) == 0 {
		t.Fatal("no scatter points")
	}
	ones := 0
	for _, p := range pts {
		if p.ToA1 < 1 || p.ToA2 < 1 {
			t.Fatal("scatter point with zero transactions")
		}
		if p.ToA2 == 1 {
			ones++
		}
	}
	// The paper observes one-to-one as the most common a2 ratio.
	if frac := float64(ones) / float64(len(pts)); frac < 0.4 {
		t.Errorf("single-tx findings only %.2f of scatter", frac)
	}
	amounts := report.MisdirectedAmounts()
	if len(amounts) != len(report.Findings) {
		t.Error("amounts length mismatch")
	}
}

func TestCatcherProfits(t *testing.T) {
	_, an := setup(t)
	report := an.FinancialLosses()
	profits := report.CatcherProfits()
	if len(profits.Catchers) == 0 {
		t.Fatal("no catchers in profit report")
	}
	t.Logf("catchers=%d profitable=%.2f avgProfit=%.0f USD",
		len(profits.Catchers), profits.ProfitableFraction, profits.AvgProfitUSD)
	// Registration is cheap, misdirected income large: most catchers in
	// the loss scenario profit (paper: 91%).
	if profits.ProfitableFraction < 0.6 {
		t.Errorf("profitable fraction %.2f; paper observes 0.91", profits.ProfitableFraction)
	}
	if profits.AvgProfitUSD <= 0 {
		t.Errorf("average profit %.0f not positive", profits.AvgProfitUSD)
	}
}

func TestResaleMarketMatchesTruth(t *testing.T) {
	res, an := setup(t)
	rep := an.ResaleMarket()
	var wantListed, wantSold int
	for _, d := range res.Truth.Domains {
		if d.Listed {
			wantListed++
		}
		if d.Sold {
			wantSold++
		}
	}
	if rep.Listed != wantListed || rep.Sold != wantSold {
		t.Errorf("listed/sold %d/%d, truth %d/%d", rep.Listed, rep.Sold, wantListed, wantSold)
	}
	if rep.Sold > rep.Listed {
		t.Error("sold exceeds listed")
	}
	if rep.ListedFraction <= 0 || rep.ListedFraction > 0.3 {
		t.Errorf("listed fraction %.3f implausible (paper: 0.08)", rep.ListedFraction)
	}
	if wantSold > 0 && rep.MedianSaleUSD() <= 0 {
		t.Error("median sale price not positive")
	}
}

func TestCollectionStats(t *testing.T) {
	res, an := setup(t)
	st := an.CollectionStats()
	if st.Domains != len(res.Truth.Domains) {
		t.Errorf("domains %d, want %d", st.Domains, len(res.Truth.Domains))
	}
	if st.RecoveryRate < 0.97 || st.RecoveryRate >= 1.0 {
		t.Errorf("recovery rate %.4f; paper reports ~0.99 with some unrecoverable", st.RecoveryRate)
	}
	if st.Transactions == 0 || st.Events < st.Domains {
		t.Errorf("stats degenerate: %+v", st)
	}
}

func TestBuildHistoryTransfers(t *testing.T) {
	// Synthetic domain: register, transfer, renew, expire, re-register.
	d := &dataset.Domain{Label: "synth"}
	a1 := addr("h-a1")
	a1b := addr("h-a1b")
	a2 := addr("h-a2")
	d.Events = []dataset.Event{
		{Type: dataset.EvRegistered, Registrant: a1, Timestamp: 100, Expiry: 1000},
		{Type: dataset.EvTransferred, Registrant: a1b, Timestamp: 200},
		{Type: dataset.EvRenewed, Timestamp: 900, Expiry: 2000},
		{Type: dataset.EvRegistered, Registrant: a2, Timestamp: 5000, Expiry: 9000},
	}
	h := BuildHistory(d)
	if len(h.Tenures) != 2 {
		t.Fatalf("tenures = %d", len(h.Tenures))
	}
	t0 := h.Tenures[0]
	if t0.FirstOwner != a1 || t0.LastOwner != a1b || t0.Expiry != 2000 || t0.Renewals != 1 {
		t.Errorf("tenure 0 = %+v", t0)
	}
	reregs := h.Reregistrations()
	if len(reregs) != 1 || reregs[0] != 1 {
		t.Errorf("reregs = %v", reregs)
	}
	// Same-owner re-registration is not a dropcatch.
	d.Events[3].Registrant = a1b
	h = BuildHistory(d)
	if h.Reregistered() {
		t.Error("same-owner re-registration flagged as dropcatch")
	}
}

func addr(label string) ethtypes.Address { return ethtypes.DeriveAddress(label) }
