package core

import (
	"sort"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/par"
	"ensdropcatch/internal/stats"
)

// Survival analysis deepens Figure 3: instead of a histogram over caught
// names only, estimate the probability an expired name remains unclaimed
// t days after becoming available — correctly treating names whose
// availability window ran into the end of the study as right-censored
// rather than ignoring them. Splitting by prior-owner income shows the
// §4.3 income effect as a time-to-catch gradient.

// SurvivalReport holds time-to-catch survival curves.
type SurvivalReport struct {
	// All is the curve over every released name.
	All []stats.SurvivalPoint
	// ByIncomeTercile splits by the previous owner's income: [low, mid,
	// high].
	ByIncomeTercile [3][]stats.SurvivalPoint
	// Released is the number of names that became publicly available in
	// the window.
	Released int
	// Caught is the number of catch events among them.
	Caught int
}

// CatchSurvival estimates the time-to-catch survival curves. Time zero is
// the end of the grace period (when the name becomes purchasable); names
// never caught are censored at the window end. The report is memoized;
// callers must treat it as read-only. Use ComputeCatchSurvival for a
// fresh run.
func (a *Analyzer) CatchSurvival() *SurvivalReport {
	a.memo.mu.Lock()
	if a.memo.survival != nil {
		rep := a.memo.survival
		a.memo.mu.Unlock()
		return rep
	}
	a.memo.mu.Unlock()

	rep := a.ComputeCatchSurvival()

	a.memo.mu.Lock()
	if a.memo.survival != nil {
		rep = a.memo.survival // keep the first stored copy; runs are identical
	} else {
		a.memo.survival = rep
	}
	a.memo.mu.Unlock()
	return rep
}

// ComputeCatchSurvival estimates the curves uncached. Subjects fan out
// over the worker pool in a fixed order (the three sorted population
// slices concatenated), and the Kaplan-Meier assembly folds them back in
// that order, so the curves are identical at any worker count.
func (a *Analyzer) ComputeCatchSurvival() *SurvivalReport {
	defer stage("catch_survival")()
	type subject struct {
		obs    stats.Observation
		income float64
		ok     bool
	}
	cutoff := a.DS.End

	consider := func(h *History) subject {
		// First tenure only: the original-owner expiry population.
		if len(h.Tenures) == 0 {
			return subject{}
		}
		t0 := &h.Tenures[0]
		release := ens.ReleaseTime(t0.Expiry)
		if t0.Expiry >= cutoff || release >= cutoff {
			return subject{} // never became available inside the window
		}
		income, _, _ := a.incomeOf(h, 0)
		s := subject{income: income, ok: true}
		if len(h.Tenures) > 1 {
			catch := h.Tenures[1].RegisteredAt
			s.obs = stats.Observation{Time: float64(catch-release) / 86400, Event: true}
			if s.obs.Time < 0 {
				return subject{} // same-owner renewal edge; not a release
			}
		} else {
			s.obs = stats.Observation{Time: float64(cutoff-release) / 86400, Event: false}
		}
		return s
	}

	hs := make([]*History, 0,
		len(a.Pop.Reregistered)+len(a.Pop.ExpiredNotRereg)+len(a.Pop.SameOwnerRereg))
	hs = append(hs, a.Pop.Reregistered...)
	hs = append(hs, a.Pop.ExpiredNotRereg...)
	hs = append(hs, a.Pop.SameOwnerRereg...)

	candidates := par.Map(a.pool("core_survival"), len(hs), func(i int) subject {
		return consider(hs[i])
	})
	subjects := candidates[:0]
	for _, s := range candidates {
		if s.ok {
			subjects = append(subjects, s)
		}
	}

	rep := &SurvivalReport{Released: len(subjects)}
	all := make([]stats.Observation, 0, len(subjects))
	for _, s := range subjects {
		all = append(all, s.obs)
		if s.obs.Event {
			rep.Caught++
		}
	}
	rep.All = stats.KaplanMeier(all)

	// Income terciles.
	incomes := make([]float64, 0, len(subjects))
	for _, s := range subjects {
		incomes = append(incomes, s.income)
	}
	sort.Float64s(incomes)
	if len(incomes) >= 3 {
		lo := incomes[len(incomes)/3]
		hi := incomes[2*len(incomes)/3]
		var groups [3][]stats.Observation
		for _, s := range subjects {
			switch {
			case s.income <= lo:
				groups[0] = append(groups[0], s.obs)
			case s.income <= hi:
				groups[1] = append(groups[1], s.obs)
			default:
				groups[2] = append(groups[2], s.obs)
			}
		}
		for i, g := range groups {
			rep.ByIncomeTercile[i] = stats.KaplanMeier(g)
		}
	}
	return rep
}
