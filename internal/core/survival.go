package core

import (
	"sort"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/stats"
)

// Survival analysis deepens Figure 3: instead of a histogram over caught
// names only, estimate the probability an expired name remains unclaimed
// t days after becoming available — correctly treating names whose
// availability window ran into the end of the study as right-censored
// rather than ignoring them. Splitting by prior-owner income shows the
// §4.3 income effect as a time-to-catch gradient.

// SurvivalReport holds time-to-catch survival curves.
type SurvivalReport struct {
	// All is the curve over every released name.
	All []stats.SurvivalPoint
	// ByIncomeTercile splits by the previous owner's income: [low, mid,
	// high].
	ByIncomeTercile [3][]stats.SurvivalPoint
	// Released is the number of names that became publicly available in
	// the window.
	Released int
	// Caught is the number of catch events among them.
	Caught int
}

// CatchSurvival estimates the time-to-catch survival curves. Time zero is
// the end of the grace period (when the name becomes purchasable); names
// never caught are censored at the window end.
func (a *Analyzer) CatchSurvival() *SurvivalReport {
	type subject struct {
		obs    stats.Observation
		income float64
	}
	var subjects []subject
	cutoff := a.DS.End

	consider := func(h *History) {
		// First tenure only: the original-owner expiry population.
		if len(h.Tenures) == 0 {
			return
		}
		t0 := &h.Tenures[0]
		release := ens.ReleaseTime(t0.Expiry)
		if t0.Expiry >= cutoff || release >= cutoff {
			return // never became available inside the window
		}
		income, _, _ := a.incomeOf(h, 0)
		s := subject{income: income}
		if len(h.Tenures) > 1 {
			catch := h.Tenures[1].RegisteredAt
			s.obs = stats.Observation{Time: float64(catch-release) / 86400, Event: true}
			if s.obs.Time < 0 {
				return // same-owner renewal edge; not a release
			}
		} else {
			s.obs = stats.Observation{Time: float64(cutoff-release) / 86400, Event: false}
		}
		subjects = append(subjects, s)
	}
	for _, h := range a.Pop.Reregistered {
		consider(h)
	}
	for _, h := range a.Pop.ExpiredNotRereg {
		consider(h)
	}
	for _, h := range a.Pop.SameOwnerRereg {
		consider(h)
	}

	rep := &SurvivalReport{Released: len(subjects)}
	all := make([]stats.Observation, 0, len(subjects))
	for _, s := range subjects {
		all = append(all, s.obs)
		if s.obs.Event {
			rep.Caught++
		}
	}
	rep.All = stats.KaplanMeier(all)

	// Income terciles.
	incomes := make([]float64, 0, len(subjects))
	for _, s := range subjects {
		incomes = append(incomes, s.income)
	}
	sort.Float64s(incomes)
	if len(incomes) >= 3 {
		lo := incomes[len(incomes)/3]
		hi := incomes[2*len(incomes)/3]
		var groups [3][]stats.Observation
		for _, s := range subjects {
			switch {
			case s.income <= lo:
				groups[0] = append(groups[0], s.obs)
			case s.income <= hi:
				groups[1] = append(groups[1], s.obs)
			default:
				groups[2] = append(groups[2], s.obs)
			}
		}
		for i, g := range groups {
			rep.ByIncomeTercile[i] = stats.KaplanMeier(g)
		}
	}
	return rep
}
