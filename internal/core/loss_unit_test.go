package core

// Clause-by-clause unit tests for the conservative common-sender heuristic,
// on a hand-built dataset where every transaction is placed deliberately —
// no generator, no randomness.

import (
	"fmt"
	"testing"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// lossFixture builds a dataset with one domain "victim" whose history is:
//
//	t=1000       a1 registers (expiry 5000)
//	t=9000       a2 re-registers (expiry 20000), tenure end = window end
//
// Transactions are added per test.
type lossFixture struct {
	ds     *dataset.Dataset
	a1, a2 ethtypes.Address
	nextTx int
}

const (
	fixtureStart = int64(0)
	fixtureEnd   = int64(30000)
	regA1        = int64(1000)
	expiryA1     = int64(5000)
	catchAt      = int64(9000)
	expiryA2     = int64(20000)
)

func newLossFixture() *lossFixture {
	f := &lossFixture{
		ds: dataset.New(fixtureStart, fixtureEnd),
		a1: ethtypes.DeriveAddress("unit-a1"),
		a2: ethtypes.DeriveAddress("unit-a2"),
	}
	d := &dataset.Domain{LabelHash: ens.LabelHash("victim"), Label: "victim"}
	d.Events = []dataset.Event{
		{Type: dataset.EvRegistered, Registrant: f.a1, Timestamp: regA1, Expiry: expiryA1, CostWei: "5000000000000000000"},
		{Type: dataset.EvRegistered, Registrant: f.a2, Timestamp: catchAt, Expiry: expiryA2, CostWei: "5000000000000000000"},
	}
	f.ds.Domains[d.LabelHash] = d
	return f
}

// tx appends a transfer and returns its hash.
func (f *lossFixture) tx(from, to ethtypes.Address, ts int64, eth float64) ethtypes.Hash {
	f.nextTx++
	h := ethtypes.HashData([]byte(fmt.Sprintf("unit-tx-%d", f.nextTx)))
	f.ds.Txs = append(f.ds.Txs, &dataset.Tx{
		Hash: h, Timestamp: ts, From: from, To: to,
		ValueWei: fmt.Sprintf("%.0f", eth*1e18),
	})
	return h
}

func (f *lossFixture) analyze() *LossReport {
	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	return an.FinancialLosses()
}

func sender(label string) ethtypes.Address { return ethtypes.DeriveAddress(label) }

func TestLossUnitTextbookCase(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c1")
	f.tx(c, f.a1, 2000, 1) // during a1's tenure
	f.tx(c, f.a1, 3000, 1)
	misdirected := f.tx(c, f.a2, 10000, 1) // during a2's tenure, never a1 again

	rep := f.analyze()
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	fd := rep.Findings[0]
	if fd.A1 != f.a1 || fd.A2 != f.a2 || len(fd.Senders) != 1 {
		t.Fatalf("finding = %+v", fd)
	}
	s := fd.Senders[0]
	if s.TxsToA1 != 2 || s.TxsToA2 != 1 || s.TxHashes[0] != misdirected {
		t.Errorf("sender finding = %+v", s)
	}
	if s.Kind != SenderNonCustodial {
		t.Error("kind should be non-custodial")
	}
}

func TestLossUnitSenderPaysA1Again(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c2")
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a2, 10000, 1)
	f.tx(c, f.a1, 11000, 1) // pays a1 AFTER the catch: disqualified

	rep := f.analyze()
	if len(rep.Findings) != 0 {
		t.Fatalf("split sender flagged: %+v", rep.Findings[0])
	}
	// Relaxing the clause readmits them.
	opts := DefaultLossOptions()
	opts.RequireNoA1After = false
	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	if rep := an.FinancialLossesOpts(opts); len(rep.Findings) != 1 {
		t.Errorf("relaxed clause found %d findings", len(rep.Findings))
	}
}

func TestLossUnitPreTenureRelationship(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c3")
	f.tx(c, f.a1, 500, 1) // BEFORE a1 registered the name
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a2, 10000, 1)

	if rep := f.analyze(); len(rep.Findings) != 0 {
		t.Fatal("pre-tenure sender flagged")
	}
	opts := DefaultLossOptions()
	opts.RequireNoPreTenure = false
	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	if rep := an.FinancialLossesOpts(opts); len(rep.Findings) != 1 {
		t.Error("relaxed pre-tenure clause did not readmit the sender")
	}
}

func TestLossUnitSenderKnowsA2Directly(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c4")
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a2, 7000, 1)  // pays a2 BEFORE a2 holds the name
	f.tx(c, f.a2, 10000, 1) // and again during the tenure

	if rep := f.analyze(); len(rep.Findings) != 0 {
		t.Fatal("sender with prior a2 relationship flagged")
	}
	opts := DefaultLossOptions()
	opts.RequireAllToA2InTenure = false
	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	rep := an.FinancialLossesOpts(opts)
	if len(rep.Findings) != 1 {
		t.Fatal("relaxed tenure clause did not readmit")
	}
	// Only the in-tenure payment counts even when relaxed.
	if rep.Findings[0].Senders[0].TxsToA2 != 1 {
		t.Errorf("TxsToA2 = %d, want 1", rep.Findings[0].Senders[0].TxsToA2)
	}
}

func TestLossUnitCustodialFilter(t *testing.T) {
	f := newLossFixture()
	exchange := sender("unit-exchange")
	f.ds.OtherCustodial[exchange] = true
	f.tx(exchange, f.a1, 2000, 1)
	f.tx(exchange, f.a2, 10000, 1)

	if rep := f.analyze(); len(rep.Findings) != 0 {
		t.Fatal("custodial sender flagged")
	}
	opts := DefaultLossOptions()
	opts.FilterCustodial = false
	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	if rep := an.FinancialLossesOpts(opts); len(rep.Findings) != 1 {
		t.Error("unfiltered custodial sender not found")
	}
}

func TestLossUnitCoinbaseClassified(t *testing.T) {
	f := newLossFixture()
	cb := sender("unit-coinbase")
	f.ds.Coinbase[cb] = true
	f.tx(cb, f.a1, 2000, 1)
	f.tx(cb, f.a2, 10000, 2)

	rep := f.analyze()
	if len(rep.Findings) != 1 || rep.Findings[0].Senders[0].Kind != SenderCoinbase {
		t.Fatalf("coinbase classification: %+v", rep.Findings)
	}
	if rep.DomainsNonCustodial != 0 || rep.DomainsWithCoinbase != 1 {
		t.Errorf("domain counts: nonC=%d all=%d", rep.DomainsNonCustodial, rep.DomainsWithCoinbase)
	}
	if rep.TxsNonCustodial != 0 || rep.TxsAll != 1 {
		t.Errorf("tx counts: nonC=%d all=%d", rep.TxsNonCustodial, rep.TxsAll)
	}
}

func TestLossUnitSenderNeverPaidA1(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c5")
	f.tx(c, f.a2, 10000, 5) // a2's unrelated income

	if rep := f.analyze(); len(rep.Findings) != 0 {
		t.Fatal("unrelated a2 income flagged")
	}
}

func TestLossUnitStaleWindowPaymentsCount(t *testing.T) {
	// Payments to a1 between expiry and the catch are still "while a1
	// held d" (the name kept resolving to a1) — the profittrailer.eth
	// pattern from §4.4.
	f := newLossFixture()
	c := sender("unit-c6")
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a1, 6000, 1) // expired, pre-catch: still a1's window
	f.tx(c, f.a2, 10000, 1)

	rep := f.analyze()
	if len(rep.Findings) != 1 {
		t.Fatal("stale-window payments disqualified a textbook case")
	}
	if got := rep.Findings[0].Senders[0].TxsToA1; got != 2 {
		t.Errorf("TxsToA1 = %d, want 2 (stale payment included)", got)
	}
}

func TestLossUnitFailedTxIgnored(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c7")
	f.tx(c, f.a1, 2000, 1)
	h := f.tx(c, f.a2, 10000, 1)
	for _, tx := range f.ds.Txs {
		if tx.Hash == h {
			tx.Failed = true
		}
	}
	if rep := f.analyze(); len(rep.Findings) != 0 {
		t.Fatal("failed transaction produced a finding")
	}
}

func TestLossUnitHijackableWindow(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c8")
	f.tx(c, f.a1, 2000, 1)  // tenure income: NOT hijackable
	f.tx(c, f.a1, 6000, 2)  // expired, pre-catch: hijackable
	f.tx(c, f.a1, 8000, 3)  // still pre-catch: hijackable
	f.tx(c, f.a2, 25000, 9) // post-catch to a2: not a1's wallet

	f.ds.Reindex()
	an := NewAnalyzer(f.ds, pricing.NewOracleNoise(0))
	funds := an.HijackableFunds()
	if len(funds) != 1 {
		t.Fatalf("hijackable domains = %d", len(funds))
	}
	oracle := pricing.NewOracleNoise(0)
	want := oracle.USD(2, 6000) + oracle.USD(3, 8000)
	if diff := funds[0] - want; diff > 1 || diff < -1 {
		t.Errorf("hijackable = %.2f, want %.2f", funds[0], want)
	}
}

func TestLossUnitCostFromEvent(t *testing.T) {
	f := newLossFixture()
	c := sender("unit-c9")
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a2, 10000, 1)
	rep := f.analyze()
	if len(rep.Findings) != 1 {
		t.Fatal("no finding")
	}
	// Cost = 5 ETH at the catch-day close.
	oracle := pricing.NewOracleNoise(0)
	want := oracle.USD(5, catchAt)
	if got := rep.Findings[0].CostUSD; got < want*0.9 || got > want*1.1 {
		t.Errorf("cost = %.2f, want ~%.2f", got, want)
	}
}
