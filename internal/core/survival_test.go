package core

import (
	"testing"

	"ensdropcatch/internal/stats"
)

func TestCatchSurvivalBasics(t *testing.T) {
	_, an := setup(t)
	rep := an.CatchSurvival()
	if rep.Released == 0 || rep.Caught == 0 {
		t.Fatalf("degenerate: %+v", rep)
	}
	if rep.Caught > rep.Released {
		t.Fatal("more catches than releases")
	}
	if len(rep.All) == 0 {
		t.Fatal("empty curve")
	}
	// Survival at the window horizon must equal 1 - (eventual catch
	// fraction among released) up to censoring effects: it must at least
	// be below 1 and above 0.
	tail := rep.All[len(rep.All)-1].Survival
	if tail <= 0 || tail >= 1 {
		t.Errorf("tail survival %v implausible", tail)
	}
	// The premium window (21 days) should show a visible early drop:
	// survival at 40 days below survival at 5 days.
	s5 := stats.SurvivalAt(rep.All, 5)
	s40 := stats.SurvivalAt(rep.All, 40)
	if s40 >= s5 {
		t.Errorf("no early catch cluster: S(5)=%v S(40)=%v", s5, s40)
	}
}

func TestCatchSurvivalIncomeGradient(t *testing.T) {
	_, an := setup(t)
	rep := an.CatchSurvival()
	for i, g := range rep.ByIncomeTercile {
		if len(g) == 0 {
			t.Fatalf("tercile %d empty", i)
		}
	}
	// High-income names are caught faster: at 90 days post-release their
	// survival must be lowest, and the gradient monotone across terciles.
	at := 90.0
	low := stats.SurvivalAt(rep.ByIncomeTercile[0], at)
	mid := stats.SurvivalAt(rep.ByIncomeTercile[1], at)
	high := stats.SurvivalAt(rep.ByIncomeTercile[2], at)
	t.Logf("S(90d): low=%.3f mid=%.3f high=%.3f", low, mid, high)
	if !(high < mid && mid < low) {
		t.Errorf("income gradient not monotone: %.3f / %.3f / %.3f", low, mid, high)
	}
}
