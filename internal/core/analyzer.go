package core

import (
	"sync"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/par"
	"ensdropcatch/internal/pricing"
)

// analysisSeconds times each report computation (cache misses only; the
// memoized entry points return without touching it).
var analysisSeconds = obs.Default.HistogramVec("core_analysis_seconds",
	"Wall time of one full analysis computation.", nil, "analysis")

// Analyzer runs the paper's analyses over an assembled dataset. Construct
// with NewAnalyzer; the population is classified once and shared.
//
// The expensive reports (FinancialLosses, FeatureComparison,
// CatchSurvival) are memoized per analyzer: Figures 8-11 all derive from
// the same loss report, so the CLIs and tests get it computed once. The
// Compute* variants bypass the cache for benchmarks and callers that need
// a fresh run. All analyses are deterministic in (dataset, options, Seed)
// and independent of Workers.
type Analyzer struct {
	DS     *dataset.Dataset
	Oracle *pricing.Oracle
	Pop    *Population
	// Seed drives control-group sampling (the paper samples 241,283
	// control domains uniformly).
	Seed int64
	// Workers bounds the fan-out of the parallel analyses; 0 means
	// GOMAXPROCS. Results are identical for every value.
	Workers int

	txIndexOnce sync.Once
	txIndex     map[ethtypes.Hash]*dataset.Tx

	memo struct {
		mu       sync.Mutex
		losses   map[LossOptions]*LossReport
		seed     int64 // Seed the feature memo was computed under
		features *Table1
		survival *SurvivalReport
	}
}

// txByHash looks a crawled transaction up by hash, preferring the
// dataset's Reindex-built index; the lazy local index covers datasets
// assembled by hand without a Reindex call.
func (a *Analyzer) txByHash(h ethtypes.Hash) *dataset.Tx {
	if tx := a.DS.TxByHash(h); tx != nil {
		return tx
	}
	a.txIndexOnce.Do(func() {
		a.txIndex = make(map[ethtypes.Hash]*dataset.Tx, len(a.DS.Txs))
		for _, tx := range a.DS.Txs {
			a.txIndex[tx.Hash] = tx
		}
	})
	return a.txIndex[h]
}

// NewAnalyzer classifies the dataset's domain population.
func NewAnalyzer(ds *dataset.Dataset, oracle *pricing.Oracle) *Analyzer {
	return &Analyzer{DS: ds, Oracle: oracle, Pop: Classify(ds), Seed: 1}
}

// pool returns a fan-out pool labeled for the given analysis.
func (a *Analyzer) pool(op string) *par.Pool {
	return par.New(op, a.Workers)
}

// usdOf converts a transaction's value to USD at its day-of-transaction
// close, the paper's conversion rule.
func (a *Analyzer) usdOf(tx *dataset.Tx) float64 {
	return a.Oracle.USD(tx.ValueEth(), tx.Timestamp)
}

// incomeOf computes the income profile of a tenure's owner: total USD,
// unique senders, and transaction count within [registration, min(expiry,
// window end)). Registration/renewal self-payments never appear because
// they are outgoing.
func (a *Analyzer) incomeOf(h *History, tenure int) (usd float64, senders int, txs int) {
	t := h.Tenures[tenure]
	end := t.Expiry
	if end > a.DS.End {
		end = a.DS.End
	}
	uniq := map[ethtypes.Address]bool{}
	for _, tx := range a.DS.IncomingOf(t.LastOwner, t.RegisteredAt, end) {
		usd += a.usdOf(tx)
		uniq[tx.From] = true
		txs++
	}
	return usd, len(uniq), txs
}

// DataCollectionStats summarizes §3's collection results.
type DataCollectionStats struct {
	Domains      int
	Subdomains   int
	Unrecovered  int     // names the subgraph cannot map back to plaintext
	RecoveryRate float64 // fraction of names with recovered labels
	Transactions int
	Events       int
}

// CollectionStats reports the dataset assembly statistics.
func (a *Analyzer) CollectionStats() DataCollectionStats {
	events := 0
	for _, d := range a.DS.Domains {
		events += len(d.Events)
	}
	n := len(a.DS.Domains)
	st := DataCollectionStats{
		Domains:      n,
		Subdomains:   len(a.DS.Subdomains),
		Unrecovered:  a.Pop.Unrecovered,
		Transactions: len(a.DS.Txs),
		Events:       events,
	}
	if n > 0 {
		st.RecoveryRate = 1 - float64(st.Unrecovered)/float64(n)
	}
	return st
}
