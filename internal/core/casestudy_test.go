package core

import (
	"strings"
	"testing"
)

func TestCaseStudiesFromUnitFixture(t *testing.T) {
	f := newLossFixture()
	c := sender("case-c1")
	f.tx(c, f.a1, 2000, 1)
	f.tx(c, f.a1, 3000, 2)
	f.tx(c, f.a2, 10000, 3)
	rep := f.analyze()

	studies := rep.CaseStudies(5)
	if len(studies) != 1 {
		t.Fatalf("studies = %d", len(studies))
	}
	s := studies[0]
	for _, want := range []string{"victim.eth", "two different owners", "non-custodial", "never again", "Suspected loss"} {
		if !strings.Contains(s.Narrative, want) {
			t.Errorf("narrative missing %q:\n%s", want, s.Narrative)
		}
	}
}

func TestCaseStudiesOrderedAndBounded(t *testing.T) {
	_, an := setup(t)
	rep := an.FinancialLosses()
	studies := rep.CaseStudies(3)
	if len(studies) == 0 {
		t.Fatal("no case studies")
	}
	if len(studies) > 3 {
		t.Fatalf("bound ignored: %d", len(studies))
	}
	for i := 1; i < len(studies); i++ {
		if studies[i].Finding.MisdirectedUSD() > studies[i-1].Finding.MisdirectedUSD() {
			t.Fatal("not ordered by loss")
		}
	}
	// Asking for more than exists returns everything without panicking.
	all := rep.CaseStudies(1 << 20)
	if len(all) != len(rep.Findings) {
		t.Errorf("all studies = %d, findings = %d", len(all), len(rep.Findings))
	}
}
