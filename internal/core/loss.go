package core

import (
	"bytes"
	"context"
	"runtime/pprof"
	"sort"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/par"
	"ensdropcatch/internal/trace"
)

// SenderKind classifies a common sender c in the loss scenario.
type SenderKind int

// Sender classes (non-Coinbase custodial senders are filtered out before
// classification).
const (
	SenderNonCustodial SenderKind = iota
	SenderCoinbase
)

// SenderFinding is one (domain, sender) instance of the paper's scenario:
// c paid a1 only while a1 held d, then paid a2 — and never a1 again —
// once a2 held d.
type SenderFinding struct {
	Sender   ethtypes.Address
	Kind     SenderKind
	TxsToA1  int
	TxsToA2  int
	USDToA2  float64
	TxHashes []ethtypes.Hash // the suspected misdirected transactions
}

// DomainFinding aggregates the scenario instances of one re-registration.
type DomainFinding struct {
	Label     string
	LabelHash ethtypes.Hash
	A1        ethtypes.Address
	A2        ethtypes.Address
	// CatchAt is a2's registration time; CostUSD what a2 paid (base +
	// premium) converted at that day's close.
	CatchAt int64
	CostUSD float64
	Senders []SenderFinding
}

// MisdirectedUSD totals the suspected losses on this domain.
func (f *DomainFinding) MisdirectedUSD() float64 {
	var usd float64
	for _, s := range f.Senders {
		usd += s.USDToA2
	}
	return usd
}

// MisdirectedTxs counts the suspected transactions.
func (f *DomainFinding) MisdirectedTxs() int {
	n := 0
	for _, s := range f.Senders {
		n += s.TxsToA2
	}
	return n
}

// LossReport is the output of the §4.4 analysis.
type LossReport struct {
	// Findings holds every domain with at least one scenario sender
	// (Coinbase or non-custodial).
	Findings []*DomainFinding
	// DomainsNonCustodial / DomainsWithCoinbase are the paper's 484 /
	// 940 headline counts.
	DomainsNonCustodial int
	DomainsWithCoinbase int
	// Transactions / USD totals, split like §4.4.
	TxsNonCustodial   int
	USDNonCustodial   float64
	TxsAll            int
	USDAll            float64
	UniqueSendersAll  int
	UniqueSendersNonC int
}

// AvgUSDPerDomainAll returns the average misdirected USD per affected
// domain over both sender classes.
func (r *LossReport) AvgUSDPerDomainAll() float64 {
	if r.DomainsWithCoinbase == 0 {
		return 0
	}
	return r.USDAll / float64(r.DomainsWithCoinbase)
}

// AvgUSDPerDomainNonCustodial restricts the average to non-custodial
// senders.
func (r *LossReport) AvgUSDPerDomainNonCustodial() float64 {
	if r.DomainsNonCustodial == 0 {
		return 0
	}
	return r.USDNonCustodial / float64(r.DomainsNonCustodial)
}

// LossOptions selects which clauses of the conservative heuristic apply.
// DefaultLossOptions is the paper's configuration; the ablation benchmarks
// relax one clause at a time to measure how much each contributes to
// precision.
type LossOptions struct {
	// RequireNoA1After drops senders who paid a1 again after the
	// re-registration ("never again to a1").
	RequireNoA1After bool
	// RequireAllToA2InTenure drops senders with any payment to a2
	// outside a2's tenure of the domain.
	RequireAllToA2InTenure bool
	// RequireNoPreTenure drops senders whose relationship with a1
	// predates a1's registration of the domain.
	RequireNoPreTenure bool
	// FilterCustodial removes non-Coinbase custodial senders.
	FilterCustodial bool
}

// DefaultLossOptions is the paper's conservative configuration.
func DefaultLossOptions() LossOptions {
	return LossOptions{
		RequireNoA1After:       true,
		RequireAllToA2InTenure: true,
		RequireNoPreTenure:     true,
		FilterCustodial:        true,
	}
}

// FinancialLosses runs the conservative common-sender heuristic over every
// owner-changing re-registration. Non-Coinbase custodial senders are
// excluded up front (their address is shared by unrelated users); findings
// are reported separately for non-custodial-only senders and for the
// non-custodial + Coinbase union, exactly like the paper.
func (a *Analyzer) FinancialLosses() *LossReport {
	return a.FinancialLossesOpts(DefaultLossOptions())
}

// FinancialLossesOpts runs the heuristic with explicit clause selection,
// memoized per options: Figures 8-11 and the §4.4 scalars all read the
// same report, so each configuration is computed once per analyzer.
// Callers must treat the returned report as read-only.
func (a *Analyzer) FinancialLossesOpts(opts LossOptions) *LossReport {
	a.memo.mu.Lock()
	if rep, ok := a.memo.losses[opts]; ok {
		a.memo.mu.Unlock()
		return rep
	}
	a.memo.mu.Unlock()

	rep := a.ComputeFinancialLosses(opts)

	a.memo.mu.Lock()
	if a.memo.losses == nil {
		a.memo.losses = make(map[LossOptions]*LossReport)
	}
	// A concurrent caller may have raced the computation; keep the first
	// stored report so every caller shares one pointer. Both runs are
	// deterministic and identical, so either is correct.
	if prior, ok := a.memo.losses[opts]; ok {
		rep = prior
	} else {
		a.memo.losses[opts] = rep
	}
	a.memo.mu.Unlock()
	return rep
}

// ComputeFinancialLosses runs the heuristic uncached. The per-pair
// analyses fan out over the analyzer's worker pool; the reduction below
// folds the gathered findings sequentially in input order, so totals and
// ordering are bit-identical to a single-threaded run at any worker count.
func (a *Analyzer) ComputeFinancialLosses(opts LossOptions) *LossReport {
	defer stage("financial_losses")()
	type pair struct {
		h *History
		j int
	}
	var pairs []pair
	for _, h := range a.Pop.Reregistered {
		for _, j := range h.Reregistrations() {
			pairs = append(pairs, pair{h, j})
		}
	}

	findings := par.Map(a.pool("core_losses"), len(pairs), func(i int) *DomainFinding {
		f := a.analyzePair(pairs[i].h, pairs[i].j, opts)
		if f == nil || len(f.Senders) == 0 {
			return nil
		}
		return f
	})

	report := &LossReport{}
	uniqAll := map[ethtypes.Address]bool{}
	uniqNonC := map[ethtypes.Address]bool{}
	for _, f := range findings {
		if f == nil {
			continue
		}
		report.Findings = append(report.Findings, f)
		hasNonC := false
		for _, s := range f.Senders {
			uniqAll[s.Sender] = true
			report.TxsAll += s.TxsToA2
			report.USDAll += s.USDToA2
			if s.Kind == SenderNonCustodial {
				hasNonC = true
				uniqNonC[s.Sender] = true
				report.TxsNonCustodial += s.TxsToA2
				report.USDNonCustodial += s.USDToA2
			}
		}
		report.DomainsWithCoinbase++
		if hasNonC {
			report.DomainsNonCustodial++
		}
	}
	report.UniqueSendersAll = len(uniqAll)
	report.UniqueSendersNonC = len(uniqNonC)
	sort.Slice(report.Findings, func(i, j int) bool {
		return bytes.Compare(report.Findings[i].LabelHash[:], report.Findings[j].LabelHash[:]) < 0
	})
	return report
}

// stage instruments one full report computation three ways: a timer
// against the core_analysis_seconds histogram, a `report` pprof label so
// CPU profiles from `make bench` segment by analysis, and a span (no-op
// unless a process-wide tracer is installed). Wall-clock reads go
// through obs so the detrand analyzer can hold the rest of this package
// to seed-purity; span and profile state never feed the report values,
// so results stay byte-identical with tracing on or off.
func stage(analysis string) func() {
	h := analysisSeconds.With(analysis)
	start := obs.NowWall()
	labeled := pprof.WithLabels(context.Background(), pprof.Labels("report", analysis))
	pprof.SetGoroutineLabels(labeled)
	_, sp := trace.Start(context.Background(), "core."+analysis)
	return func() {
		h.Observe(obs.WallSince(start).Seconds())
		sp.End()
		pprof.SetGoroutineLabels(context.Background())
	}
}

// analyzePair applies the scenario to the re-registration at tenure j.
func (a *Analyzer) analyzePair(h *History, j int, opts LossOptions) *DomainFinding {
	prev := &h.Tenures[j-1]
	cur := &h.Tenures[j]
	a1 := prev.LastOwner
	a2 := cur.FirstOwner
	if a1 == a2 || a1.IsZero() || a2.IsZero() {
		return nil
	}
	catchAt := cur.RegisteredAt
	a2End := h.TenureEnd(j, a.DS.End)

	f := &DomainFinding{
		Label:     h.Domain.Label,
		LabelHash: h.Domain.LabelHash,
		A1:        a1,
		A2:        a2,
		CatchAt:   catchAt,
		CostUSD:   a.Oracle.USD(weiStringToEth(cur.CostWei), catchAt),
	}

	// Candidate senders: everyone who ever paid a1.
	type senderStats struct {
		toA1Before, toA1After int
		toA1PreTenure         bool
	}
	cands := map[ethtypes.Address]*senderStats{}
	for _, tx := range a.DS.IncomingAll(a1) {
		c := tx.From
		if c == a1 || c == a2 {
			continue
		}
		st := cands[c]
		if st == nil {
			st = &senderStats{}
			cands[c] = st
		}
		switch {
		case tx.Timestamp < prev.RegisteredAt:
			// c already paid a1 before a1 even held d: the relationship
			// predates the domain, so payments are not attributable to it.
			st.toA1PreTenure = true
		case tx.Timestamp < catchAt:
			st.toA1Before++
		default:
			st.toA1After++
		}
	}

	senders := make([]ethtypes.Address, 0, len(cands))
	for c := range cands {
		senders = append(senders, c)
	}
	sort.Slice(senders, func(x, y int) bool { return lessAddr(senders[x], senders[y]) })

	for _, c := range senders {
		st := cands[c]
		if st.toA1Before == 0 {
			continue // c never paid a1 during the tenure
		}
		if opts.RequireNoPreTenure && st.toA1PreTenure {
			continue // relationship predates the domain
		}
		if opts.RequireNoA1After && st.toA1After > 0 {
			continue // violates "never again to a1"
		}
		if opts.FilterCustodial && a.DS.IsCustodial(c) {
			continue // non-Coinbase custodial: unattributable senders
		}
		// c's payments to a2: all must fall inside a2's tenure of d.
		var toA2 []*dataset.Tx
		valid := true
		for _, tx := range a.DS.OutgoingTo(c, a2) {
			if tx.Timestamp < catchAt || tx.Timestamp >= a2End {
				if opts.RequireAllToA2InTenure {
					valid = false // c knows a2 outside the domain
					break
				}
				continue
			}
			toA2 = append(toA2, tx)
		}
		if !valid || len(toA2) == 0 {
			continue
		}
		finding := SenderFinding{
			Sender:  c,
			Kind:    SenderNonCustodial,
			TxsToA1: st.toA1Before,
			TxsToA2: len(toA2),
		}
		if a.DS.IsCoinbase(c) {
			finding.Kind = SenderCoinbase
		}
		for _, tx := range toA2 {
			finding.USDToA2 += a.usdOf(tx)
			finding.TxHashes = append(finding.TxHashes, tx.Hash)
		}
		f.Senders = append(f.Senders, finding)
	}
	return f
}

func lessAddr(a, b ethtypes.Address) bool {
	return bytes.Compare(a[:], b[:]) < 0
}

// HijackableFunds computes Figure 7: for every domain whose original
// registration expired, the USD its previous owner's wallet kept receiving
// between expiry and the re-registration (or the window end when never
// re-registered) — money an attacker could have captured by registering
// the name earlier. Only first tenures are considered: later tenures
// belong to catcher wallets that pool income across many names, which
// would conflate per-domain attribution.
func (a *Analyzer) HijackableFunds() []float64 {
	defer stage("hijackable_funds")()
	// Pop.All is sorted by labelhash, so the fan-out order (and therefore
	// the pre-sort slice) is fixed regardless of worker count.
	usds := par.Map(a.pool("core_hijackable"), len(a.Pop.All), func(i int) float64 {
		h := a.Pop.All[i]
		if len(h.Tenures) == 0 {
			return 0
		}
		t := &h.Tenures[0]
		if t.Expiry >= a.DS.End {
			return 0
		}
		var usd float64
		for _, tx := range a.DS.IncomingOf(t.LastOwner, t.Expiry+1, h.TenureEnd(0, a.DS.End)) {
			usd += a.usdOf(tx)
		}
		return usd
	})
	var out []float64
	for _, usd := range usds {
		if usd > 0 {
			out = append(out, usd)
		}
	}
	sort.Float64s(out)
	return out
}

// ScatterPoint is one (c, domain) pair of Figure 9/11: transactions from
// the common sender to the previous vs the new owner.
type ScatterPoint struct {
	ToA1 int
	ToA2 int
	Kind SenderKind
}

// TxScatter returns Figure 9's points (both sender classes); filter on
// Kind for Figure 11.
func (r *LossReport) TxScatter() []ScatterPoint {
	var out []ScatterPoint
	for _, f := range r.Findings {
		for _, s := range f.Senders {
			out = append(out, ScatterPoint{ToA1: s.TxsToA1, ToA2: s.TxsToA2, Kind: s.Kind})
		}
	}
	return out
}

// MisdirectedAmounts returns Figure 8's per-domain misdirected USD values.
func (r *LossReport) MisdirectedAmounts() []float64 {
	var out []float64
	for _, f := range r.Findings {
		out = append(out, f.MisdirectedUSD())
	}
	sort.Float64s(out)
	return out
}

// CatcherProfit aggregates Figure 10 per re-registering address: what the
// address spent registering the affected names vs the income it attracted
// from common senders.
type CatcherProfit struct {
	Address   ethtypes.Address
	CostUSD   float64
	IncomeUSD float64
}

// Profit returns income minus cost.
func (p *CatcherProfit) Profit() float64 { return p.IncomeUSD - p.CostUSD }

// ProfitReport is §4.4's profitability summary.
type ProfitReport struct {
	Catchers []CatcherProfit
	// ProfitableFraction of catchers with positive profit (paper: 91%).
	ProfitableFraction float64
	// AvgProfitUSD across catchers (paper: ~4,700 USD).
	AvgProfitUSD float64
}

// CatcherProfits computes Figure 10 over the addresses appearing as a2 in
// the loss findings.
func (r *LossReport) CatcherProfits() *ProfitReport {
	byAddr := map[ethtypes.Address]*CatcherProfit{}
	for _, f := range r.Findings {
		p := byAddr[f.A2]
		if p == nil {
			p = &CatcherProfit{Address: f.A2}
			byAddr[f.A2] = p
		}
		p.CostUSD += f.CostUSD
		p.IncomeUSD += f.MisdirectedUSD()
	}
	rep := &ProfitReport{}
	for _, p := range byAddr {
		rep.Catchers = append(rep.Catchers, *p)
	}
	sort.Slice(rep.Catchers, func(i, j int) bool {
		return lessAddr(rep.Catchers[i].Address, rep.Catchers[j].Address)
	})
	// Fold after sorting: a float sum in map-iteration order differs in
	// the last bits run to run, which drifts AvgProfitUSD (maporder).
	profitable := 0
	var totalProfit float64
	for i := range rep.Catchers {
		if rep.Catchers[i].Profit() > 0 {
			profitable++
		}
		totalProfit += rep.Catchers[i].Profit()
	}
	if n := len(rep.Catchers); n > 0 {
		rep.ProfitableFraction = float64(profitable) / float64(n)
		rep.AvgProfitUSD = totalProfit / float64(n)
	}
	return rep
}
