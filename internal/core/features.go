package core

import (
	"fmt"
	"math/rand"

	"ensdropcatch/internal/lexical"
	"ensdropcatch/internal/par"
	"ensdropcatch/internal/stats"
)

// FeatureRow is one line of Table 1.
type FeatureRow struct {
	Feature string
	// Numeric features report group means; categorical features report
	// counts (with fractions in ReregFrac/ControlFrac).
	Numeric      bool
	ReregMean    float64
	ControlMean  float64
	ReregCount   int
	ControlCount int
	ReregFrac    float64
	ControlFrac  float64
	P            float64
	Significant  bool
	// PRank is the Mann-Whitney rank-test p-value for numeric features —
	// a robustness companion to the t-test, since income is heavy-tailed
	// and group means can be carried by a few whale wallets.
	PRank float64
}

// Table1 is the paper's feature comparison plus the group income samples
// (Figure 6 is the CDF of the two income columns).
type Table1 struct {
	Rows []FeatureRow
	// ReregIncome / ControlIncome are the per-domain income samples.
	ReregIncome   []float64
	ControlIncome []float64
	// GroupSize is the (equal) size of the two groups.
	GroupSize int
}

// domainProfile carries the extracted per-domain features.
type domainProfile struct {
	income  float64
	senders float64
	txs     float64
	feats   lexical.Features
	labeled bool
}

func (a *Analyzer) profile(h *History, ana *lexical.Analyzer) domainProfile {
	usd, senders, txs := a.incomeOf(h, 0)
	p := domainProfile{income: usd, senders: float64(senders), txs: float64(txs)}
	if h.Domain.Label != "" {
		p.feats = ana.Analyze(h.Domain.Label)
		p.labeled = true
	}
	return p
}

// SampleControl draws an equal-sized uniform control sample from the
// expired-never-re-registered pool, as §4.3 does. It returns all of the
// pool when it is smaller than the re-registered set.
func (a *Analyzer) SampleControl() []*History {
	pool := a.Pop.ExpiredNotRereg
	want := len(a.Pop.Reregistered)
	if want >= len(pool) {
		return pool
	}
	rng := rand.New(rand.NewSource(a.Seed))
	perm := rng.Perm(len(pool))
	out := make([]*History, want)
	for i := 0; i < want; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// FeatureComparison computes Table 1 over the re-registered group and a
// control sample, running Welch t-tests on numerical features and
// two-proportion z-tests on categorical ones (alpha = 0.05). The result is
// memoized per Seed (the only input besides the dataset); callers must
// treat it as read-only. Use ComputeFeatureComparison for a fresh run.
func (a *Analyzer) FeatureComparison() (*Table1, error) {
	a.memo.mu.Lock()
	if a.memo.features != nil && a.memo.seed == a.Seed {
		t := a.memo.features
		a.memo.mu.Unlock()
		return t, nil
	}
	a.memo.mu.Unlock()

	t, err := a.ComputeFeatureComparison()
	if err != nil {
		return nil, err
	}

	a.memo.mu.Lock()
	if a.memo.features != nil && a.memo.seed == a.Seed {
		t = a.memo.features // keep the first stored copy; runs are identical
	} else {
		a.memo.features, a.memo.seed = t, a.Seed
	}
	a.memo.mu.Unlock()
	return t, nil
}

// ComputeFeatureComparison computes Table 1 uncached. Per-domain profiling
// (income window scan + lexical analysis) fans out over the worker pool;
// par.Map writes each profile to its input slot, so the downstream test
// statistics see the exact sequential ordering at any worker count.
func (a *Analyzer) ComputeFeatureComparison() (*Table1, error) {
	defer stage("feature_comparison")()
	ana := lexical.NewAnalyzer()
	rereg := a.Pop.Reregistered
	control := a.SampleControl()

	pool := a.pool("core_features")
	rp := par.Map(pool, len(rereg), func(i int) domainProfile {
		return a.profile(rereg[i], ana)
	})
	cp := par.Map(pool, len(control), func(i int) domainProfile {
		return a.profile(control[i], ana)
	})

	t := &Table1{GroupSize: len(rereg)}
	for _, p := range rp {
		t.ReregIncome = append(t.ReregIncome, p.income)
	}
	for _, p := range cp {
		t.ControlIncome = append(t.ControlIncome, p.income)
	}

	numeric := []struct {
		name string
		get  func(*domainProfile) float64
	}{
		{"average_income_USD", func(p *domainProfile) float64 { return p.income }},
		{"average_num_unique_senders", func(p *domainProfile) float64 { return p.senders }},
		{"average_num_transactions", func(p *domainProfile) float64 { return p.txs }},
		{"average_length", func(p *domainProfile) float64 { return float64(p.feats.Length) }},
	}
	for _, nf := range numeric {
		rvals := collect(rp, nf.get, nf.name == "average_length")
		cvals := collect(cp, nf.get, nf.name == "average_length")
		res, err := stats.WelchT(rvals, cvals)
		if err != nil {
			return nil, fmt.Errorf("core: t-test %s: %w", nf.name, err)
		}
		rank, err := stats.MannWhitneyU(rvals, cvals)
		if err != nil {
			return nil, fmt.Errorf("core: rank test %s: %w", nf.name, err)
		}
		t.Rows = append(t.Rows, FeatureRow{
			Feature: nf.name, Numeric: true,
			ReregMean: stats.Mean(rvals), ControlMean: stats.Mean(cvals),
			P: res.P, Significant: res.Significant(0.05),
			PRank: rank.P,
		})
	}

	categorical := []struct {
		name string
		get  func(lexical.Features) bool
	}{
		// Mixed alphanumeric only: Table 1 reports contains_digit (2.3%)
		// below is_numeric (13.9%), so pure numerics are excluded.
		{"contains_digit", func(f lexical.Features) bool { return f.ContainsDigit && !f.IsNumeric }},
		{"is_numeric", func(f lexical.Features) bool { return f.IsNumeric }},
		{"contains_dictionary_word", func(f lexical.Features) bool { return f.ContainsDictionaryWord }},
		{"is_dictionary_word", func(f lexical.Features) bool { return f.IsDictionaryWord }},
		{"contains_brand_name", func(f lexical.Features) bool { return f.ContainsBrandName }},
		{"contains_adult_word", func(f lexical.Features) bool { return f.ContainsAdultWord }},
		{"contains_hyphen", func(f lexical.Features) bool { return f.ContainsHyphen }},
		{"contains_underscore", func(f lexical.Features) bool { return f.ContainsUnderscore }},
	}
	rLabeled, cLabeled := countLabeled(rp), countLabeled(cp)
	for _, cf := range categorical {
		rCount, cCount := 0, 0
		for i := range rp {
			if rp[i].labeled && cf.get(rp[i].feats) {
				rCount++
			}
		}
		for i := range cp {
			if cp[i].labeled && cf.get(cp[i].feats) {
				cCount++
			}
		}
		res, err := stats.TwoProportionZ(rCount, rLabeled, cCount, cLabeled)
		if err != nil {
			return nil, fmt.Errorf("core: z-test %s: %w", cf.name, err)
		}
		t.Rows = append(t.Rows, FeatureRow{
			Feature:    cf.name,
			ReregCount: rCount, ControlCount: cCount,
			ReregFrac:   frac(rCount, rLabeled),
			ControlFrac: frac(cCount, cLabeled),
			P:           res.P, Significant: res.Significant(0.05),
		})
	}
	return t, nil
}

// collect extracts a numeric feature; lexical features only exist for
// domains with recovered labels.
func collect(ps []domainProfile, get func(*domainProfile) float64, needsLabel bool) []float64 {
	out := make([]float64, 0, len(ps))
	for i := range ps {
		if needsLabel && !ps[i].labeled {
			continue
		}
		out = append(out, get(&ps[i]))
	}
	return out
}

func countLabeled(ps []domainProfile) int {
	n := 0
	for i := range ps {
		if ps[i].labeled {
			n++
		}
	}
	return n
}

func frac(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// IncomeCDFs returns Figure 6's two curves.
func (t *Table1) IncomeCDFs() (rereg, control []stats.CDFPoint) {
	return stats.ECDF(t.ReregIncome), stats.ECDF(t.ControlIncome)
}
