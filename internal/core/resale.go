package core

import (
	"sort"

	"ensdropcatch/internal/dataset"
)

// ResaleReport is the §4.2 resale-market analysis over re-registered
// names' marketplace activity.
type ResaleReport struct {
	Reregistered int
	Listed       int
	Sold         int
	// ListedFraction of re-registered names ever listed (paper: 8%).
	ListedFraction float64
	// SoldFraction of listed names that sold (paper: 12,130 of 19,987).
	SoldFraction float64
	// SalePricesUSD of completed sales, ascending.
	SalePricesUSD []float64
}

// MedianSaleUSD returns the median completed-sale price.
func (r *ResaleReport) MedianSaleUSD() float64 {
	n := len(r.SalePricesUSD)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return r.SalePricesUSD[n/2]
	}
	return (r.SalePricesUSD[n/2-1] + r.SalePricesUSD[n/2]) / 2
}

// ResaleMarket joins re-registered names against marketplace events.
func (a *Analyzer) ResaleMarket() *ResaleReport {
	rep := &ResaleReport{Reregistered: len(a.Pop.Reregistered)}
	for _, h := range a.Pop.Reregistered {
		events := a.DS.Market[h.Domain.LabelHash]
		if len(events) == 0 {
			continue
		}
		listed, sold := false, false
		for _, e := range events {
			switch e.Kind {
			case dataset.MarketListing:
				listed = true
			case dataset.MarketSale:
				sold = true
				rep.SalePricesUSD = append(rep.SalePricesUSD, e.PriceUSD)
			}
		}
		if listed {
			rep.Listed++
		}
		if sold {
			rep.Sold++
		}
	}
	if rep.Reregistered > 0 {
		rep.ListedFraction = float64(rep.Listed) / float64(rep.Reregistered)
	}
	if rep.Listed > 0 {
		rep.SoldFraction = float64(rep.Sold) / float64(rep.Listed)
	}
	sort.Float64s(rep.SalePricesUSD)
	return rep
}
