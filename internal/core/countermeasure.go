package core

import (
	"time"

	"ensdropcatch/internal/world"
)

// The paper proposes (§6) that wallets warn before sending to recently
// expired or re-registered names, expecting it "would greatly reduce the
// security impact of expired ENS domains" — but cannot quantify the claim
// without resolution data. This file quantifies it: replay the vendor
// resolution log through the countermeasure and measure how much of the
// authoritatively-misdirected money would have triggered a warning.

// CountermeasureReport quantifies the §6 warning countermeasure.
type CountermeasureReport struct {
	// WarnWindow is the recent-registration caution window evaluated.
	WarnWindow time.Duration
	// Misdirected is the authoritative count of misdirected payments.
	Misdirected    int
	MisdirectedUSD float64
	// Warned counts misdirected payments where the wallet would have
	// shown a warning at send time (name re-registered within the
	// window).
	Warned    int
	WarnedUSD float64
	// StaleWarned counts stale resolutions (expired name, funds still
	// reaching the old owner) that would have warned — early warnings
	// before any loss occurs.
	StaleResolutions int
	StaleWarned      int
}

// Coverage is the fraction of misdirected USD the warning would have
// intercepted.
func (r *CountermeasureReport) Coverage() float64 {
	if r.MisdirectedUSD == 0 {
		return 0
	}
	return r.WarnedUSD / r.MisdirectedUSD
}

// EvaluateCountermeasure replays the resolution log through the guarded
// wallet's policy: warn when the resolved name is expired, or was
// (re-)registered within warnWindow of the payment.
func (a *Analyzer) EvaluateCountermeasure(log []world.ResolutionRecord, warnWindow time.Duration) *CountermeasureReport {
	rep := &CountermeasureReport{WarnWindow: warnWindow}
	authoritative := a.LossesFromResolutionLog(log)
	rep.StaleResolutions = authoritative.StaleResolutions

	window := int64(warnWindow / time.Second)
	for _, f := range authoritative.Misdirected {
		rep.Misdirected++
		rep.MisdirectedUSD += f.USD
		d, ok := a.DS.ByLabel(f.Name)
		if !ok {
			continue
		}
		h := a.Pop.Histories[d.LabelHash]
		ti := tenureAt(h, f.At)
		if ti < 0 {
			continue
		}
		t := &h.Tenures[ti]
		if f.At-t.RegisteredAt < window || f.At > t.Expiry {
			rep.Warned++
			rep.WarnedUSD += f.USD
		}
	}

	// Stale resolutions: the expired-name warning always fires (the name
	// is past expiry by definition), so every one is warned; count them
	// by re-walking the log cheaply.
	rep.StaleWarned = rep.StaleResolutions
	return rep
}
