package core

import (
	"testing"
)

// TestResolutionLogMatchesTruth validates the authoritative measurement:
// with vendor resolution data, the misdirected set must equal the
// generator's ground truth exactly (no heuristic, no false positives).
func TestResolutionLogMatchesTruth(t *testing.T) {
	res, an := setup(t)
	rep := an.LossesFromResolutionLog(res.ResolutionLog)

	if rep.TotalResolutions != len(res.ResolutionLog) {
		t.Errorf("total %d, want %d", rep.TotalResolutions, len(res.ResolutionLog))
	}
	if rep.TotalResolutions == 0 {
		t.Fatal("empty resolution log")
	}

	found := map[string]bool{}
	for _, f := range rep.Misdirected {
		if !res.Truth.MisdirectedTxHashes[f.TxHash] {
			t.Errorf("authoritative analysis flagged non-misdirected tx %s (%s)", f.TxHash, f.Name)
		}
		found[f.TxHash.Hex()] = true
	}
	missed := 0
	for h := range res.Truth.MisdirectedTxHashes {
		if !found[h.Hex()] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("authoritative analysis missed %d of %d truth misdirections",
			missed, len(res.Truth.MisdirectedTxHashes))
	}
	if rep.MisdirectedUSD <= 0 {
		t.Error("zero misdirected USD")
	}
	t.Logf("resolution log: %d resolutions, %d stale, %d misdirected (%.0f USD)",
		rep.TotalResolutions, rep.StaleResolutions, len(rep.Misdirected), rep.MisdirectedUSD)
}

// TestResolutionLogStaleClass checks that post-expiry pre-catch
// resolutions are counted as stale, matching Figure 7's hazard window.
func TestResolutionLogStaleClass(t *testing.T) {
	res, an := setup(t)
	rep := an.LossesFromResolutionLog(res.ResolutionLog)
	if rep.StaleResolutions == 0 {
		t.Error("no stale resolutions observed; the generator produces them")
	}
	// Stale resolutions deliver to the OLD owner, so they can never
	// exceed the total minus misdirections.
	if rep.StaleResolutions+len(rep.Misdirected) > rep.TotalResolutions {
		t.Error("stale + misdirected exceeds total")
	}
}

// TestHeuristicVsAuthoritative compares the paper's conservative
// heuristic against the authoritative measurement: the heuristic must
// undercount or roughly match (it is designed to minimize false
// positives), and the authoritative USD total should be in the same
// range.
func TestHeuristicVsAuthoritative(t *testing.T) {
	res, an := setup(t)
	heuristic := an.FinancialLosses()
	authoritative := an.LossesFromResolutionLog(res.ResolutionLog)

	t.Logf("heuristic: %d txs / %.0f USD; authoritative: %d txs / %.0f USD",
		heuristic.TxsAll, heuristic.USDAll,
		len(authoritative.Misdirected), authoritative.MisdirectedUSD)

	if len(authoritative.Misdirected) == 0 {
		t.Fatal("authoritative found nothing")
	}
	// Heuristic true positives cannot exceed the authoritative count
	// plus its (known) false-positive classes; sanity-bound the ratio.
	ratio := float64(heuristic.TxsAll) / float64(len(authoritative.Misdirected))
	if ratio > 3 {
		t.Errorf("heuristic flags %.1fx the authoritative count — too aggressive", ratio)
	}
}

func TestSubdomainsCollected(t *testing.T) {
	res, an := setup(t)
	st := an.CollectionStats()
	wantSubs := 0
	for _, d := range res.Truth.Domains {
		wantSubs += d.Subdomains
	}
	if st.Subdomains != wantSubs {
		t.Errorf("subdomains %d, truth %d", st.Subdomains, wantSubs)
	}
	if wantSubs == 0 {
		t.Error("world generated no subdomains")
	}
	// Paper ratio: 846,752 subs on 3.1M names ~= 0.27 per domain.
	perDomain := float64(st.Subdomains) / float64(st.Domains)
	if perDomain < 0.05 || perDomain > 0.6 {
		t.Errorf("subdomains per domain %.2f implausible (paper ~0.27)", perDomain)
	}
}
