// Package recovery implements plaintext-name recovery from raw chain data,
// the approach the paper's §3.1 contrasts with its subgraph crawl: ENS
// stores names only as keccak-256 label hashes, so a researcher working
// from eth_getLogs must brute-force candidate labels — dictionary words,
// word compounds, numerics, separator variants — and match their hashes
// against the observed label-hash set. Prior work (Xia et al.) reached
// 90.1% completeness this way; names outside any enumerable pattern
// (random strings) are unrecoverable, which is precisely why the paper
// switched to the subgraph.
package recovery

import (
	"strconv"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
)

// Options bounds the brute-force enumeration.
type Options struct {
	// Words is the candidate vocabulary; nil uses the embedded
	// dictionary plus brand and adult lists.
	Words []string
	// MaxNumericDigits bounds pure-numeric enumeration (10^n candidates
	// per length). 6 covers the collectible market.
	MaxNumericDigits int
	// DigitSuffixMax bounds word+digits enumeration (word + 1..n digit
	// suffixes).
	DigitSuffixMax int
	// Compounds enables two-word concatenations (|words|^2 candidates).
	Compounds bool
	// Separators enables hyphen/underscore two-word variants.
	Separators bool
	// ShortAlphaMax exhaustively enumerates all-letter labels up to this
	// length (26^n candidates per length; 4 is cheap and covers the
	// "3 Letters Club" market completely).
	ShortAlphaMax int
}

// DefaultOptions matches what a diligent brute-forcer would attempt.
func DefaultOptions() Options {
	return Options{
		MaxNumericDigits: 6,
		DigitSuffixMax:   4,
		Compounds:        true,
		Separators:       true,
		ShortAlphaMax:    4,
	}
}

// Result reports a recovery run.
type Result struct {
	// Targets is the number of distinct label hashes to recover.
	Targets int
	// Recovered maps label hash to the recovered plaintext label.
	Recovered map[ethtypes.Hash]string
	// CandidatesTried counts hash computations performed.
	CandidatesTried int
}

// Rate returns the recovered fraction.
func (r *Result) Rate() float64 {
	if r.Targets == 0 {
		return 0
	}
	return float64(len(r.Recovered)) / float64(r.Targets)
}

// BruteForce attempts to recover plaintext labels for the given label
// hashes. The enumeration streams candidates; memory stays proportional
// to the target set, not the candidate space.
func BruteForce(targets []ethtypes.Hash, opts Options) *Result {
	want := make(map[ethtypes.Hash]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	res := &Result{Targets: len(want), Recovered: make(map[ethtypes.Hash]string)}
	remaining := len(want)

	try := func(label string) bool {
		res.CandidatesTried++
		h := ens.LabelHash(label)
		if want[h] {
			if _, dup := res.Recovered[h]; !dup {
				res.Recovered[h] = label
				remaining--
			}
		}
		return remaining == 0
	}

	words := opts.Words
	if words == nil {
		words = append(append(append([]string{},
			lexical.DictionaryWords()...),
			lexical.BrandNames()...),
			lexical.AdultWords()...)
	}

	// Single words.
	for _, w := range words {
		if try(w) {
			return res
		}
	}
	// Pure numerics.
	for digits := 1; digits <= opts.MaxNumericDigits; digits++ {
		max := pow10(digits)
		for n := 0; n < max; n++ {
			s := strconv.Itoa(n)
			for len(s) < digits {
				s = "0" + s
			}
			if try(s) {
				return res
			}
		}
	}
	// Word + digit suffixes.
	if opts.DigitSuffixMax > 0 {
		for _, w := range words {
			for digits := 1; digits <= opts.DigitSuffixMax; digits++ {
				max := pow10(digits)
				for n := 0; n < max; n++ {
					s := strconv.Itoa(n)
					for len(s) < digits {
						s = "0" + s
					}
					if try(w + s) {
						return res
					}
				}
			}
		}
	}
	// Exhaustive short all-letter labels.
	if opts.ShortAlphaMax >= 3 {
		buf := make([]byte, opts.ShortAlphaMax)
		for length := 3; length <= opts.ShortAlphaMax; length++ {
			if enumerateAlpha(buf[:length], 0, try) {
				return res
			}
		}
	}
	// Two-word compounds and separator variants.
	if opts.Compounds || opts.Separators {
		for _, a := range words {
			for _, b := range words {
				if opts.Compounds && try(a+b) {
					return res
				}
				if opts.Separators {
					if try(a + "-" + b) {
						return res
					}
					if try(a + "_" + b) {
						return res
					}
				}
			}
		}
	}
	return res
}

// enumerateAlpha fills buf[pos:] with every a-z combination, calling try
// for each complete label; it stops early when try reports completion.
func enumerateAlpha(buf []byte, pos int, try func(string) bool) bool {
	if pos == len(buf) {
		return try(string(buf))
	}
	for c := byte('a'); c <= 'z'; c++ {
		buf[pos] = c
		if enumerateAlpha(buf, pos+1, try) {
			return true
		}
	}
	return false
}

func pow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}
