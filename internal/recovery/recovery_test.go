package recovery

import (
	"testing"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/lexical"
)

func hashesOf(labels ...string) []ethtypes.Hash {
	out := make([]ethtypes.Hash, 0, len(labels))
	for _, l := range labels {
		out = append(out, ens.LabelHash(l))
	}
	return out
}

// fast options for unit tests: tiny vocabulary, no big enumerations.
func testOptions() Options {
	return Options{
		Words:            []string{"gold", "rush", "silver", "moon"},
		MaxNumericDigits: 4,
		DigitSuffixMax:   2,
		Compounds:        true,
		Separators:       true,
		ShortAlphaMax:    3,
	}
}

func TestBruteForceRecoversEnumerablePatterns(t *testing.T) {
	targets := hashesOf(
		"gold",      // single word
		"goldrush",  // compound
		"gold-rush", // hyphenated
		"gold_rush", // underscored
		"silver7",   // word + digit
		"0042",      // numeric
		"abc",       // short alpha
	)
	res := BruteForce(targets, testOptions())
	if got := len(res.Recovered); got != len(targets) {
		t.Fatalf("recovered %d of %d: %v", got, len(targets), res.Recovered)
	}
	for _, h := range targets {
		if _, ok := res.Recovered[h]; !ok {
			t.Errorf("hash %s not recovered", h)
		}
	}
	if res.Rate() != 1 {
		t.Errorf("rate = %v", res.Rate())
	}
	if res.CandidatesTried == 0 {
		t.Error("no candidates counted")
	}
}

func TestBruteForceCannotRecoverRandomness(t *testing.T) {
	targets := hashesOf("gold", "xkqzjvwy", "qqjjxxzz17a")
	res := BruteForce(targets, testOptions())
	if len(res.Recovered) != 1 {
		t.Fatalf("recovered %d, want only the dictionary word", len(res.Recovered))
	}
	if res.Recovered[ens.LabelHash("gold")] != "gold" {
		t.Error("gold not recovered")
	}
	if res.Rate() < 0.3 || res.Rate() > 0.4 {
		t.Errorf("rate = %v, want 1/3", res.Rate())
	}
}

func TestBruteForceEarlyExit(t *testing.T) {
	// When everything is recovered early, the enumeration stops: trying
	// one single word must cost far less than the full candidate space.
	res := BruteForce(hashesOf("gold"), testOptions())
	if len(res.Recovered) != 1 {
		t.Fatal("not recovered")
	}
	if res.CandidatesTried > 4 {
		t.Errorf("tried %d candidates for the first word", res.CandidatesTried)
	}
}

func TestBruteForceEmptyTargets(t *testing.T) {
	res := BruteForce(nil, testOptions())
	if res.Targets != 0 || res.Rate() != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestBruteForceDuplicateTargets(t *testing.T) {
	h := ens.LabelHash("gold")
	res := BruteForce([]ethtypes.Hash{h, h, h}, testOptions())
	if res.Targets != 1 || len(res.Recovered) != 1 {
		t.Errorf("duplicates not collapsed: %+v", res)
	}
}

func TestDefaultVocabularyIncludesAllLists(t *testing.T) {
	// A brand and an adult keyword must be recoverable with nil Words.
	opts := Options{} // minimal: only single words
	targets := hashesOf(lexical.BrandNames()[0], lexical.AdultWords()[0])
	res := BruteForce(targets, opts)
	if len(res.Recovered) != 2 {
		t.Errorf("default vocabulary missed brand/adult words: %v", res.Recovered)
	}
}

func TestGeneratorRecoveryRateByCategory(t *testing.T) {
	// Names from enumerable generator categories must be recoverable;
	// random-letter names must not. One brute-force pass over the whole
	// sample; rates are evaluated per category afterwards.
	gen := lexical.NewGenerator(5, nil)
	catOf := map[ethtypes.Hash]lexical.Category{}
	var targets []ethtypes.Hash
	for i := 0; i < 400; i++ {
		label, cat := gen.Next()
		h := ens.LabelHash(label)
		catOf[h] = cat
		targets = append(targets, h)
	}
	// Dictionary-only vocabulary keeps the compound space (|V|^2 * 3)
	// test-sized; numerics bounded at 5 digits (the generator emits up
	// to 7 — the unrecoverable 6-7 digit tail is the realistic gap).
	opts := Options{
		Words:            lexical.DictionaryWords(),
		MaxNumericDigits: 5,
		Compounds:        true,
		Separators:       true,
	}
	res := BruteForce(targets, opts)

	hit := map[lexical.Category]int{}
	total := map[lexical.Category]int{}
	for h, cat := range catOf {
		total[cat]++
		if _, ok := res.Recovered[h]; ok {
			hit[cat]++
		}
	}
	rate := func(c lexical.Category) float64 {
		if total[c] == 0 {
			return 1
		}
		return float64(hit[c]) / float64(total[c])
	}
	for _, cat := range []lexical.Category{lexical.CatDictionary, lexical.CatCompound, lexical.CatHyphenated, lexical.CatUnderscored} {
		if r := rate(cat); r < 0.9 {
			t.Errorf("category %v: recovery rate %.2f (%d/%d), want >= 0.9", cat, r, hit[cat], total[cat])
		}
	}
	// Numerics: 3-5 digit names recoverable, 6-7 digit ones not => ~3/5.
	if r := rate(lexical.CatNumeric); r < 0.35 || r > 0.85 {
		t.Errorf("numeric recovery rate %.2f, want ~0.6 (5-digit bound)", r)
	}
	if r := rate(lexical.CatRandom); r > 0.05 {
		t.Errorf("random names recovered at %.2f; they should be unrecoverable", r)
	}
}
