package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "file.txt")
	if err := OS.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "sub", "moved.txt")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(filepath.Dir(moved)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(moved)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

func TestHitIsFreeOnOS(t *testing.T) {
	if err := Hit(OS, "anything"); err != nil {
		t.Fatalf("Hit on OS: %v", err)
	}
}

func TestOrOS(t *testing.T) {
	if OrOS(nil) != OS {
		t.Fatal("OrOS(nil) != OS")
	}
	f := NewFaulty(nil, FaultConfig{})
	if OrOS(f) != FS(f) {
		t.Fatal("OrOS(f) != f")
	}
}

// Injected write failures must be typed (ErrDiskFull, wrapping the real
// ENOSPC errno) and deterministic under a seed.
func TestFaultyWriteErrTypedAndSeeded(t *testing.T) {
	run := func() []bool {
		fsys := NewFaulty(nil, FaultConfig{Seed: 42, WriteErrRate: 0.5})
		f, err := fsys.Create(filepath.Join(t.TempDir(), "f"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		outcomes := make([]bool, 0, 32)
		for i := 0; i < 32; i++ {
			_, err := f.Write([]byte("x"))
			if err != nil {
				if !errors.Is(err, ErrDiskFull) || !errors.Is(err, syscall.ENOSPC) {
					t.Fatalf("write error not typed: %v", err)
				}
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	saw := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed fault schedules diverged at op %d", i)
		}
		if !a[i] {
			saw = true
		}
	}
	if !saw {
		t.Fatal("rate 0.5 over 32 writes injected nothing")
	}
}

// A short write persists a torn prefix — exactly the on-disk state
// crash recovery must handle — and still reports ErrDiskFull.
func TestFaultyShortWriteTearsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn")
	fsys := NewFaulty(nil, FaultConfig{Seed: 1, ShortWriteRate: 1})
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("short write error: %v", err)
	}
	if n != 5 {
		t.Fatalf("short write persisted %d bytes, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "01234" {
		t.Fatalf("on-disk bytes %q, %v", b, err)
	}
	if got := fsys.Injected()["shortwrite"]; got != 1 {
		t.Fatalf("injected tally: %v", fsys.Injected())
	}
}

func TestFaultySyncAndRenameFaults(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(nil, FaultConfig{Seed: 3, SyncErrRate: 1, RenameErrRate: 1})
	f, err := fsys.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync error: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrRenameFailed) {
		t.Fatalf("rename error: %v", err)
	}
	// The rename must not have happened.
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("source vanished despite failed rename: %v", err)
	}
	if err := fsys.SyncDir(dir); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("syncdir error: %v", err)
	}
}

// A named crash point kills the filesystem: the Hit fails with
// ErrCrashed and so does everything after it, like a process that died
// at that seam.
func TestFaultyCrashPoint(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(nil, FaultConfig{Seed: 1, CrashAfter: map[string]int{"save.pre-rename": 2}})

	if err := Hit(fsys, "save.pre-rename"); err != nil {
		t.Fatalf("first hit should survive: %v", err)
	}
	if err := Hit(fsys, "other.point"); err != nil {
		t.Fatalf("unrelated point should never trip: %v", err)
	}
	if err := Hit(fsys, "save.pre-rename"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second hit: %v, want ErrCrashed", err)
	}
	if at := fsys.CrashedAt(); at != "save.pre-rename" {
		t.Fatalf("CrashedAt = %q", at)
	}
	// Everything after the crash fails the same way.
	if _, err := fsys.Create(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := fsys.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir: %v", err)
	}
	if err := Hit(fsys, "other.point"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash hit: %v", err)
	}
}

// An open file keeps failing too once the filesystem is dead.
func TestFaultyCrashKillsOpenFiles(t *testing.T) {
	fsys := NewFaulty(nil, FaultConfig{CrashAfter: map[string]int{"p": 1}})
	f, err := fsys.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := Hit(fsys, "p"); !errors.Is(err, ErrCrashed) {
		t.Fatal("crash point did not trip")
	}
	if _, err := f.Write([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write through open file: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync through open file: %v", err)
	}
}
