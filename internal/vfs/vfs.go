// Package vfs is the injectable filesystem seam under the pipeline's
// durability-critical writers: the crash-atomic dataset save, the
// transaction spool, and the crawl checkpoint. Production code writes
// through an FS value (OS in real runs); chaos tests substitute a
// seeded Faulty wrapper that injects short writes, ENOSPC, fsync
// errors, rename failures, and named crash points, so the
// crash-consistency contracts those writers claim can be exercised
// deterministically instead of trusted.
//
// The seam covers the write side only. Reads, recovery scans, and
// heal operations (spool truncation) go straight to the OS: the Faulty
// wrapper operates on real files in a real directory, so a test that
// "crashes" a writer can reopen the same directory with OS and assert
// that resume repairs what the fault tore.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the persistence writers need. WriteAt
// serves the binary encoder's length back-patching; Read and Seek serve
// the checkpoint's load-then-append open mode.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Sync() error
	Stat() (fs.FileInfo, error)
	Name() string
}

// FS is the filesystem seam. All paths are OS paths — implementations
// wrap the real filesystem rather than simulate one.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile semantics).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making just-committed creates and
	// renames in it survive power loss.
	SyncDir(dir string) error
}

// OS is the passthrough FS used outside chaos tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// hitter is implemented by fault-injecting filesystems that honor
// named crash points.
type hitter interface {
	hit(point string) error
}

// Hit marks a named crash point in a writer's control flow. On the
// plain OS filesystem it is free and always nil; on a Faulty FS
// configured to crash at point, it trips the simulated crash and
// returns ErrCrashed (as does every later operation on that FS).
// Writers place Hit calls at the seams their crash-consistency story
// depends on — e.g. after the temp write but before the commit rename.
func Hit(fsys FS, point string) error {
	if h, ok := fsys.(hitter); ok {
		return h.hit(point)
	}
	return nil
}

// OrOS returns fsys, or OS when fsys is nil — the idiom for optional
// FS fields in config structs.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
