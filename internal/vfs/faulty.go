package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
)

// Typed injected-fault errors. Each wraps a sentinel so tests and
// callers can classify failures with errors.Is regardless of how many
// "%w" layers the persistence code adds on the way up.
var (
	// ErrDiskFull is the injected out-of-space failure. It wraps
	// syscall.ENOSPC so code that special-cases the real errno sees the
	// injected fault the same way.
	ErrDiskFull = fmt.Errorf("vfs: injected disk full: %w", syscall.ENOSPC)
	// ErrSyncFailed is the injected fsync failure.
	ErrSyncFailed = errors.New("vfs: injected fsync failure")
	// ErrRenameFailed is the injected rename failure.
	ErrRenameFailed = errors.New("vfs: injected rename failure")
	// ErrCrashed marks operations attempted after a named crash point
	// tripped: the simulated process is dead, nothing more reaches disk.
	ErrCrashed = errors.New("vfs: simulated crash")
)

// FaultConfig tunes a Faulty filesystem. All rates are per-operation
// probabilities in [0, 1], drawn from the seeded generator in operation
// order, so a serial write sequence faults reproducibly.
type FaultConfig struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// ShortWriteRate injects torn writes: the operation persists only
	// half its bytes, then fails with ErrDiskFull.
	ShortWriteRate float64
	// WriteErrRate fails writes outright with ErrDiskFull (no bytes
	// persisted).
	WriteErrRate float64
	// SyncErrRate fails File.Sync and SyncDir with ErrSyncFailed.
	SyncErrRate float64
	// RenameErrRate fails Rename with ErrRenameFailed.
	RenameErrRate float64
	// CrashAfter maps named crash points (see Hit) to the 1-based hit
	// count at which the filesystem "crashes": the Hit returns
	// ErrCrashed and every subsequent operation fails the same way,
	// simulating process death at exactly that seam.
	CrashAfter map[string]int
}

// Faulty wraps an FS with seeded fault injection. It operates on real
// files: everything that succeeds is genuinely on disk, so a test can
// crash the writer, reopen the directory with OS, and assert recovery.
type Faulty struct {
	inner FS
	cfg   FaultConfig

	mu       sync.Mutex
	rng      *rand.Rand
	hits     map[string]int
	dead     bool
	deadAt   string
	injected map[string]int64
}

// NewFaulty wraps inner (nil uses OS) with cfg's fault schedule.
func NewFaulty(inner FS, cfg FaultConfig) *Faulty {
	return &Faulty{
		inner:    OrOS(inner),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		hits:     make(map[string]int),
		injected: make(map[string]int64),
	}
}

// Injected returns a copy of the per-kind injected fault counts, so
// tests can assert a schedule actually fired.
func (f *Faulty) Injected() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// CrashedAt returns the name of the crash point that killed the
// filesystem, or "" while it is still alive.
func (f *Faulty) CrashedAt() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.deadAt
}

// draw rolls one uniform against rate under the lock; kind tallies the
// fault when it fires.
func (f *Faulty) draw(rate float64, kind string) bool {
	if rate <= 0 {
		return false
	}
	if f.rng.Float64() >= rate {
		return false
	}
	f.injected[kind]++
	return true
}

// alive returns ErrCrashed when a crash point has already tripped.
func (f *Faulty) alive() error {
	if f.dead {
		return fmt.Errorf("%w (at %s)", ErrCrashed, f.deadAt)
	}
	return nil
}

// hit implements the named crash-point protocol (see Hit).
func (f *Faulty) hit(point string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return err
	}
	n, ok := f.cfg.CrashAfter[point]
	if !ok {
		return nil
	}
	f.hits[point]++
	if f.hits[point] < n {
		return nil
	}
	f.dead = true
	f.deadAt = point
	f.injected["crash"]++
	return fmt.Errorf("%w (at %s)", ErrCrashed, point)
}

// Create implements FS.
func (f *Faulty) Create(name string) (File, error) {
	f.mu.Lock()
	err := f.alive()
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: f}, nil
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	err := f.alive()
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: f}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	err := f.alive()
	if err == nil && f.draw(f.cfg.RenameErrRate, "rename") {
		err = fmt.Errorf("%w: %s", ErrRenameFailed, newpath)
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS. Removes are cleanup, not durability: they are
// never faulted, only refused after a crash.
func (f *Faulty) Remove(name string) error {
	f.mu.Lock()
	err := f.alive()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	err := f.alive()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.alive()
	if err == nil && f.draw(f.cfg.SyncErrRate, "syncdir") {
		err = fmt.Errorf("%w: dir %s", ErrSyncFailed, dir)
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile injects write-path faults into one open file.
type faultyFile struct {
	File
	fs *Faulty
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	err := ff.fs.alive()
	short := false
	if err == nil {
		switch {
		case ff.fs.draw(ff.fs.cfg.ShortWriteRate, "shortwrite"):
			short = true
		case ff.fs.draw(ff.fs.cfg.WriteErrRate, "writeerr"):
			err = fmt.Errorf("%w: %s", ErrDiskFull, ff.Name())
		}
	}
	ff.fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if short {
		// Persist a torn prefix — the on-disk footprint of running out
		// of space (or dying) mid-write — then report the failure.
		n, werr := ff.File.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("%w: short write to %s", ErrDiskFull, ff.Name())
	}
	return ff.File.Write(p)
}

func (ff *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	err := ff.fs.alive()
	if err == nil && ff.fs.draw(ff.fs.cfg.WriteErrRate, "writeerr") {
		err = fmt.Errorf("%w: %s", ErrDiskFull, ff.Name())
	}
	ff.fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return ff.File.WriteAt(p, off)
}

func (ff *faultyFile) Sync() error {
	ff.fs.mu.Lock()
	err := ff.fs.alive()
	if err == nil && ff.fs.draw(ff.fs.cfg.SyncErrRate, "sync") {
		err = fmt.Errorf("%w: %s", ErrSyncFailed, ff.Name())
	}
	ff.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return ff.File.Sync()
}
