// Package leakcheck provides a goroutine-leak assertion for tests: a
// snapshot-and-diff of runtime.NumGoroutine with a retry grace period,
// so goroutines that are merely slow to exit (http keep-alive closers,
// timer callbacks, draining workers) don't produce false positives
// while genuinely orphaned goroutines fail the test with full stacks.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace is how long the cleanup keeps re-sampling before declaring a
// leak. Soak tests spin up dozens of servers and hundreds of client
// goroutines; their teardown is asynchronous but bounded.
const grace = 5 * time.Second

// Check snapshots the current goroutine count and registers a cleanup
// that fails the test if more goroutines are still running once the
// grace period expires. Call it BEFORE starting servers or workers —
// t.Cleanup runs in LIFO order, so the leak check must be registered
// first to run after the resources it audits have been torn down.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		after := runtime.NumGoroutine()
		for after > before && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			after = runtime.NumGoroutine()
		}
		if after <= before {
			return
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines before the test, %d after %v grace\n%s",
			before, after, grace, buf[:n])
	})
}
