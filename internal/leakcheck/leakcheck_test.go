package leakcheck

import (
	"testing"
	"time"
)

func TestCheckPassesWhenGoroutinesExit(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { <-done }()
	close(done)
}

func TestCheckGraceAbsorbsSlowExits(t *testing.T) {
	Check(t)
	// Still running when the test body returns; the retry grace must
	// wait it out instead of reporting a leak.
	go func() { time.Sleep(300 * time.Millisecond) }()
}
