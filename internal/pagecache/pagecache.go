// Package pagecache is a bounded in-memory response cache for the
// ensworld data routes. The generated world is immutable once the
// server is up, so any 200 a handler produces for a given (method,
// URI, body) is valid for the life of the process — the cache turns
// repeated crawler queries (the same subgraph page, the same txlist
// window) into a map lookup plus one write.
//
// Entries carry a strong ETag (FNV-64a of the body); requests with a
// matching If-None-Match get 304 Not Modified with no body at all.
// Handlers opt out per-response with Cache-Control: no-store — the
// etherscan simulation uses this for its rate-limit answers, which
// ride on HTTP 200 and must never be replayed to clients whose budget
// has refilled.
//
// Placement matters: the cache wraps the innermost handler, inside the
// admission gate and quota middleware (so shed accounting still sees
// every request, hit or miss) and inside the chaos injector (so fault
// drills keep firing on cache hits, and injected faults are never
// stored).
package pagecache

import (
	"bytes"
	"container/list"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ensdropcatch/internal/obs"
)

// Defaults and caps.
const (
	// DefaultMaxEntries bounds the cache when Config.MaxEntries is 0.
	DefaultMaxEntries = 4096
	// DefaultMaxBody is the largest response body cached when
	// Config.MaxBody is 0. Larger responses stream through uncached.
	DefaultMaxBody = 1 << 20
	// maxKeyBody is the largest request body embedded verbatim in the
	// cache key; longer bodies key on their FNV-64a hash instead.
	maxKeyBody = 1 << 10
	// maxReqBody bounds how much request body the cache will buffer to
	// key on; beyond it the request bypasses the cache entirely.
	maxReqBody = 1 << 20
)

// Config sizes a Cache.
type Config struct {
	// MaxEntries bounds the entry count; the least recently used entry
	// is evicted past it. <= 0 uses DefaultMaxEntries.
	MaxEntries int
	// MaxBody is the largest response body stored. <= 0 uses
	// DefaultMaxBody.
	MaxBody int
}

// Cache is a concurrency-safe LRU of rendered responses.
type Cache struct {
	maxEntries int
	maxBody    int

	mu  sync.Mutex
	lru *list.List               // front = most recently used; element values are *entry; guarded by mu
	m   map[string]*list.Element // guarded by mu
}

type entry struct {
	key         string
	etag        string
	contentType string
	body        []byte
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	return &Cache{
		maxEntries: cfg.MaxEntries,
		maxBody:    cfg.MaxBody,
		lru:        list.New(),
		m:          make(map[string]*list.Element),
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.m)
	m().entries.Set(0)
}

func (c *Cache) get(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry)
}

func (c *Cache) put(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.m[e.key] = c.lru.PushFront(e)
	for len(c.m) > c.maxEntries {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*entry).key)
		m().evictions.Inc()
	}
	m().entries.Set(float64(len(c.m)))
}

// key builds the cache key. Small request bodies are embedded verbatim
// (no hash-collision exposure on the common subgraph/RPC queries);
// larger ones key on their FNV-64a digest.
func key(method, uri string, body []byte) string {
	if len(body) <= maxKeyBody {
		return method + "\x00" + uri + "\x00" + string(body)
	}
	h := fnv.New64a()
	h.Write(body)
	return method + "\x00" + uri + "\x00#" + strconv.FormatUint(h.Sum64(), 16)
}

func etagFor(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// etagMatch reports whether an If-None-Match header value matches etag.
// Weak validators and multi-valued lists are handled the simple way:
// split on commas, compare each member (ignoring a W/ prefix), honor *.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// Wrap returns next with response caching under the given route label.
// Only GET and POST requests participate; everything else passes
// through untouched. Only complete 200 responses without
// Cache-Control: no-store and within the body bound are stored.
func (c *Cache) Wrap(route string, next http.Handler) http.Handler {
	hits := m().hits.With(route)
	misses := m().misses.With(route)
	bypass := m().bypass.With(route)
	notModified := m().notModified.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			bypass.Inc()
			next.ServeHTTP(w, r)
			return
		}
		var reqBody []byte
		if r.Body != nil && r.Method == http.MethodPost {
			var err error
			reqBody, err = io.ReadAll(io.LimitReader(r.Body, maxReqBody+1))
			if err != nil || len(reqBody) > maxReqBody {
				// Unreadable or oversized body: hand the handler whatever
				// remains stitched behind what was read, skip the cache.
				bypass.Inc()
				r.Body = readCloser{io.MultiReader(bytes.NewReader(reqBody), r.Body), r.Body}
				next.ServeHTTP(w, r)
				return
			}
			r.Body = readCloser{bytes.NewReader(reqBody), r.Body}
		}
		k := key(r.Method, r.URL.RequestURI(), reqBody)
		if e := c.get(k); e != nil {
			hits.Inc()
			serve(w, r, e, "HIT", notModified)
			return
		}
		misses.Inc()
		rec := &recorder{w: w, status: http.StatusOK, maxBody: c.maxBody}
		next.ServeHTTP(rec, r)
		if rec.overflowed || rec.status != http.StatusOK ||
			strings.Contains(strings.ToLower(rec.w.Header().Get("Cache-Control")), "no-store") {
			// Streamed past the bound, non-200, or opted out: the response
			// has either already gone out (overflow) or goes out now, verbatim.
			rec.finish()
			return
		}
		e := &entry{
			key:         k,
			etag:        etagFor(rec.buf.Bytes()),
			contentType: rec.w.Header().Get("Content-Type"),
			body:        append([]byte(nil), rec.buf.Bytes()...),
		}
		c.put(e)
		serve(w, r, e, "MISS", notModified)
	})
}

// serve writes a cached entry, answering 304 to a matching
// If-None-Match.
func serve(w http.ResponseWriter, r *http.Request, e *entry, state string, notModified *obs.Counter) {
	h := w.Header()
	h.Set("ETag", e.etag)
	h.Set("X-Cache", state)
	if etagMatch(r.Header.Get("If-None-Match"), e.etag) {
		notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if e.contentType != "" {
		h.Set("Content-Type", e.contentType)
	}
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	// A failed response write means the client is gone; nothing to repair.
	_, _ = w.Write(e.body)
}

// readCloser reassembles a partially consumed request body with its
// original closer.
type readCloser struct {
	io.Reader
	io.Closer
}

// recorder buffers a response so the cache can inspect and store it
// before anything reaches the wire. If the body outgrows maxBody the
// recorder flushes what it has and degrades to pass-through streaming —
// the response stays correct, it just isn't cached.
type recorder struct {
	w          http.ResponseWriter
	status     int
	wroteHdr   bool
	buf        bytes.Buffer
	maxBody    int
	overflowed bool
}

func (r *recorder) Header() http.Header { return r.w.Header() }

func (r *recorder) WriteHeader(code int) {
	if r.wroteHdr {
		return
	}
	r.wroteHdr = true
	r.status = code
}

func (r *recorder) Write(p []byte) (int, error) {
	if !r.wroteHdr {
		r.WriteHeader(http.StatusOK)
	}
	if r.overflowed {
		return r.w.Write(p)
	}
	if r.buf.Len()+len(p) > r.maxBody {
		r.overflow()
		return r.w.Write(p)
	}
	return r.buf.Write(p)
}

// overflow transitions to pass-through: emit the status line and
// everything buffered so far, then stream.
func (r *recorder) overflow() {
	r.overflowed = true
	r.w.WriteHeader(r.status)
	if r.buf.Len() > 0 {
		// A failed response write means the client is gone; nothing to repair.
		_, _ = r.w.Write(r.buf.Bytes())
		r.buf.Reset()
	}
}

// finish replays a buffered, uncacheable response to the real writer.
func (r *recorder) finish() {
	if r.overflowed {
		return
	}
	r.w.WriteHeader(r.status)
	if r.buf.Len() > 0 {
		// A failed response write means the client is gone; nothing to repair.
		_, _ = r.w.Write(r.buf.Bytes())
	}
}

// Flush on a still-buffering recorder forces pass-through first; a
// handler that flushes is streaming and must not be held back.
func (r *recorder) Flush() {
	if !r.wroteHdr {
		r.WriteHeader(http.StatusOK)
	}
	if !r.overflowed {
		r.overflow()
	}
	if f, ok := r.w.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (r *recorder) Unwrap() http.ResponseWriter { return r.w }
