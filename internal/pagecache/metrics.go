package pagecache

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the package's instrumentation handles.
type metricSet struct {
	hits        *obs.CounterVec
	misses      *obs.CounterVec
	bypass      *obs.CounterVec
	notModified *obs.CounterVec
	evictions   *obs.Counter
	entries     *obs.Gauge
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		hits: reg.CounterVec("pagecache_hits_total",
			"Responses served from the page cache, by route.", "route"),
		misses: reg.CounterVec("pagecache_misses_total",
			"Requests that fell through to the handler, by route.", "route"),
		bypass: reg.CounterVec("pagecache_bypass_total",
			"Requests the cache refused to key (method, oversized body), by route.", "route"),
		notModified: reg.CounterVec("pagecache_not_modified_total",
			"304 answers to matching If-None-Match validators, by route.", "route"),
		evictions: reg.Counter("pagecache_evictions_total",
			"Entries dropped by the LRU bound."),
		entries: reg.Gauge("pagecache_entries",
			"Entries currently cached."),
	})
}

func m() *metricSet { return metrics.Load() }
