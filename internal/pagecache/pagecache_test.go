package pagecache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// countingHandler answers 200 with a body derived from the request and
// counts invocations.
func countingHandler(calls *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var body []byte
		if r.Body != nil {
			b := make([]byte, 4096)
			n, _ := r.Body.Read(b)
			body = b[:n]
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"uri":%q,"body":%q}`, r.URL.RequestURI(), body)
	})
}

func TestHitServesIdenticalBytes(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", countingHandler(&calls))

	first := httptest.NewRecorder()
	h.ServeHTTP(first, httptest.NewRequest(http.MethodGet, "/t?page=1", nil))
	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest(http.MethodGet, "/t?page=1", nil))

	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("hit body %q != miss body %q", second.Body.String(), first.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("X-Cache = %q, want HIT", got)
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", got)
	}
	if first.Header().Get("ETag") == "" || first.Header().Get("ETag") != second.Header().Get("ETag") {
		t.Errorf("etags differ or missing: %q vs %q", first.Header().Get("ETag"), second.Header().Get("ETag"))
	}
	if cl := second.Header().Get("Content-Length"); cl != strconv.Itoa(second.Body.Len()) {
		t.Errorf("Content-Length %q, body %d bytes", cl, second.Body.Len())
	}
}

func TestPostBodyKeysCache(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", countingHandler(&calls))

	do := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/t", strings.NewReader(body)))
		return rec
	}
	a1 := do(`{"query":"a"}`)
	b1 := do(`{"query":"b"}`)
	a2 := do(`{"query":"a"}`)
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (distinct bodies)", calls.Load())
	}
	if a1.Body.String() != a2.Body.String() {
		t.Errorf("same body produced different pages")
	}
	if a1.Body.String() == b1.Body.String() {
		t.Errorf("different bodies produced the same page")
	}
	// Large bodies fall back to hash keys and still hit.
	large := strings.Repeat("x", maxKeyBody+10)
	do(large)
	do(large)
	if calls.Load() != 3 {
		t.Errorf("handler ran %d times, want 3 (large body cached once)", calls.Load())
	}
}

func TestIfNoneMatch304(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", countingHandler(&calls))

	first := httptest.NewRecorder()
	h.ServeHTTP(first, httptest.NewRequest(http.MethodGet, "/t", nil))
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on first response")
	}

	for _, header := range []string{etag, "W/" + etag, `"zzz", ` + etag, "*"} {
		req := httptest.NewRequest(http.MethodGet, "/t", nil)
		req.Header.Set("If-None-Match", header)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", header, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 carried %d body bytes", header, rec.Body.Len())
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/t", nil)
	req.Header.Set("If-None-Match", `"not-it"`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("stale validator: got %d with %d bytes, want 200 with body", rec.Code, rec.Body.Len())
	}
}

func TestNoStoreNeverCached(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintf(w, "answer %d", calls.Load())
	}))
	r1 := httptest.NewRecorder()
	h.ServeHTTP(r1, httptest.NewRequest(http.MethodGet, "/t", nil))
	r2 := httptest.NewRecorder()
	h.ServeHTTP(r2, httptest.NewRequest(http.MethodGet, "/t", nil))
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (no-store)", calls.Load())
	}
	if r1.Body.String() == r2.Body.String() {
		t.Error("no-store response was replayed")
	}
	if r2.Header().Get("ETag") != "" {
		t.Error("no-store response carried an ETag")
	}
}

func TestNon200NotCached(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/t", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", rec.Code)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("handler ran %d times, want 2 (500s uncached)", calls.Load())
	}
}

func TestOversizedResponseStreamsThrough(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{MaxBody: 64})
	big := strings.Repeat("y", 200)
	h := c.Wrap("/t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// Two writes so the overflow path sees buffered + streamed parts.
		w.Write([]byte(big[:100]))
		w.Write([]byte(big[100:]))
	}))
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/t", nil))
		if rec.Body.String() != big {
			t.Fatalf("body corrupted on pass %d: %d bytes, want %d", i, rec.Body.Len(), len(big))
		}
	}
	if calls.Load() != 2 {
		t.Errorf("handler ran %d times, want 2 (oversized uncached)", calls.Load())
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries, want 0", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{MaxEntries: 2})
	h := c.Wrap("/t", countingHandler(&calls))
	get := func(path string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	get("/a")
	get("/b")
	get("/a") // refresh /a
	get("/c") // evicts /b
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	before := calls.Load()
	get("/a")
	if calls.Load() != before {
		t.Error("/a was evicted; LRU should have kept it")
	}
	get("/b")
	if calls.Load() != before+1 {
		t.Error("/b should have been evicted and re-fetched")
	}
}

func TestOtherMethodsBypass(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", countingHandler(&calls))
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/t", nil))
	}
	if calls.Load() != 2 {
		t.Errorf("handler ran %d times, want 2 (DELETE bypasses)", calls.Load())
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries, want 0", c.Len())
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{MaxEntries: 8})
	h := c.Wrap("/t", countingHandler(&calls))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/t?p=%d", i%16)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				want := fmt.Sprintf(`{"uri":%q,"body":""}`, path)
				if rec.Body.String() != want {
					t.Errorf("got %q, want %q", rec.Body.String(), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("cache holds %d entries, bound is 8", c.Len())
	}
}

func TestPurge(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{})
	h := c.Wrap("/t", countingHandler(&calls))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/t", nil))
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after purge", c.Len())
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/t", nil))
	if calls.Load() != 2 {
		t.Errorf("handler ran %d times, want 2 after purge", calls.Load())
	}
}
