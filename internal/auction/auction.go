// Package auction models competition for an expiring name under the two
// allocation mechanisms §2.1 contrasts: ENS's 21-day Dutch-auction premium
// ("temporarily favoring the users who are willing to invest the most
// resources") and DNS-style drop-catching ("the users who are the fastest
// to act upon a domain's expiration"). Given competing catchers with
// private valuations and reaction speeds, it determines who wins each
// name, when, and at what price — the machinery behind the premium
// ablation experiments.
package auction

import (
	"sort"
	"time"

	"ensdropcatch/internal/ens"
)

// Bidder is one party competing for an expiring name.
type Bidder struct {
	// ID identifies the bidder in outcomes.
	ID string
	// ValuationUSD is the most the bidder would ever pay (premium
	// included) to own the name.
	ValuationUSD float64
	// ReactionDelay is how long after a name becomes purchasable the
	// bidder's infrastructure needs to land a registration — the only
	// thing that matters in a DNS-style drop race.
	ReactionDelay time.Duration
}

// Outcome describes who won a name and on what terms.
type Outcome struct {
	Winner *Bidder
	// At is the unix time of the winning registration.
	At int64
	// PriceUSD is the premium paid (base rent excluded).
	PriceUSD float64
}

// DutchAuction resolves competition under the ENS mechanism for a name
// whose previous registration ended at expiry. Each bidder registers the
// moment the decaying premium first drops to their valuation; the winner
// is whoever that happens for first — i.e. the highest valuation, not the
// fastest infrastructure. Bidders whose valuation never meets the curve
// before it hits zero contest the zero-premium instant with a drop race.
func DutchAuction(expiry int64, bidders []Bidder) Outcome {
	if len(bidders) == 0 {
		return Outcome{}
	}
	release := ens.ReleaseTime(expiry)
	end := ens.PremiumEndTime(expiry)

	var best Outcome
	for i := range bidders {
		b := &bidders[i]
		if b.ValuationUSD <= 0 {
			continue
		}
		at := timePremiumReaches(expiry, b.ValuationUSD)
		if at < release {
			at = release
		}
		// Even a premium bidder cannot act faster than their reaction.
		if earliest := release + int64(b.ReactionDelay/time.Second); at < earliest {
			at = earliest
		}
		if at > end {
			at = end // wait for zero premium
		}
		price := ens.PremiumUSDAt(expiry, at)
		if price > b.ValuationUSD {
			continue // reaction floor put them above their budget
		}
		if best.Winner == nil || at < best.At ||
			(at == best.At && b.ValuationUSD > best.Winner.ValuationUSD) {
			best = Outcome{Winner: b, At: at, PriceUSD: price}
		}
	}
	if best.Winner == nil {
		return Outcome{}
	}
	// Zero-premium ties fall back to the drop race.
	if best.PriceUSD == 0 {
		return dropRaceAt(end, bidders)
	}
	return best
}

// DropRace resolves competition DNS-style: the grace period ends and the
// fastest reaction wins at zero price, regardless of valuations.
func DropRace(expiry int64, bidders []Bidder) Outcome {
	return dropRaceAt(ens.ReleaseTime(expiry), bidders)
}

func dropRaceAt(start int64, bidders []Bidder) Outcome {
	var winner *Bidder
	for i := range bidders {
		b := &bidders[i]
		if b.ValuationUSD <= 0 {
			continue
		}
		switch {
		case winner == nil,
			b.ReactionDelay < winner.ReactionDelay,
			b.ReactionDelay == winner.ReactionDelay && b.ValuationUSD > winner.ValuationUSD:
			winner = b
		}
	}
	if winner == nil {
		return Outcome{}
	}
	return Outcome{
		Winner: winner,
		At:     start + int64(winner.ReactionDelay/time.Second),
	}
}

// timePremiumReaches inverts the halving curve: the earliest unix time at
// which the premium for a name expired at expiry is <= target USD.
func timePremiumReaches(expiry int64, target float64) int64 {
	release := ens.ReleaseTime(expiry)
	end := ens.PremiumEndTime(expiry)
	if target <= 0 {
		return end
	}
	if ens.PremiumUSDAt(expiry, release) <= target {
		return release
	}
	// Binary search over the monotone decay.
	lo, hi := release, end
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ens.PremiumUSDAt(expiry, mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Efficiency compares the two mechanisms across a population of contested
// names: the fraction each mechanism allocates to the highest-valuation
// bidder, and the revenue the auction raises.
type Efficiency struct {
	Names                 int
	AuctionToHighestValue int
	RaceToHighestValue    int
	AuctionRevenueUSD     float64
}

// CompareMechanisms runs both mechanisms over names (expiry per name, a
// bidder set per name).
func CompareMechanisms(expiries []int64, fields [][]Bidder) Efficiency {
	eff := Efficiency{}
	for i, expiry := range expiries {
		if i >= len(fields) || len(fields[i]) == 0 {
			continue
		}
		bidders := fields[i]
		top := topValuation(bidders)
		eff.Names++

		if out := DutchAuction(expiry, bidders); out.Winner != nil {
			eff.AuctionRevenueUSD += out.PriceUSD
			if out.Winner.ValuationUSD == top {
				eff.AuctionToHighestValue++
			}
		}
		if out := DropRace(expiry, bidders); out.Winner != nil && out.Winner.ValuationUSD == top {
			eff.RaceToHighestValue++
		}
	}
	return eff
}

func topValuation(bidders []Bidder) float64 {
	vals := make([]float64, 0, len(bidders))
	for _, b := range bidders {
		vals = append(vals, b.ValuationUSD)
	}
	sort.Float64s(vals)
	return vals[len(vals)-1]
}
