package auction

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ensdropcatch/internal/ens"
)

const expiry = int64(1650000000)

func TestDutchAuctionHighestValuationWins(t *testing.T) {
	bidders := []Bidder{
		{ID: "sniper", ValuationUSD: 50, ReactionDelay: time.Millisecond}, // fastest, cheap
		{ID: "whale", ValuationUSD: 20000, ReactionDelay: time.Hour},      // richest, slow
		{ID: "mid", ValuationUSD: 500, ReactionDelay: time.Minute},
	}
	out := DutchAuction(expiry, bidders)
	if out.Winner == nil || out.Winner.ID != "whale" {
		t.Fatalf("winner = %+v, want whale", out.Winner)
	}
	if out.PriceUSD <= 0 || out.PriceUSD > 20000 {
		t.Errorf("price = %v", out.PriceUSD)
	}
	// The whale registers when the premium decays to their valuation.
	if got := ens.PremiumUSDAt(expiry, out.At); got > 20000 {
		t.Errorf("premium at win time = %v, above valuation", got)
	}
	// The mechanism really did override speed.
	race := DropRace(expiry, bidders)
	if race.Winner == nil || race.Winner.ID != "sniper" {
		t.Fatalf("drop race winner = %+v, want sniper", race.Winner)
	}
	if race.PriceUSD != 0 {
		t.Error("drop race should be free")
	}
}

func TestDutchAuctionLowValuationsFallBackToRace(t *testing.T) {
	// Everyone values the name below what the curve can express at
	// 1-second granularity (premium at end-1s is ~0.0004 USD): nobody
	// pays a premium, so the zero-premium instant is a pure drop race.
	bidders := []Bidder{
		{ID: "slow", ValuationUSD: 0.0002, ReactionDelay: time.Hour},
		{ID: "fast", ValuationUSD: 0.0001, ReactionDelay: time.Second},
	}
	out := DutchAuction(expiry, bidders)
	if out.Winner == nil || out.Winner.ID != "fast" {
		t.Fatalf("winner = %+v, want fast (race fallback)", out.Winner)
	}
	if out.PriceUSD != 0 {
		t.Errorf("price = %v, want 0", out.PriceUSD)
	}
	if out.At < ens.PremiumEndTime(expiry) {
		t.Error("race fallback happened before the premium ended")
	}
}

func TestAuctionEmptyAndZeroValuations(t *testing.T) {
	if out := DutchAuction(expiry, nil); out.Winner != nil {
		t.Error("no bidders produced a winner")
	}
	if out := DutchAuction(expiry, []Bidder{{ID: "x", ValuationUSD: 0}}); out.Winner != nil {
		t.Error("zero valuation won")
	}
	if out := DropRace(expiry, nil); out.Winner != nil {
		t.Error("empty race produced a winner")
	}
}

func TestTimePremiumReachesMonotone(t *testing.T) {
	release := ens.ReleaseTime(expiry)
	end := ens.PremiumEndTime(expiry)
	prev := release - 1
	for _, target := range []float64{1e8, 1e6, 1e4, 100, 1} {
		at := timePremiumReaches(expiry, target)
		if at < release || at > end {
			t.Fatalf("target %v: time %d outside auction window", target, at)
		}
		// Lower targets are reached later (the curve decays).
		if at < prev {
			t.Fatalf("lower target reached earlier: %v at %d before %d", target, at, prev)
		}
		if p := ens.PremiumUSDAt(expiry, at); p > target {
			t.Errorf("premium %v at returned time exceeds target %v", p, target)
		}
		prev = at
	}
}

func TestCompareMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	expiries := make([]int64, n)
	fields := make([][]Bidder, n)
	for i := 0; i < n; i++ {
		expiries[i] = expiry + int64(i)*86400
		k := 2 + rng.Intn(4)
		bidders := make([]Bidder, k)
		for j := 0; j < k; j++ {
			bidders[j] = Bidder{
				ID:            "b",
				ValuationUSD:  100 * rng.Float64() * float64(1+rng.Intn(100)),
				ReactionDelay: time.Duration(rng.Intn(3600)) * time.Second,
			}
		}
		fields[i] = bidders
	}
	eff := CompareMechanisms(expiries, fields)
	if eff.Names != n {
		t.Fatalf("names = %d", eff.Names)
	}
	// The auction must allocate to the highest valuation at least as often
	// as the race (and, with independent speeds, strictly more).
	if eff.AuctionToHighestValue <= eff.RaceToHighestValue {
		t.Errorf("auction efficiency %d not above race efficiency %d",
			eff.AuctionToHighestValue, eff.RaceToHighestValue)
	}
	if eff.AuctionRevenueUSD <= 0 {
		t.Error("auction raised no revenue")
	}
}

func TestQuickAuctionWinnerAffordsPrice(t *testing.T) {
	f := func(vals [4]uint16, delays [4]uint8) bool {
		bidders := make([]Bidder, 4)
		for i := range bidders {
			bidders[i] = Bidder{
				ID:            string(rune('a' + i)),
				ValuationUSD:  float64(vals[i]),
				ReactionDelay: time.Duration(delays[i]) * time.Minute,
			}
		}
		out := DutchAuction(expiry, bidders)
		if out.Winner == nil {
			return true
		}
		return out.PriceUSD <= out.Winner.ValuationUSD &&
			out.At >= ens.ReleaseTime(expiry) && out.At <= ens.PremiumEndTime(expiry)+int64(255*time.Minute/time.Second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
