package subgraph

import (
	"testing"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// TestIncrementalSyncEqualsFullBuild indexes a chain in two halves and
// verifies the result matches a one-shot BuildIndex.
func TestIncrementalSyncEqualsFullBuild(t *testing.T) {
	start := int64(1580515200)
	c := chain.New(start)
	svc := ens.Deploy(c, pricing.NewOracleNoise(0))
	alice := ethtypes.DeriveAddress("ix-alice")
	bob := ethtypes.DeriveAddress("ix-bob")
	c.Mint(alice, ethtypes.Ether(10000))
	c.Mint(bob, ethtypes.Ether(10000))

	register := func(ts int64, who ethtypes.Address, label string) {
		t.Helper()
		rcpt, err := svc.Register(ts, who, who, label, ens.Year, svc.PriceWei(label, ens.Year, ts))
		if err != nil || rcpt.Err != nil {
			t.Fatalf("register %s: %v %v", label, err, rcpt)
		}
	}

	register(start, alice, "first")
	register(start+86400, alice, "second")

	ix := NewIndexer()
	if n := ix.Sync(c); n == 0 {
		t.Fatal("first sync indexed nothing")
	}
	if ix.Store().Len(ColRegistrations) != 2 {
		t.Fatalf("after first sync: %d registrations", ix.Store().Len(ColRegistrations))
	}
	w1 := ix.Watermark()

	// More activity: a renewal (mutates an existing entity) and a new
	// registration.
	rcpt, err := svc.Renew(start+2*86400, alice, "first", ens.Year, svc.PriceWei("first", ens.Year, start+2*86400))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("renew: %v %v", err, rcpt)
	}
	register(start+3*86400, bob, "third")

	if n := ix.Sync(c); n == 0 {
		t.Fatal("second sync indexed nothing")
	}
	if ix.Watermark() <= w1 {
		t.Error("watermark did not advance")
	}
	// Idempotent when nothing changed.
	if n := ix.Sync(c); n != 0 {
		t.Errorf("no-op sync indexed %d logs", n)
	}

	full := BuildIndex(c)
	for _, col := range []string{ColRegistrations, ColEvents, ColDomains, ColSubdomains} {
		if got, want := ix.Store().Len(col), full.Len(col); got != want {
			t.Errorf("%s: incremental %d, full %d", col, got, want)
		}
	}

	// The renewal must be visible on the incrementally updated entity.
	q, err := Parse(`{ registrations(first: 10, where: {labelName: "first"}) { id labelName expiryDate } }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ix.Store().Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := out[ColRegistrations]
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	reg, _ := svc.Registration("first")
	if got := mustField(t, rows[0], "expiryDate").(int64); got != reg.Expiry {
		t.Errorf("incremental entity expiry %d, want %d (renewal lost)", got, reg.Expiry)
	}
}

// mustField returns the named projected field, failing the test when it
// was not selected.
func mustField(t *testing.T, r Row, name string) any {
	t.Helper()
	v, ok := r.Get(name)
	if !ok {
		t.Fatalf("field %q not selected", name)
	}
	return v
}
