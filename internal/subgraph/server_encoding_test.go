package subgraph

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// legacyResponse is the envelope exactly as the server marshaled it
// before the append-path encoder: reflection over maps, omitempty tags.
type legacyResponse struct {
	Data   map[string][]map[string]any `json:"data,omitempty"`
	Errors []gqlError                  `json:"errors,omitempty"`
}

// legacyBytes renders resp the way json.NewEncoder(w).Encode did in the
// map era: projected rows as maps, keys sorted by the encoder.
func legacyBytes(t *testing.T, resp *gqlResponse) []byte {
	t.Helper()
	legacy := legacyResponse{Errors: resp.Errors}
	if len(resp.Data) > 0 {
		legacy.Data = make(map[string][]map[string]any, len(resp.Data))
		for name, rows := range resp.Data {
			out := make([]map[string]any, len(rows))
			for i, r := range rows {
				m := make(map[string]any, len(r))
				for _, f := range r {
					m[f.Name] = f.Value
				}
				out[i] = m
			}
			legacy.Data[name] = out
		}
	}
	var sb strings.Builder
	if err := json.NewEncoder(&sb).Encode(legacy); err != nil {
		t.Fatalf("legacy encode: %v", err)
	}
	return []byte(sb.String())
}

// TestServerMatchesLegacyEncoding pins the append-path serializer to
// the byte-exact output of the encoding/json path it replaced, across
// data pages (including null fields), server-side errors, and bad
// bodies.
func TestServerMatchesLegacyEncoding(t *testing.T) {
	store, _ := smallStore(t)
	srv := NewServer(store, nil)

	queries := []string{
		`{ registrationEvents(first: 25) { id type label labelName registrant expiryDate costWei premiumWei timestamp blockNumber txHash } }`,
		`{ registrations(first: 10, where: {id_gt: ""}) { id labelName expiryDate nosuchfield } }`,
		`{ domains(first: 5) { id name owner resolvedAddress } }`,
		`{ subdomains(first: 5) { id parent owner } }`,
		`{ registrations(first: 3) { id } registrationEvents(first: 3) { id } }`,
		`{ nosuchcollection(first: 1) { id } }`,
		`this is not graphql`,
	}
	for _, query := range queries {
		body, err := json.Marshal(map[string]string{"query": query})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/subgraph", strings.NewReader(string(body))))

		// Rebuild the response envelope the handler serialized.
		var want []byte
		q, perr := Parse(query)
		if perr != nil {
			want = legacyBytes(t, &gqlResponse{Errors: []gqlError{{Message: perr.Error()}}})
		} else if data, xerr := store.Execute(q); xerr != nil {
			want = legacyBytes(t, &gqlResponse{Errors: []gqlError{{Message: xerr.Error()}}})
		} else {
			want = legacyBytes(t, &gqlResponse{Data: data})
		}
		if got := rec.Body.String(); got != string(want) {
			t.Errorf("query %q:\n got %q\nwant %q", query, truncateStr(got, 300), truncateStr(string(want), 300))
		}
		if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
			t.Errorf("query %q: Content-Length %q, body %d bytes", query, cl, rec.Body.Len())
		}
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
