package subgraph

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/trace"
)

// Client queries a subgraph endpoint and pages through collections with
// id_gt cursors, the strategy that gives the paper's crawl its ~100%
// completeness under the 1000-row cap. Transport failures, 5xx answers,
// and truncated responses are retried with backoff (honoring Retry-After
// on 429s); GraphQL-level errors are permanent, since re-sending the
// same query buys nothing.
type Client struct {
	// Endpoint is the subgraph URL.
	Endpoint string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// PageSize defaults to MaxPageSize.
	PageSize int
	// MaxRetries per query on transient failures.
	MaxRetries int
	// Sleep is indirected for tests; nil uses a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Breaker, when set, circuit-breaks requests to this source.
	Breaker *crawler.Breaker
	// Adaptive, when set, paces and bounds in-flight requests with AIMD
	// control fed by server feedback (429/503 + Retry-After, latency).
	Adaptive *crawler.Adaptive
	// ClientID, when non-empty, is sent as X-Client-ID so server-side
	// per-client quotas key on a stable identity.
	ClientID string
	// Budget, when set, caps how many retries this client may fund
	// during an outage; a dry budget fails fast instead of storming.
	Budget *crawler.RetryBudget
	// Hedger, when set, duplicates slow queries past the tail-latency
	// estimate. GraphQL queries are read-only, so re-sending one is safe.
	Hedger *crawler.Hedger
}

// NewClient returns a client for the given endpoint.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint:   endpoint,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		PageSize:   MaxPageSize,
		MaxRetries: 5,
	}
}

// Query executes one raw query and returns the data map.
func (c *Client) Query(ctx context.Context, query string) (map[string][]Entity, error) {
	body, err := json.Marshal(gqlRequest{Query: query})
	if err != nil {
		return nil, fmt.Errorf("subgraph client: marshal: %w", err)
	}
	attempts := c.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	cfg := crawler.RetryConfig{
		Attempts:  attempts,
		BaseDelay: 200 * time.Millisecond,
		MaxDelay:  10 * time.Second,
		Jitter:    0.2,
		Sleep:     c.Sleep,
		Budget:    c.Budget,
	}
	// One query, one span; retry attempts nest under it and propagate
	// the trace id to the server via traceparent.
	ctx, sp := trace.Start(ctx, "subgraph.query")
	if sp != nil {
		sp.Annotate("query.bytes", fmt.Sprintf("%d", len(body)))
	}
	var data map[string][]Entity
	err = crawler.Retry(ctx, cfg, func(ctx context.Context) error {
		if b := c.Breaker; b != nil {
			if err := b.Allow(); err != nil {
				return err
			}
		}
		if a := c.Adaptive; a != nil {
			if err := a.Wait(ctx); err != nil {
				return crawler.Permanent(err)
			}
			if err := a.Acquire(ctx); err != nil {
				return crawler.Permanent(err)
			}
		}
		m().requests.Inc()
		var err error
		start := time.Now()
		// The hedged pair runs under the single Adaptive slot acquired
		// above; speculative volume is bounded by the retry budget.
		data, err = crawler.Hedge(ctx, c.Hedger, func(ctx context.Context) (map[string][]Entity, error) {
			return c.doOnce(ctx, body)
		})
		if a := c.Adaptive; a != nil {
			a.Release()
			a.Observe(err, time.Since(start))
		}
		if b := c.Breaker; b != nil {
			b.Record(err)
		}
		return err
	})
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// wireEnvelope is the client-side decode target for the response
// envelope: rows come back as generic maps, the shape a real subgraph
// client sees (the server's gqlResponse is the typed serialization
// form).
type wireEnvelope struct {
	Data   map[string][]Entity `json:"data"`
	Errors []gqlError          `json:"errors"`
}

// doOnce performs one HTTP round trip. Errors it returns are transient
// (retryable) unless wrapped with crawler.Permanent.
func (c *Client) doOnce(ctx context.Context, body []byte) (map[string][]Entity, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, crawler.Permanent(fmt.Errorf("subgraph client: request: %w", err))
	}
	req.Header.Set("Content-Type", "application/json")
	overload.SetRequestHeaders(req, c.ClientID)
	trace.Inject(req)
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("subgraph client: do: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("subgraph client: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		m().errors.Inc()
		statusErr := fmt.Errorf("subgraph client: status %d: %s", resp.StatusCode, truncate(string(raw), 200))
		if d, ok := crawler.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return nil, crawler.RetryAfter(statusErr, d)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return nil, crawler.Permanent(statusErr)
		}
		return nil, statusErr
	}
	var envelope wireEnvelope
	if err := json.Unmarshal(raw, &envelope); err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("subgraph client: decode: %w", err)
	}
	if len(envelope.Errors) > 0 {
		m().errors.Inc()
		return nil, crawler.Permanent(fmt.Errorf("subgraph client: server error: %s", envelope.Errors[0].Message))
	}
	return envelope.Data, nil
}

// PageAll retrieves an entire collection using id_gt cursor paging,
// requesting the given fields. The id field is always included (it drives
// the cursor).
func (c *Client) PageAll(ctx context.Context, collection string, fields []string) ([]Entity, error) {
	pageSize := c.PageSize
	if pageSize <= 0 || pageSize > MaxPageSize {
		pageSize = MaxPageSize
	}
	fieldSet := ensureID(fields)
	var out []Entity
	cursor := ""
	for {
		query := fmt.Sprintf(
			`{ %s(first: %d, orderBy: id, where: {id_gt: %q}) { %s } }`,
			collection, pageSize, cursor, strings.Join(fieldSet, " "))
		data, err := c.Query(ctx, query)
		if err != nil {
			return nil, fmt.Errorf("page after %q: %w", cursor, err)
		}
		rows := data[collection]
		m().pages.Inc()
		m().entities.Add(uint64(len(rows)))
		out = append(out, rows...)
		if len(rows) < pageSize {
			return out, nil
		}
		cursor = rows[len(rows)-1].ID()
		if cursor == "" {
			return nil, fmt.Errorf("subgraph client: empty id cursor in collection %q", collection)
		}
	}
}

func ensureID(fields []string) []string {
	for _, f := range fields {
		if f == "id" {
			return fields
		}
	}
	return append([]string{"id"}, fields...)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
