package subgraph

import (
	"encoding/json"
	"log/slog"
	"net/http"

	"ensdropcatch/internal/httpjson"
)

// Server exposes a Store over HTTP with a GraphQL-style POST endpoint.
// Request body: {"query": "..."}; response: {"data": {...}} or
// {"errors": [{"message": "..."}]}, matching The Graph's envelope.
// Responses are serialized through the pooled append path in encode.go;
// the per-request JSON work is the body decode and one buffered write.
type Server struct {
	store *Store
	log   *slog.Logger
}

// NewServer wraps a store. A nil logger disables logging.
func NewServer(store *Store, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Server{store: store, log: logger}
}

type gqlRequest struct {
	Query string `json:"query"`
}

type gqlError struct {
	Message string `json:"message"`
}

// gqlResponse is the response envelope. It is serialized by
// appendResponse, not reflection; keep the two in sync.
type gqlResponse struct {
	Data   map[string][]Row
	Errors []gqlError
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req gqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, &gqlResponse{Errors: []gqlError{{Message: "invalid request body: " + err.Error()}}})
		return
	}
	q, err := Parse(req.Query)
	if err != nil {
		s.writeJSON(w, http.StatusOK, &gqlResponse{Errors: []gqlError{{Message: err.Error()}}})
		return
	}
	data, err := s.store.ExecuteContext(r.Context(), q)
	if err != nil {
		s.writeJSON(w, http.StatusOK, &gqlResponse{Errors: []gqlError{{Message: err.Error()}}})
		return
	}
	s.writeJSON(w, http.StatusOK, &gqlResponse{Data: data})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body *gqlResponse) {
	bp := httpjson.GetSlice()
	*bp = appendResponse(*bp, body)
	err := httpjson.WriteBody(w, status, *bp)
	httpjson.PutSlice(bp)
	if err != nil {
		s.log.Error("subgraph: write response", "err", err)
	}
}
