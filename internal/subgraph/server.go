package subgraph

import (
	"encoding/json"
	"log/slog"
	"net/http"
)

// Server exposes a Store over HTTP with a GraphQL-style POST endpoint.
// Request body: {"query": "..."}; response: {"data": {...}} or
// {"errors": [{"message": "..."}]}, matching The Graph's envelope.
type Server struct {
	store *Store
	log   *slog.Logger
}

// NewServer wraps a store. A nil logger disables logging.
func NewServer(store *Store, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Server{store: store, log: logger}
}

type gqlRequest struct {
	Query string `json:"query"`
}

type gqlError struct {
	Message string `json:"message"`
}

type gqlResponse struct {
	Data   map[string][]Entity `json:"data,omitempty"`
	Errors []gqlError          `json:"errors,omitempty"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req gqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, gqlResponse{Errors: []gqlError{{Message: "invalid request body: " + err.Error()}}})
		return
	}
	q, err := Parse(req.Query)
	if err != nil {
		s.writeJSON(w, http.StatusOK, gqlResponse{Errors: []gqlError{{Message: err.Error()}}})
		return
	}
	data, err := s.store.ExecuteContext(r.Context(), q)
	if err != nil {
		s.writeJSON(w, http.StatusOK, gqlResponse{Errors: []gqlError{{Message: err.Error()}}})
		return
	}
	s.writeJSON(w, http.StatusOK, gqlResponse{Data: data})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body gqlResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.log.Error("subgraph: encode response", "err", err)
	}
}
