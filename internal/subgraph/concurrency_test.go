package subgraph

import (
	"sync"
	"testing"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// TestConcurrentQueriesDuringSync hammers the store with readers while an
// indexer keeps syncing new chain activity — the live-serving topology of
// cmd/ensworld. Run with -race.
func TestConcurrentQueriesDuringSync(t *testing.T) {
	start := int64(1580515200)
	c := chain.New(start)
	svc := ens.Deploy(c, pricing.NewOracleNoise(0))
	owner := ethtypes.DeriveAddress("cc-owner")
	c.Mint(owner, ethtypes.Ether(1_000_000))

	ix := NewIndexer()
	store := ix.Store()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: register names and sync incrementally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := start
		for i := 0; i < 60; i++ {
			ts += 86400
			label := "concurrent" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			rcpt, err := svc.Register(ts, owner, owner, label, ens.Year, svc.PriceWei(label, ens.Year, ts))
			if err != nil || rcpt.Err != nil {
				t.Errorf("register: %v %v", err, rcpt)
				return
			}
			ix.Sync(c)
		}
		close(stop)
	}()

	// Readers: page the registrations collection continuously.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q, err := Parse(`{ registrations(first: 1000, orderBy: id, where: {id_gt: ""}) { id labelName expiryDate } }`)
				if err != nil {
					t.Error(err)
					return
				}
				out, err := store.Execute(q)
				if err != nil {
					t.Error(err)
					return
				}
				rows := out[ColRegistrations]
				for i := 1; i < len(rows); i++ {
					if rows[i].ID() <= rows[i-1].ID() {
						t.Error("unordered rows under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := store.Len(ColRegistrations); got != 60 {
		t.Errorf("final registrations = %d, want 60", got)
	}
}
