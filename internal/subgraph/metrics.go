package subgraph

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the client's instrumentation handles.
type metricSet struct {
	requests *obs.Counter
	errors   *obs.Counter
	pages    *obs.Counter
	entities *obs.Counter
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		requests: reg.Counter("subgraph_client_requests_total",
			"GraphQL queries issued by the subgraph client."),
		errors: reg.Counter("subgraph_client_errors_total",
			"Transport, HTTP, or GraphQL errors seen by the subgraph client."),
		pages: reg.Counter("subgraph_client_pages_total",
			"id_gt cursor pages fetched by PageAll."),
		entities: reg.Counter("subgraph_client_entities_total",
			"Entities received by PageAll."),
	})
}

func m() *metricSet { return metrics.Load() }
