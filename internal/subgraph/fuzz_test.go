package subgraph

import "testing"

// FuzzParse hardens the GraphQL-subset parser: arbitrary input must never
// panic, and accepted queries must be structurally sound.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{ registrations(first: 10) { id } }`,
		`query Foo { domains { id name } }`,
		`{ registrationEvents(first: 1000, skip: 5, orderBy: id, where: {id_gt: "0xab", type: "NameRenewed"}) { id type } }`,
		`{ a { b { c { d } } } }`,
		`# comment only`,
		`{ x(flag: true, n: -42) { id } }`,
		"{\n  x(v: \"quoted \\\" inner\") { id }\n}",
		`{}`,
		`{{{{`,
		`{ x(first: 99999999999999999999999999) { id } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Selections) == 0 {
			t.Fatal("accepted query with no selections")
		}
		for _, sel := range q.Selections {
			if sel.Name == "" {
				t.Fatal("selection with empty name")
			}
		}
	})
}
