package subgraph

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
)

// MaxPageSize is The Graph's hard cap on `first` (rows per query).
const MaxPageSize = 1000

// Entity is one indexed record: flat string/int fields keyed by name.
// Missing fields are absent from the map (GraphQL null).
type Entity map[string]any

// ID returns the entity id (always present).
func (e Entity) ID() string {
	id, _ := e["id"].(string)
	return id
}

// Field is one projected column of a result Row.
type Field struct {
	Name  string
	Value any
}

// Row is a projected query result: the requested fields sorted by name,
// exactly the key order encoding/json produced back when rows were
// maps, so serialized pages are byte-identical to the map era — without
// allocating a map per row on the serve path. Absent fields are present
// with a nil Value (GraphQL null).
type Row []Field

// ID returns the row's id field ("" when not selected).
func (r Row) ID() string {
	id, _ := r.Get("id")
	s, _ := id.(string)
	return s
}

// Get returns the named field's value and whether it was selected.
// Rows are small (a handful of fields), so a linear scan wins over any
// index structure.
func (r Row) Get(name string) (any, bool) {
	for _, f := range r {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// AsEntity converts the row back to the map form batch consumers (the
// dataset builder's in-process source) work with. Serve-path callers
// should stay on Row; this allocates the map Row exists to avoid.
func (r Row) AsEntity() Entity {
	e := make(Entity, len(r))
	for _, f := range r {
		e[f.Name] = f.Value
	}
	return e
}

// MarshalJSON renders the row as the JSON object its field order
// dictates; used by tests and any caller that round-trips rows through
// encoding/json (the server writes rows through the faster append path).
func (r Row) MarshalJSON() ([]byte, error) {
	return appendRow(nil, r), nil
}

// Store holds the indexed entity collections, each sorted by id.
type Store struct {
	mu          sync.RWMutex
	collections map[string][]Entity
}

// Collections available in the store (mirroring the ENS subgraph's
// entities the paper consumed).
const (
	// ColRegistrations is the current registration record per name.
	ColRegistrations = "registrations"
	// ColEvents is the full registration event history (NameRegistered,
	// NameRenewed, NameTransferred).
	ColEvents = "registrationEvents"
	// ColDomains maps namehash nodes to resolution records.
	ColDomains = "domains"
	// ColSubdomains holds registry subnode records (pay.gold.eth).
	ColSubdomains = "subdomains"
)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{collections: map[string][]Entity{
		ColRegistrations: nil,
		ColEvents:        nil,
		ColDomains:       nil,
		ColSubdomains:    nil,
	}}
}

// BuildIndex folds the chain's full event history into a Store, the way
// the ENS subgraph indexes mainnet.
func BuildIndex(c *chain.Chain) *Store {
	ix := NewIndexer()
	ix.Sync(c)
	return ix.Store()
}

// Indexer folds chain events into a Store incrementally: each Sync indexes
// only blocks past the previous watermark, the way The Graph tails the
// chain head.
type Indexer struct {
	store     *Store
	regs      map[string]Entity // labelhash -> registration entity
	domains   map[string]Entity // node -> domain entity
	watermark uint64            // highest fully indexed block
}

// NewIndexer returns an empty incremental indexer.
func NewIndexer() *Indexer {
	return &Indexer{
		store:   NewStore(),
		regs:    map[string]Entity{},
		domains: map[string]Entity{},
	}
}

// Store returns the indexed store (shared; updated by future Syncs).
func (ix *Indexer) Store() *Store { return ix.store }

// Watermark returns the highest fully indexed block.
func (ix *Indexer) Watermark() uint64 { return ix.watermark }

// indexedEvents are the event names the ENS subgraph consumes.
var indexedEvents = []string{"NameRegistered", "NameRenewed", "NameTransferred", "AddrChanged", "NewOwner"}

// Sync indexes all new logs since the previous call and returns how many
// were processed.
func (ix *Indexer) Sync(c *chain.Chain) int {
	head := c.HeadBlock()
	if head <= ix.watermark {
		return 0
	}
	logs := c.FilterLogs(chain.LogFilter{FromBlock: ix.watermark + 1, ToBlock: head, Events: indexedEvents})
	s := ix.store
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := ix.regs
	domains := ix.domains

	for _, l := range logs {
		switch l.Event {
		case "NameRegistered":
			lh := l.Topics[0]
			id := lh.Hex()
			node := ens.NodeFromLabelHash(lh).Hex()
			reg, ok := regs[id]
			if !ok {
				reg = Entity{"id": id, "domain": node}
				regs[id] = reg
			}
			if name, ok := l.Data["name"]; ok {
				reg["labelName"] = name
			}
			reg["registrant"] = l.Data["owner"]
			reg["registrationDate"] = l.Timestamp
			reg["expiryDate"] = atoi(l.Data["expires"])
			reg["cost"] = l.Data["costWei"]
			d, ok := domains[node]
			if !ok {
				d = Entity{"id": node, "createdAt": l.Timestamp, "labelhash": id}
				domains[node] = d
			}
			if name, ok := l.Data["name"]; ok {
				d["labelName"] = name
				d["name"] = name + ".eth"
			}
			d["owner"] = l.Data["owner"]
			s.append(ColEvents, Entity{
				"id":          eventID(l),
				"type":        "NameRegistered",
				"label":       id,
				"labelName":   orNil(l.Data, "name"),
				"registrant":  l.Data["owner"],
				"expiryDate":  atoi(l.Data["expires"]),
				"costWei":     l.Data["costWei"],
				"premiumWei":  l.Data["premium"],
				"timestamp":   l.Timestamp,
				"blockNumber": int64(l.BlockNumber),
				"txHash":      l.TxHash.Hex(),
			})
		case "NameRenewed":
			lh := l.Topics[0]
			id := lh.Hex()
			if reg, ok := regs[id]; ok {
				reg["expiryDate"] = atoi(l.Data["expires"])
			}
			s.append(ColEvents, Entity{
				"id":          eventID(l),
				"type":        "NameRenewed",
				"label":       id,
				"labelName":   orNil(l.Data, "name"),
				"expiryDate":  atoi(l.Data["expires"]),
				"costWei":     l.Data["costWei"],
				"timestamp":   l.Timestamp,
				"blockNumber": int64(l.BlockNumber),
				"txHash":      l.TxHash.Hex(),
			})
		case "NameTransferred":
			lh := l.Topics[0]
			id := lh.Hex()
			if reg, ok := regs[id]; ok {
				reg["registrant"] = l.Data["newOwner"]
			}
			s.append(ColEvents, Entity{
				"id":          eventID(l),
				"type":        "NameTransferred",
				"label":       id,
				"labelName":   orNil(l.Data, "name"),
				"newOwner":    l.Data["newOwner"],
				"timestamp":   l.Timestamp,
				"blockNumber": int64(l.BlockNumber),
				"txHash":      l.TxHash.Hex(),
			})
		case "AddrChanged":
			node := l.Topics[0].Hex()
			d, ok := domains[node]
			if !ok {
				d = Entity{"id": node, "createdAt": l.Timestamp}
				domains[node] = d
			}
			d["resolvedAddress"] = l.Data["addr"]
		case "NewOwner":
			// Registry subnode creation (subdomains).
			e := Entity{
				"id":        l.Topics[0].Hex(),
				"parent":    l.Data["parent"],
				"labelhash": l.Data["label"],
				"owner":     l.Data["owner"],
				"createdAt": l.Timestamp,
			}
			if name, ok := l.Data["name"]; ok {
				e["name"] = name + ".eth"
			}
			s.append(ColSubdomains, e)
		}
	}

	// Registrations and domains are mutated in place; new ones are
	// appended to the collections (entities are shared maps, so updates
	// to existing ones are already visible).
	inRegs := map[string]bool{}
	for _, e := range s.collections[ColRegistrations] {
		inRegs[e.ID()] = true
	}
	for id, reg := range regs {
		if !inRegs[id] {
			s.append(ColRegistrations, reg)
		}
	}
	inDomains := map[string]bool{}
	for _, e := range s.collections[ColDomains] {
		inDomains[e.ID()] = true
	}
	for id, d := range domains {
		if !inDomains[id] {
			s.append(ColDomains, d)
		}
	}
	s.sortAll()
	ix.watermark = head
	return len(logs)
}

func eventID(l *chain.Log) string {
	return fmt.Sprintf("%s-%06d", l.TxHash.Hex(), l.Index)
}

func orNil(m map[string]string, key string) any {
	if v, ok := m[key]; ok {
		return v
	}
	return nil
}

func atoi(s string) int64 {
	n, _ := strconv.ParseInt(s, 10, 64)
	return n
}

func (s *Store) append(col string, e Entity) {
	s.collections[col] = append(s.collections[col], e)
}

func (s *Store) sortAll() {
	for _, list := range s.collections {
		sort.Slice(list, func(i, j int) bool { return list[i].ID() < list[j].ID() })
	}
}

// Len returns the number of entities in a collection.
func (s *Store) Len(col string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.collections[col])
}

// ExecuteContext runs a parsed query against the store and returns one
// result list per top-level selection, keyed by selection name. Scans
// abandon work as soon as the caller's deadline (propagated by the
// server's overload middleware) expires, instead of filtering rows for
// a caller that has already given up. There is deliberately no
// context-free variant: every production caller holds a request or
// crawl context, and a fresh context.Background() here would detach
// the scan from it.
func (s *Store) ExecuteContext(ctx context.Context, q *Query) (map[string][]Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]Row, len(q.Selections))
	for _, sel := range q.Selections {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		list, ok := s.collections[sel.Name]
		if !ok {
			return nil, fmt.Errorf("subgraph: unknown collection %q", sel.Name)
		}
		rows, err := applySelection(ctx, list, sel)
		if err != nil {
			return nil, err
		}
		out[sel.Name] = rows
	}
	return out, nil
}

func applySelection(ctx context.Context, list []Entity, sel *Selection) ([]Row, error) {
	if len(sel.Fields) == 0 {
		return nil, fmt.Errorf("subgraph: selection %q needs a field set", sel.Name)
	}
	// Resolve the projected field order once per selection, not per row:
	// sorted and deduplicated, matching the map-key order the JSON
	// encoder used to impose.
	names := make([]string, len(sel.Fields))
	for i, f := range sel.Fields {
		names[i] = f.Name
	}
	sort.Strings(names)
	names = dedupSorted(names)
	first := int64(100) // The Graph's default page size
	skip := int64(0)
	var where map[string]Value
	for k, v := range sel.Args {
		switch k {
		case "first":
			if v.Kind != KindInt {
				return nil, fmt.Errorf("subgraph: first must be an int")
			}
			first = v.Int
		case "skip":
			if v.Kind != KindInt {
				return nil, fmt.Errorf("subgraph: skip must be an int")
			}
			skip = v.Int
		case "where":
			if v.Kind != KindObject {
				return nil, fmt.Errorf("subgraph: where must be an object")
			}
			where = v.Obj
		case "orderBy":
			if v.Str != "id" {
				return nil, fmt.Errorf("subgraph: only orderBy: id is supported")
			}
		default:
			return nil, fmt.Errorf("subgraph: unsupported argument %q", k)
		}
	}
	if first < 0 || first > MaxPageSize {
		return nil, fmt.Errorf("subgraph: first must be in [0, %d]", MaxPageSize)
	}
	if skip < 0 {
		return nil, fmt.Errorf("subgraph: skip must be non-negative")
	}

	// Fast path: a lone id_gt filter seeks directly into the sorted list
	// (this is why cursor paging beats offset paging at scale).
	start := 0
	if len(where) == 1 {
		if v, ok := where["id_gt"]; ok && v.Kind == KindString {
			start = sort.Search(len(list), func(i int) bool { return list[i].ID() > v.Str })
			where = nil
		}
	}

	var rows []Row
	for i, e := range list[start:] {
		if i%4096 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !matchWhere(e, where) {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		rows = append(rows, project(e, names))
		if int64(len(rows)) >= first {
			break
		}
	}
	return rows, nil
}

// dedupSorted removes adjacent duplicates in place (a field selected
// twice projects once, as it did when rows were maps).
func dedupSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

func matchWhere(e Entity, where map[string]Value) bool {
	for key, v := range where {
		field, op := key, "eq"
		for _, suffix := range []string{"_gt", "_gte", "_lt", "_lte"} {
			if strings.HasSuffix(key, suffix) {
				field, op = strings.TrimSuffix(key, suffix), suffix[1:]
				break
			}
		}
		got, present := e[field]
		if !present {
			return false
		}
		if !compare(got, v, op) {
			return false
		}
	}
	return true
}

func compare(got any, want Value, op string) bool {
	switch g := got.(type) {
	case string:
		w := want.Str
		switch op {
		case "eq":
			return g == w
		case "gt":
			return g > w
		case "gte":
			return g >= w
		case "lt":
			return g < w
		case "lte":
			return g <= w
		}
	case int64:
		if want.Kind != KindInt {
			return false
		}
		switch op {
		case "eq":
			return g == want.Int
		case "gt":
			return g > want.Int
		case "gte":
			return g >= want.Int
		case "lt":
			return g < want.Int
		case "lte":
			return g <= want.Int
		}
	}
	return false
}

// project copies only the requested fields, in the given (sorted)
// order. Requesting an absent field yields an explicit null (JSON
// null), like GraphQL. One slice allocation per row — the maps this
// replaced were the dominant serve-path allocator.
func project(e Entity, names []string) Row {
	out := make(Row, len(names))
	for i, n := range names {
		v := e[n] // absent -> nil, the explicit null
		out[i] = Field{Name: n, Value: v}
	}
	return out
}
