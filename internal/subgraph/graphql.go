// Package subgraph reimplements the ENS subgraph the paper queries for its
// registration dataset: an indexer that folds chain events into entity
// collections, a GraphQL-subset query engine, an HTTP server, and a paging
// client. The query surface mirrors how The Graph is used in practice —
// `first`/`skip` windows capped at 1000 rows and `id_gt` cursor paging.
package subgraph

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Query is a parsed GraphQL-subset query: one or more top-level selections.
type Query struct {
	Selections []*Selection
}

// Selection is one field selection with optional arguments and a nested
// selection set.
type Selection struct {
	Name   string
	Args   map[string]Value
	Fields []*Selection
}

// Value is a GraphQL argument value.
type Value struct {
	Str  string
	Int  int64
	Bool bool
	Obj  map[string]Value
	Kind ValueKind
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindBool
	KindObject
	KindEnum // bare identifier, e.g. orderBy: id
)

// ParseError reports a syntax error with its byte offset.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("subgraph: parse error at offset %d: %s", e.Offset, e.Msg)
}

type lexer struct {
	src string
	pos int
}

type token struct {
	kind string // "name", "string", "int", "punct", "eof"
	text string
	pos  int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: "eof", pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case strings.ContainsRune("{}():", rune(c)):
		l.pos++
		return token{kind: "punct", text: string(c), pos: start}, nil
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, &ParseError{start, "unterminated string"}
		}
		l.pos++ // closing quote
		return token{kind: "string", text: b.String(), pos: start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: "int", text: l.src[start:l.pos], pos: start}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		l.pos++
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.pos++
			} else {
				break
			}
		}
		return token{kind: "name", text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, &ParseError{start, fmt.Sprintf("unexpected character %q", c)}
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind, text string) error {
	if p.tok.kind != kind || (text != "" && p.tok.text != text) {
		return &ParseError{p.tok.pos, fmt.Sprintf("expected %s %q, got %s %q", kind, text, p.tok.kind, p.tok.text)}
	}
	return p.advance()
}

// Parse parses a query document. The optional leading `query` keyword (with
// no variables) is accepted.
func Parse(src string) (*Query, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == "name" && p.tok.text == "query" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Optional operation name.
		if p.tok.kind == "name" {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	sels, err := p.selectionSet()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != "eof" {
		return nil, &ParseError{p.tok.pos, "trailing input"}
	}
	return &Query{Selections: sels}, nil
}

func (p *parser) selectionSet() ([]*Selection, error) {
	if err := p.expect("punct", "{"); err != nil {
		return nil, err
	}
	var out []*Selection
	for p.tok.kind == "name" {
		sel, err := p.selection()
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	if err := p.expect("punct", "}"); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, &ParseError{p.tok.pos, "empty selection set"}
	}
	return out, nil
}

func (p *parser) selection() (*Selection, error) {
	sel := &Selection{Name: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == "punct" && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sel.Args = map[string]Value{}
		for p.tok.kind == "name" {
			key := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("punct", ":"); err != nil {
				return nil, err
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			sel.Args[key] = v
		}
		if err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == "punct" && p.tok.text == "{" {
		fields, err := p.selectionSet()
		if err != nil {
			return nil, err
		}
		sel.Fields = fields
	}
	return sel, nil
}

func (p *parser) value() (Value, error) {
	// Capture the token before advancing: mixing p.tok reads with an
	// advance() call in one return statement has unspecified order.
	text := p.tok.text
	switch p.tok.kind {
	case "string":
		return Value{Kind: KindString, Str: text}, p.advance()
	case "int":
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, &ParseError{p.tok.pos, "bad integer"}
		}
		return Value{Kind: KindInt, Int: n}, p.advance()
	case "name":
		switch text {
		case "true":
			return Value{Kind: KindBool, Bool: true}, p.advance()
		case "false":
			return Value{Kind: KindBool, Bool: false}, p.advance()
		default:
			return Value{Kind: KindEnum, Str: text}, p.advance()
		}
	case "punct":
		if p.tok.text == "{" {
			if err := p.advance(); err != nil {
				return Value{}, err
			}
			obj := map[string]Value{}
			for p.tok.kind == "name" {
				key := p.tok.text
				if err := p.advance(); err != nil {
					return Value{}, err
				}
				if err := p.expect("punct", ":"); err != nil {
					return Value{}, err
				}
				v, err := p.value()
				if err != nil {
					return Value{}, err
				}
				obj[key] = v
			}
			if err := p.expect("punct", "}"); err != nil {
				return Value{}, err
			}
			return Value{Kind: KindObject, Obj: obj}, nil
		}
	}
	return Value{}, &ParseError{p.tok.pos, fmt.Sprintf("unexpected %s %q in value position", p.tok.kind, p.tok.text)}
}
