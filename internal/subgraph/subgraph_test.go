package subgraph

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"ensdropcatch/internal/world"
)

func TestParseBasicQuery(t *testing.T) {
	q, err := Parse(`query { registrations(first: 10, where: {id_gt: "0xab"}) { id labelName domain { name } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selections) != 1 {
		t.Fatalf("selections = %d", len(q.Selections))
	}
	sel := q.Selections[0]
	if sel.Name != "registrations" {
		t.Errorf("name = %q", sel.Name)
	}
	if sel.Args["first"].Int != 10 {
		t.Errorf("first = %+v", sel.Args["first"])
	}
	if sel.Args["where"].Obj["id_gt"].Str != "0xab" {
		t.Errorf("where = %+v", sel.Args["where"])
	}
	if len(sel.Fields) != 3 || sel.Fields[2].Name != "domain" || len(sel.Fields[2].Fields) != 1 {
		t.Errorf("fields = %+v", sel.Fields)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "{}", `{ regs(first: ) { id } }`,
		`{ regs { id } } trailing`, `{ regs(first: 1 { id } }`,
		`{ regs(x: "unterminated) { id } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseToleratesCommasAndComments(t *testing.T) {
	src := `
# full history
{
  registrationEvents(first: 5, skip: 2) { id, type, timestamp }
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selections[0].Args["skip"].Int != 2 {
		t.Error("skip lost")
	}
}

func smallStore(t *testing.T) (*Store, *world.Result) {
	t.Helper()
	res, err := world.Generate(world.DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	return BuildIndex(res.Chain), res
}

func TestBuildIndexCounts(t *testing.T) {
	store, res := smallStore(t)
	if got, want := store.Len(ColRegistrations), countUniqueLabels(res); got != want {
		t.Errorf("registrations = %d, want %d", got, want)
	}
	if store.Len(ColEvents) < store.Len(ColRegistrations) {
		t.Error("fewer events than registrations")
	}
	if store.Len(ColDomains) == 0 {
		t.Error("no domains indexed")
	}
}

func countUniqueLabels(res *world.Result) int {
	return len(res.Truth.Domains)
}

func TestExecuteFiltersAndPages(t *testing.T) {
	store, _ := smallStore(t)
	q, err := Parse(`{ registrationEvents(first: 50, orderBy: id, where: {id_gt: ""}) { id type timestamp } }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := store.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := out[ColEvents]
	if len(rows) != 50 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ID() <= rows[i-1].ID() {
			t.Fatal("rows not ordered by id")
		}
	}
	// Typed filter.
	q, _ = Parse(`{ registrationEvents(first: 1000, where: {type: "NameRenewed"}) { id type } }`)
	out, err = store.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out[ColEvents] {
		if typ, _ := r.Get("type"); typ != "NameRenewed" {
			t.Fatalf("filter leaked %v", typ)
		}
	}
}

func TestExecuteRejectsBadQueries(t *testing.T) {
	store, _ := smallStore(t)
	bad := []string{
		`{ nosuch(first: 1) { id } }`,
		`{ registrations(first: 5000) { id } }`,
		`{ registrations(first: -1) { id } }`,
		`{ registrations(skip: -1) { id } }`,
		`{ registrations(orderBy: name) { id } }`,
		`{ registrations(magic: 1) { id } }`,
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := store.Execute(q); err == nil {
			t.Errorf("Execute(%q) succeeded", src)
		}
	}
}

func TestUnindexedNamesHaveNullLabel(t *testing.T) {
	store, res := smallStore(t)
	wantNull := 0
	for _, d := range res.Truth.Domains {
		// A later controller registration reveals the label, so only
		// single-cycle legacy names stay null.
		if d.Unindexed && len(d.Cycles) == 1 {
			wantNull++
		}
	}
	if wantNull == 0 {
		t.Skip("no unindexed names in this world")
	}
	q, _ := Parse(`{ registrations(first: 1000, where: {id_gt: ""}) { id labelName } }`)
	nulls := 0
	cursor := ""
	for {
		q, _ = Parse(`{ registrations(first: 1000, where: {id_gt: "` + cursor + `"}) { id labelName } }`)
		out, err := store.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := out[ColRegistrations]
		if len(rows) == 0 {
			break
		}
		for _, r := range rows {
			if name, _ := r.Get("labelName"); name == nil {
				nulls++
			}
		}
		cursor = rows[len(rows)-1].ID()
	}
	if nulls != wantNull {
		t.Errorf("null labelName rows = %d, want %d", nulls, wantNull)
	}
}

func TestServerAndClientPaging(t *testing.T) {
	store, res := smallStore(t)
	srv := httptest.NewServer(NewServer(store, nil))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.PageSize = 97 // force multiple pages with an awkward size
	rows, err := client.PageAll(context.Background(), ColRegistrations, []string{"labelName", "registrant", "expiryDate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Truth.Domains) {
		t.Errorf("paged %d registrations, want %d", len(rows), len(res.Truth.Domains))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.ID()] {
			t.Fatalf("duplicate row %s across pages", r.ID())
		}
		seen[r.ID()] = true
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	store, _ := smallStore(t)
	srv := httptest.NewServer(NewServer(store, nil))
	defer srv.Close()

	client := NewClient(srv.URL)
	if _, err := client.Query(context.Background(), "not graphql"); err == nil {
		t.Error("garbage query succeeded")
	}
	if _, err := client.Query(context.Background(), `{ nosuch(first: 1) { id } }`); err == nil {
		t.Error("unknown collection succeeded")
	}
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickParserRoundTripFirst(t *testing.T) {
	f := func(n uint16) bool {
		q, err := Parse(`{ registrations(first: ` + itoa(int64(n)) + `) { id } }`)
		if err != nil {
			return false
		}
		return q.Selections[0].Args["first"].Int == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(n int64) string {
	var b strings.Builder
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b.WriteByte(digits[i])
	}
	return b.String()
}
