package subgraph

// Hand-rolled serialization for the GraphQL response envelope. The
// serve path used to reflect over map[string][]map[string]any per page;
// at production RPS the encoder's per-key sorting and interface walks
// were most of the request's allocations. Rows now carry their fields
// pre-sorted (see Row), so the envelope can be appended straight into a
// pooled byte slice. Output is byte-identical to what
// json.NewEncoder(w).Encode(gqlResponse{...}) produced in the map era —
// the workers=1-vs-8 page-determinism test and the legacy-encoding
// equivalence test both pin that.

import (
	"encoding/json"
	"sort"
	"strconv"

	"ensdropcatch/internal/httpjson"
)

// appendResponse appends the envelope: {"errors":[...]} when errors are
// present, else {"data":{...}} with selection names sorted, else {}.
// A trailing newline matches json.Encoder.Encode.
func appendResponse(dst []byte, resp *gqlResponse) []byte {
	switch {
	case len(resp.Errors) > 0:
		dst = append(dst, `{"errors":[`...)
		for i, e := range resp.Errors {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"message":`...)
			dst = httpjson.AppendString(dst, e.Message)
			dst = append(dst, '}')
		}
		dst = append(dst, `]}`...)
	case len(resp.Data) > 0:
		names := make([]string, 0, len(resp.Data))
		for name := range resp.Data {
			names = append(names, name)
		}
		sort.Strings(names)
		dst = append(dst, `{"data":{`...)
		for i, name := range names {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = httpjson.AppendString(dst, name)
			dst = append(dst, ':', '[')
			for j := range resp.Data[name] {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = appendRow(dst, resp.Data[name][j])
			}
			dst = append(dst, ']')
		}
		dst = append(dst, '}', '}')
	default:
		dst = append(dst, '{', '}')
	}
	return append(dst, '\n')
}

// appendRow appends one projected row as a JSON object, fields in Row
// order (sorted by name).
func appendRow(dst []byte, r Row) []byte {
	dst = append(dst, '{')
	for i, f := range r {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = httpjson.AppendString(dst, f.Name)
		dst = append(dst, ':')
		dst = appendValue(dst, f.Value)
	}
	return append(dst, '}')
}

// appendValue appends one field value. Entities only hold strings,
// int64s, and nils today; anything else falls back to encoding/json so
// a new field type degrades to slow-but-correct instead of wrong.
func appendValue(dst []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, `null`...)
	case string:
		return httpjson.AppendString(dst, x)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case bool:
		return strconv.AppendBool(dst, x)
	default:
		raw, err := json.Marshal(x)
		if err != nil {
			// Mirror encoding/json's lossy stance nowhere: an unencodable
			// value in the store is a programming error surfaced loudly.
			panic("subgraph: unencodable field value: " + err.Error())
		}
		return append(dst, raw...)
	}
}
