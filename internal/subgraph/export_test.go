package subgraph

import "context"

// Execute is a test-only convenience shim over ExecuteContext. The
// production API deliberately has no context-free entry point (enslint
// ctxflow forbids the context.Background() it would need), but tests
// exercising query semantics have no deadline to propagate.
func (s *Store) Execute(q *Query) (map[string][]Row, error) {
	return s.ExecuteContext(context.Background(), q)
}
