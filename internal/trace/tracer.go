package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer.
type Config struct {
	// Store receives finished root-span trees for tail sampling; nil
	// means propagate-only (spans exist, IDs flow, nothing is kept).
	Store *Store
	// Seed makes span/trace ID generation reproducible for tests;
	// 0 seeds from the host entropy pool.
	Seed int64
}

// Tracer creates root spans and collects their finished trees. Safe
// for concurrent use. A nil *Tracer is a valid disabled tracer: Start
// returns (ctx, nil).
type Tracer struct {
	store *Store
	ids   idSource
}

// New returns a tracer for cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{store: cfg.Store}
	t.ids.seed(cfg.Seed)
	return t
}

// Store returns the tracer's trace store, nil when propagate-only.
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Start begins a root span (or a child, if ctx already carries a span
// from this or another tracer). A nil tracer returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		sp := parent.newChild(name)
		return ContextWith(ctx, sp), sp
	}
	sp := &Span{
		tracer:  t,
		traceID: t.ids.traceID(),
		spanID:  t.ids.spanID(),
		name:    name,
		start:   time.Now(),
	}
	sp.root = sp
	m().spansStarted.Inc()
	return ContextWith(ctx, sp), sp
}

// StartRemote begins a root span continuing a trace whose parent span
// lives in another process (the client side of a traceparent header):
// the span keeps the remote trace id and records the remote span as
// its parent. A zero SpanContext starts a fresh trace, so server
// middleware can call it unconditionally.
func (t *Tracer) StartRemote(ctx context.Context, name string, sc SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if sc.TraceID == (TraceID{}) {
		return t.Start(ctx, name)
	}
	sp := &Span{
		tracer:   t,
		traceID:  sc.TraceID,
		spanID:   t.ids.spanID(),
		parentID: sc.SpanID,
		remote:   true,
		name:     name,
		start:    time.Now(),
	}
	sp.root = sp
	m().spansStarted.Inc()
	return ContextWith(ctx, sp), sp
}

// newSpanID draws a fresh span id; the nil check lets children of
// spans from a since-discarded tracer still mint ids.
func (t *Tracer) newSpanID() SpanID {
	if t == nil {
		var id SpanID
		id[7] = 1
		return id
	}
	return t.ids.spanID()
}

// finish snapshots a completed root tree and offers it to the store.
func (t *Tracer) finish(root *Span) {
	if t.store == nil {
		return
	}
	t.store.Offer(root.snapshot())
}

// defaultTracer is the process-wide tracer used by package-level Start
// when the context has no active span. Nil (the default) means
// tracing is off.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs t as the process-wide tracer; nil turns
// package-level tracing off.
func SetDefault(t *Tracer) {
	if t == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(t)
}

// Default returns the installed process-wide tracer, nil when off.
func Default() *Tracer { return defaultTracer.Load() }

// guard serializes SetDefault in tests that swap the default tracer.
var guard sync.Mutex

// WithDefault installs t for the duration of fn, restoring the prior
// default after; a test helper that keeps parallel suites from
// clobbering each other's tracer.
func WithDefault(t *Tracer, fn func()) {
	guard.Lock()
	defer guard.Unlock()
	prev := Default()
	SetDefault(t)
	defer SetDefault(prev)
	fn()
}
