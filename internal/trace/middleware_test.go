package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

func TestMiddlewareContinuesRemoteTrace(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 1})
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if FromContext(r.Context()) == nil {
			t.Errorf("handler context lost the span")
		}
		w.WriteHeader(http.StatusOK)
	}))

	req := httptest.NewRequest("GET", "/data", nil)
	req.Header.Set(Header, validTraceparent)
	req.Header.Set("X-Client-ID", "tenant-a")
	h.ServeHTTP(httptest.NewRecorder(), req)

	got := store.Get("0af7651916cd43dd8448eb211c80319c")
	if got == nil {
		t.Fatalf("remote trace not continued into the store")
	}
	rd := got.Roots[0]
	if !rd.Remote || rd.ParentID != "b7ad6b7169203331" {
		t.Fatalf("remote parent lost: %+v", rd)
	}
	want := map[string]string{
		"http.method": "GET", "http.route": "/data",
		"http.status": "200", "client.id": "tenant-a",
	}
	for _, a := range rd.Attrs {
		if v, ok := want[a.Key]; ok && v == a.Value {
			delete(want, a.Key)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing annotations %v in %+v", want, rd.Attrs)
	}
}

func TestMiddlewareMarksOverloadStatusesErrored(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError} {
		tr, store := newTestTracer(t, StoreConfig{SampleRate: 0})
		h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "no", status)
		}))
		req := httptest.NewRequest("GET", "/data", nil)
		h.ServeHTTP(httptest.NewRecorder(), req)

		list := store.List(0)
		if len(list) != 1 || !list[0].Error {
			t.Fatalf("status %d: trace not kept as errored (%+v)", status, list)
		}
	}
}

func TestMiddlewareOKTraceSampledOut(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 0, SlowThreshold: time.Hour})
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok")) // implicit 200 via Write
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/data", nil))
	if store.Len() != 0 {
		t.Fatalf("healthy fast trace kept at sample rate 0")
	}
	if store.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", store.Dropped())
	}
}

func TestMiddlewarePanicFinishesSpan(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 0})
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if rec := recover(); rec != http.ErrAbortHandler {
				t.Fatalf("panic not re-raised unchanged: %v", rec)
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/data", nil))
	}()
	list := store.List(0)
	if len(list) != 1 || !list[0].Error {
		t.Fatalf("aborted request's trace not stored as errored: %+v", list)
	}
}

func TestMiddlewareNilTracerPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Middleware(nil, inner); got == nil {
		t.Fatalf("nil tracer should pass through, got nil handler")
	}
}

func TestHandlerListAndGet(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{SampleRate: 1, SlowThreshold: time.Hour, Seed: 1})
	s.Offer(mkRoot(1, "alpha", time.Millisecond, true))
	s.Offer(mkRoot(2, "beta", 2*time.Millisecond, false))
	h := Handler(s)

	// Listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list status = %d", rec.Code)
	}
	var list listResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list body: %v", err)
	}
	if list.Count != 2 || len(list.Traces) != 2 || !list.Traces[0].Error {
		t.Fatalf("list = %+v", list)
	}

	// Bounded listing.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	list = listResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("bounded list body: %v", err)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("n=1 returned %d rows", len(list.Traces))
	}

	// Single trace by id.
	id := list.Traces[0].ID
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var tr Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace body: %v", err)
	}
	if tr.ID != id || len(tr.Roots) != 1 {
		t.Fatalf("trace = %+v", tr)
	}

	// Unknown id, bad n, bad method.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/feedbeef", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
}

func TestHandlerNilStore(t *testing.T) {
	h := Handler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil-store list status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/abc", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil-store get status = %d", rec.Code)
	}
}
