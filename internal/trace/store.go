package trace

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// StoreConfig tunes a Store. Zero values pick production-shaped
// defaults.
type StoreConfig struct {
	// Capacity bounds the number of retained traces; <= 0 uses 512.
	Capacity int
	// SampleRate in [0, 1] is the probability an *uninteresting* trace
	// (no errors, not slow) is kept anyway; interesting traces are
	// always kept. Negative means 0.
	SampleRate float64
	// SlowThreshold classifies a root span at or above this duration
	// as slow (and therefore always kept); <= 0 uses 250ms.
	SlowThreshold time.Duration
	// Seed makes the probabilistic sampling decisions reproducible for
	// tests; 0 seeds from wall time via the tracer's entropy rules.
	Seed int64
}

// Keep classes recorded in trace_store_kept_total{class}.
const (
	// KeptError: the trace contains an errored span or error event
	// (shed, quota denial, injected fault, breaker rejection, 5xx).
	KeptError = "error"
	// KeptSlow: the root span's duration met SlowThreshold.
	KeptSlow = "slow"
	// KeptSampled: an ordinary trace that won the probabilistic draw.
	KeptSampled = "sampled"
)

// Trace is one stored trace: every root span tree offered under the
// same trace id, in arrival order. A client-side trace holds one root
// per operation; a server-side trace accumulates one root per HTTP
// request that carried the id (each retry attempt of one logical call
// lands here as its own root, which is exactly the attribution the
// store exists for).
type Trace struct {
	ID    string      `json:"trace_id"`
	Roots []*SpanData `json:"roots"`
	// Error and Slow record why the trace was retained.
	Error bool `json:"error,omitempty"`
	Slow  bool `json:"slow,omitempty"`
}

// Duration returns the longest root duration, the trace's headline
// latency.
func (tr *Trace) Duration() time.Duration {
	var max time.Duration
	for _, r := range tr.Roots {
		if r.Duration > max {
			max = r.Duration
		}
	}
	return max
}

// Store is a bounded, concurrency-safe tail-sampling trace store:
// every finished root span tree is offered, interesting ones (errored
// or slow) are always kept, the rest survive a seeded coin flip, and
// capacity evicts ordinary traces before interesting ones, oldest
// first.
type Store struct {
	cfg StoreConfig

	mu      sync.Mutex
	rng     *rand.Rand        // guarded by mu
	traces  map[string]*Trace // guarded by mu
	arrival []string          // trace ids, insertion order; guarded by mu
	dropped uint64            // guarded by mu
	evicted uint64            // guarded by mu
}

// NewStore returns a store for cfg.
func NewStore(cfg StoreConfig) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	var src idSource
	src.seed(cfg.Seed)
	src.mu.Lock()
	rng := src.rng
	src.mu.Unlock()
	return &Store{cfg: cfg, rng: rng, traces: make(map[string]*Trace)}
}

// Offer submits one finished root span tree for tail sampling. The
// decision is made here, after the request completed — the definition
// of tail sampling: by now the store knows whether the request
// erred, was shed, or ran long.
func (s *Store) Offer(root *SpanData) {
	if s == nil || root == nil {
		return
	}
	errored := anyError(root)
	slow := root.Duration >= s.cfg.SlowThreshold

	s.mu.Lock()
	defer s.mu.Unlock()
	tr, exists := s.traces[root.TraceID]
	if !exists && !errored && !slow {
		// Ordinary trace: seeded coin flip.
		if s.rng.Float64() >= s.cfg.SampleRate {
			s.dropped++
			m().storeDropped.Inc()
			return
		}
	}
	if !exists {
		tr = &Trace{ID: root.TraceID}
		s.traces[root.TraceID] = tr
		s.arrival = append(s.arrival, root.TraceID)
	}
	tr.Roots = append(tr.Roots, root)
	tr.Error = tr.Error || errored
	tr.Slow = tr.Slow || slow
	switch {
	case errored:
		m().storeKept.With(KeptError).Inc()
	case slow:
		m().storeKept.With(KeptSlow).Inc()
	default:
		m().storeKept.With(KeptSampled).Inc()
	}
	s.evictLocked()
	m().storeOccupancy.Set(float64(len(s.traces)))
}

// evictLocked enforces capacity: ordinary traces go first, then the
// oldest interesting ones. Callers hold s.mu.
func (s *Store) evictLocked() {
	for len(s.traces) > s.cfg.Capacity {
		victim := -1
		for i, id := range s.arrival {
			if tr := s.traces[id]; tr != nil && !tr.Error && !tr.Slow {
				victim = i
				break
			}
		}
		if victim == -1 {
			victim = 0 // all interesting: oldest goes
		}
		id := s.arrival[victim]
		s.arrival = append(s.arrival[:victim], s.arrival[victim+1:]...)
		delete(s.traces, id)
		s.evicted++
		m().storeEvicted.Inc()
	}
}

// Get returns the stored trace for id, or nil.
func (s *Store) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces[id]
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Dropped returns how many offered traces the sampler declined.
func (s *Store) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Evicted returns how many retained traces capacity pushed out.
func (s *Store) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Capacity returns the configured retention bound.
func (s *Store) Capacity() int {
	if s == nil {
		return 0
	}
	return s.cfg.Capacity
}

// Summary is one trace's headline row in the /debug/traces listing.
type Summary struct {
	ID       string        `json:"trace_id"`
	Name     string        `json:"name"`
	Roots    int           `json:"roots"`
	Spans    int           `json:"spans"`
	Duration time.Duration `json:"duration_ns"`
	Error    bool          `json:"error,omitempty"`
	Slow     bool          `json:"slow,omitempty"`
}

// List returns up to n trace summaries, errored traces first, then by
// descending duration, ties broken by trace id so the order is
// deterministic. n <= 0 means all.
func (s *Store) List(n int) []Summary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Summary, 0, len(s.traces))
	for id, tr := range s.traces {
		sum := Summary{
			ID:       id,
			Roots:    len(tr.Roots),
			Duration: tr.Duration(),
			Error:    tr.Error,
			Slow:     tr.Slow,
		}
		if len(tr.Roots) > 0 {
			sum.Name = tr.Roots[0].Name
		}
		for _, r := range tr.Roots {
			sum.Spans += countSpans(r)
		}
		out = append(out, sum)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Error != out[j].Error {
			return out[i].Error
		}
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func countSpans(sd *SpanData) int {
	n := 1
	for _, c := range sd.Children {
		n += countSpans(c)
	}
	return n
}
