package trace

import (
	"encoding/hex"
	"net/http"
)

// Header is the W3C Trace Context propagation header.
const Header = "traceparent"

// SpanContext is the propagated slice of a span: enough to continue
// the trace across a process boundary.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// FormatTraceparent renders sc as a version-00 traceparent value:
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
func FormatTraceparent(sc SpanContext) string {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52] = '-'
	b[53] = '0'
	if sc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value per the W3C Trace
// Context spec (level 1, version 00 semantics):
//
//   - exactly version-format for version 00: 55 bytes, dashes at 2, 35,
//     52, all hex lowercase;
//   - version "ff" is invalid, as are an all-zero trace id or parent id;
//   - an unknown (non-00) version is accepted if its prefix parses as
//     the version-00 layout and any extra content is dash-separated,
//     per the spec's forward-compatibility rule.
//
// The second result is false when the value is unusable and the caller
// should start a fresh trace.
func ParseTraceparent(v string) (SpanContext, bool) {
	var sc SpanContext
	if len(v) < 55 {
		return sc, false
	}
	if !isLowerHex(v[0:2]) || v[0:2] == "ff" {
		return sc, false
	}
	version00 := v[0:2] == "00"
	if version00 && len(v) != 55 {
		return sc, false
	}
	if len(v) > 55 && v[55] != '-' {
		return sc, false
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return sc, false
	}
	if !isLowerHex(v[3:35]) || !isLowerHex(v[36:52]) || !isLowerHex(v[53:55]) {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(v[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(v[36:52])); err != nil {
		return sc, false
	}
	if sc.TraceID == (TraceID{}) || sc.SpanID == (SpanID{}) {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[53:55])); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}

// isLowerHex reports whether s is entirely lowercase hex digits. The
// spec forbids uppercase, so "AB" is rejected even though hex.Decode
// would take it.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// Inject stamps the active span's traceparent onto an outbound
// request. Without an active span it leaves the request untouched and
// allocates nothing.
func Inject(req *http.Request) {
	sp := FromContext(req.Context())
	if sp == nil {
		return
	}
	req.Header.Set(Header, FormatTraceparent(sp.Context()))
}

// Extract parses the inbound request's traceparent; ok is false when
// absent or malformed.
func Extract(r *http.Request) (SpanContext, bool) {
	v := r.Header.Get(Header)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}
