package trace

import (
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"
)

func TestRaceGetVsOffer(t *testing.T) {
	InitMetrics(nil)
	s := NewStore(StoreConfig{SampleRate: 1, Seed: 1, SlowThreshold: time.Hour})
	s.Offer(&SpanData{TraceID: "deadbeef", Name: "x", Error: true})
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 50000; i++ {
			s.Offer(&SpanData{TraceID: "deadbeef", Name: "x", Error: true})
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		tr := s.Get("deadbeef")
		for i := 0; i < 50000; i++ {
			enc := json.NewEncoder(io.Discard)
			_ = enc.Encode(tr)
		}
	}()
	close(start)
	wg.Wait()
}
