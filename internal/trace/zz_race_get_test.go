package trace

import (
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"
)

func TestRaceGetVsOffer(t *testing.T) {
	InitMetrics(nil)
	s := NewStore(StoreConfig{SampleRate: 1, Seed: 1, SlowThreshold: time.Hour})
	s.Offer(&SpanData{TraceID: "deadbeef", Name: "x", Error: true})
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// The iteration counts are deliberately modest: every Encode serializes
	// the trace as grown so far, so the total work is offers×encodes root
	// serializations — quadratic. 50k×50k (the original counts) needs ~10
	// CPU-minutes and times the suite out on slow hardware; 10k×1k keeps
	// the same Offer-append-vs-Get-read interleaving at ~10M.
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 10000; i++ {
			s.Offer(&SpanData{TraceID: "deadbeef", Name: "x", Error: true})
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		tr := s.Get("deadbeef")
		for i := 0; i < 1000; i++ {
			enc := json.NewEncoder(io.Discard)
			_ = enc.Encode(tr)
		}
	}()
	close(start)
	wg.Wait()
}
