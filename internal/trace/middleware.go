package trace

import (
	"net/http"
	"strconv"
)

// Middleware wraps an HTTP handler in a server span: the inbound
// traceparent (if valid) is continued so client retries and server
// processing land in one stored trace, the route and final status are
// annotated, and 429/5xx responses mark the trace errored so the tail
// sampler always keeps them.
//
// Mount it outermost: the chaos injector aborts connections by
// panicking with http.ErrAbortHandler, and the middleware must see
// that panic to finish the span (the abort is recorded, then
// re-raised for the server to handle).
//
// A nil tracer returns next unchanged — zero overhead when off.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sc, _ := Extract(r)
		ctx, sp := t.StartRemote(r.Context(), "http.server "+r.URL.Path, sc)
		sp.Annotate("http.method", r.Method)
		sp.Annotate("http.route", r.URL.Path)
		if client := r.Header.Get("X-Client-ID"); client != "" {
			sp.Annotate("client.id", client)
		}
		tw := &traceWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				// Chaos connection aborts (and real handler panics)
				// arrive here; the span must still be finished and
				// offered, then the panic re-raised unchanged.
				sp.Error("panic", A("recovered", "true"))
				sp.End()
				panic(rec)
			}
			status := tw.status
			if status == 0 {
				status = http.StatusOK
			}
			sp.Annotate("http.status", strconv.Itoa(status))
			if status >= http.StatusInternalServerError || status == http.StatusTooManyRequests {
				sp.Error("http.error", A("status", strconv.Itoa(status)))
			}
			sp.End()
		}()
		next.ServeHTTP(tw, r.WithContext(ctx))
	})
}

// traceWriter records the status code written by the handler chain.
type traceWriter struct {
	http.ResponseWriter
	status int
}

func (w *traceWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming;
// the chaos injector's stall fault depends on flushes reaching the
// connection.
func (w *traceWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
