package trace

import (
	"context"
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet bundles the tracing instrumentation handles, resolved once
// per registry so span start and store offers stay cheap.
type metricSet struct {
	spansStarted   *obs.Counter
	storeKept      *obs.CounterVec
	storeDropped   *obs.Counter
	storeEvicted   *obs.Counter
	storeOccupancy *obs.Gauge
}

var metrics atomic.Pointer[metricSet]

func init() {
	InitMetrics(obs.Default)
	// Bridge for histogram exemplars: obs cannot import this package
	// (we import it for metrics), so it reaches trace ids through this
	// seam. Costs nothing when no span is active.
	obs.SetTraceIDExtractor(func(ctx context.Context) string {
		if sp := FromContext(ctx); sp != nil {
			return sp.traceID.String()
		}
		return ""
	})
}

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default). Tests hand in a private registry to assert on
// recorded values without cross-talk.
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		spansStarted: reg.Counter("trace_spans_started_total",
			"Root spans started by tracers in this process."),
		storeKept: reg.CounterVec("trace_store_kept_total",
			"Traces retained by the tail sampler, by keep class.", "class"),
		storeDropped: reg.Counter("trace_store_dropped_total",
			"Ordinary traces the tail sampler declined to keep."),
		storeEvicted: reg.Counter("trace_store_evicted_total",
			"Retained traces pushed out by the store capacity bound."),
		storeOccupancy: reg.Gauge("trace_store_traces",
			"Traces currently retained in the tail-sampling store."),
	})
}

func m() *metricSet { return metrics.Load() }
