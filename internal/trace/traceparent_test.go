package trace

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

var validTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		ok    bool
		trace string
		span  string
		flag  bool
	}{
		{
			name:  "valid sampled",
			in:    validTraceparent,
			ok:    true,
			trace: "0af7651916cd43dd8448eb211c80319c",
			span:  "b7ad6b7169203331",
			flag:  true,
		},
		{
			name:  "valid unsampled",
			in:    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
			ok:    true,
			trace: "0af7651916cd43dd8448eb211c80319c",
			span:  "b7ad6b7169203331",
			flag:  false,
		},
		{
			name: "future version with extra dash-separated field",
			in:   "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
			ok:   true, trace: "0af7651916cd43dd8448eb211c80319c",
			span: "b7ad6b7169203331", flag: true,
		},
		{
			name: "future version exact length",
			in:   "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			ok:   true, trace: "0af7651916cd43dd8448eb211c80319c",
			span: "b7ad6b7169203331", flag: true,
		},
		{
			name: "sampled via other flag bits",
			in:   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-03",
			ok:   true, trace: "0af7651916cd43dd8448eb211c80319c",
			span: "b7ad6b7169203331", flag: true,
		},
		{name: "empty", in: "", ok: false},
		{name: "truncated", in: validTraceparent[:54], ok: false},
		{name: "version ff reserved", in: "ff" + validTraceparent[2:], ok: false},
		{name: "uppercase version", in: "0A" + validTraceparent[2:], ok: false},
		{name: "version 00 with trailing field", in: validTraceparent + "-extra", ok: false},
		{name: "version 00 trailing garbage", in: validTraceparent + "x", ok: false},
		{name: "future version junk after flags", in: "01" + validTraceparent[2:] + "x", ok: false},
		{
			name: "all-zero trace id",
			in:   "00-00000000000000000000000000000000-b7ad6b7169203331-01",
			ok:   false,
		},
		{
			name: "all-zero parent id",
			in:   "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
			ok:   false,
		},
		{
			name: "uppercase trace id",
			in:   "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
			ok:   false,
		},
		{
			name: "uppercase parent id",
			in:   "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01",
			ok:   false,
		},
		{
			name: "non-hex trace id",
			in:   "00-0ag7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			ok:   false,
		},
		{
			name: "missing dash after version",
			in:   "00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			ok:   false,
		},
		{
			name: "missing dash before flags",
			in:   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331x01",
			ok:   false,
		},
		{
			name: "uppercase flags",
			in:   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0A",
			ok:   false,
		},
		{name: "non-hex version", in: "zz" + validTraceparent[2:], ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent(tc.in)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if !ok {
				if sc != (SpanContext{}) {
					t.Fatalf("rejected parse leaked state: %+v", sc)
				}
				return
			}
			if sc.TraceID.String() != tc.trace {
				t.Errorf("trace id = %s, want %s", sc.TraceID, tc.trace)
			}
			if sc.SpanID.String() != tc.span {
				t.Errorf("span id = %s, want %s", sc.SpanID, tc.span)
			}
			if sc.Sampled != tc.flag {
				t.Errorf("sampled = %v, want %v", sc.Sampled, tc.flag)
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	sc := SpanContext{
		TraceID: TraceID{0x0a, 0xf7, 0x65, 0x19, 0x16, 0xcd, 0x43, 0xdd, 0x84, 0x48, 0xeb, 0x21, 0x1c, 0x80, 0x31, 0x9c},
		SpanID:  SpanID{0xb7, 0xad, 0x6b, 0x71, 0x69, 0x20, 0x33, 0x31},
		Sampled: true,
	}
	v := FormatTraceparent(sc)
	if v != validTraceparent {
		t.Fatalf("FormatTraceparent = %q, want %q", v, validTraceparent)
	}
	got, ok := ParseTraceparent(v)
	if !ok || got != sc {
		t.Fatalf("round trip lost data: %+v ok=%v", got, ok)
	}
}

func TestInjectExtract(t *testing.T) {
	tr, _ := newTestTracer(t, StoreConfig{SampleRate: 0})
	_, sp := tr.Start(context.Background(), "op")
	defer sp.End()

	req := httptest.NewRequest("GET", "http://example/x", nil)
	req = req.WithContext(ContextWith(req.Context(), sp))
	Inject(req)
	v := req.Header.Get(Header)
	if !strings.HasPrefix(v, "00-"+sp.TraceID().String()+"-") {
		t.Fatalf("injected header %q does not carry trace id %s", v, sp.TraceID())
	}
	sc, ok := Extract(req)
	if !ok || sc.TraceID != sp.TraceID() || !sc.Sampled {
		t.Fatalf("extract mismatch: %+v ok=%v", sc, ok)
	}

	// No active span: Inject must be a no-op.
	bare := httptest.NewRequest("GET", "http://example/x", nil)
	Inject(bare)
	if bare.Header.Get(Header) != "" {
		t.Fatalf("Inject stamped a header without an active span")
	}
	if _, ok := Extract(bare); ok {
		t.Fatalf("Extract invented a span context")
	}
}

// FuzzParseTraceparent checks the parser never panics and that every
// accepted value survives a format/reparse round trip.
func FuzzParseTraceparent(f *testing.F) {
	f.Add(validTraceparent)
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("-", 60))
	f.Fuzz(func(t *testing.T, v string) {
		sc, ok := ParseTraceparent(v)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected parse leaked state: %+v", sc)
			}
			return
		}
		if sc.TraceID == (TraceID{}) || sc.SpanID == (SpanID{}) {
			t.Fatalf("accepted zero id from %q", v)
		}
		re, ok2 := ParseTraceparent(FormatTraceparent(sc))
		if !ok2 || re.TraceID != sc.TraceID || re.SpanID != sc.SpanID || re.Sampled != sc.Sampled {
			t.Fatalf("round trip diverged for %q: %+v vs %+v", v, sc, re)
		}
	})
}
