package trace

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestDisabledTracingAllocates pins the package's cost contract: with
// no tracer installed, the instrumentation calls sprinkled through the
// crawl and serve paths must not allocate at all.
func TestDisabledTracingAllocates(t *testing.T) {
	ctx := context.Background()
	req := httptest.NewRequest("GET", "http://example/x", nil)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Start", func() {
			_, sp := Start(ctx, "op")
			sp.End()
		}},
		{"FromContext", func() {
			if FromContext(ctx) != nil {
				t.Fatal("unexpected span")
			}
		}},
		{"NilSpanMethods", func() {
			sp := FromContext(ctx)
			sp.Annotate("k", "v")
			sp.Event("e")
			sp.End()
		}},
		{"Inject", func() { Inject(req) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
				t.Fatalf("disabled %s allocates %.1f allocs/op, want 0", tc.name, avg)
			}
		})
	}
}

func BenchmarkDisabledStart(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "op")
		sp.Annotate("k", "v")
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	InitMetrics(nil)
	tr := New(Config{Store: NewStore(StoreConfig{SampleRate: 0, Seed: 1}), Seed: 1})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := tr.Start(ctx, "op")
		_, child := Start(c, "child")
		child.End()
		sp.End()
	}
}
