package trace

import (
	"context"
	"strings"
	"testing"

	"ensdropcatch/internal/obs"
)

// newTestTracer builds a seeded tracer+store pair on a private metrics
// registry so assertions never race other packages' counters.
func newTestTracer(t *testing.T, cfg StoreConfig) (*Tracer, *Store) {
	t.Helper()
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	store := NewStore(cfg)
	return New(Config{Store: store, Seed: 42}), store
}

func TestSpanTreeRecorded(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 1})

	ctx, root := tr.Start(context.Background(), "op")
	root.Annotate("k", "v")
	_, child := Start(ctx, "child")
	child.Event("tick", A("n", "1"))
	grandCtx, grand := Start(ContextWith(ctx, child), "grand")
	if FromContext(grandCtx) != grand {
		t.Fatalf("context does not carry innermost span")
	}
	grand.End()
	child.End()
	root.End()

	got := store.Get(root.TraceID().String())
	if got == nil {
		t.Fatalf("trace %s not stored", root.TraceID())
	}
	if len(got.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(got.Roots))
	}
	rd := got.Roots[0]
	if rd.Name != "op" || len(rd.Children) != 1 {
		t.Fatalf("root = %q with %d children, want op with 1", rd.Name, len(rd.Children))
	}
	cd := rd.Children[0]
	if cd.Name != "child" || cd.ParentID != rd.SpanID || len(cd.Children) != 1 {
		t.Fatalf("child tree malformed: %+v", cd)
	}
	if cd.Children[0].Name != "grand" || cd.Children[0].ParentID != cd.SpanID {
		t.Fatalf("grandchild tree malformed: %+v", cd.Children[0])
	}
	if len(rd.Attrs) != 1 || rd.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("root attrs = %+v", rd.Attrs)
	}
	if len(cd.Events) != 1 || cd.Events[0].Name != "tick" || cd.Events[0].Error {
		t.Fatalf("child events = %+v", cd.Events)
	}
	if rd.TraceID != cd.TraceID || cd.TraceID != cd.Children[0].TraceID {
		t.Fatalf("trace ids diverge within one tree")
	}
}

func TestErrorMarksTraceInteresting(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 0})

	// An ordinary fast trace is sampled out at rate 0...
	_, plain := tr.Start(context.Background(), "plain")
	plain.End()
	if store.Len() != 0 {
		t.Fatalf("plain trace kept at sample rate 0")
	}

	// ...but one with an error event deep in the tree is always kept.
	ctx, root := tr.Start(context.Background(), "errop")
	_, child := Start(ctx, "child")
	child.Error("overload.shed", A("reason", "queue_full"))
	child.End()
	root.End()

	got := store.Get(root.TraceID().String())
	if got == nil || !got.Error {
		t.Fatalf("errored trace not kept as interesting: %+v", got)
	}
	ev := got.Roots[0].Children[0].Events
	if len(ev) != 1 || ev[0].Name != "overload.shed" || !ev[0].Error {
		t.Fatalf("error event lost: %+v", ev)
	}
}

func TestEndErrRecordsMessage(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 0})
	_, sp := tr.Start(context.Background(), "op")
	sp.EndErr(context.DeadlineExceeded)
	got := store.Get(sp.TraceID().String())
	if got == nil {
		t.Fatalf("errored trace dropped")
	}
	ev := got.Roots[0].Events
	if len(ev) != 1 || !ev[0].Error || !strings.Contains(ev[0].Attrs[0].Value, "deadline") {
		t.Fatalf("EndErr event = %+v", ev)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 1})
	_, sp := tr.Start(context.Background(), "op")
	sp.End()
	sp.End()
	sp.EndErr(nil)
	got := store.Get(sp.TraceID().String())
	if got == nil || len(got.Roots) != 1 {
		t.Fatalf("double End duplicated the root: %+v", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.Annotate("k", "v")
	sp.Event("e")
	sp.Error("e")
	sp.End()
	sp.EndErr(context.Canceled)
	if sp.TraceID() != (TraceID{}) || sp.Context() != (SpanContext{}) {
		t.Fatalf("nil span leaked state")
	}
	ctx, child := Start(context.Background(), "child")
	if child != nil {
		t.Fatalf("Start without tracer returned a live span")
	}
	if ctx != context.Background() {
		t.Fatalf("Start without tracer rewrapped the context")
	}
}

func TestNilTracerStart(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "op")
	if sp != nil || ctx != context.Background() {
		t.Fatalf("nil tracer minted a span")
	}
	_, sp = tr.StartRemote(context.Background(), "op", SpanContext{})
	if sp != nil {
		t.Fatalf("nil tracer minted a remote span")
	}
}

func TestDefaultTracerStart(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 1})
	WithDefault(tr, func() {
		ctx, sp := Start(context.Background(), "viadefault")
		if sp == nil {
			t.Fatalf("default tracer not picked up")
		}
		_, child := Start(ctx, "child")
		child.End()
		sp.End()
		if store.Get(sp.TraceID().String()) == nil {
			t.Fatalf("default-tracer trace not stored")
		}
	})
	if Default() != nil {
		t.Fatalf("WithDefault did not restore the prior default")
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr, store := newTestTracer(t, StoreConfig{SampleRate: 1})
	remote := SpanContext{
		TraceID: TraceID{0xab, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		SpanID:  SpanID{0xcd, 1, 2, 3, 4, 5, 6, 7},
		Sampled: true,
	}
	_, sp := tr.StartRemote(context.Background(), "server", remote)
	if sp.TraceID() != remote.TraceID {
		t.Fatalf("remote trace id not kept: %s", sp.TraceID())
	}
	sp.End()
	got := store.Get(remote.TraceID.String())
	if got == nil {
		t.Fatalf("continued trace not stored under remote id")
	}
	rd := got.Roots[0]
	if rd.ParentID != remote.SpanID.String() || !rd.Remote {
		t.Fatalf("remote parent not recorded: %+v", rd)
	}
}

func TestStartRemoteZeroContextStartsFresh(t *testing.T) {
	tr, _ := newTestTracer(t, StoreConfig{SampleRate: 1})
	_, sp := tr.StartRemote(context.Background(), "server", SpanContext{})
	if sp == nil || sp.TraceID() == (TraceID{}) {
		t.Fatalf("zero SpanContext should start a fresh trace")
	}
	sp.End()
}

func TestSeededIDsDeterministic(t *testing.T) {
	a := New(Config{Seed: 7})
	b := New(Config{Seed: 7})
	for i := 0; i < 4; i++ {
		_, sa := a.Start(context.Background(), "x")
		_, sb := b.Start(context.Background(), "x")
		if sa.TraceID() != sb.TraceID() {
			t.Fatalf("seeded tracers diverged at span %d", i)
		}
		sa.End()
		sb.End()
	}
}
