package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
)

// TraceID is the 16-byte W3C trace id. The zero value is invalid (the
// spec reserves all-zeroes for "no trace").
type TraceID [16]byte

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 8-byte W3C parent/span id. The zero value is invalid.
type SpanID [8]byte

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idSource mints trace and span ids.
//
// This is the ID-generation seam the determinism story hangs on: like
// obs.NowWall for the wall clock, it is the one sanctioned source of
// randomness outside the detrand-enforced deterministic packages, and
// ids drawn from it may only ever flow into trace state — never into a
// dataset, world, or report byte (TestTracingDoesNotChangeFingerprint
// holds the pipeline to that). Seeded construction makes test traces
// reproducible; production tracers seed from the host entropy pool.
type idSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// seed initializes the source; 0 draws a seed from crypto/rand.
func (s *idSource) seed(seed int64) {
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy pool unreadable: fall back to a fixed seed rather
			// than fail — ids stay unique within the process, which is
			// all tracing needs.
			b[7] = 1
		}
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	s.mu.Lock()
	s.rng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
}

// traceID mints a non-zero trace id.
func (s *idSource) traceID() TraceID {
	var id TraceID
	s.mu.Lock()
	for id == (TraceID{}) {
		binary.LittleEndian.PutUint64(id[:8], s.rng.Uint64())
		binary.LittleEndian.PutUint64(id[8:], s.rng.Uint64())
	}
	s.mu.Unlock()
	return id
}

// spanID mints a non-zero span id.
func (s *idSource) spanID() SpanID {
	var id SpanID
	s.mu.Lock()
	for id == (SpanID{}) {
		binary.LittleEndian.PutUint64(id[:], s.rng.Uint64())
	}
	s.mu.Unlock()
	return id
}
