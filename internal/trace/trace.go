// Package trace is a dependency-free request-tracing toolkit for the
// reproduction pipeline: spans with parent/child links and typed
// events, W3C traceparent propagation between the crawl clients and
// the ensworld server, and a bounded in-memory tail-sampling store
// behind /debug/traces.
//
// The metrics layer (internal/obs) says how *many* requests were slow,
// retried, or shed; this package says *why one particular request*
// was: a span tree names the layer responsible — queue wait in the
// admission gate, a chaos-injected fault, a quota denial, a breaker
// cooldown, retry backoff — with timings attached. A multi-hour crawl
// that sheds at hour three is debugged from the stored trace, not by
// rerunning the crawl.
//
// # Cost discipline
//
// Tracing is strictly pay-for-what-you-use. With no tracer installed
// (the default), Start returns a nil *Span and the unchanged context —
// no allocation, no atomic write, nothing. Every *Span method is
// nil-safe, so instrumented code never branches on "is tracing on";
// hot paths that would compute attribute strings guard with a nil
// check first. The zero-allocation claim is enforced by
// TestDisabledTracingAllocates in this package and the request-path
// benchmarks against BENCH_PR3.json.
//
// # Determinism
//
// Trace and span IDs are random and wall-clock timestamps are real:
// this package is deliberately outside the detrand-enforced
// deterministic set (internal/world, internal/core, internal/dataset,
// …). The contract — the mirror of obs.NowWall's — is that trace state
// may only ever flow into the trace store, logs, and debug endpoints,
// never into a dataset, world, or report byte. ID generation is seeded
// through Config.Seed so tests are reproducible, and the
// traced-vs-untraced fingerprint tests hold the pipeline to it.
package trace

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are
// strings so encoding never chases interfaces; format numbers with the
// helpers below only after a nil-span check.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one timed annotation inside a span. Error-class events mark
// the whole trace interesting, which exempts it from tail sampling.
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Error bool      `json:"error,omitempty"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. Spans form a tree: the root
// is created by a Tracer (Start on a fresh context, or the server
// middleware continuing a remote parent), children by Start on a
// context already carrying a span. All methods are safe on a nil
// receiver (no-ops), so call sites need no enabled-check. Safe for
// concurrent use.
type Span struct {
	tracer *Tracer
	root   *Span // collection root this span reports completion to

	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	remote   bool // parentID lives in another process

	mu       sync.Mutex
	name     string    // guarded by mu
	start    time.Time // guarded by mu
	end      time.Time // guarded by mu
	err      bool      // guarded by mu
	attrs    []Attr    // guarded by mu
	events   []Event   // guarded by mu
	children []*Span   // guarded by mu
}

// Per-span growth caps. A span's attrs, events, and children all grow
// with request activity — a retry storm multiplies child spans, an
// error loop multiplies events — and the store's byte accounting only
// bounds *finished* traces. These caps bound a live span: past the
// limit, new children stay unlinked (they work but drop from the
// snapshot) and attrs/events are discarded. Generous enough that any
// trace hitting one was already unreadable.
const (
	maxSpanAttrs    = 64
	maxSpanEvents   = 256
	maxSpanChildren = 512
)

// spanKey is the context key for the active span; a zero-size type
// keeps ctx.Value lookups allocation-free.
type spanKey struct{}

// FromContext returns the active span, or nil when the context carries
// none. It never allocates.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWith returns ctx carrying sp as the active span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// Start begins a span named name. If ctx already carries a span the
// new span is its child (same trace, recorded into the same tree);
// otherwise a root span is started on the Default tracer. When neither
// applies — tracing off — it returns ctx unchanged and a nil span, at
// zero cost.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.newChild(name)
		return ContextWith(ctx, sp), sp
	}
	if t := Default(); t != nil {
		return t.Start(ctx, name)
	}
	return ctx, nil
}

// newChild creates and links a child span; nil receiver returns nil.
func (s *Span) newChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{
		tracer:   s.tracer,
		root:     s.root,
		traceID:  s.traceID,
		spanID:   s.tracer.newSpanID(),
		parentID: s.spanID,
		name:     name,
		start:    time.Now(),
	}
	s.mu.Lock()
	if len(s.children) < maxSpanChildren {
		s.children = append(s.children, child)
	}
	s.mu.Unlock()
	return child
}

// TraceID returns the span's trace id; zero on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// Context returns the span's propagation context for traceparent
// encoding; the zero SpanContext on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < maxSpanAttrs {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Event records an informational event on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.addEvent(Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// Error records an error-class event on the span and marks the span
// (and therefore the whole trace) errored, exempting it from tail
// sampling. Use it for the decisions worth keeping every time: sheds,
// quota denials, injected faults, breaker rejections.
func (s *Span) Error(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = true
	if len(s.events) < maxSpanEvents {
		s.events = append(s.events, Event{Name: name, Time: time.Now(), Error: true, Attrs: attrs})
	}
	s.mu.Unlock()
}

func (s *Span) addEvent(ev Event) {
	s.mu.Lock()
	if len(s.events) < maxSpanEvents {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// End completes the span. When the span is a collection root (started
// by a Tracer rather than as a child), its finished tree is offered to
// the tracer's store for tail sampling. End is idempotent; a nil span
// no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	s.mu.Unlock()
	if s.root == s && s.tracer != nil {
		s.tracer.finish(s)
	}
}

// EndErr completes the span, first recording err as an error event
// when non-nil. The common tail call: defer-friendly via closure.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Error("error", A("message", err.Error()))
	}
	s.End()
}

// snapshot converts the finished span tree to its exported form.
// Children still running when the root ends are snapshotted as-is
// (zero Duration).
func (s *Span) snapshot() *SpanData {
	s.mu.Lock()
	sd := &SpanData{
		TraceID:  s.traceID.String(),
		SpanID:   s.spanID.String(),
		ParentID: "",
		Name:     s.name,
		Start:    s.start,
		Error:    s.err,
		Attrs:    append([]Attr(nil), s.attrs...),
		Events:   append([]Event(nil), s.events...),
	}
	if s.parentID != (SpanID{}) {
		sd.ParentID = s.parentID.String()
	}
	sd.Remote = s.remote
	if !s.end.IsZero() {
		sd.Duration = s.end.Sub(s.start)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		sd.Children = append(sd.Children, c.snapshot())
	}
	return sd
}

// anyError reports whether sd or any descendant is errored.
func anyError(sd *SpanData) bool {
	if sd.Error {
		return true
	}
	for _, c := range sd.Children {
		if anyError(c) {
			return true
		}
	}
	return false
}

// SpanData is the exported, JSON-ready form of a finished span.
type SpanData struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Remote   bool          `json:"remote_parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Error    bool          `json:"error,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Children []*SpanData   `json:"children,omitempty"`
}
