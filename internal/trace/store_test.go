package trace

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

func mkRoot(id byte, name string, dur time.Duration, errored bool) *SpanData {
	var tid TraceID
	tid[0] = id
	tid[15] = 1
	return &SpanData{
		TraceID:  tid.String(),
		SpanID:   "0000000000000001",
		Name:     name,
		Duration: dur,
		Error:    errored,
	}
}

func TestStoreAlwaysKeepsInteresting(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{Capacity: 8, SampleRate: 0, SlowThreshold: time.Second, Seed: 1})

	s.Offer(mkRoot(1, "err", time.Millisecond, true))
	s.Offer(mkRoot(2, "slow", 2*time.Second, false))
	s.Offer(mkRoot(3, "plain", time.Millisecond, false))

	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (error + slow kept, plain sampled out)", s.Len())
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped())
	}
	if tr := s.Get(mkRoot(1, "", 0, false).TraceID); tr == nil || !tr.Error {
		t.Fatalf("errored trace missing or unmarked: %+v", tr)
	}
	if tr := s.Get(mkRoot(2, "", 0, false).TraceID); tr == nil || !tr.Slow {
		t.Fatalf("slow trace missing or unmarked: %+v", tr)
	}
}

func TestStoreChildErrorKeepsTrace(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{SampleRate: 0, Seed: 1})
	root := mkRoot(9, "op", time.Millisecond, false)
	root.Children = []*SpanData{{TraceID: root.TraceID, SpanID: "0000000000000002", Name: "inner", Error: true}}
	s.Offer(root)
	if tr := s.Get(root.TraceID); tr == nil || !tr.Error {
		t.Fatalf("child error did not keep the trace: %+v", tr)
	}
}

func TestStoreMergesRootsByTraceID(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{SampleRate: 0, Seed: 1})

	// Three server-side requests carrying one trace id — the shape of a
	// client retrying one logical call. The first errors (so the trace
	// is kept); the rest must land in the same trace.
	s.Offer(mkRoot(5, "attempt", time.Millisecond, true))
	s.Offer(mkRoot(5, "attempt", 2*time.Millisecond, false))
	s.Offer(mkRoot(5, "attempt", 3*time.Millisecond, false))

	tr := s.Get(mkRoot(5, "", 0, false).TraceID)
	if tr == nil || len(tr.Roots) != 3 {
		t.Fatalf("merged roots = %v, want 3", tr)
	}
	if tr.Duration() != 3*time.Millisecond {
		t.Fatalf("Duration = %v, want longest root", tr.Duration())
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 merged trace", s.Len())
	}
}

func TestStoreSamplingDeterministic(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	keptBySeed := func(seed int64) []string {
		s := NewStore(StoreConfig{Capacity: 1024, SampleRate: 0.5, SlowThreshold: time.Hour, Seed: seed})
		for i := 0; i < 64; i++ {
			s.Offer(mkRoot(byte(i), "op", time.Millisecond, false))
		}
		var ids []string
		for _, sum := range s.List(0) {
			ids = append(ids, sum.ID)
		}
		return ids
	}
	a, b := keptBySeed(11), keptBySeed(11)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("sampling at 0.5 kept %d of 64 — degenerate", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different keeps:\n%v\n%v", a, b)
	}
	c := keptBySeed(12)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical keeps (suspicious)")
	}
}

func TestStoreEvictionPrefersOrdinary(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{Capacity: 3, SampleRate: 1, SlowThreshold: time.Hour, Seed: 1})

	s.Offer(mkRoot(1, "err", time.Millisecond, true))
	s.Offer(mkRoot(2, "plain-old", time.Millisecond, false))
	s.Offer(mkRoot(3, "plain-new", time.Millisecond, false))
	s.Offer(mkRoot(4, "err2", time.Millisecond, true)) // over capacity

	if s.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", s.Len())
	}
	if s.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", s.Evicted())
	}
	// The oldest *ordinary* trace goes; both errored traces survive.
	if s.Get(mkRoot(2, "", 0, false).TraceID) != nil {
		t.Fatalf("oldest ordinary trace not evicted first")
	}
	for _, id := range []byte{1, 3, 4} {
		if s.Get(mkRoot(id, "", 0, false).TraceID) == nil {
			t.Fatalf("trace %d wrongly evicted", id)
		}
	}

	// All-interesting store: oldest interesting goes.
	s.Offer(mkRoot(5, "err3", time.Millisecond, true))
	s.Offer(mkRoot(6, "err4", time.Millisecond, true))
	if s.Get(mkRoot(1, "", 0, false).TraceID) != nil {
		t.Fatalf("oldest interesting trace should go once no ordinary remain")
	}
}

func TestStoreListOrdering(t *testing.T) {
	InitMetrics(obs.NewRegistry())
	t.Cleanup(func() { InitMetrics(nil) })
	s := NewStore(StoreConfig{SampleRate: 1, SlowThreshold: time.Hour, Seed: 1})
	s.Offer(mkRoot(1, "fast", time.Millisecond, false))
	s.Offer(mkRoot(2, "slower", 10*time.Millisecond, false))
	s.Offer(mkRoot(3, "errored", 2*time.Millisecond, true))

	got := s.List(0)
	if len(got) != 3 {
		t.Fatalf("List = %d rows, want 3", len(got))
	}
	if !got[0].Error || got[0].Name != "errored" {
		t.Fatalf("errored trace not first: %+v", got[0])
	}
	if got[1].Name != "slower" || got[2].Name != "fast" {
		t.Fatalf("duration ordering wrong: %+v", got[1:])
	}
	if capped := s.List(2); len(capped) != 2 {
		t.Fatalf("List(2) = %d rows", len(capped))
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	s.Offer(mkRoot(1, "x", 0, true))
	if s.Len() != 0 || s.Get("x") != nil || s.List(5) != nil || s.Dropped() != 0 || s.Capacity() != 0 {
		t.Fatalf("nil store leaked state")
	}
}

func TestTracerWithoutStorePropagatesOnly(t *testing.T) {
	tr := New(Config{Seed: 3})
	_, sp := tr.Start(context.Background(), "op")
	if sp == nil {
		t.Fatalf("propagate-only tracer should still mint spans")
	}
	sp.End() // must not panic with a nil store
	if tr.Store() != nil {
		t.Fatalf("Store() should be nil for propagate-only tracer")
	}
}
