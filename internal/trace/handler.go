package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the trace store over HTTP:
//
//	GET /debug/traces        — JSON listing, errored-then-slowest first;
//	                           ?n=K bounds the rows (default 50).
//	GET /debug/traces/{id}   — the full span tree for one trace id.
//
// Mount it at /debug/traces (it handles both the bare path and the
// per-id subpath). A nil store serves an empty listing and 404s ids,
// so wiring can be unconditional.
func Handler(store *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		if rest == "" {
			serveList(w, r, store)
			return
		}
		serveTrace(w, store, rest)
	})
}

// listResponse is the /debug/traces body.
type listResponse struct {
	Count    int       `json:"count"`
	Capacity int       `json:"capacity"`
	Dropped  uint64    `json:"dropped"`
	Evicted  uint64    `json:"evicted"`
	Traces   []Summary `json:"traces"`
}

func serveList(w http.ResponseWriter, r *http.Request, store *Store) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	resp := listResponse{
		Count:    store.Len(),
		Capacity: store.Capacity(),
		Dropped:  store.Dropped(),
		Evicted:  store.Evicted(),
		Traces:   store.List(n),
	}
	if resp.Traces == nil {
		resp.Traces = []Summary{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func serveTrace(w http.ResponseWriter, store *Store, id string) {
	tr := store.Get(id)
	if tr == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery failures; nothing actionable here.
	_ = enc.Encode(v)
}
