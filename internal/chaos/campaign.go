package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"ensdropcatch/internal/chaos/plan"
	"ensdropcatch/internal/trace"
)

// Campaign executes a plan.Plan: it binds the pure phase schedule to a
// virtual clock and a seeded generator, and injures traffic through the
// same fault machinery as the stateless Injector. Like the Injector it
// wraps either side of the wire — Wrap for a server, RoundTripper for a
// client — and both draw ticks and uniforms from one guarded source, so
// a campaign over a serial request stream is fully reproducible.
//
// The clock unit comes from the plan: UnitRequests advances one tick
// per observed request (deterministic — the schedule is a pure function
// of the request sequence), UnitMillis binds ticks to wall milliseconds
// since the first request (live drills).
type Campaign struct {
	cfg  Config
	plan *plan.Plan

	mu      sync.Mutex
	rng     *rand.Rand           // guarded by mu
	reqs    int64                // request-clock ticks consumed; guarded by mu
	started bool                 // wall clock bound; guarded by mu
	start   time.Time            // wall-clock zero for UnitMillis; guarded by mu
	stats   map[string]*phaseAcc // per-phase tallies; guarded by mu
}

// phaseAcc accumulates one phase's request outcomes.
type phaseAcc struct {
	requests int64
	clean    int64
	injected map[string]int64 // by kind: mix fault name, or mode name
}

// PhaseReport is one phase's deterministic tally: how many requests the
// phase saw, how many passed clean, and the injected-fault breakdown.
// Under plan.UnitRequests and a serial request stream these numbers are
// a pure function of (plan, seed, request sequence).
type PhaseReport struct {
	Phase    string           `json:"phase"`
	Requests int64            `json:"requests"`
	Clean    int64            `json:"clean"`
	Injected map[string]int64 `json:"injected,omitempty"`
}

// IdlePhase is the report bucket for requests arriving outside every
// phase (before the first offset, in gaps, or after the plan ends).
const IdlePhase = "idle"

// NewCampaign binds p to cfg's seed and fault tuning. Rate and Faults
// in cfg are ignored — the plan's rules own those — but Seed,
// RetryAfter, Delay, and StormDelay apply. p must already be validated.
func NewCampaign(p *plan.Plan, cfg Config) *Campaign {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	if cfg.StormDelay <= 0 {
		cfg.StormDelay = 5 * cfg.Delay
	}
	return &Campaign{
		cfg:   cfg,
		plan:  p,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		stats: make(map[string]*phaseAcc),
	}
}

// Plan returns the campaign's plan.
func (c *Campaign) Plan() *plan.Plan { return c.plan }

// Tick returns the current virtual time without consuming a tick.
func (c *Campaign) Tick() plan.Ticks {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.Unit == plan.UnitMillis {
		if !c.started {
			return 0
		}
		return plan.Ticks(time.Since(c.start).Milliseconds())
	}
	return plan.Ticks(c.reqs)
}

// Done reports whether the virtual clock has passed the last phase.
func (c *Campaign) Done() bool { return c.Tick() >= c.plan.End() }

// decide consumes one tick and two uniform draws and resolves the
// request's fate, tallying it into the phase stats.
func (c *Campaign) decide(route string) plan.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tick plan.Ticks
	if c.plan.Unit == plan.UnitMillis {
		if !c.started {
			c.started = true
			c.start = time.Now()
		}
		tick = plan.Ticks(time.Since(c.start).Milliseconds())
	} else {
		tick = plan.Ticks(c.reqs)
		c.reqs++
	}
	d := c.plan.Decide(tick, route, c.rng.Float64(), c.rng.Float64())
	name := d.Phase
	if name == "" {
		name = IdlePhase
	}
	acc := c.stats[name]
	if acc == nil {
		acc = &phaseAcc{injected: make(map[string]int64)}
		c.stats[name] = acc
	}
	acc.requests++
	m().campaignRequests.With(name).Inc()
	if kind := kindOf(d); kind == "" {
		acc.clean++
		m().passed.Inc()
	} else {
		acc.injected[kind]++
		m().injected.With(kind).Inc()
		m().campaignFaults.With(name, kind).Inc()
	}
	return d
}

// kindOf names a decision for stats and metrics: the drawn fault for
// mix rules, the mode for correlated ones, "" for clean.
func kindOf(d plan.Decision) string {
	switch {
	case d.Clean():
		return ""
	case d.Mode == plan.ModeMix:
		return d.Fault
	default:
		return string(d.Mode)
	}
}

// executable maps a decision onto the injector's fault vocabulary plus
// the delay it should use.
func (c *Campaign) executable(d plan.Decision) (Fault, time.Duration) {
	switch d.Mode {
	case plan.ModeMix:
		return Fault(d.Fault), c.cfg.Delay
	case plan.ModeBlackout:
		// The source is down: connections die with no HTTP answer.
		return FaultReset, 0
	case plan.ModeErrorBurst:
		return FaultServerError, 0
	case plan.ModeLatencyStorm:
		return FaultSlowBody, c.cfg.StormDelay
	default:
		return "", 0
	}
}

// Report returns the per-phase tallies in plan order (idle last), with
// copied maps so callers can hold them across further traffic.
func (c *Campaign) Report() []PhaseReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.plan.Phases)+1)
	for i := range c.plan.Phases {
		names = append(names, c.plan.Phases[i].Name)
	}
	names = append(names, IdlePhase)
	out := make([]PhaseReport, 0, len(names))
	for _, name := range names {
		acc := c.stats[name]
		if acc == nil {
			out = append(out, PhaseReport{Phase: name, Injected: map[string]int64{}})
			continue
		}
		inj := make(map[string]int64, len(acc.injected))
		for k, v := range acc.injected {
			inj[k] = v
		}
		out = append(out, PhaseReport{Phase: name, Requests: acc.requests, Clean: acc.clean, Injected: inj})
	}
	return out
}

// CheckSLOs evaluates each phase's SLO (when declared) against the
// campaign's tallies, returning one error per violated assertion. A
// fully passing campaign returns nil.
func (c *Campaign) CheckSLOs() []error {
	reps := c.Report()
	var errs []error
	for i := range c.plan.Phases {
		slo := c.plan.Phases[i].SLO
		if slo == nil {
			continue
		}
		rep := reps[i] // Report is in plan order, idle last
		injected := rep.Requests - rep.Clean
		if rep.Requests < slo.MinRequests {
			errs = append(errs, fmt.Errorf("phase %s: %d requests < min_requests %d",
				rep.Phase, rep.Requests, slo.MinRequests))
		}
		if slo.MinCleanFraction > 0 {
			frac := 0.0
			if rep.Requests > 0 {
				frac = float64(rep.Clean) / float64(rep.Requests)
			}
			if frac < slo.MinCleanFraction {
				errs = append(errs, fmt.Errorf("phase %s: clean fraction %.4f < min_clean_fraction %.4f",
					rep.Phase, frac, slo.MinCleanFraction))
			}
		}
		if injected < slo.MinInjected {
			errs = append(errs, fmt.Errorf("phase %s: %d injected faults < min_injected %d",
				rep.Phase, injected, slo.MinInjected))
		}
	}
	return errs
}

// Wrap returns a handler that runs the campaign against inbound
// requests; clean decisions pass through untouched.
func (c *Campaign) Wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := c.decide(r.URL.Path)
		if d.Clean() {
			inner.ServeHTTP(w, r)
			return
		}
		// Annotate before acting: connection-aborting faults never reach
		// the status-recording middleware, so the span annotation is the
		// only attribution the stored trace gets.
		if sp := trace.FromContext(r.Context()); sp != nil {
			sp.Error("chaos.fault",
				trace.A("kind", kindOf(d)),
				trace.A("phase", d.Phase))
		}
		fault, delay := c.executable(d)
		serveFault(w, r, inner, fault, retryAfterSeconds(c.cfg.RetryAfter), delay)
	})
}

// RoundTripper returns a transport that runs the campaign client-side.
// next == nil uses http.DefaultTransport.
func (c *Campaign) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		d := c.decide(req.URL.Path)
		if d.Clean() {
			return next.RoundTrip(req)
		}
		fault, delay := c.executable(d)
		return tripFault(req, next, fault, retryAfterSeconds(c.cfg.RetryAfter), delay)
	})
}
