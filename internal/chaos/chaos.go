// Package chaos is a deterministic fault-injection harness for the mock
// data-source servers (subgraph, Etherscan, OpenSea) and their clients.
// The paper's crawl ran for weeks against live APIs where 429s, 5xxs,
// dropped connections, and truncated payloads are routine; this package
// reproduces those conditions on demand so the pipeline's retry, breaker,
// and resume machinery can be exercised end-to-end under a seeded,
// repeatable fault schedule.
//
// An Injector wraps either side of the wire: Wrap produces an
// http.Handler that injects faults before (or into) the inner handler's
// response, and RoundTripper produces an http.RoundTripper that injects
// the equivalent failures client-side without a server. Both draw from
// the same seeded source, so a given (Seed, Rate, Faults) configuration
// yields a reproducible fault sequence.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ensdropcatch/internal/trace"
)

// Fault names one injectable failure mode.
type Fault string

const (
	// FaultRateLimit answers 429 Too Many Requests with a Retry-After
	// header (fractional seconds, so tests can keep backoff short).
	FaultRateLimit Fault = "ratelimit"
	// FaultServerError answers 500 Internal Server Error.
	FaultServerError Fault = "servererror"
	// FaultReset aborts the connection before any response bytes.
	FaultReset Fault = "reset"
	// FaultSlowBody delays the (otherwise correct) response by Delay.
	FaultSlowBody Fault = "slowbody"
	// FaultStall hangs for Delay and then aborts the connection, the
	// shape of a request that times out server-side.
	FaultStall Fault = "stall"
	// FaultTruncate sends roughly half of the correct response body and
	// then aborts the connection, producing truncated JSON.
	FaultTruncate Fault = "truncate"
)

// AllFaults lists every injectable fault mode.
func AllFaults() []Fault {
	return []Fault{FaultRateLimit, FaultServerError, FaultReset, FaultSlowBody, FaultStall, FaultTruncate}
}

// Config tunes an Injector.
type Config struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// Rate in [0, 1] is the per-request fault probability.
	Rate float64
	// Faults is the enabled fault set; nil enables AllFaults.
	Faults []Fault
	// RetryAfter is the hint sent with injected 429s; <= 0 uses 1s.
	RetryAfter time.Duration
	// Delay is the slow-body and stall duration; <= 0 uses 50ms.
	Delay time.Duration
	// StormDelay is the latency-storm delay used by campaigns
	// (plan.ModeLatencyStorm); <= 0 uses 5× Delay. The stateless
	// Injector never uses it.
	StormDelay time.Duration
}

// Injector deterministically injects faults into HTTP traffic. Safe for
// concurrent use; under concurrency the fault *sequence* is still drawn
// deterministically from the seed, though its assignment to requests
// follows arrival order.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Rate < 0 {
		cfg.Rate = 0
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = AllFaults()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// pick draws the next scheduled fault, or "" for a clean request.
func (in *Injector) pick() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.Rate {
		return ""
	}
	return in.cfg.Faults[in.rng.Intn(len(in.cfg.Faults))]
}

// retryAfterSeconds renders the Retry-After hint; fractional values keep
// chaos tests fast while integer values match real servers.
func retryAfterSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// Wrap returns a handler that injects faults around inner. Clean
// requests pass through untouched.
func (in *Injector) Wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fault := in.pick()
		if fault != "" {
			m().injected.With(string(fault)).Inc()
			// Record the injected fault on the request's span before
			// acting: faults that abort the connection never reach the
			// status-recording middleware, so the annotation is the only
			// attribution the stored trace gets.
			if sp := trace.FromContext(r.Context()); sp != nil {
				sp.Error("chaos.fault", trace.A("kind", string(fault)))
			}
		} else {
			m().passed.Inc()
		}
		if fault == "" {
			inner.ServeHTTP(w, r)
			return
		}
		serveFault(w, r, inner, fault, retryAfterSeconds(in.cfg.RetryAfter), in.cfg.Delay)
	})
}

// serveFault executes one server-side fault around inner. It is shared
// between the stateless Injector and campaign phases, so both injure
// traffic in exactly the same way.
func serveFault(w http.ResponseWriter, r *http.Request, inner http.Handler, fault Fault, retryAfter string, delay time.Duration) {
	switch fault {
	case FaultRateLimit:
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, "chaos: rate limited", http.StatusTooManyRequests)
	case FaultServerError:
		http.Error(w, "chaos: internal error", http.StatusInternalServerError)
	case FaultReset:
		// ErrAbortHandler makes the server drop the connection with
		// no response and no panic log.
		panic(http.ErrAbortHandler)
	case FaultSlowBody:
		sleep(r, delay)
		inner.ServeHTTP(w, r)
	case FaultStall:
		sleep(r, delay)
		panic(http.ErrAbortHandler)
	case FaultTruncate:
		rec := &recorder{header: make(http.Header)}
		inner.ServeHTTP(rec, r)
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		// Promise the full body, deliver half, then kill the
		// connection so clients see an unexpected EOF rather than a
		// plausible short document.
		w.Header().Set("Content-Length", strconv.Itoa(rec.body.Len()))
		if rec.status != 0 {
			w.WriteHeader(rec.status)
		}
		w.Write(rec.body.Bytes()[:rec.body.Len()/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	default:
		inner.ServeHTTP(w, r)
	}
}

// sleep waits for d or until the request is cancelled.
func sleep(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.Context().Done():
	case <-t.C:
	}
}

// recorder buffers an inner handler's response for partial replay.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// ErrInjected marks transport-level failures synthesized by the
// RoundTripper, so tests can tell injected resets from real ones.
var ErrInjected = fmt.Errorf("chaos: injected connection failure")

// RoundTripper returns a transport that injects the configured faults
// client-side. next == nil uses http.DefaultTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		fault := in.pick()
		if fault != "" {
			m().injected.With(string(fault)).Inc()
		} else {
			m().passed.Inc()
		}
		if fault == "" {
			return next.RoundTrip(req)
		}
		return tripFault(req, next, fault, retryAfterSeconds(in.cfg.RetryAfter), in.cfg.Delay)
	})
}

// tripFault executes one client-side fault, shared between the
// stateless Injector and campaign phases.
func tripFault(req *http.Request, next http.RoundTripper, fault Fault, retryAfter string, delay time.Duration) (*http.Response, error) {
	switch fault {
	case FaultRateLimit:
		resp := synthesize(req, http.StatusTooManyRequests, "chaos: rate limited\n")
		resp.Header.Set("Retry-After", retryAfter)
		return resp, nil
	case FaultServerError:
		return synthesize(req, http.StatusInternalServerError, "chaos: internal error\n"), nil
	case FaultReset:
		return nil, ErrInjected
	case FaultSlowBody:
		sleep(req, delay)
	case FaultStall:
		sleep(req, delay)
		return nil, ErrInjected
	}
	resp, err := next.RoundTrip(req)
	if err != nil || fault != FaultTruncate {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(io.MultiReader(
		bytes.NewReader(body[:len(body)/2]),
		errReader{io.ErrUnexpectedEOF},
	))
	return resp, nil
}

// synthesize builds a minimal fault response without touching the network.
func synthesize(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		Status:        http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }
