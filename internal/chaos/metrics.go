package chaos

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the package's instrumentation handles.
type metricSet struct {
	injected         *obs.CounterVec
	passed           *obs.Counter
	campaignRequests *obs.CounterVec
	campaignFaults   *obs.CounterVec
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		injected: reg.CounterVec("chaos_faults_injected_total",
			"Faults injected into requests, by fault mode.", "fault"),
		passed: reg.Counter("chaos_requests_passed_total",
			"Requests the injector let through cleanly."),
		campaignRequests: reg.CounterVec("chaos_campaign_requests_total",
			"Requests observed by a campaign, by phase.", "phase"),
		campaignFaults: reg.CounterVec("chaos_campaign_faults_total",
			"Faults a campaign injected, by phase and kind.", "phase", "kind"),
	})
}

func m() *metricSet { return metrics.Load() }
