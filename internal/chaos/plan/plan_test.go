package plan

import (
	"strings"
	"testing"
)

func validPlan() *Plan {
	return &Plan{
		Name: "blackout-recovery",
		Unit: UnitRequests,
		Phases: []Phase{
			{Name: "warmup", Offset: 0, Duration: 100},
			{Name: "blackout", Offset: 100, Duration: 200, Rules: []Rule{
				{Route: "/etherscan/", Mode: ModeBlackout},
				{Mode: ModeMix, Rate: 0.1},
			}},
			{Name: "recovery", Offset: 300, Duration: 300},
		},
	}
}

func TestValidateAcceptsWellFormedPlan(t *testing.T) {
	if err := validPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Plan)
		wantSub string
	}{
		{"no name", func(p *Plan) { p.Name = "" }, "name is required"},
		{"bad unit", func(p *Plan) { p.Unit = "hours" }, "unknown unit"},
		{"no phases", func(p *Plan) { p.Phases = nil }, "at least one phase"},
		{"unnamed phase", func(p *Plan) { p.Phases[0].Name = "" }, "name is required"},
		{"duplicate phase", func(p *Plan) { p.Phases[2].Name = "warmup" }, "duplicate phase"},
		{"negative offset", func(p *Plan) { p.Phases[0].Offset = -1 }, "negative offset"},
		{"zero duration", func(p *Plan) { p.Phases[1].Duration = 0 }, "duration must be positive"},
		{"overlap", func(p *Plan) { p.Phases[2].Offset = 250 }, "overlaps"},
		{"bad route", func(p *Plan) { p.Phases[1].Rules[0].Route = "etherscan" }, "must start with /"},
		{"bad mode", func(p *Plan) { p.Phases[1].Rules[0].Mode = "meltdown" }, "unknown mode"},
		{"bad rate", func(p *Plan) { p.Phases[1].Rules[1].Rate = 1.5 }, "out of [0, 1]"},
		{"bad fault", func(p *Plan) { p.Phases[1].Rules[1].Faults = []string{"gremlins"} }, "unknown fault"},
		{"blackout with rate", func(p *Plan) { p.Phases[1].Rules[0].Rate = 0.5 }, "takes no rate"},
		{"flap no period", func(p *Plan) { p.Phases[1].Rules[0] = Rule{Mode: ModeFlap} }, "period must be positive"},
		{"flap bad duty", func(p *Plan) { p.Phases[1].Rules[0] = Rule{Mode: ModeFlap, Period: 10, Duty: 1} }, "duty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validPlan()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestPhaseAt(t *testing.T) {
	p := validPlan()
	cases := []struct {
		tick Ticks
		want string
	}{
		{0, "warmup"}, {99, "warmup"}, {100, "blackout"}, {299, "blackout"},
		{300, "recovery"}, {599, "recovery"}, {600, ""}, {1 << 40, ""},
	}
	for _, tc := range cases {
		got := ""
		if ph := p.PhaseAt(tc.tick); ph != nil {
			got = ph.Name
		}
		if got != tc.want {
			t.Errorf("PhaseAt(%d) = %q, want %q", tc.tick, got, tc.want)
		}
	}
}

func TestPhaseAtGapBetweenPhases(t *testing.T) {
	p := &Plan{Name: "gap", Phases: []Phase{
		{Name: "a", Offset: 0, Duration: 10},
		{Name: "b", Offset: 20, Duration: 10},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if ph := p.PhaseAt(15); ph != nil {
		t.Fatalf("PhaseAt(15) in a gap = %q, want nil", ph.Name)
	}
}

func TestDecideRoutePrecedence(t *testing.T) {
	p := validPlan()
	// During the blackout phase /etherscan/ is blacked out; every other
	// route falls through to the catch-all mix rule.
	d := p.Decide(150, "/etherscan/api", 0.99, 0)
	if d.Mode != ModeBlackout {
		t.Fatalf("etherscan during blackout: mode %q, want blackout", d.Mode)
	}
	if d.Phase != "blackout" {
		t.Fatalf("phase %q, want blackout", d.Phase)
	}
	// u1 above the 0.1 mix rate: clean.
	if d := p.Decide(150, "/subgraph", 0.99, 0); !d.Clean() {
		t.Fatalf("subgraph with u1=0.99: mode %q, want clean", d.Mode)
	}
	// u1 under the rate: a mix fault drawn by u2.
	d = p.Decide(150, "/subgraph", 0.05, 0)
	if d.Mode != ModeMix || d.Fault != Faults[0] {
		t.Fatalf("subgraph with u1=0.05 u2=0: got %+v, want mix/%s", d, Faults[0])
	}
	// Outside every phase: clean, no phase.
	if d := p.Decide(700, "/subgraph", 0, 0); !d.Clean() || d.Phase != "" {
		t.Fatalf("beyond plan end: %+v, want clean idle", d)
	}
	// Clean phases serve everything.
	if d := p.Decide(50, "/etherscan/api", 0, 0); !d.Clean() {
		t.Fatalf("warmup: %+v, want clean", d)
	}
}

func TestDecideFlap(t *testing.T) {
	p := &Plan{Name: "flappy", Phases: []Phase{
		{Name: "flap", Offset: 10, Duration: 100, Rules: []Rule{
			{Mode: ModeFlap, Period: 10}, // duty defaults to 0.5
		}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Within each 10-tick cycle (phase-relative) the first 5 ticks are
	// blacked out, the rest clean.
	for rel, wantDown := range map[Ticks]bool{0: true, 4: true, 5: false, 9: false, 10: true, 14: true, 15: false} {
		d := p.Decide(10+rel, "/any", 0, 0)
		down := d.Mode == ModeBlackout
		if down != wantDown {
			t.Errorf("flap at relative tick %d: down=%v, want %v", rel, down, wantDown)
		}
	}
}

func TestDecideIsPure(t *testing.T) {
	p := validPlan()
	for i := 0; i < 100; i++ {
		a := p.Decide(Ticks(i*7), "/etherscan/api", 0.03, 0.42)
		b := p.Decide(Ticks(i*7), "/etherscan/api", 0.03, 0.42)
		if a != b {
			t.Fatalf("Decide not pure at tick %d: %+v vs %+v", i*7, a, b)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc := `{
		"name": "doc",
		"unit": "requests",
		"phases": [
			{"name": "warm", "offset": 0, "duration": 50},
			{"name": "storm", "offset": 50, "duration": 100, "rules": [
				{"route": "/subgraph", "mode": "latency_storm"},
				{"mode": "mix", "rate": 0.2, "faults": ["ratelimit", "truncate"]}
			]}
		]
	}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "doc" || len(p.Phases) != 2 || p.End() != 150 {
		t.Fatalf("parsed plan mangled: %+v", p)
	}
	if d := p.Decide(60, "/subgraph", 0, 0); d.Mode != ModeLatencyStorm {
		t.Fatalf("storm phase subgraph: %+v", d)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"name": "x", "phases": []}`)); err == nil {
		t.Fatal("empty-phase plan accepted")
	}
	if _, err := Parse([]byte(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
