// Package plan describes deterministic chaos campaigns: ordered phases
// on a virtual campaign clock, each phase carrying per-route fault
// rules. A Plan is pure data — it owns no clock, no RNG, and no I/O —
// so the same plan resolved against the same tick sequence and the same
// uniform draws always yields the same fault decisions. The chaos
// package binds a Plan to a clock source and a seeded generator to make
// it executable; this package only answers "what should happen to a
// request on route R at tick T given draws (u1, u2)?".
//
// The virtual clock is deliberately unit-agnostic: a tick may be a
// millisecond of wall time (live drills) or one observed request
// (byte-reproducible drills — the unit cmd/enschaos uses for its
// determinism contract). Plans themselves never touch wall time; the
// detrand analyzer enforces that.
//
// Beyond the stateless per-request fault mix the PR 2 injector could
// express, phases model the correlated failures that actually kill long
// crawls: a source blacking out entirely for a window, a latency storm,
// an error burst, and flapping (periodic up/down inside one phase).
package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Ticks is a duration or instant on the virtual campaign clock. Its
// unit is declared by Plan.Unit and interpreted by the runner.
type Ticks int64

// Unit names what one tick means to the campaign runner.
type Unit string

const (
	// UnitRequests advances the clock by one per observed request —
	// the fully deterministic unit: the fault schedule becomes a pure
	// function of the request sequence.
	UnitRequests Unit = "requests"
	// UnitMillis maps ticks to wall milliseconds since campaign start.
	// Live drills use it; determinism contracts cannot.
	UnitMillis Unit = "millis"
)

// Mode selects how a rule injures the requests it matches.
type Mode string

const (
	// ModeMix injects a random fault from Faults at probability Rate —
	// the PR 2 injector's stateless behaviour, now scoped to a phase
	// and a route.
	ModeMix Mode = "mix"
	// ModeBlackout kills every matched request at the transport level:
	// the source is down, connections die, no HTTP answer exists.
	ModeBlackout Mode = "blackout"
	// ModeLatencyStorm delays every matched request (then serves it
	// correctly): the source is up but drowning.
	ModeLatencyStorm Mode = "latency_storm"
	// ModeErrorBurst answers every matched request with HTTP 500: the
	// source is up but broken.
	ModeErrorBurst Mode = "error_burst"
	// ModeFlap alternates blackout and clean service inside the phase:
	// Period ticks per cycle, blacked out for the first Duty fraction
	// of each cycle. The shape of a source restarting in a loop.
	ModeFlap Mode = "flap"
)

// Faults lists the fault names ModeMix rules may draw from. It mirrors
// chaos.AllFaults; the cross-package equality is pinned by a test in
// the chaos package.
var Faults = []string{"ratelimit", "servererror", "reset", "slowbody", "stall", "truncate"}

// Decision is the resolved outcome for one request.
type Decision struct {
	// Phase is the active phase's name, "" when the clock is outside
	// every phase (before the first offset or after the last end).
	Phase string
	// Mode is the matched rule's mode; "" means serve cleanly.
	Mode Mode
	// Fault is the drawn fault name for ModeMix decisions.
	Fault string
}

// Clean reports whether the request should be served untouched.
func (d Decision) Clean() bool { return d.Mode == "" }

// Rule scopes one failure behaviour to the routes it matches.
type Rule struct {
	// Route is a request-path prefix ("/etherscan/"); empty matches
	// every route. The longest matching prefix among a phase's rules
	// wins, so a phase can black out one source while only slowing the
	// rest.
	Route string `json:"route,omitempty"`
	// Mode selects the failure behaviour; defaults to ModeMix.
	Mode Mode `json:"mode,omitempty"`
	// Rate in [0, 1] is the per-request fault probability for ModeMix.
	Rate float64 `json:"rate,omitempty"`
	// Faults is the ModeMix fault set; empty means all of Faults.
	Faults []string `json:"faults,omitempty"`
	// Period is the flap cycle length in ticks (ModeFlap only).
	Period Ticks `json:"period,omitempty"`
	// Duty in (0, 1) is the blacked-out fraction of each flap cycle;
	// 0 defaults to 0.5.
	Duty float64 `json:"duty,omitempty"`
}

// SLO is an optional per-phase assertion a campaign runner checks
// against the phase's tally after the drill. Like the rest of the plan
// it is pure data; cmd/enschaos evaluates it via Campaign.CheckSLOs.
type SLO struct {
	// MinRequests fails the phase if it observed fewer requests — a
	// crawl that stalled out before reaching the phase is not a pass.
	MinRequests int64 `json:"min_requests,omitempty"`
	// MinCleanFraction in [0, 1] fails the phase if clean/requests fell
	// below it. Recovery phases assert 1 here: after the fault window
	// closes, traffic must be fully healthy again.
	MinCleanFraction float64 `json:"min_clean_fraction,omitempty"`
	// MinInjected fails the phase if fewer faults were injected —
	// proof the drill actually drilled, not a vacuous pass.
	MinInjected int64 `json:"min_injected,omitempty"`
}

// Phase is one window of the campaign.
type Phase struct {
	// Name labels the phase in reports and SLO assertions.
	Name string `json:"name"`
	// Offset is the phase start on the virtual clock.
	Offset Ticks `json:"offset"`
	// Duration is the phase length; phases may not overlap.
	Duration Ticks `json:"duration"`
	// Rules are the phase's failure behaviours; an empty list is a
	// clean (observation/recovery) phase.
	Rules []Rule `json:"rules,omitempty"`
	// SLO, when set, is asserted against the phase's report.
	SLO *SLO `json:"slo,omitempty"`
}

// End returns the first tick after the phase.
func (p *Phase) End() Ticks { return p.Offset + p.Duration }

// Plan is a full campaign scenario.
type Plan struct {
	// Name identifies the campaign in reports.
	Name string `json:"name"`
	// Unit declares what one tick means; defaults to UnitRequests.
	Unit Unit `json:"unit,omitempty"`
	// Phases are the campaign windows, sorted by Offset.
	Phases []Phase `json:"phases"`
}

// End returns the first tick after the final phase.
func (p *Plan) End() Ticks {
	if len(p.Phases) == 0 {
		return 0
	}
	return p.Phases[len(p.Phases)-1].End()
}

// Validate checks the plan's structural invariants: a name, at least
// one phase, phases sorted and non-overlapping with positive durations,
// modes and fault names drawn from the known sets, rates and duties in
// range, flap periods positive. A plan that validates cannot surprise
// the runner.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("plan: name is required")
	}
	switch p.Unit {
	case "", UnitRequests, UnitMillis:
	default:
		return fmt.Errorf("plan %s: unknown unit %q (want %q or %q)", p.Name, p.Unit, UnitRequests, UnitMillis)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("plan %s: at least one phase is required", p.Name)
	}
	names := make(map[string]bool, len(p.Phases))
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Name == "" {
			return fmt.Errorf("plan %s: phase %d: name is required", p.Name, i)
		}
		if names[ph.Name] {
			return fmt.Errorf("plan %s: duplicate phase name %q", p.Name, ph.Name)
		}
		names[ph.Name] = true
		if ph.Offset < 0 {
			return fmt.Errorf("plan %s: phase %q: negative offset %d", p.Name, ph.Name, ph.Offset)
		}
		if ph.Duration <= 0 {
			return fmt.Errorf("plan %s: phase %q: duration must be positive, got %d", p.Name, ph.Name, ph.Duration)
		}
		if i > 0 && ph.Offset < p.Phases[i-1].End() {
			return fmt.Errorf("plan %s: phase %q (offset %d) overlaps %q (ends %d)",
				p.Name, ph.Name, ph.Offset, p.Phases[i-1].Name, p.Phases[i-1].End())
		}
		for j := range ph.Rules {
			if err := validateRule(&ph.Rules[j]); err != nil {
				return fmt.Errorf("plan %s: phase %q: rule %d: %w", p.Name, ph.Name, j, err)
			}
		}
		if s := ph.SLO; s != nil {
			if s.MinRequests < 0 || s.MinInjected < 0 {
				return fmt.Errorf("plan %s: phase %q: slo counts must be non-negative", p.Name, ph.Name)
			}
			if s.MinCleanFraction < 0 || s.MinCleanFraction > 1 {
				return fmt.Errorf("plan %s: phase %q: slo min_clean_fraction %v out of [0, 1]",
					p.Name, ph.Name, s.MinCleanFraction)
			}
		}
	}
	return nil
}

func validateRule(r *Rule) error {
	if r.Route != "" && !strings.HasPrefix(r.Route, "/") {
		return fmt.Errorf("route %q must start with /", r.Route)
	}
	switch r.Mode {
	case "", ModeMix:
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("mix rate %v out of [0, 1]", r.Rate)
		}
		for _, f := range r.Faults {
			if !knownFault(f) {
				return fmt.Errorf("unknown fault %q (want one of %s)", f, strings.Join(Faults, ", "))
			}
		}
	case ModeBlackout, ModeLatencyStorm, ModeErrorBurst:
		if len(r.Faults) != 0 || r.Rate != 0 {
			return fmt.Errorf("mode %s takes no rate or fault list", r.Mode)
		}
	case ModeFlap:
		if r.Period <= 0 {
			return fmt.Errorf("flap period must be positive, got %d", r.Period)
		}
		if r.Duty < 0 || r.Duty >= 1 {
			return fmt.Errorf("flap duty %v out of [0, 1)", r.Duty)
		}
	default:
		return fmt.Errorf("unknown mode %q", r.Mode)
	}
	return nil
}

func knownFault(name string) bool {
	for _, f := range Faults {
		if f == name {
			return true
		}
	}
	return false
}

// PhaseAt returns the phase covering tick, or nil between/outside
// phases.
func (p *Plan) PhaseAt(tick Ticks) *Phase {
	// Phases are sorted by offset; find the last phase starting at or
	// before tick and check containment.
	i := sort.Search(len(p.Phases), func(i int) bool { return p.Phases[i].Offset > tick })
	if i == 0 {
		return nil
	}
	ph := &p.Phases[i-1]
	if tick >= ph.End() {
		return nil
	}
	return ph
}

// ruleFor picks the matching rule with the longest route prefix, or nil
// when no rule matches.
func (ph *Phase) ruleFor(route string) *Rule {
	var best *Rule
	bestLen := -1
	for i := range ph.Rules {
		r := &ph.Rules[i]
		if r.Route == "" {
			if bestLen < 0 {
				best, bestLen = r, 0
			}
			continue
		}
		if strings.HasPrefix(route, r.Route) && len(r.Route) > bestLen {
			best, bestLen = r, len(r.Route)
		}
	}
	return best
}

// Decide resolves the fate of one request: route is the request path,
// tick the current virtual time, and u1/u2 uniform draws in [0, 1) —
// u1 gates probabilistic injection, u2 picks the fault for ModeMix.
// The function is pure: same arguments, same decision.
func (p *Plan) Decide(tick Ticks, route string, u1, u2 float64) Decision {
	ph := p.PhaseAt(tick)
	if ph == nil {
		return Decision{}
	}
	d := Decision{Phase: ph.Name}
	r := ph.ruleFor(route)
	if r == nil {
		return d
	}
	switch r.Mode {
	case ModeBlackout, ModeLatencyStorm, ModeErrorBurst:
		d.Mode = r.Mode
	case ModeFlap:
		duty := r.Duty
		if duty == 0 {
			duty = 0.5
		}
		if float64((tick-ph.Offset)%r.Period) < duty*float64(r.Period) {
			d.Mode = ModeBlackout
		}
	default: // ModeMix (or "")
		if u1 >= r.Rate {
			return d
		}
		faults := r.Faults
		if len(faults) == 0 {
			faults = Faults
		}
		i := int(u2 * float64(len(faults)))
		if i >= len(faults) {
			i = len(faults) - 1
		}
		d.Mode = ModeMix
		d.Fault = faults[i]
	}
	return d
}

// Parse decodes and validates a JSON scenario document.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: decode scenario: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and validates a JSON scenario file.
func LoadFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: read scenario: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
