package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"ensdropcatch/internal/chaos/plan"
)

// TestPlanFaultNamesMatchAllFaults pins the cross-package contract: the
// fault names a scenario file may use are exactly the injector's fault
// vocabulary.
func TestPlanFaultNamesMatchAllFaults(t *testing.T) {
	var names []string
	for _, f := range AllFaults() {
		names = append(names, string(f))
	}
	if !reflect.DeepEqual(names, plan.Faults) {
		t.Fatalf("plan.Faults %v != chaos.AllFaults %v", plan.Faults, names)
	}
}

func campaignPlan() *plan.Plan {
	p := &plan.Plan{
		Name: "test",
		Unit: plan.UnitRequests,
		Phases: []plan.Phase{
			{Name: "warmup", Offset: 0, Duration: 5},
			{Name: "blackout", Offset: 5, Duration: 5, Rules: []plan.Rule{
				{Route: "/a", Mode: plan.ModeBlackout},
			}},
			{Name: "burst", Offset: 10, Duration: 5, Rules: []plan.Rule{
				{Mode: plan.ModeErrorBurst},
			}},
		},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// TestCampaignWrapPhases drives a request-clock campaign handler
// directly (one ServeHTTP = one tick, no transport retries in the way)
// and checks each phase injures traffic as planned.
func TestCampaignWrapPhases(t *testing.T) {
	c := NewCampaign(campaignPlan(), Config{Seed: 1})
	h := c.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok") //nolint — test server
	}))

	// get returns the status code, or 0 for a connection-aborting fault
	// (the ErrAbortHandler panic a real server turns into a dead
	// connection).
	get := func(path string) (code int) {
		defer func() {
			if r := recover(); r != nil {
				if r != http.ErrAbortHandler {
					panic(r)
				}
				code = 0
			}
		}()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}

	// Ticks 0-4: warmup, clean on every route.
	for i := 0; i < 5; i++ {
		if code := get("/a"); code != 200 {
			t.Fatalf("warmup request %d: code %d", i, code)
		}
	}
	// Ticks 5-9: /a blacked out (connection dies), /b untouched by the
	// route-scoped rule. Alternate so both land in the phase.
	for i := 0; i < 2; i++ {
		if code := get("/a"); code != 0 {
			t.Fatalf("blackout request %d on /a: code %d, expected aborted connection", i, code)
		}
		if code := get("/b"); code != 200 {
			t.Fatalf("blackout request %d on /b: code %d (no rule matches /b)", i, code)
		}
	}
	if code := get("/a"); code != 0 {
		t.Fatalf("blackout request: code %d, expected aborted connection", code)
	}
	// Ticks 10-14: error burst on all routes.
	for i := 0; i < 5; i++ {
		if code := get("/a"); code != 500 {
			t.Fatalf("burst request %d: code %d", i, code)
		}
	}
	// Tick 15+: past the plan — idle, clean.
	if code := get("/a"); code != 200 {
		t.Fatalf("idle request: code %d", code)
	}

	if !c.Done() {
		t.Fatal("campaign clock past the last phase but Done() == false")
	}
	rep := c.Report()
	want := []PhaseReport{
		{Phase: "warmup", Requests: 5, Clean: 5, Injected: map[string]int64{}},
		{Phase: "blackout", Requests: 5, Clean: 2, Injected: map[string]int64{"blackout": 3}},
		{Phase: "burst", Requests: 5, Clean: 0, Injected: map[string]int64{"error_burst": 5}},
		{Phase: "idle", Requests: 1, Clean: 1, Injected: map[string]int64{}},
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("report mismatch:\n got %+v\nwant %+v", rep, want)
	}
}

// TestCampaignRoundTripperMatchesWrap runs the same plan client-side and
// expects the same decision sequence (same seed, same request order).
func TestCampaignRoundTripperMatchesWrap(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(inner)
	defer srv.Close()

	c := NewCampaign(campaignPlan(), Config{Seed: 7})
	hc := &http.Client{Transport: c.RoundTripper(nil)}
	outcomes := make([]int, 0, 16)
	for i := 0; i < 16; i++ {
		resp, err := hc.Get(srv.URL + "/a")
		switch {
		case err != nil:
			outcomes = append(outcomes, 0) // injected connection failure
		default:
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes = append(outcomes, resp.StatusCode)
		}
	}
	want := []int{
		200, 200, 200, 200, 200, // warmup
		0, 0, 0, 0, 0, // blackout of /a
		500, 500, 500, 500, 500, // burst
		200, // idle
	}
	if !reflect.DeepEqual(outcomes, want) {
		t.Fatalf("outcome sequence:\n got %v\nwant %v", outcomes, want)
	}
}

// TestCampaignReportDeterministic: two campaigns with the same seed over
// the same serial request sequence yield identical reports.
func TestCampaignReportDeterministic(t *testing.T) {
	p := &plan.Plan{
		Name: "mix",
		Phases: []plan.Phase{
			{Name: "storm", Offset: 0, Duration: 200, Rules: []plan.Rule{
				{Mode: plan.ModeMix, Rate: 0.5, Faults: []string{"ratelimit", "servererror"}},
			}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func() []PhaseReport {
		c := NewCampaign(p, Config{Seed: 99})
		h := c.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		for i := 0; i < 200; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
		}
		return c.Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed campaigns diverged:\n%+v\n%+v", a, b)
	}
	// And the mix actually injected both faults.
	inj := a[0].Injected
	if inj["ratelimit"] == 0 || inj["servererror"] == 0 {
		t.Fatalf("mix phase did not draw both faults: %+v", inj)
	}
}
