package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// drawSequence collects the fault schedule an injector produces.
func drawSequence(in *Injector, n int) []Fault {
	out := make([]Fault, n)
	for i := range out {
		out[i] = in.pick()
	}
	return out
}

func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3}
	a := drawSequence(New(cfg), 500)
	b := drawSequence(New(cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	c := drawSequence(New(Config{Seed: 43, Rate: 0.3}), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestRateIsRespected(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 0.2})
	faults := 0
	const n = 10000
	for _, f := range drawSequence(in, n) {
		if f != "" {
			faults++
		}
	}
	got := float64(faults) / n
	if got < 0.17 || got > 0.23 {
		t.Errorf("fault rate %.3f, want ~0.2", got)
	}
	if n := len(drawSequence(New(Config{Seed: 7, Rate: 0}), 100)); countFaults(drawSequence(New(Config{Seed: 7}), 100)) != 0 || n == 0 {
		t.Error("rate 0 still injected")
	}
}

func countFaults(fs []Fault) int {
	n := 0
	for _, f := range fs {
		if f != "" {
			n++
		}
	}
	return n
}

// chaosServer wraps a trivial JSON handler with a single-fault injector.
func chaosServer(t *testing.T, fault Fault, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Rate = 1
	cfg.Faults = []Fault{fault}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok": true, "payload": "0123456789abcdef0123456789abcdef"}`)
	})
	srv := httptest.NewServer(New(cfg).Wrap(inner))
	t.Cleanup(srv.Close)
	return srv
}

func TestHandlerRateLimitFault(t *testing.T) {
	srv := chaosServer(t, FaultRateLimit, Config{RetryAfter: 250 * time.Millisecond})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "0.25" {
		t.Errorf("Retry-After = %q, want 0.25", ra)
	}
}

func TestHandlerServerErrorFault(t *testing.T) {
	srv := chaosServer(t, FaultServerError, Config{})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHandlerResetFault(t *testing.T) {
	srv := chaosServer(t, FaultReset, Config{})
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("reset fault produced a response")
	}
}

func TestHandlerTruncateFaultBreaksDecoding(t *testing.T) {
	srv := chaosServer(t, FaultTruncate, Config{})
	resp, err := http.Get(srv.URL)
	if err != nil {
		// Some transports surface the abort before headers are read.
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		var v map[string]any
		if json.Unmarshal(body, &v) == nil {
			t.Fatalf("truncated response decoded cleanly: %q", body)
		}
	}
}

func TestHandlerSlowBodyStillCorrect(t *testing.T) {
	srv := chaosServer(t, FaultSlowBody, Config{Delay: 30 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("slow body served in %v", elapsed)
	}
	if !strings.Contains(string(body), `"ok": true`) {
		t.Errorf("slow body corrupted: %q", body)
	}
}

func TestHandlerPassthroughAtZeroRate(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "clean")
	})
	srv := httptest.NewServer(New(Config{Seed: 1, Rate: 0}).Wrap(inner))
	defer srv.Close()
	for i := 0; i < 50; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "clean" {
			t.Fatalf("request %d: body %q", i, body)
		}
	}
}

func TestRoundTripperFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok": true, "payload": "0123456789abcdef"}`)
	})
	srv := httptest.NewServer(inner)
	defer srv.Close()

	tryWith := func(fault Fault) (*http.Response, error) {
		in := New(Config{Seed: 1, Rate: 1, Faults: []Fault{fault}, RetryAfter: 500 * time.Millisecond, Delay: time.Millisecond})
		client := &http.Client{Transport: in.RoundTripper(nil)}
		return client.Get(srv.URL)
	}

	resp, err := tryWith(FaultRateLimit)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "0.5" {
		t.Errorf("ratelimit: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	resp, err = tryWith(FaultServerError)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("servererror: status %d", resp.StatusCode)
	}

	if _, err = tryWith(FaultReset); err == nil {
		t.Error("reset: no error")
	}

	resp, err = tryWith(FaultTruncate)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("truncate: body read completed cleanly")
	}
}
