// Package httpjson is the shared fast path for writing JSON HTTP
// responses. Every data-route handler used to allocate a fresh
// json.Encoder per request and stream it straight into the
// ResponseWriter; under load that is one encoder, one scratch buffer,
// and several intermediate allocations per response, and the response
// length is unknown so Content-Length is never set. This package keeps
// a sync.Pool of buffer+encoder pairs: handlers encode into a pooled
// buffer, the response goes out in one Write with Content-Length set,
// and the pair is reused by the next request.
//
// It also exports AppendString, an encoding/json-compatible string
// escaper (HTML escaping included), for handlers that serialize rows
// manually instead of through reflection — the subgraph server's page
// encoder is the heavy user.
package httpjson

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"
)

// encoderBuf is one pooled buffer with an encoder bound to it for life,
// so reuse costs nothing.
type encoderBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledBuf bounds the capacity a buffer may keep while pooled; one
// giant response must not pin its backing array forever.
const maxPooledBuf = 1 << 20

var pool = sync.Pool{New: func() any {
	eb := &encoderBuf{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// bufPool holds plain scratch buffers for handlers that serialize
// responses manually (the subgraph page encoder).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuffer returns a reset scratch buffer from the pool. Pair with
// PutBuffer when done.
func GetBuffer() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

// PutBuffer returns a buffer obtained from GetBuffer to the pool.
// Oversized buffers are dropped so the pool stays small.
func PutBuffer(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// slicePool holds append-style scratch slices for handlers that build
// JSON bodies by hand.
var slicePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetSlice returns a length-zero scratch slice from the pool. Append to
// it freely, store the final slice back through the pointer, and pass
// the pointer to PutSlice so growth survives into the next request.
func GetSlice() *[]byte {
	p := slicePool.Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

// PutSlice returns a slice obtained from GetSlice to the pool.
// Oversized slices are dropped so the pool stays small.
func PutSlice(p *[]byte) {
	if cap(*p) <= maxPooledBuf {
		slicePool.Put(p)
	}
}

// Write encodes v as JSON into a pooled buffer and writes it as the
// response body with the given status, Content-Type application/json,
// and an exact Content-Length. Encoding errors are returned before any
// byte reaches the client, so handlers can still change the status.
// Write errors (client gone) are returned for logging; the response is
// already committed by then.
func Write(w http.ResponseWriter, status int, v any) error {
	eb := pool.Get().(*encoderBuf)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		pool.Put(eb)
		return err
	}
	err := WriteBody(w, status, eb.buf.Bytes())
	if eb.buf.Cap() <= maxPooledBuf {
		pool.Put(eb)
	}
	return err
}

// WriteBody writes an already-encoded JSON body with Content-Type and
// Content-Length set.
func WriteBody(w http.ResponseWriter, status int, body []byte) error {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, err := w.Write(body)
	return err
}

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string literal (quotes included) to
// dst, byte-identical to encoding/json's default encoding: control
// characters, quotes, and backslashes are escaped, HTML-sensitive
// characters (<, >, &) become \u00XX, invalid UTF-8 becomes U+FFFD, and
// U+2028/U+2029 are escaped for JavaScript embedding.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeJSONByte[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\':
				dst = append(dst, '\\', '\\')
			case '"':
				dst = append(dst, '\\', '"')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control chars plus <, >, & take the \u00XX form.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// safeJSONByte marks ASCII bytes that need no escaping, matching
// encoding/json with HTML escaping on.
var safeJSONByte = func() (safe [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		switch byte(b) {
		case '"', '\\', '<', '>', '&':
		default:
			safe[b] = true
		}
	}
	return safe
}()
