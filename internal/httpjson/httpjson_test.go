package httpjson

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteSetsHeadersAndBody(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	rec := httptest.NewRecorder()
	if err := Write(rec, 201, payload{Name: "gold.eth", N: 7}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if rec.Code != 201 {
		t.Errorf("status = %d, want 201", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q", got)
	}
	want := "{\"name\":\"gold.eth\",\"n\":7}\n"
	if rec.Body.String() != want {
		t.Errorf("body = %q, want %q", rec.Body.String(), want)
	}
	if got, want := rec.Header().Get("Content-Length"), strconv.Itoa(len(want)); got != want {
		t.Errorf("Content-Length = %q, want %q", got, want)
	}
}

func TestWriteMatchesEncoder(t *testing.T) {
	// The pooled writer must be byte-identical to the json.NewEncoder(w)
	// pattern it replaces, trailing newline included.
	v := map[string][]any{"data": {"a", int64(3), nil, "<&>"}}
	rec := httptest.NewRecorder()
	if err := Write(rec, 200, v); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var legacy strings.Builder
	if err := json.NewEncoder(&legacy).Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if rec.Body.String() != legacy.String() {
		t.Errorf("pooled = %q, encoder = %q", rec.Body.String(), legacy.String())
	}
}

func TestWriteEncodeErrorCommitsNothing(t *testing.T) {
	rec := httptest.NewRecorder()
	if err := Write(rec, 200, func() {}); err == nil {
		t.Fatal("expected encode error for func value")
	}
	if rec.Body.Len() != 0 {
		t.Errorf("body written despite encode error: %q", rec.Body.String())
	}
}

func TestWriteConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec := httptest.NewRecorder()
				v := map[string]int{"g": g, "i": i}
				if err := Write(rec, 200, v); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				var one map[string]int
				if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || one["g"] != g || one["i"] != i {
					t.Errorf("cross-request corruption: %q (err %v)", rec.Body.String(), err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestAppendStringKnownCases(t *testing.T) {
	cases := []string{
		"",
		"plain",
		"gold.eth",
		`quote " backslash \`,
		"tab\t nl\n cr\r nul\x00 ctl\x1f",
		"html <b>&amp;</b>",
		"unicode: 名前 héllo",
		"line seps   and  ",
		"invalid \xff utf8 \xc3",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %q: %v", s, err)
		}
		if got := AppendString(nil, s); string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestAppendStringQuick(t *testing.T) {
	f := func(s string) bool {
		want, err := json.Marshal(s)
		if err != nil {
			return true
		}
		return string(AppendString(nil, s)) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	buf := GetBuffer()
	buf.WriteString("scratch")
	PutBuffer(buf)
	again := GetBuffer()
	if again.Len() != 0 {
		t.Errorf("pooled buffer not reset: %q", again.String())
	}
	PutBuffer(again)
}

func BenchmarkWritePooled(b *testing.B) {
	type row struct {
		ID string `json:"id"`
		N  int64  `json:"n"`
	}
	v := struct {
		Rows []row `json:"rows"`
	}{Rows: make([]row, 50)}
	for i := range v.Rows {
		v.Rows[i] = row{ID: "0xabcdef", N: int64(i)}
	}
	w := httptest.NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Body.Reset()
		if err := Write(w, 200, &v); err != nil {
			b.Fatal(err)
		}
	}
}
