package obs

import (
	"context"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// OpenMetricsContentType is the OpenMetrics exposition content type;
// it is what carries exemplars (the classic text format cannot).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Exemplar ties one concrete observation to the trace that produced
// it: the bridge from "the p99 is bad" to "here is a trace id to pull
// from /debug/traces/{id}".
type Exemplar struct {
	TraceID string
	Value   float64
}

// ObserveExemplar records v like Observe and, when traceID is
// non-empty, pins it as the bucket's exemplar (latest observation
// wins). With an empty traceID it is exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// BucketExemplar returns bucket i's exemplar (i == len(buckets) is
// +Inf), nil when none has been recorded.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// WriteOpenMetrics writes the registry in OpenMetrics text format:
// the same families as WriteTo plus per-bucket exemplars and the
// closing "# EOF" marker. Output is deterministic for fixed metric
// values (families in registration order, series sorted).
func (r *Registry) WriteOpenMetrics(w io.Writer) (int64, error) {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, f := range families {
		f.mu.RLock()
		keys := make([]string, 0, len(f.cells))
		for k := range f.cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cells := make([]*cell, len(keys))
		for i, k := range keys {
			cells[i] = f.cells[k]
		}
		f.mu.RUnlock()
		if len(cells) == 0 {
			continue
		}

		cw.str("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		cw.str("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, c := range cells {
			switch m := c.m.(type) {
			case *Counter:
				cw.str(f.name + labelString(f.labels, c.values, "", "") + " " + strconv.FormatUint(m.Value(), 10) + "\n")
			case *Gauge:
				cw.str(f.name + labelString(f.labels, c.values, "", "") + " " + formatFloat(m.Value()) + "\n")
			case *Histogram:
				var cum uint64
				for i := 0; i <= len(m.upper); i++ {
					cum += m.counts[i].Load()
					le := "+Inf"
					if i < len(m.upper) {
						le = formatFloat(m.upper[i])
					}
					line := f.name + "_bucket" + labelString(f.labels, c.values, "le", le) + " " + strconv.FormatUint(cum, 10)
					if ex := m.exemplars[i].Load(); ex != nil {
						line += " # {trace_id=\"" + escapeLabel(ex.TraceID) + "\"} " + formatFloat(ex.Value)
					}
					cw.str(line + "\n")
				}
				cw.str(f.name + "_sum" + labelString(f.labels, c.values, "", "") + " " + formatFloat(m.Sum()) + "\n")
				cw.str(f.name + "_count" + labelString(f.labels, c.values, "", "") + " " + strconv.FormatUint(cum, 10) + "\n")
			}
		}
		if cw.err != nil {
			break
		}
	}
	cw.str("# EOF\n")
	return cw.n, cw.err
}

// AcceptsOpenMetrics reports whether the request's Accept header asks
// for the OpenMetrics exposition format.
func AcceptsOpenMetrics(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// traceIDExtractor pulls the active trace id out of a request context
// for exemplar attachment. It lives behind a settable seam because the
// tracing package imports obs for its own metrics — obs importing it
// back would cycle.
type traceIDExtractor func(context.Context) string

var exemplarExtractor atomic.Pointer[traceIDExtractor]

// SetTraceIDExtractor installs fn as the context→trace-id bridge used
// by the HTTP middleware to attach exemplars; nil uninstalls it.
func SetTraceIDExtractor(fn func(context.Context) string) {
	if fn == nil {
		exemplarExtractor.Store(nil)
		return
	}
	e := traceIDExtractor(fn)
	exemplarExtractor.Store(&e)
}

// ContextTraceID returns the active trace id per the installed
// extractor, "" when no extractor is installed or no trace is active.
func ContextTraceID(ctx context.Context) string {
	fn := exemplarExtractor.Load()
	if fn == nil {
		return ""
	}
	return (*fn)(ctx)
}
