package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRouteAndStatus(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "t")
	handler := m.Wrap("/api", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}))

	for _, target := range []string{"/api", "/api", "/api?fail=1"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	}

	if got := m.requests.With("/api", "2xx").Value(); got != 2 {
		t.Errorf(`requests{route="/api",code="2xx"} = %d, want 2`, got)
	}
	if got := m.requests.With("/api", "4xx").Value(); got != 1 {
		t.Errorf(`requests{route="/api",code="4xx"} = %d, want 1`, got)
	}
	if got := m.latency.With("/api").Count(); got != 3 {
		t.Errorf("latency count = %d, want 3", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("inflight after requests = %v, want 0", got)
	}

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`t_http_requests_total{route="/api",code="2xx"} 2`,
		`t_http_requests_total{route="/api",code="4xx"} 1`,
		`t_http_request_seconds_count{route="/api"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMiddlewareInflightVisibleDuringRequest(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "t2")
	var seen float64
	handler := m.Wrap("/slow", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		seen = m.inflight.Value()
	}))
	handler.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if seen != 1 {
		t.Errorf("inflight during request = %v, want 1", seen)
	}
}

func TestRegisterDebugServesMetricsAndProfiles(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_smoke_total", "smoke").Inc()
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":              "debug_smoke_total 1",
		"/debug/pprof/":         "goroutine",
		"/debug/vars":           "memstats",
		"/debug/pprof/cmdline":  "",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
