// Package obs is a dependency-free observability toolkit for the
// reproduction pipeline: a concurrent-safe metrics registry (counters,
// gauges, and fixed-bucket histograms, all with optional label pairs)
// with Prometheus text-format exposition, HTTP server middleware, and
// debug-endpoint wiring (/metrics, /debug/pprof/*, /debug/vars).
//
// The paper's crawl is a multi-hour, rate-limited walk over three APIs;
// the ROADMAP's north star is a service under heavy traffic. Both need
// the same primitives: request and error rates, latency distributions,
// retry and rate-limiter behavior, and crawl progress. Everything here
// is stdlib-only so the module stays dependency-free.
//
// Handles returned by the registry (Counter, Gauge, Histogram) are safe
// for concurrent use and their update methods are allocation-free, so
// they can sit on hot paths. Resolve labelled series once with With and
// keep the handle; With itself takes a lock and may allocate.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are general-purpose latency buckets in seconds, from 5ms
// to 10s, matching the shape of HTTP and API-call latencies here.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Default is the package-level registry the binaries expose on
// /metrics. Instrumented packages record here unless pointed elsewhere.
var Default = NewRegistry()

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. The upper bounds
// are set at registration; an implicit +Inf bucket catches the rest.
// Each bucket can carry one exemplar (see ObserveExemplar), surfaced
// by the OpenMetrics exposition.
type Histogram struct {
	upper     []float64 // sorted upper bounds, exclusive of +Inf
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	sumBits   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		upper:     upper,
		counts:    make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one value. It is allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts, interpolating linearly inside the bucket the quantile lands
// in — the same estimate PromQL's histogram_quantile computes. With no
// observations it returns 0; ranks landing in the +Inf bucket return
// the largest finite bound (the estimate cannot exceed what the
// buckets resolve). Counts are read without a snapshot, so concurrent
// observers can skew an in-flight estimate slightly; for monitoring
// that is fine.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.upper) {
			// +Inf bucket: unbounded above, clamp to the last finite bound.
			return h.upper[len(h.upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.upper[i-1]
		}
		within := (rank - (cum - float64(c))) / float64(c)
		return lower + (h.upper[i]-lower)*within
	}
	return h.upper[len(h.upper)-1]
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// cell is one labelled series inside a family.
type cell struct {
	values []string
	m      any
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	mu    sync.RWMutex
	cells map[string]*cell // guarded by mu
}

// maxSeriesPerFamily caps each family's label cardinality. Label
// values on request paths can carry client-derived strings, and an
// unbounded exposition is both a memory leak and a scrape-size attack;
// past the cap new tuples get a working but unregistered series, so
// callers never observe the cap — only the exposition does.
const maxSeriesPerFamily = 1024

func (f *family) series(values []string, fresh func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.RLock()
	c, ok := f.cells[key]
	f.mu.RUnlock()
	if ok {
		return c.m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.cells[key]; ok {
		return c.m
	}
	if len(f.cells) >= maxSeriesPerFamily {
		return fresh()
	}
	vals := make([]string, len(values))
	copy(vals, values)
	c = &cell{values: vals, m: fresh()}
	f.cells[key] = c
	return c.m
}

func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. Registration methods are idempotent: asking again for
// the same name returns the existing family's handles, so independent
// packages can share a registry without coordination.
type Registry struct {
	mu       sync.Mutex
	families []*family          // guarded by mu
	byName   map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as %s, requested as %s", name, f.kind, kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s already registered with %d labels, requested with %d", name, len(f.labels), len(labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, cells: map[string]*cell{}}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.series(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a counter family with labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.series(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a gauge family with labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabelled histogram. Nil or
// empty buckets use DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.series(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers (or fetches) a histogram family with labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets)}
}

// CounterVec resolves labelled counters.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.series(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec resolves labelled gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.series(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec resolves labelled histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.series(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// WriteTo writes the registry in Prometheus text exposition format.
// Families appear in registration order, series sorted by label values,
// so output is deterministic.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, f := range families {
		f.mu.RLock()
		keys := make([]string, 0, len(f.cells))
		for k := range f.cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cells := make([]*cell, len(keys))
		for i, k := range keys {
			cells[i] = f.cells[k]
		}
		f.mu.RUnlock()
		if len(cells) == 0 {
			continue
		}

		cw.str("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		cw.str("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, c := range cells {
			switch m := c.m.(type) {
			case *Counter:
				cw.str(f.name + labelString(f.labels, c.values, "", "") + " " + strconv.FormatUint(m.Value(), 10) + "\n")
			case *Gauge:
				cw.str(f.name + labelString(f.labels, c.values, "", "") + " " + formatFloat(m.Value()) + "\n")
			case *Histogram:
				var cum uint64
				for i := range m.upper {
					cum += m.counts[i].Load()
					cw.str(f.name + "_bucket" + labelString(f.labels, c.values, "le", formatFloat(m.upper[i])) + " " + strconv.FormatUint(cum, 10) + "\n")
				}
				cum += m.counts[len(m.upper)].Load()
				cw.str(f.name + "_bucket" + labelString(f.labels, c.values, "le", "+Inf") + " " + strconv.FormatUint(cum, 10) + "\n")
				cw.str(f.name + "_sum" + labelString(f.labels, c.values, "", "") + " " + formatFloat(m.Sum()) + "\n")
				cw.str(f.name + "_count" + labelString(f.labels, c.values, "", "") + " " + strconv.FormatUint(cum, 10) + "\n")
			}
		}
		if cw.err != nil {
			break
		}
	}
	return cw.n, cw.err
}

// Handler returns an http.Handler serving the exposition format. It
// negotiates via the Accept header: clients asking for
// application/openmetrics-text get the OpenMetrics form with
// exemplars; everyone else gets the classic Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if AcceptsOpenMetrics(req) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		r.WriteTo(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) str(s string) {
	if c.err != nil {
		return
	}
	n, err := io.WriteString(c.w, s)
	c.n += int64(n)
	c.err = err
}

func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
