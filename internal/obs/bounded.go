package obs

import "sync"

// OverflowLabel is the label value that bounded vecs collapse
// over-limit tuples into, keeping exposition size bounded even when a
// label is fed caller-controlled values (client ids, user agents, …).
const OverflowLabel = "_other"

// overflowMetric is the companion family counting collapsed tuples.
const overflowMetric = "obs_label_overflow_total"

// BoundedCounterVec is a CounterVec whose distinct label tuples are
// capped. The first limit tuples pass through; later, unseen tuples
// collapse into OverflowLabel for every label and increment
// obs_label_overflow_total{metric}. Tuples admitted once stay admitted
// (the cap is on distinct series, not traffic), so hot-path lookups
// after warm-up never collapse.
//
// Use it whenever a label value originates outside the process — the
// canonical case here is overload_quota_denied_total{client}, where
// "client" is whatever X-Client-ID a caller sends.
type BoundedCounterVec struct {
	vec      *CounterVec
	overflow *Counter
	limit    int

	mu       sync.Mutex
	seen     map[string]struct{}
	collapse []string
}

// BoundedCounterVec registers (or fetches) a labelled counter family
// capped at limit distinct label tuples; limit <= 0 uses 64.
func (r *Registry) BoundedCounterVec(name, help string, limit int, labels ...string) *BoundedCounterVec {
	if limit <= 0 {
		limit = 64
	}
	collapse := make([]string, len(labels))
	for i := range collapse {
		collapse[i] = OverflowLabel
	}
	return &BoundedCounterVec{
		vec: r.CounterVec(name, help, labels...),
		overflow: r.CounterVec(overflowMetric,
			"Label tuples collapsed into \"_other\" by bounded vecs, by metric.",
			"metric").With(name),
		limit:    limit,
		seen:     map[string]struct{}{},
		collapse: collapse,
	}
}

// With returns the counter for the given label values, collapsing to
// the overflow series once the cap on distinct tuples is reached.
func (v *BoundedCounterVec) With(values ...string) *Counter {
	key := joinKey(values)
	v.mu.Lock()
	_, ok := v.seen[key]
	if !ok && len(v.seen) < v.limit {
		v.seen[key] = struct{}{}
		ok = true
	}
	v.mu.Unlock()
	if ok {
		return v.vec.With(values...)
	}
	v.overflow.Inc()
	return v.vec.With(v.collapse...)
}

// Cardinality returns how many distinct tuples have been admitted.
func (v *BoundedCounterVec) Cardinality() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.seen)
}

// Overflowed returns how many With calls collapsed into the overflow
// series.
func (v *BoundedCounterVec) Overflowed() uint64 { return v.overflow.Value() }
