package obs

import "time"

// Wall-clock access for metric timing.
//
// The deterministic packages (internal/world, internal/core,
// internal/dataset, …) must be pure functions of the seed: the detrand
// analyzer (internal/lint/detrand) rejects any direct time.Now or
// time.Since there. Stage-duration histograms and progress ETAs still
// legitimately need wall time, so those reads are routed through these
// two helpers. The contract — enforced by convention and review, and
// made greppable by the names — is that a NowWall/WallSince value may
// only ever flow into metrics or logs, never into a dataset, world, or
// report byte.

// NowWall returns the host wall-clock time, for metric timing only.
func NowWall() time.Time { return time.Now() }

// WallSince returns the wall-clock time elapsed since t0, for metric
// timing only.
func WallSince(t0 time.Time) time.Duration { return time.Since(t0) }
