package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplarPinsBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "help", []float64{0.1, 1})

	h.ObserveExemplar(0.05, "trace-a") // bucket 0
	h.ObserveExemplar(0.5, "trace-b")  // bucket 1
	h.ObserveExemplar(5, "trace-c")    // +Inf bucket
	h.ObserveExemplar(0.06, "")        // counts, but no exemplar overwrite

	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	for i, want := range []string{"trace-a", "trace-b", "trace-c"} {
		ex := h.BucketExemplar(i)
		if ex == nil || ex.TraceID != want {
			t.Fatalf("bucket %d exemplar = %+v, want %s", i, ex, want)
		}
	}
	if h.BucketExemplar(7) != nil || h.BucketExemplar(-1) != nil {
		t.Fatalf("out-of-range exemplar lookup not nil")
	}

	// Latest observation wins.
	h.ObserveExemplar(0.04, "trace-a2")
	if ex := h.BucketExemplar(0); ex.TraceID != "trace-a2" || ex.Value != 0.04 {
		t.Fatalf("exemplar not replaced: %+v", ex)
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "help").Inc()
	h := reg.Histogram("lat_seconds", "help", []float64{0.1})
	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")

	var b strings.Builder
	if _, err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing EOF marker:\n%s", out)
	}
	wantLine := `lat_seconds_bucket{le="0.1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`
	if !strings.Contains(out, wantLine) {
		t.Fatalf("exemplar line missing, want %q in:\n%s", wantLine, out)
	}
	if !strings.Contains(out, "reqs_total 1\n") {
		t.Fatalf("counter line missing:\n%s", out)
	}

	// Classic exposition must not leak exemplars (its parsers reject them).
	b.Reset()
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "trace_id") {
		t.Fatalf("classic format leaked exemplars:\n%s", b.String())
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "help").Inc()
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != TextContentType {
		t.Fatalf("default content type = %q", ct)
	}
	if strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatalf("classic response carries OpenMetrics EOF")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("negotiated content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatalf("OpenMetrics response missing EOF")
	}
}

func TestMiddlewareAttachesExemplar(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "testsvc")
	SetTraceIDExtractor(func(ctx context.Context) string {
		if v, _ := ctx.Value(ctxKeyTest{}).(string); v != "" {
			return v
		}
		return ""
	})
	t.Cleanup(func() { SetTraceIDExtractor(nil) })

	wrapped := hm.Wrap("/data", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("GET", "/data", nil)
	req = req.WithContext(context.WithValue(req.Context(), ctxKeyTest{}, "tr-123"))
	wrapped.ServeHTTP(httptest.NewRecorder(), req)

	var b strings.Builder
	if _, err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `{trace_id="tr-123"}`) {
		t.Fatalf("middleware did not attach exemplar:\n%s", b.String())
	}
}

type ctxKeyTest struct{}

func TestContextTraceIDWithoutExtractor(t *testing.T) {
	SetTraceIDExtractor(nil)
	if got := ContextTraceID(context.Background()); got != "" {
		t.Fatalf("no extractor should mean empty id, got %q", got)
	}
}

func TestBoundedCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.BoundedCounterVec("denials_total", "help", 2, "client")

	v.With("a").Inc()
	v.With("b").Inc()
	v.With("a").Inc() // seen: passes through after cap is hit too
	v.With("c").Inc() // over cap: collapses
	v.With("d").Add(2)

	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("client a = %d, want 2", got)
	}
	if v.Cardinality() != 2 {
		t.Fatalf("Cardinality = %d, want 2", v.Cardinality())
	}
	if v.Overflowed() != 2 {
		t.Fatalf("Overflowed = %d, want 2 (one collapsed With call each for c and d)", v.Overflowed())
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`denials_total{client="a"} 2`,
		`denials_total{client="_other"} 3`,
		`obs_label_overflow_total{metric="denials_total"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	for _, absent := range []string{`client="c"`, `client="d"`} {
		if strings.Contains(out, absent) {
			t.Fatalf("over-cap label %s leaked into exposition:\n%s", absent, out)
		}
	}
}

func TestBoundedCounterVecDefaultLimit(t *testing.T) {
	reg := NewRegistry()
	v := reg.BoundedCounterVec("x_total", "help", 0, "k")
	for i := 0; i < 100; i++ {
		v.With(string(rune('a'+i%26)) + string(rune('0'+i/26))).Inc()
	}
	if v.Cardinality() != 64 {
		t.Fatalf("default cap = %d, want 64", v.Cardinality())
	}
}
