package obs

import (
	"errors"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount is one extra debug endpoint to expose alongside the standard
// set — e.g. the trace store's /debug/traces handler.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// RegisterDebug mounts the observability endpoints on mux:
//
//	GET /metrics            Prometheus/OpenMetrics exposition of reg
//	GET /debug/pprof/*      runtime profiles (heap, goroutine, CPU, ...)
//	GET /debug/vars         expvar JSON (cmdline, memstats)
//
// plus any extra mounts. A nil reg uses Default.
func RegisterDebug(mux *http.ServeMux, reg *Registry, extra ...Mount) {
	if reg == nil {
		reg = Default
	}
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
}

// StartDebugServer listens on addr and serves the debug endpoints in a
// background goroutine, for binaries (like enscrawl) whose main job is
// not HTTP. It fails fast if the address cannot be bound; shut it down
// with the returned server's Shutdown/Close.
func StartDebugServer(addr string, reg *Registry, logger *slog.Logger, extra ...Mount) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, extra...)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && logger != nil {
			logger.Error("obs: debug server", "err", err)
		}
	}()
	if logger != nil {
		logger.Info("obs: debug endpoints listening", "addr", ln.Addr().String())
	}
	return srv, nil
}
