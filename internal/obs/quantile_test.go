package obs

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestQuantileUniform(t *testing.T) {
	// 100 observations spread evenly through (0, 10] in buckets of
	// width 1: the interpolated q-quantile should be ~10q.
	h := newHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i)/10 + 0.05)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.99, 9.9}, {0.1, 1},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.2 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileSingleBucketInterpolates(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	// All mass in (1,2]: median interpolates to the bucket midpoint.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
}

func TestQuantileInfBucketClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // lands in +Inf
	h.Observe(0.5)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %v, want clamp to 2", got)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want Quantile(0) = %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want Quantile(1) = %v", got, h.Quantile(1))
	}
}
