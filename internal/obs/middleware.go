package obs

import (
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"
)

// HTTPMetrics instruments HTTP handlers with per-route request counts
// (by status class), an in-flight gauge, and latency histograms. One
// HTTPMetrics is shared by every wrapped route of a server.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge

	mu     sync.Mutex
	routes []string // guarded by mu
}

// NewHTTPMetrics registers the HTTP metric families on reg (nil uses
// Default) under the given namespace prefix, e.g. "ensworld" yields
// ensworld_http_requests_total{route,code},
// ensworld_http_request_seconds{route}, and
// ensworld_http_inflight_requests.
func NewHTTPMetrics(reg *Registry, namespace string) *HTTPMetrics {
	if reg == nil {
		reg = Default
	}
	ns := namespace
	if ns != "" {
		ns += "_"
	}
	return &HTTPMetrics{
		requests: reg.CounterVec(ns+"http_requests_total",
			"HTTP requests served, by route and status class.", "route", "code"),
		latency: reg.HistogramVec(ns+"http_request_seconds",
			"HTTP request latency in seconds, by route.", DefBuckets, "route"),
		inflight: reg.Gauge(ns+"http_inflight_requests",
			"HTTP requests currently being served."),
	}
}

// Wrap returns next instrumented under the given route label. Handles
// are resolved once here, so the per-request path is allocation-free
// apart from the status recorder.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	m.mu.Lock()
	if !slices.Contains(m.routes, route) {
		m.routes = append(m.routes, route)
		sort.Strings(m.routes)
	}
	m.mu.Unlock()
	hist := m.latency.With(route)
	var byClass [6]*Counter
	byClass[0] = m.requests.With(route, "other")
	for i := 1; i <= 5; i++ {
		byClass[i] = m.requests.With(route, strconv.Itoa(i)+"xx")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		start := time.Now()
		rec := statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(&rec, r)
		// With tracing on, pin the request's trace id to the latency
		// bucket it landed in; the OpenMetrics exposition surfaces it
		// so a bad bucket links straight to a stored trace.
		hist.ObserveExemplar(time.Since(start).Seconds(), ContextTraceID(r.Context()))
		cls := rec.code / 100
		if cls < 1 || cls > 5 {
			cls = 0
		}
		byClass[cls].Inc()
	})
}

// Routes returns the routes wrapped so far, sorted.
func (m *HTTPMetrics) Routes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return slices.Clone(m.routes)
}

// RouteLatency returns the latency histogram recording the given
// route, registering the series if the route was never wrapped.
func (m *HTTPMetrics) RouteLatency(route string) *Histogram {
	return m.latency.With(route)
}

var defaultHTTP = sync.OnceValue(func() *HTTPMetrics { return NewHTTPMetrics(Default, "") })

// Middleware instruments next on the Default registry under the
// unprefixed http_* metric names. Servers wanting their own namespace
// use NewHTTPMetrics.
func Middleware(route string, next http.Handler) http.Handler {
	return defaultHTTP().Wrap(route, next)
}

// statusRecorder captures the response status code.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Flush forwards to the underlying writer when it supports streaming.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
