package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	vec := r.CounterVec("labelled_total", "labelled", "kind")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := vec.With("a")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := vec.With("a").Value(); got != 8000 {
		t.Errorf(`labelled{kind="a"} = %d, want 8000`, got)
	}
	if got := vec.With("b").Value(); got != 16000 {
		t.Errorf(`labelled{kind="b"} = %d, want 16000`, got)
	}
}

func TestGaugeConcurrentAddSettles(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "in-flight")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge after balanced inc/dec = %v, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.05)
				h.Observe(0.5)
				h.Observe(5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 24000 {
		t.Errorf("count = %d, want 24000", got)
	}
	want := 8000 * (0.05 + 0.5 + 5)
	if got := h.Sum(); got < want-1e-6 || got > want+1e-6 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x_total", "x") != r.Counter("x_total", "ignored") {
		t.Error("re-registering a counter returned a different handle")
	}
	if r.GaugeVec("g", "g", "l").With("v") != r.GaugeVec("g", "g", "l").With("v") {
		t.Error("re-resolving a gauge series returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a different type did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	rv := r.CounterVec("crawl_requests_total", "API requests issued.", "api", "code")
	rv.With("etherscan", "2xx").Add(12)
	rv.With("etherscan", "5xx").Inc()
	r.Gauge("crawl_inflight", "Requests in flight.").Set(2.5)
	h := r.Histogram("crawl_wait_seconds", "Rate-limit wait.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP crawl_requests_total API requests issued.
# TYPE crawl_requests_total counter
crawl_requests_total{api="etherscan",code="2xx"} 12
crawl_requests_total{api="etherscan",code="5xx"} 1
# HELP crawl_inflight Requests in flight.
# TYPE crawl_inflight gauge
crawl_inflight 2.5
# HELP crawl_wait_seconds Rate-limit wait.
# TYPE crawl_wait_seconds histogram
crawl_wait_seconds_bucket{le="0.1"} 2
crawl_wait_seconds_bucket{le="1"} 3
crawl_wait_seconds_bucket{le="+Inf"} 4
crawl_wait_seconds_sum 30.6
crawl_wait_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionEscapes(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("odd_total", `has \ and
newline`, "l").With(`a"b\c`).Inc()
	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP odd_total has \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `odd_total{l="a\"b\\c"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	hv := r.HistogramVec("hv_seconds", "", nil, "route").With("/x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.07)
		hv.Observe(3)
	}); n != 0 {
		t.Errorf("hot path allocates %v allocs/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_par_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
