package lexical

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAnalyzeBasics(t *testing.T) {
	a := NewAnalyzer()
	cases := []struct {
		label string
		want  Features
	}{
		{"gold", Features{Length: 4, ContainsDictionaryWord: true, IsDictionaryWord: true}},
		{"goldrush", Features{Length: 8, ContainsDictionaryWord: true}},
		{"000", Features{Length: 3, ContainsDigit: true, IsNumeric: true}},
		{"gold123", Features{Length: 7, ContainsDigit: true, ContainsDictionaryWord: true}},
		{"gold-rush", Features{Length: 9, ContainsDictionaryWord: true, ContainsHyphen: true}},
		{"gold_rush", Features{Length: 9, ContainsDictionaryWord: true, ContainsUnderscore: true}},
		{"xqzkrw", Features{Length: 6}},
	}
	for _, c := range cases {
		got := a.Analyze(c.label)
		if got != c.want {
			t.Errorf("Analyze(%q) = %+v, want %+v", c.label, got, c.want)
		}
	}
}

func TestAnalyzeBrandAndAdult(t *testing.T) {
	a := NewAnalyzer()
	if f := a.Analyze("pumastore"); !f.ContainsBrandName {
		t.Error("pumastore missing brand flag")
	}
	if f := a.Analyze("nikeshop"); !f.ContainsBrandName {
		t.Error("nikeshop missing brand flag")
	}
	if f := a.Analyze("freeporn"); !f.ContainsAdultWord {
		t.Error("freeporn missing adult flag")
	}
	if f := a.Analyze("bookshelf"); f.ContainsBrandName || f.ContainsAdultWord {
		t.Errorf("bookshelf spuriously flagged: %+v", f)
	}
}

func TestAnalyzeStripsETHSuffixAndCase(t *testing.T) {
	a := NewAnalyzer()
	f := a.Analyze("Gold.eth")
	if !f.IsDictionaryWord || f.Length != 4 {
		t.Errorf("Gold.eth: %+v", f)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := NewAnalyzer()
	f := a.Analyze("")
	if f != (Features{}) {
		t.Errorf("empty label: %+v", f)
	}
}

func TestIsNumericRequiresAllDigits(t *testing.T) {
	a := NewAnalyzer()
	if a.Analyze("12a34").IsNumeric {
		t.Error("12a34 flagged numeric")
	}
	if !a.Analyze("12345").IsNumeric {
		t.Error("12345 not flagged numeric")
	}
}

func TestValidLabel(t *testing.T) {
	valid := []string{"abc", "gold", "a-b-c", "gold_rush", "000", "x2y"}
	invalid := []string{"", "ab", "-abc", "abc-", "ABC", "gold.eth", "with space", "émoji"}
	for _, v := range valid {
		if !ValidLabel(v) {
			t.Errorf("ValidLabel(%q) = false", v)
		}
	}
	for _, v := range invalid {
		if ValidLabel(v) {
			t.Errorf("ValidLabel(%q) = true", v)
		}
	}
}

func TestWordlistsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range DictionaryWords() {
		if len(w) < 3 {
			t.Errorf("dictionary word %q too short", w)
		}
		if w != strings.ToLower(w) {
			t.Errorf("dictionary word %q not lowercase", w)
		}
		if seen[w] {
			t.Errorf("duplicate dictionary word %q", w)
		}
		seen[w] = true
	}
	if len(seen) < 1000 {
		t.Errorf("dictionary suspiciously small: %d words", len(seen))
	}
	for _, w := range BrandNames() {
		if !ValidLabel(w) {
			t.Errorf("brand %q is not a valid label", w)
		}
	}
	for _, w := range AdultWords() {
		if !ValidLabel(w) {
			t.Errorf("adult word %q is not a valid label", w)
		}
	}
}

func TestGeneratorUniqueAndValid(t *testing.T) {
	g := NewGenerator(42, nil)
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		label, cat := g.Next()
		if seen[label] {
			t.Fatalf("duplicate label %q at i=%d", label, i)
		}
		seen[label] = true
		if !ValidLabel(label) {
			t.Fatalf("invalid label %q (category %s)", label, cat)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(7, nil)
	g2 := NewGenerator(7, nil)
	for i := 0; i < 100; i++ {
		l1, c1 := g1.Next()
		l2, c2 := g2.Next()
		if l1 != l2 || c1 != c2 {
			t.Fatalf("divergence at %d: (%q,%v) vs (%q,%v)", i, l1, c1, l2, c2)
		}
	}
}

func TestGeneratorCategoryShapes(t *testing.T) {
	g := NewGenerator(1, nil)
	a := NewAnalyzer()
	for i := 0; i < 2000; i++ {
		label, cat := g.Next()
		f := a.Analyze(label)
		switch cat {
		case CatNumeric:
			if !f.IsNumeric {
				t.Errorf("numeric label %q not numeric", label)
			}
		case CatHyphenated:
			if !f.ContainsHyphen {
				t.Errorf("hyphenated label %q has no hyphen", label)
			}
		case CatUnderscored:
			if !f.ContainsUnderscore {
				t.Errorf("underscored label %q has no underscore", label)
			}
		case CatDictionary:
			if !f.ContainsDictionaryWord {
				t.Errorf("dictionary label %q lacks dictionary word", label)
			}
		}
	}
}

func TestGeneratorNextOfCategory(t *testing.T) {
	g := NewGenerator(3, nil)
	a := NewAnalyzer()
	for i := 0; i < 200; i++ {
		label := g.NextOfCategory(CatShort)
		if len(label) > 6 {
			t.Errorf("short label %q too long", label)
		}
		_ = a.Analyze(label)
	}
}

func TestGeneratorMixRoughlyMatchesWeights(t *testing.T) {
	g := NewGenerator(99, nil)
	counts := map[Category]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		_, cat := g.Next()
		counts[cat]++
	}
	// The dominant categories must appear with roughly their configured mass.
	for _, c := range []Category{CatCompound, CatRandom, CatAlphanumeric, CatNumeric} {
		frac := float64(counts[c]) / n
		want := DefaultWeights[c]
		if frac < want*0.7 || frac > want*1.3 {
			t.Errorf("category %s frequency %.3f, want ~%.3f", c, frac, want)
		}
	}
}

func TestQuickAnalyzeConsistency(t *testing.T) {
	a := NewAnalyzer()
	f := func(raw string) bool {
		feats := a.Analyze(raw)
		// IsNumeric implies ContainsDigit for non-empty labels.
		if feats.IsNumeric && feats.Length > 0 && !feats.ContainsDigit {
			return false
		}
		// IsDictionaryWord implies ContainsDictionaryWord.
		if feats.IsDictionaryWord && !feats.ContainsDictionaryWord {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := NewAnalyzer()
	labels := []string{"gold", "goldrush2021", "xk-rjq_w", "000111", "pumastore"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(labels[i%len(labels)])
	}
}
