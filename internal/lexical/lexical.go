// Package lexical extracts the lexical features of ENS labels that Table 1
// of the paper compares between re-registered and control domains: length,
// digit/numeric composition, dictionary/brand/adult-word content, hyphens,
// and underscores. It also provides the synthetic label generator the world
// simulator uses, which draws from the same embedded wordlists so the
// feature extractor faces realistic inputs.
package lexical

import "strings"

// Features holds the per-label lexical attributes of Table 1.
type Features struct {
	Length                 int  // label length in runes (without ".eth")
	ContainsDigit          bool // at least one ASCII digit
	IsNumeric              bool // every rune is an ASCII digit
	ContainsDictionaryWord bool // some dictionary word (len >= 3) is a substring
	IsDictionaryWord       bool // the whole label is a dictionary word
	ContainsBrandName      bool // some brand name is a substring
	ContainsAdultWord      bool // some adult keyword is a substring
	ContainsHyphen         bool
	ContainsUnderscore     bool
}

// Analyzer answers lexical-feature queries about ENS labels. It is
// immutable after construction and safe for concurrent use.
type Analyzer struct {
	dict      map[string]bool // exact dictionary words
	dictByLen map[int][]string
	substr    *substrMatcher // dictionary substring matcher
	brands    *substrMatcher
	adult     *substrMatcher
	minWord   int
	maxWord   int
}

// NewAnalyzer builds an Analyzer over the embedded wordlists.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{
		dict:      make(map[string]bool, len(dictionaryWords)),
		dictByLen: make(map[int][]string),
		minWord:   1 << 30,
	}
	for _, w := range dictionaryWords {
		a.dict[w] = true
		a.dictByLen[len(w)] = append(a.dictByLen[len(w)], w)
		if len(w) < a.minWord {
			a.minWord = len(w)
		}
		if len(w) > a.maxWord {
			a.maxWord = len(w)
		}
	}
	a.substr = newSubstrMatcher(dictionaryWords)
	a.brands = newSubstrMatcher(brandNames)
	a.adult = newSubstrMatcher(adultWords)
	return a
}

// Analyze extracts the Table 1 features from a single label. The label must
// be the bare second-level label ("gold", not "gold.eth"); Analyze strips a
// trailing ".eth" defensively.
func (a *Analyzer) Analyze(label string) Features {
	label = strings.TrimSuffix(strings.ToLower(label), ".eth")
	f := Features{Length: len([]rune(label))}
	if label == "" {
		return f
	}
	digits := 0
	runes := 0
	for _, r := range label {
		runes++
		switch {
		case r >= '0' && r <= '9':
			digits++
			f.ContainsDigit = true
		case r == '-':
			f.ContainsHyphen = true
		case r == '_':
			f.ContainsUnderscore = true
		}
	}
	f.IsNumeric = digits == runes
	f.IsDictionaryWord = a.dict[label]
	f.ContainsDictionaryWord = f.IsDictionaryWord || a.substr.containedIn(label)
	f.ContainsBrandName = a.brands.containedIn(label)
	f.ContainsAdultWord = a.adult.containedIn(label)
	return f
}

// IsDictionaryWord reports whether the label is exactly a dictionary word.
func (a *Analyzer) IsDictionaryWord(label string) bool {
	return a.dict[strings.ToLower(label)]
}

// DictionaryWords returns the embedded dictionary (shared slice; callers
// must not modify it).
func DictionaryWords() []string { return dictionaryWords }

// BrandNames returns the embedded brand list (shared slice).
func BrandNames() []string { return brandNames }

// AdultWords returns the embedded adult keyword list (shared slice).
func AdultWords() []string { return adultWords }

// ValidLabel reports whether s is a plausible ENS label: non-empty,
// at least 3 characters (the .eth registrar minimum), lowercase letters,
// digits, hyphens, or underscores, and no leading/trailing hyphen.
func ValidLabel(s string) bool {
	if len(s) < 3 {
		return false
	}
	for _, r := range s {
		ok := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' || r == '_'
		if !ok {
			return false
		}
	}
	return s[0] != '-' && s[len(s)-1] != '-'
}

// substrMatcher answers "is any listed word a substring of the query" in
// O(len(query) * distinct word lengths) using per-length hash sets. Labels
// are short (<= ~30 chars), so this outperforms a full Aho-Corasick build
// while staying allocation-free per query.
type substrMatcher struct {
	byLen   map[int]map[string]bool
	lengths []int
}

func newSubstrMatcher(words []string) *substrMatcher {
	m := &substrMatcher{byLen: make(map[int]map[string]bool)}
	for _, w := range words {
		set := m.byLen[len(w)]
		if set == nil {
			set = make(map[string]bool)
			m.byLen[len(w)] = set
			m.lengths = append(m.lengths, len(w))
		}
		set[w] = true
	}
	return m
}

func (m *substrMatcher) containedIn(s string) bool {
	for _, l := range m.lengths {
		if l > len(s) {
			continue
		}
		set := m.byLen[l]
		for i := 0; i+l <= len(s); i++ {
			if set[s[i:i+l]] {
				return true
			}
		}
	}
	return false
}
