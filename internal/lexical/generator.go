package lexical

import (
	"fmt"
	"math/rand"
	"strings"
)

// Category classifies how a synthetic label is constructed. The mix of
// categories is what gives the simulated population Table 1's lexical
// structure (dictionary words and short names attract re-registration;
// hyphens, underscores and digits are more common among abandoned names).
type Category int

const (
	// CatDictionary is a single dictionary word ("gold").
	CatDictionary Category = iota
	// CatCompound is two concatenated dictionary words ("goldrush").
	CatCompound
	// CatBrand embeds a brand name, optionally with a suffix ("pumastore").
	CatBrand
	// CatNumeric is digits only ("000", "8888").
	CatNumeric
	// CatAlphanumeric mixes a word with digits ("gold123").
	CatAlphanumeric
	// CatHyphenated joins two words with a hyphen ("gold-rush").
	CatHyphenated
	// CatUnderscored joins two words with an underscore ("gold_rush").
	CatUnderscored
	// CatRandom is random lowercase letters ("xkrjqw").
	CatRandom
	// CatShort is a 3-4 letter random label (the "3 Letters Club" market).
	CatShort
	// CatAdult embeds an adult keyword.
	CatAdult
	numCategories
)

// String returns the category name.
func (c Category) String() string {
	names := [...]string{
		"dictionary", "compound", "brand", "numeric", "alphanumeric",
		"hyphenated", "underscored", "random", "short", "adult",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Generator produces unique synthetic ENS labels with a configurable
// category mix. It is not safe for concurrent use; the world simulator owns
// one per run.
type Generator struct {
	rng     *rand.Rand
	weights [numCategories]float64
	total   float64
	used    map[string]bool
}

// DefaultWeights is the category mix used for the general registration
// population. Dictionary-flavored names dominate, matching the observation
// that 37-45% of expired ENS names contain a dictionary word.
var DefaultWeights = [numCategories]float64{
	CatDictionary:   0.022,
	CatCompound:     0.27,
	CatBrand:        0.005,
	CatNumeric:      0.14,
	CatAlphanumeric: 0.19,
	CatHyphenated:   0.05,
	CatUnderscored:  0.015,
	CatRandom:       0.26,
	CatShort:        0.04,
	CatAdult:        0.008,
}

// NewGenerator returns a generator seeded deterministically. A nil weights
// pointer selects DefaultWeights.
func NewGenerator(seed int64, weights *[numCategories]float64) *Generator {
	g := &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		used: make(map[string]bool),
	}
	if weights == nil {
		g.weights = DefaultWeights
	} else {
		g.weights = *weights
	}
	for _, w := range g.weights {
		g.total += w
	}
	if g.total <= 0 {
		panic("lexical: generator weights sum to zero")
	}
	return g
}

// Next returns a fresh unique label and its construction category.
func (g *Generator) Next() (string, Category) {
	for attempt := 0; ; attempt++ {
		cat := g.pickCategory()
		label := g.build(cat)
		if !g.used[label] && ValidLabel(label) {
			g.used[label] = true
			return label, cat
		}
		if attempt > 50 {
			// Name space for this category is saturated; salt with a counter.
			label = fmt.Sprintf("%s%d", label, len(g.used))
			if !g.used[label] {
				g.used[label] = true
				return label, cat
			}
		}
	}
}

// NextOfCategory returns a fresh unique label of the requested category.
func (g *Generator) NextOfCategory(cat Category) string {
	for attempt := 0; ; attempt++ {
		label := g.build(cat)
		if !g.used[label] && ValidLabel(label) {
			g.used[label] = true
			return label
		}
		if attempt > 50 {
			label = fmt.Sprintf("%s%d", label, len(g.used))
			if !g.used[label] && ValidLabel(label) {
				g.used[label] = true
				return label
			}
		}
	}
}

func (g *Generator) pickCategory() Category {
	r := g.rng.Float64() * g.total
	for c := Category(0); c < numCategories; c++ {
		r -= g.weights[c]
		if r < 0 {
			return c
		}
	}
	return CatRandom
}

func (g *Generator) word() string {
	return dictionaryWords[g.rng.Intn(len(dictionaryWords))]
}

func (g *Generator) letters(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + g.rng.Intn(26)))
	}
	return b.String()
}

func (g *Generator) digits(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('0' + g.rng.Intn(10)))
	}
	return b.String()
}

func (g *Generator) build(cat Category) string {
	switch cat {
	case CatDictionary:
		return g.word()
	case CatCompound:
		return g.word() + g.word()
	case CatBrand:
		brand := brandNames[g.rng.Intn(len(brandNames))]
		switch g.rng.Intn(3) {
		case 0:
			return brand
		case 1:
			return brand + g.word()
		default:
			return g.word() + brand
		}
	case CatNumeric:
		// Short numerics (000-9999) are the collectible market.
		n := 3 + g.rng.Intn(5)
		return g.digits(n)
	case CatAlphanumeric:
		return g.word() + g.digits(1+g.rng.Intn(4))
	case CatHyphenated:
		return g.word() + "-" + g.word()
	case CatUnderscored:
		return g.word() + "_" + g.word()
	case CatRandom:
		return g.letters(5 + g.rng.Intn(10))
	case CatShort:
		return g.letters(3 + g.rng.Intn(2))
	case CatAdult:
		w := adultWords[g.rng.Intn(len(adultWords))]
		if g.rng.Intn(2) == 0 {
			return w + g.word()
		}
		return w
	default:
		return g.letters(8)
	}
}
