package overload

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ensdropcatch/internal/trace"
)

// ClientIDHeader identifies the requesting crawler for quota accounting.
// Clients that do not send it are keyed by remote address, so a quota
// still binds anonymous callers.
const ClientIDHeader = "X-Client-ID"

// ClientID extracts the quota key for a request: the X-Client-ID header
// when present, else the host part of the remote address.
func ClientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// QuotaConfig tunes per-client token buckets.
type QuotaConfig struct {
	// Rate is the sustained request budget per client in requests/second.
	// <= 0 disables quotas (Allow always admits).
	Rate float64
	// Burst is the bucket capacity; <= 0 uses max(Rate, 1).
	Burst float64
	// MaxClients bounds the tracked buckets; when exceeded the
	// least-recently-seen client is evicted. <= 0 uses 4096.
	MaxClients int
	// Now is the injectable clock for tests; nil uses time.Now.
	Now func() time.Time
}

// Quotas enforces a deterministic token-bucket budget per client id.
// Safe for concurrent use.
type Quotas struct {
	cfg QuotaConfig

	denied atomic.Uint64

	mu      sync.Mutex
	buckets map[string]*qbucket // guarded by mu
}

type qbucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas returns a quota set for cfg.
func NewQuotas(cfg QuotaConfig) *Quotas {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Quotas{cfg: cfg, buckets: map[string]*qbucket{}}
}

// Enabled reports whether a positive rate was configured.
func (q *Quotas) Enabled() bool { return q.cfg.Rate > 0 }

// Allow consumes one token from client's bucket. A denial returns the
// time until the next token accrues, the Retry-After hint the client
// should honor.
func (q *Quotas) Allow(client string) (bool, time.Duration) {
	if !q.Enabled() {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	b, ok := q.buckets[client]
	if !ok {
		q.evictLocked()
		b = &qbucket{tokens: q.cfg.Burst, last: now}
		q.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.cfg.Rate
	if b.tokens > q.cfg.Burst {
		b.tokens = q.cfg.Burst
	}
	b.last = now
	if b.tokens < 1 {
		return false, time.Duration((1 - b.tokens) / q.cfg.Rate * float64(time.Second))
	}
	b.tokens--
	return true, 0
}

// evictLocked drops the least-recently-seen bucket once the table is
// full, bounding memory against client-id churn. Callers hold q.mu.
func (q *Quotas) evictLocked() {
	if len(q.buckets) < q.cfg.MaxClients {
		return
	}
	var oldestKey string
	var oldest time.Time
	for k, b := range q.buckets {
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	delete(q.buckets, oldestKey)
}

// Denied returns how many requests the quota set has rejected in total.
func (q *Quotas) Denied() uint64 { return q.denied.Load() }

// Clients returns the number of tracked client buckets.
func (q *Quotas) Clients() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// Wrap returns next behind the quota. Denied requests get 429 with the
// computed Retry-After and are counted per client; quotas that are
// disabled pass everything through.
func (q *Quotas) Wrap(route string, next http.Handler) http.Handler {
	if !q.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client := ClientID(r)
		ok, wait := q.Allow(client)
		if !ok {
			q.denied.Add(1)
			m().quotaDenied.With(client).Inc()
			// Name the denying layer on the request's trace so a stored
			// 429 trace identifies the quota, not just the status code.
			if sp := trace.FromContext(r.Context()); sp != nil {
				sp.Error("overload.quota_denied",
					trace.A("client", client),
					trace.A("retry_after", wait.String()))
			}
			writeRetryAfter(w, wait)
			http.Error(w, "quota exceeded for client "+client, http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
