// Package overload is the server half of the pipeline's fault-tolerance
// story: admission control, load shedding, per-client quotas, and
// deadline propagation for the ensworld API server.
//
// PR 2 hardened the *clients* — retries, Retry-After, circuit breakers,
// resumable crawls — against a faulty server. This package protects the
// server from its clients: a bounded concurrency gate with a bounded,
// deadline-aware wait queue keeps an unbounded burst of crawlers from
// queueing unboundedly and starving /healthz; requests the server cannot
// serve in time are shed early with 503 + a computed Retry-After, the
// exact signal the PR 2 retry loop (and the PR 5 adaptive controller)
// already honors. Priority classes keep health, metrics, and debug
// routes outside the gate entirely: an overloaded server must still be
// observable.
//
// The three pieces compose as HTTP middleware, outermost first:
//
//	Deadline (bound the handler context)
//	→ Quotas (per-client token buckets, 429 + Retry-After)
//	→ Gate   (bounded concurrency + bounded queue, 503 + Retry-After)
//	→ handler
//
// All decisions are instrumented on the obs registry: overload_inflight,
// overload_queue_depth, overload_queue_wait_seconds,
// overload_shed_total{route,reason}, overload_quota_denied_total{client}.
package overload

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ensdropcatch/internal/trace"
)

// Priority classifies a route for admission control.
type Priority int

const (
	// Critical routes (health, metrics, debug) bypass the gate: they are
	// never queued and never shed, so an overloaded server stays
	// observable and load balancers can still probe it.
	Critical Priority = iota
	// Data routes (the crawled APIs) are admitted through the bounded
	// gate and shed first under overload.
	Data
)

// String renders the priority for logs.
func (p Priority) String() string {
	switch p {
	case Critical:
		return "critical"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Shed reasons recorded in overload_shed_total{route,reason}.
const (
	// ReasonQueueFull: the wait queue was already at QueueDepth.
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the estimated queued wait exceeded the request's
	// remaining deadline budget (or the deadline expired while queued).
	ReasonDeadline = "deadline"
	// ReasonTimeout: the request waited MaxWait without getting a slot.
	ReasonTimeout = "timeout"
)

// ShedError reports a rejected admission with the backoff hint the
// client should honor before retrying.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: shed (%s, retry after %v)", e.Reason, e.RetryAfter)
}

// GateConfig tunes a Gate. Zero values pick production-shaped defaults.
type GateConfig struct {
	// MaxInflight bounds concurrently admitted data requests; <= 0 uses 64.
	MaxInflight int
	// QueueDepth bounds requests waiting for a slot; <= 0 uses 128.
	QueueDepth int
	// MaxWait caps how long one request may queue; <= 0 uses 2s.
	MaxWait time.Duration
	// DefaultServiceTime seeds the wait estimator before any request has
	// completed; <= 0 uses 100ms.
	DefaultServiceTime time.Duration
	// Now is the injectable clock for tests; nil uses time.Now.
	Now func() time.Time
}

// Gate is a bounded-concurrency admission controller with a bounded,
// deadline-aware wait queue. Safe for concurrent use.
type Gate struct {
	cfg GateConfig

	sheds atomic.Uint64

	mu       sync.Mutex
	inflight int           // guarded by mu
	queued   int           // guarded by mu
	ewmaSec  float64       // EWMA of observed service time, seconds; 0 = no samples; guarded by mu
	wake     chan struct{} // closed and replaced on every release; guarded by mu
}

// NewGate returns a gate for cfg.
func NewGate(cfg GateConfig) *Gate {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Second
	}
	if cfg.DefaultServiceTime <= 0 {
		cfg.DefaultServiceTime = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Gate{cfg: cfg, wake: make(chan struct{})}
}

// estimateLocked predicts how long the request at queue position pos
// (1-based) will wait for a slot, from the service-time EWMA. Callers
// hold g.mu. The floor keeps Retry-After hints from telling clients to
// hammer a saturated server instantly.
func (g *Gate) estimateLocked(pos int) time.Duration {
	base := g.ewmaSec
	if base == 0 {
		base = g.cfg.DefaultServiceTime.Seconds()
	}
	est := time.Duration(base * float64(pos) / float64(g.cfg.MaxInflight) * float64(time.Second))
	if est < 10*time.Millisecond {
		est = 10 * time.Millisecond
	}
	return est
}

// Admit blocks until the request may proceed and returns an idempotent
// release function, or sheds with a *ShedError: immediately when the
// queue is full or the estimated queued wait exceeds the context's
// remaining deadline budget, later when the deadline expires or MaxWait
// elapses while queued.
func (g *Gate) Admit(ctx context.Context) (func(), error) {
	g.mu.Lock()
	if g.inflight < g.cfg.MaxInflight {
		g.admitLocked()
		g.mu.Unlock()
		m().queueWait.Observe(0)
		return g.releaseFunc(), nil
	}
	if g.queued >= g.cfg.QueueDepth {
		est := g.estimateLocked(g.queued + 1)
		g.mu.Unlock()
		g.sheds.Add(1)
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: est}
	}
	est := g.estimateLocked(g.queued + 1)
	if dl, ok := ctx.Deadline(); ok {
		if remaining := dl.Sub(g.cfg.Now()); est > remaining {
			g.mu.Unlock()
			g.sheds.Add(1)
			return nil, &ShedError{Reason: ReasonDeadline, RetryAfter: est}
		}
	}
	g.queued++
	m().queueDepth.Set(float64(g.queued))
	start := g.cfg.Now()
	timer := time.NewTimer(g.cfg.MaxWait)
	defer timer.Stop()
	for {
		wake := g.wake
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, g.abandon(ReasonDeadline)
		case <-timer.C:
			return nil, g.abandon(ReasonTimeout)
		case <-wake:
		}
		g.mu.Lock()
		if g.inflight < g.cfg.MaxInflight {
			g.queued--
			m().queueDepth.Set(float64(g.queued))
			g.admitLocked()
			wait := g.cfg.Now().Sub(start)
			g.mu.Unlock()
			m().queueWait.Observe(wait.Seconds())
			// A queued admission is latency the gate added; name it in
			// the trace so slow requests are attributable to the queue.
			if sp := trace.FromContext(ctx); sp != nil {
				sp.Event("overload.queued", trace.A("wait", wait.String()))
			}
			return g.releaseFunc(), nil
		}
		// Another waiter claimed the slot; keep waiting.
	}
}

// admitLocked claims an inflight slot; callers hold g.mu.
func (g *Gate) admitLocked() {
	g.inflight++
	m().inflight.Set(float64(g.inflight))
	m().admitted.Inc()
}

// abandon removes a queued request that gave up and builds its shed
// error with a fresh wait estimate.
func (g *Gate) abandon(reason string) *ShedError {
	g.mu.Lock()
	g.queued--
	m().queueDepth.Set(float64(g.queued))
	est := g.estimateLocked(g.queued + 1)
	g.mu.Unlock()
	g.sheds.Add(1)
	return &ShedError{Reason: reason, RetryAfter: est}
}

// Inflight returns the number of currently admitted data requests.
func (g *Gate) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// Queued returns the number of requests waiting for a slot.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// ShedCount returns how many admissions the gate has shed in total.
func (g *Gate) ShedCount() uint64 { return g.sheds.Load() }

// releaseFunc captures the admission time and returns the idempotent
// release: it frees the slot, feeds the observed service time into the
// wait estimator, and wakes every queued waiter.
func (g *Gate) releaseFunc() func() {
	start := g.cfg.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			elapsed := g.cfg.Now().Sub(start).Seconds()
			g.mu.Lock()
			g.inflight--
			m().inflight.Set(float64(g.inflight))
			if g.ewmaSec == 0 {
				g.ewmaSec = elapsed
			} else {
				g.ewmaSec = 0.8*g.ewmaSec + 0.2*elapsed
			}
			close(g.wake)
			g.wake = make(chan struct{})
			g.mu.Unlock()
		})
	}
}

// Wrap returns next behind the gate under the given route label.
// Critical routes pass through untouched — an overloaded server must
// still answer its health checks. Shed data requests get 503 with a
// computed Retry-After.
func (g *Gate) Wrap(route string, pri Priority, next http.Handler) http.Handler {
	if pri == Critical {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := g.Admit(r.Context())
		if err != nil {
			shed, ok := err.(*ShedError)
			if !ok {
				shed = &ShedError{Reason: ReasonTimeout, RetryAfter: time.Second}
			}
			m().shed.With(route, shed.Reason).Inc()
			// Name the shedding layer on the request's trace: the 503
			// alone cannot say whether the queue was full, the deadline
			// budget was blown, or MaxWait elapsed.
			if sp := trace.FromContext(r.Context()); sp != nil {
				sp.Error("overload.shed",
					trace.A("route", route),
					trace.A("reason", shed.Reason),
					trace.A("retry_after", shed.RetryAfter.String()))
			}
			writeRetryAfter(w, shed.RetryAfter)
			http.Error(w, "overloaded: "+shed.Reason, http.StatusServiceUnavailable)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// writeRetryAfter renders the hint in fractional seconds: real servers
// send integers, but fractional hints keep the chaos/soak harnesses
// fast and crawler.ParseRetryAfter accepts both.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.Header().Set("Retry-After", strconv.FormatFloat(d.Seconds(), 'g', -1, 64))
}
