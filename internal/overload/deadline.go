package overload

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the client's remaining budget for one request
// in whole milliseconds. The server bounds the handler's context by it
// (clamped to the route's maximum), so work the client has already given
// up on stops consuming CPU instead of running to completion for nobody.
const DeadlineHeader = "X-Request-Deadline-Ms"

// SetRequestHeaders stamps the overload-protocol headers onto an
// outbound request: the client's identity (quota bucket key) when
// non-empty, and the remaining context budget in whole milliseconds
// when the request context carries a deadline. Crawl clients call this
// so server-side quotas and deadline propagation see through connection
// reuse and NAT.
func SetRequestHeaders(req *http.Request, clientID string) {
	if clientID != "" {
		req.Header.Set(ClientIDHeader, clientID)
	}
	if dl, ok := req.Context().Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
}

// Deadline bounds each request's context: def is the route's default
// budget (<= 0 means none), and a valid X-Request-Deadline-Ms header
// overrides it, clamped to max (<= 0 means uncapped). The gate, running
// inside this middleware, sheds queued requests whose budget the
// estimated wait would blow.
func Deadline(def, max time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget := def
		if v := r.Header.Get(DeadlineHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
				budget = time.Duration(ms) * time.Millisecond
			}
		}
		if max > 0 && budget > max {
			budget = max
		}
		if budget <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
