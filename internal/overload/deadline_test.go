package overload

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// deadlineOf runs one request through Deadline(def, max) with the given
// header value ("" omits it) and reports the handler context's budget
// (0 when no deadline was set).
func deadlineOf(t *testing.T, def, max time.Duration, header string) time.Duration {
	t.Helper()
	var budget time.Duration
	h := Deadline(def, max, http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		if dl, ok := r.Context().Deadline(); ok {
			budget = time.Until(dl)
		}
	}))
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	if header != "" {
		r.Header.Set(DeadlineHeader, header)
	}
	h.ServeHTTP(httptest.NewRecorder(), r)
	return budget
}

// near reports whether got is within 100ms below want (deadlines are
// measured after some handler dispatch overhead).
func near(got, want time.Duration) bool {
	return got > want-100*time.Millisecond && got <= want
}

func TestDeadlineDefaultApplies(t *testing.T) {
	if got := deadlineOf(t, 5*time.Second, 0, ""); !near(got, 5*time.Second) {
		t.Errorf("budget = %v, want ~5s default", got)
	}
}

func TestDeadlineHeaderOverridesDefault(t *testing.T) {
	if got := deadlineOf(t, 30*time.Second, 0, "1500"); !near(got, 1500*time.Millisecond) {
		t.Errorf("budget = %v, want ~1.5s from header", got)
	}
}

func TestDeadlineHeaderClampedToMax(t *testing.T) {
	if got := deadlineOf(t, 2*time.Second, 4*time.Second, "60000"); !near(got, 4*time.Second) {
		t.Errorf("budget = %v, want clamped to 4s max", got)
	}
}

func TestDeadlineInvalidHeaderIgnored(t *testing.T) {
	for _, bad := range []string{"soon", "-5", "0", "1.5"} {
		if got := deadlineOf(t, time.Second, 0, bad); !near(got, time.Second) {
			t.Errorf("header %q: budget = %v, want ~1s default", bad, got)
		}
	}
}

func TestDeadlineAbsentLeavesContextUnbounded(t *testing.T) {
	if got := deadlineOf(t, 0, 0, ""); got != 0 {
		t.Errorf("budget = %v, want none", got)
	}
}

func TestDeadlineCancelsSlowHandler(t *testing.T) {
	done := make(chan error, 1)
	h := Deadline(20*time.Millisecond, 0, http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			done <- r.Context().Err()
		case <-time.After(5 * time.Second):
			done <- nil
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if err := <-done; err == nil {
		t.Fatal("handler context never expired under a 20ms budget")
	}
}
