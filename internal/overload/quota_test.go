package overload

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

func TestQuotaTokenBucketDeterministic(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(1000, 0)
	q := NewQuotas(QuotaConfig{Rate: 1, Burst: 2, Now: func() time.Time { return now }})

	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := q.Allow("alice")
	if ok {
		t.Fatal("third immediate request admitted past burst")
	}
	if math.Abs(wait.Seconds()-1) > 1e-9 {
		t.Fatalf("retry-after = %v, want 1s until the next token", wait)
	}
	// Another client has its own bucket.
	if ok, _ := q.Allow("bob"); !ok {
		t.Fatal("independent client denied")
	}
	// After one second a token has accrued.
	now = now.Add(time.Second)
	if ok, _ := q.Allow("alice"); !ok {
		t.Fatal("request denied after refill interval")
	}
}

func TestQuotaDisabledAdmitsEverything(t *testing.T) {
	withTestMetrics(t)
	q := NewQuotas(QuotaConfig{Rate: 0})
	for i := 0; i < 100; i++ {
		if ok, _ := q.Allow("anyone"); !ok {
			t.Fatal("disabled quota denied a request")
		}
	}
}

func TestQuotaEvictsLeastRecentClient(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	q := NewQuotas(QuotaConfig{Rate: 100, MaxClients: 2, Now: func() time.Time { return now }})
	q.Allow("a")
	now = now.Add(time.Second)
	q.Allow("b")
	now = now.Add(time.Second)
	q.Allow("c") // table full: "a" (stalest) is evicted
	if n := q.Clients(); n != 2 {
		t.Fatalf("tracked clients = %d, want 2", n)
	}
	q.mu.Lock()
	_, hasA := q.buckets["a"]
	_, hasB := q.buckets["b"]
	_, hasC := q.buckets["c"]
	q.mu.Unlock()
	if hasA || !hasB || !hasC {
		t.Fatalf("buckets after eviction: a=%v b=%v c=%v, want only b and c", hasA, hasB, hasC)
	}
}

func TestClientIDHeaderThenRemoteAddr(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := ClientID(r); got != "10.1.2.3" {
		t.Errorf("ClientID without header = %q, want host of RemoteAddr", got)
	}
	r.Header.Set(ClientIDHeader, "crawler-7")
	if got := ClientID(r); got != "crawler-7" {
		t.Errorf("ClientID with header = %q, want crawler-7", got)
	}
}

func TestQuotaWrapDenies429WithRetryAfterAndCounter(t *testing.T) {
	reg := withTestMetrics(t)
	now := time.Unix(0, 0)
	q := NewQuotas(QuotaConfig{Rate: 1, Burst: 1, Now: func() time.Time { return now }})
	h := q.Wrap("/etherscan/", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	do := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodGet, "/etherscan/api", nil)
		r.Header.Set(ClientIDHeader, "hog")
		h.ServeHTTP(rec, r)
		return rec
	}
	if rec := do(); rec.Code != http.StatusOK {
		t.Fatalf("first request got %d, want 200", rec.Code)
	}
	rec := do()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", rec.Code)
	}
	secs, err := strconv.ParseFloat(rec.Header().Get("Retry-After"), 64)
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After = %q, want positive seconds", rec.Header().Get("Retry-After"))
	}
	if got := reg.CounterVec("overload_quota_denied_total", "", "client").With("hog").Value(); got != 1 {
		t.Errorf("overload_quota_denied_total{hog} = %d, want 1", got)
	}
}

func TestQuotaDeniedLabelCardinalityBounded(t *testing.T) {
	reg := withTestMetrics(t)
	now := time.Unix(0, 0)
	// Rate 1, Burst 1: every client's second request is denied.
	q := NewQuotas(QuotaConfig{Rate: 1, Burst: 1, MaxClients: 4096, Now: func() time.Time { return now }})

	denied := 0
	for i := 0; i < maxQuotaClients+50; i++ {
		id := "client-" + strconv.Itoa(i)
		q.Allow(id)
		if ok, _ := q.Allow(id); !ok {
			m().quotaDenied.With(id).Inc()
			denied++
		}
	}
	if denied != maxQuotaClients+50 {
		t.Fatalf("denials = %d, want %d", denied, maxQuotaClients+50)
	}

	vec := reg.CounterVec("overload_quota_denied_total", "", "client")
	if got := vec.With("client-0").Value(); got != 1 {
		t.Errorf("in-cap client series = %d, want 1", got)
	}
	if got := vec.With(obs.OverflowLabel).Value(); got != 50 {
		t.Errorf("overflow series = %d, want the 50 over-cap denials", got)
	}
	if got := reg.CounterVec("obs_label_overflow_total", "", "metric").
		With("overload_quota_denied_total").Value(); got != 50 {
		t.Errorf("obs_label_overflow_total = %d, want 50", got)
	}
}
