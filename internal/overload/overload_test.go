package overload

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

// withTestMetrics points the package metrics at a private registry for
// the duration of the test and returns it.
func withTestMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	InitMetrics(reg)
	t.Cleanup(func() { InitMetrics(nil) })
	return reg
}

func TestGateAdmitsUpToMaxInflight(t *testing.T) {
	withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 2, QueueDepth: 4})

	r1, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	r2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}

	// Third admission must queue until a slot frees.
	admitted := make(chan error, 1)
	go func() {
		r3, err := g.Admit(context.Background())
		if err == nil {
			r3()
		}
		admitted <- err
	}()
	select {
	case err := <-admitted:
		t.Fatalf("third admit did not queue (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	r1()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued admit after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
	r2()
	r2() // release is idempotent
	if g.inflight != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", g.inflight)
	}
}

func TestGateShedsQueueFull(t *testing.T) {
	reg := withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 1, MaxWait: time.Minute})

	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		r, err := g.Admit(context.Background())
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitForQueued(t, g, 1)

	// The next request finds the queue full and sheds immediately.
	_, err = g.Admit(context.Background())
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonQueueFull)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if got := reg.CounterVec("overload_shed_total", "", "route", "reason").With("", ReasonQueueFull).Value(); got != 0 {
		// Admit records no route; Wrap does. The raw counter is exercised
		// in TestGateWrapSheds503.
		t.Errorf("unexpected route-less shed count %d", got)
	}
}

func TestGateShedsWhenEstimateExceedsDeadline(t *testing.T) {
	withTestMetrics(t)
	// One slot, and an untrained estimator seeded at 10s: any queued
	// request would predict a 10s wait.
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 8, DefaultServiceTime: 10 * time.Second})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = g.Admit(ctx)
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonDeadline {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonDeadline)
	}
}

func TestGateShedsOnMaxWait(t *testing.T) {
	withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 8, MaxWait: 30 * time.Millisecond})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, err = g.Admit(context.Background())
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonTimeout {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonTimeout)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("shed after %v, want >= MaxWait", elapsed)
	}
	if g.queued != 0 {
		t.Errorf("queued = %d after timeout, want 0", g.queued)
	}
}

func TestGateShedsOnContextCancelWhileQueued(t *testing.T) {
	withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 8, MaxWait: time.Minute})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		done <- err
	}()
	waitForQueued(t, g, 1)
	cancel()
	err = <-done
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonDeadline {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonDeadline)
	}
}

func TestGateWrapCriticalBypassesSaturatedGate(t *testing.T) {
	withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 1})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	h := g.Wrap("/healthz", Critical, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("critical route got %d through a saturated gate, want 200", rec.Code)
	}
}

func TestGateWrapSheds503WithRetryAfter(t *testing.T) {
	reg := withTestMetrics(t)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 1, MaxWait: time.Minute})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Occupy the queue slot so the wrapped request sheds queue_full.
	queued := make(chan error, 1)
	go func() {
		r, err := g.Admit(context.Background())
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitForQueued(t, g, 1)

	h := g.Wrap("/subgraph", Data, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/subgraph", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.ParseFloat(ra, 64)
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}
	if got := reg.CounterVec("overload_shed_total", "", "route", "reason").With("/subgraph", ReasonQueueFull).Value(); got != 1 {
		t.Errorf("overload_shed_total{/subgraph,queue_full} = %d, want 1", got)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

func TestGateEstimatorLearnsServiceTime(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	g := NewGate(GateConfig{MaxInflight: 1, QueueDepth: 1, Now: func() time.Time { return now }})
	release, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second) // the request "served" for 2s
	release()
	if g.ewmaSec != 2 {
		t.Fatalf("ewma = %v after first sample, want 2", g.ewmaSec)
	}
	// A second, faster request pulls the EWMA down but not to the sample.
	release, err = g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second)
	release()
	if g.ewmaSec <= 1 || g.ewmaSec >= 2 {
		t.Fatalf("ewma = %v after 1s sample, want in (1, 2)", g.ewmaSec)
	}
}

// waitForQueued spins until the gate reports depth queued waiters.
func waitForQueued(t *testing.T, g *Gate, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		q := g.queued
		g.mu.Unlock()
		if q >= depth {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gate never reached queue depth %d", depth)
}
