package overload

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet bundles the overload-protection instrumentation handles,
// resolved once per registry so the admission hot path stays cheap.
type metricSet struct {
	inflight    *obs.Gauge
	queueDepth  *obs.Gauge
	queueWait   *obs.Histogram
	admitted    *obs.Counter
	shed        *obs.CounterVec
	quotaDenied *obs.BoundedCounterVec
}

// maxQuotaClients caps the distinct client-id label values on
// overload_quota_denied_total. The id is caller-controlled
// (X-Client-ID), so an adversarial or buggy client could otherwise
// mint unbounded series; past the cap, denials collapse into the
// "_other" series and obs_label_overflow_total counts them.
const maxQuotaClients = 128

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets to
// obs.Default). Tests hand in a private registry to assert on recorded
// values without cross-talk.
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	// Queue waits span instant admits to the multi-second waits of a
	// saturated server just before it starts shedding.
	waitBuckets := []float64{.001, .005, .01, .05, .1, .25, .5, 1, 2.5, 5}
	metrics.Store(&metricSet{
		inflight: reg.Gauge("overload_inflight",
			"Data-route requests currently admitted through the gate."),
		queueDepth: reg.Gauge("overload_queue_depth",
			"Data-route requests waiting for an admission slot."),
		queueWait: reg.Histogram("overload_queue_wait_seconds",
			"Time admitted requests spent queued for a slot.", waitBuckets),
		admitted: reg.Counter("overload_admitted_total",
			"Data-route requests admitted through the gate."),
		shed: reg.CounterVec("overload_shed_total",
			"Requests shed by the admission gate, by route and reason.", "route", "reason"),
		quotaDenied: reg.BoundedCounterVec("overload_quota_denied_total",
			"Requests denied by per-client quotas, by client id (capped cardinality).",
			maxQuotaClients, "client"),
	})
}

func m() *metricSet { return metrics.Load() }
