// Package par provides a small bounded worker pool for data-parallel
// analysis: it fans an index range out over a fixed number of workers and
// gathers results in deterministic input order, so a parallel run is
// bit-for-bit identical to a sequential one. The rules that make that
// hold:
//
//   - Work is addressed by input index, never by map iteration: Map writes
//     result i to slot i regardless of which worker computed it.
//   - Reduction over results happens in the caller, sequentially, in input
//     order. In particular, floating-point accumulators must never be
//     summed per shard and merged (float addition is not associative);
//     callers fold the ordered result slice left to right instead.
//
// Pools are cheap to construct (two histogram handles and a counter); the
// intended pattern is one Pool per analysis entry point, labeled with the
// operation name so the obs histograms separate the hot paths.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"ensdropcatch/internal/obs"
)

// shardBuckets resolve sub-millisecond shard times: analysis shards over a
// 20k-domain world run in the 10us-100ms range, far below obs.DefBuckets.
var shardBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, .01, .05, .1, .5, 1, 5}

var (
	shardSeconds = obs.Default.HistogramVec("par_shard_seconds",
		"Wall time of one contiguous shard of work, per operation.",
		shardBuckets, "op")
	queueWaitSeconds = obs.Default.HistogramVec("par_queue_wait_seconds",
		"Delay between work submission and a worker picking up its first shard.",
		shardBuckets, "op")
	tasksTotal = obs.Default.CounterVec("par_tasks_total",
		"Work items processed, per operation.", "op")
	workerCount = obs.Default.GaugeVec("par_workers",
		"Workers configured for the most recent run of each operation.", "op")
)

// chunksPerWorker oversubscribes shards relative to workers so uneven item
// costs (one heavy history among thousands of light ones) still balance.
const chunksPerWorker = 8

// Pool is a bounded fan-out executor for one named operation. The zero
// value is not usable; construct with New.
type Pool struct {
	op        string
	workers   int
	shardDur  *obs.Histogram
	queueWait *obs.Histogram
	tasks     *obs.Counter
	gauge     *obs.Gauge
}

// New returns a pool running at most workers goroutines; workers <= 0
// means GOMAXPROCS. op labels the pool's metrics.
func New(op string, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		op:        op,
		workers:   workers,
		shardDur:  shardSeconds.With(op),
		queueWait: queueWaitSeconds.With(op),
		tasks:     tasksTotal.With(op),
		gauge:     workerCount.With(op),
	}
}

// Workers returns the configured fan-out width.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), spread over the pool's
// workers in contiguous chunks. It returns after all calls complete. fn
// must be safe to call concurrently; a panic in any call is re-raised in
// the caller once the other workers drain.
func ForEach(p *Pool, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	p.gauge.Set(float64(w))
	// CPU samples from every shard carry the pool's operation name, so a
	// profile from `make bench` segments by analysis rather than showing
	// one undifferentiated par.ForEach hot spot.
	labels := pprof.Labels("par_op", p.op)
	if w == 1 {
		start := time.Now()
		pprof.Do(context.Background(), labels, func(context.Context) {
			for i := 0; i < n; i++ {
				fn(i)
			}
		})
		p.shardDur.Observe(time.Since(start).Seconds())
		p.tasks.Add(uint64(n))
		return
	}

	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	submitted := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = fmt.Errorf("par: worker panic: %v", r) })
				}
			}()
			pprof.Do(context.Background(), labels, func(context.Context) {
				first := true
				for {
					hi := int(next.Add(int64(chunk)))
					lo := hi - chunk
					if lo >= n {
						return
					}
					if hi > n {
						hi = n
					}
					if first {
						p.queueWait.Observe(time.Since(submitted).Seconds())
						first = false
					}
					start := time.Now()
					for i := lo; i < hi; i++ {
						fn(i)
					}
					p.shardDur.Observe(time.Since(start).Seconds())
				}
			})
		}()
	}
	wg.Wait()
	p.tasks.Add(uint64(n))
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0, n) on the pool and returns the results in input
// order: out[i] is always fn(i), whichever worker computed it.
func Map[R any](p *Pool, n int, fn func(i int) R) []R {
	out := make([]R, n)
	ForEach(p, n, func(i int) { out[i] = fn(i) })
	return out
}
