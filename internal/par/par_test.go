package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		p := New("test_map", workers)
		n := 10_000
		out := Map(p, n, func(i int) int { return i * i })
		if len(out) != n {
			t.Fatalf("workers=%d: len = %d, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	p := New("test_foreach", 7)
	n := 5_000
	visits := make([]atomic.Int32, n)
	ForEach(p, n, func(i int) { visits[i].Add(1) })
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	p := New("test_tiny", 16)
	ForEach(p, 0, func(int) { t.Fatal("called for n=0") })
	ran := 0
	// n smaller than workers: pool must clamp, not deadlock.
	ForEach(New("test_tiny", 16), 3, func(i int) { ran++ })
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	_ = p
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := New("test_default", 0).Workers(); got < 1 {
		t.Fatalf("Workers() = %d", got)
	}
	if got := New("test_default", -3).Workers(); got < 1 {
		t.Fatalf("Workers() = %d for negative input", got)
	}
	if got := New("test_default", 5).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(mustString(r), "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	p := New("test_panic", 4)
	ForEach(p, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func mustString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

// TestMapDeterministicAcrossWorkerCounts is the package-level statement of
// the PR's guarantee: same inputs, same outputs, any worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := Map(New("test_det", 1), 2048, func(i int) float64 { return float64(i) * 1.7 })
	for _, workers := range []int{2, 4, 16} {
		got := Map(New("test_det", workers), 2048, func(i int) float64 { return float64(i) * 1.7 })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverged at %d: %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	p := New("bench_map", 0)
	for i := 0; i < b.N; i++ {
		Map(p, 1024, func(i int) int { return i })
	}
}
