package opensea

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the client's instrumentation handles.
type metricSet struct {
	requests *obs.Counter
	errors   *obs.Counter
	pages    *obs.Counter
	events   *obs.Counter
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		requests: reg.Counter("opensea_client_requests_total",
			"Event-API requests issued by the OpenSea client."),
		errors: reg.Counter("opensea_client_errors_total",
			"Transport, HTTP, or decode errors seen by the OpenSea client."),
		pages: reg.Counter("opensea_client_pages_total",
			"Cursor pages fetched by the OpenSea client."),
		events: reg.Counter("opensea_client_events_total",
			"Marketplace events received."),
	})
}

func m() *metricSet { return metrics.Load() }
