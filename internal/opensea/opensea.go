// Package opensea reimplements the slice of the OpenSea events API the
// paper uses for its resale-market analysis (§4.2): listing and sale events
// per ENS token, queryable by token id with cursor paging. ENS names are
// NFTs whose token id is the label hash, so the marketplace joins naturally
// against the registrar's records.
package opensea

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/httpjson"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/world"
)

// Event is one marketplace event, JSON-shaped for the API.
type Event struct {
	EventType string  `json:"event_type"` // "listing" or "sale"
	TokenID   string  `json:"token_id"`
	Name      string  `json:"name"` // "<label>.eth"
	Seller    string  `json:"seller"`
	Buyer     string  `json:"buyer,omitempty"`
	PriceUSD  float64 `json:"price_usd"`
	Timestamp int64   `json:"event_timestamp"`
}

type eventsResponse struct {
	AssetEvents []Event `json:"asset_events"`
	Next        string  `json:"next,omitempty"`
}

// Server serves marketplace events.
type Server struct {
	mu      sync.RWMutex
	byToken map[string][]Event
	all     []Event
}

// NewServer indexes a world's marketplace stream.
func NewServer(events []world.OpenSeaEvent) *Server {
	s := &Server{byToken: make(map[string][]Event)}
	for _, ev := range events {
		e := Event{
			TokenID:   ev.TokenID.Hex(),
			Name:      ev.Label + ".eth",
			Seller:    ev.Seller.Hex(),
			PriceUSD:  ev.PriceUSD,
			Timestamp: ev.Timestamp,
		}
		switch ev.Kind {
		case world.OSList:
			e.EventType = "listing"
		case world.OSSale:
			e.EventType = "sale"
			e.Buyer = ev.Buyer.Hex()
		}
		s.byToken[e.TokenID] = append(s.byToken[e.TokenID], e)
		s.all = append(s.all, e)
	}
	sort.SliceStable(s.all, func(i, j int) bool { return s.all[i].Timestamp < s.all[j].Timestamp })
	return s
}

// ServeHTTP handles GET /events with optional token_id, event_type, and
// cursor/limit query parameters.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/events" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	limit := 50
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 || n > 200 {
			http.Error(w, `{"error": "limit must be in [1, 200]"}`, http.StatusBadRequest)
			return
		}
		limit = n
	}
	cursor := 0
	if cs := q.Get("cursor"); cs != "" {
		n, err := strconv.Atoi(cs)
		if err != nil || n < 0 {
			http.Error(w, `{"error": "bad cursor"}`, http.StatusBadRequest)
			return
		}
		cursor = n
	}
	tokenID := q.Get("token_id")
	eventType := q.Get("event_type")

	s.mu.RLock()
	src := s.all
	if tokenID != "" {
		src = s.byToken[tokenID]
	}
	var matched []Event
	for _, e := range src {
		if eventType != "" && e.EventType != eventType {
			continue
		}
		matched = append(matched, e)
	}
	s.mu.RUnlock()

	resp := eventsResponse{AssetEvents: []Event{}}
	if cursor < len(matched) {
		end := cursor + limit
		if end > len(matched) {
			end = len(matched)
		}
		resp.AssetEvents = matched[cursor:end]
		if end < len(matched) {
			resp.Next = strconv.Itoa(end)
		}
	}
	// A failed response write means the client is gone; nothing to repair.
	_ = httpjson.Write(w, http.StatusOK, &resp)
}

// Client pages through the events API. Transport failures, 5xx answers,
// and truncated responses are retried with backoff, honoring Retry-After
// on 429s; 4xx answers are permanent.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	Limit      int
	// MaxRetries per page fetch on transient failures.
	MaxRetries int
	// Sleep is indirected for tests; nil uses a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Breaker, when set, circuit-breaks requests to this source.
	Breaker *crawler.Breaker
	// Adaptive, when set, paces and bounds in-flight requests with AIMD
	// control fed by server feedback (429/503 + Retry-After, latency).
	Adaptive *crawler.Adaptive
	// ClientID, when non-empty, is sent as X-Client-ID so server-side
	// per-client quotas key on a stable identity.
	ClientID string
	// Budget, when set, caps how many retries this client may fund
	// during an outage; a dry budget fails fast instead of storming.
	Budget *crawler.RetryBudget
	// Hedger, when set, duplicates slow page fetches past the
	// tail-latency estimate; page GETs are idempotent.
	Hedger *crawler.Hedger
}

// NewClient returns a client with defaults.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 30 * time.Second}, Limit: 200, MaxRetries: 5}
}

// EventsForToken retrieves all events for one ENS token (label hash).
func (c *Client) EventsForToken(ctx context.Context, tokenID ethtypes.Hash) ([]Event, error) {
	return c.page(ctx, url.Values{"token_id": {tokenID.Hex()}})
}

// AllEvents retrieves the full event stream, optionally filtered by type
// ("listing", "sale", or "" for both).
func (c *Client) AllEvents(ctx context.Context, eventType string) ([]Event, error) {
	v := url.Values{}
	if eventType != "" {
		v.Set("event_type", eventType)
	}
	return c.page(ctx, v)
}

func (c *Client) page(ctx context.Context, params url.Values) ([]Event, error) {
	limit := c.Limit
	if limit <= 0 || limit > 200 {
		limit = 200
	}
	params.Set("limit", strconv.Itoa(limit))
	var out []Event
	cursor := ""
	for {
		if cursor != "" {
			params.Set("cursor", cursor)
		}
		endpoint := c.BaseURL + "/events?" + params.Encode()
		page, err := c.fetchPage(ctx, endpoint)
		if err != nil {
			return nil, err
		}
		m().pages.Inc()
		m().events.Add(uint64(len(page.AssetEvents)))
		out = append(out, page.AssetEvents...)
		if page.Next == "" {
			return out, nil
		}
		cursor = page.Next
	}
}

// fetchPage retrieves one page with retries and breaker accounting.
func (c *Client) fetchPage(ctx context.Context, endpoint string) (*eventsResponse, error) {
	attempts := c.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	cfg := crawler.RetryConfig{
		Attempts:  attempts,
		BaseDelay: 200 * time.Millisecond,
		MaxDelay:  10 * time.Second,
		Jitter:    0.2,
		Sleep:     c.Sleep,
		Budget:    c.Budget,
	}
	// One page fetch is one span; retry attempts nest under it and the
	// traceparent each attempt sends links the server's records in.
	ctx, sp := trace.Start(ctx, "opensea.page")
	var page *eventsResponse
	err := crawler.Retry(ctx, cfg, func(ctx context.Context) error {
		if b := c.Breaker; b != nil {
			if err := b.Allow(); err != nil {
				return err
			}
		}
		if a := c.Adaptive; a != nil {
			if err := a.Wait(ctx); err != nil {
				return crawler.Permanent(err)
			}
			if err := a.Acquire(ctx); err != nil {
				return crawler.Permanent(err)
			}
		}
		var err error
		start := time.Now()
		// The hedged pair runs under the single Adaptive slot acquired
		// above; speculative volume is bounded by the retry budget.
		page, err = crawler.Hedge(ctx, c.Hedger, func(ctx context.Context) (*eventsResponse, error) {
			return c.doOnce(ctx, endpoint)
		})
		if a := c.Adaptive; a != nil {
			a.Release()
			a.Observe(err, time.Since(start))
		}
		if b := c.Breaker; b != nil {
			b.Record(err)
		}
		return err
	})
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return page, nil
}

// doOnce performs one page request. Errors it returns are transient
// (retryable) unless wrapped with crawler.Permanent.
func (c *Client) doOnce(ctx context.Context, endpoint string) (*eventsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return nil, crawler.Permanent(err)
	}
	overload.SetRequestHeaders(req, c.ClientID)
	trace.Inject(req)
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	m().requests.Inc()
	resp, err := httpClient.Do(req)
	if err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("opensea: %w", err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	_ = resp.Body.Close() // read side; the read error above is what matters
	if err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("opensea: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		m().errors.Inc()
		statusErr := fmt.Errorf("opensea: HTTP %d: %s", resp.StatusCode, body)
		if d, ok := crawler.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return nil, crawler.RetryAfter(statusErr, d)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return nil, crawler.Permanent(statusErr)
		}
		return nil, statusErr
	}
	var page eventsResponse
	if err := json.Unmarshal(body, &page); err != nil {
		m().errors.Inc()
		return nil, fmt.Errorf("opensea: decode: %w", err)
	}
	return &page, nil
}
