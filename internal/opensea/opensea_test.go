package opensea

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/world"
)

func sampleEvents() []world.OpenSeaEvent {
	seller := ethtypes.DeriveAddress("catcher-1")
	buyer := ethtypes.DeriveAddress("buyer-1")
	var evs []world.OpenSeaEvent
	for i, label := range []string{"gold", "silver", "bronze"} {
		evs = append(evs, world.OpenSeaEvent{
			Kind: world.OSList, Label: label, TokenID: ens.LabelHash(label),
			Seller: seller, PriceUSD: float64(100 * (i + 1)), Timestamp: 1600000000 + int64(i),
		})
	}
	evs = append(evs, world.OpenSeaEvent{
		Kind: world.OSSale, Label: "gold", TokenID: ens.LabelHash("gold"),
		Seller: seller, Buyer: buyer, PriceUSD: 150, Timestamp: 1600001000,
	})
	return evs
}

func newPair(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer(sampleEvents()))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func TestEventsForToken(t *testing.T) {
	_, client := newPair(t)
	evs, err := client.EventsForToken(context.Background(), ens.LabelHash("gold"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("gold events = %d, want 2", len(evs))
	}
	if evs[0].EventType != "listing" || evs[1].EventType != "sale" {
		t.Errorf("event order: %+v", evs)
	}
	if evs[1].Buyer == "" {
		t.Error("sale missing buyer")
	}
	if evs[0].Name != "gold.eth" {
		t.Errorf("name = %q", evs[0].Name)
	}
}

func TestEventsForUnknownToken(t *testing.T) {
	_, client := newPair(t)
	evs, err := client.EventsForToken(context.Background(), ens.LabelHash("nothing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Errorf("got %d events for unknown token", len(evs))
	}
}

func TestAllEventsFilteredAndPaged(t *testing.T) {
	_, client := newPair(t)
	client.Limit = 1 // force one event per page
	listings, err := client.AllEvents(context.Background(), "listing")
	if err != nil {
		t.Fatal(err)
	}
	if len(listings) != 3 {
		t.Fatalf("listings = %d, want 3", len(listings))
	}
	sales, err := client.AllEvents(context.Background(), "sale")
	if err != nil {
		t.Fatal(err)
	}
	if len(sales) != 1 {
		t.Fatalf("sales = %d, want 1", len(sales))
	}
	all, err := client.AllEvents(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("all = %d, want 4", len(all))
	}
}

func TestServerRejectsBadParams(t *testing.T) {
	srv, _ := newPair(t)
	for _, u := range []string{
		srv.URL + "/events?limit=0",
		srv.URL + "/events?limit=9999",
		srv.URL + "/events?cursor=-1",
		srv.URL + "/events?cursor=abc",
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", u, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path -> %d, want 404", resp.StatusCode)
	}
}

func TestWorldIntegration(t *testing.T) {
	res, err := world.Generate(world.DefaultConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(res.OpenSea))
	defer srv.Close()
	client := NewClient(srv.URL)

	var wantListings, wantSales int
	for _, ev := range res.OpenSea {
		if ev.Kind == world.OSList {
			wantListings++
		} else {
			wantSales++
		}
	}
	listings, err := client.AllEvents(context.Background(), "listing")
	if err != nil {
		t.Fatal(err)
	}
	sales, err := client.AllEvents(context.Background(), "sale")
	if err != nil {
		t.Fatal(err)
	}
	if len(listings) != wantListings || len(sales) != wantSales {
		t.Errorf("got %d/%d listings/sales, want %d/%d", len(listings), len(sales), wantListings, wantSales)
	}
}
