// Package walletsim models the seven ENS-supporting digital wallets the
// paper surveys in Appendix B (Table 2). Each wallet resolves a .eth name
// through the resolver — which keeps answering after expiry — and, like
// every wallet the authors tested, shows no warning when the name has
// expired or changed hands. The package also implements the paper's
// proposed countermeasure (§6): a wallet that warns before sending funds
// to a recently expired or re-registered name.
package walletsim

import (
	"fmt"
	"time"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
)

// Resolution is the outcome of a wallet resolving an ENS name.
type Resolution struct {
	Address  ethtypes.Address
	Resolved bool
	// Warning is a human-readable caution; "" means the wallet would let
	// the transaction proceed silently.
	Warning string
}

// Wallet models one digital wallet's ENS resolution behaviour.
type Wallet interface {
	// Name returns the product name (e.g. "Metamask").
	Name() string
	// Version returns the surveyed version string.
	Version() string
	// Resolve resolves label (without ".eth") at time now.
	Resolve(label string, now int64) Resolution
}

// stockWallet reproduces the behaviour the paper observed in every tested
// wallet: resolve through the resolver regardless of registration state,
// warn never.
type stockWallet struct {
	name    string
	version string
	svc     *ens.Service
}

func (w *stockWallet) Name() string    { return w.name }
func (w *stockWallet) Version() string { return w.version }

func (w *stockWallet) Resolve(label string, now int64) Resolution {
	addr, ok := w.svc.Resolve(label)
	return Resolution{Address: addr, Resolved: ok}
}

// StockWallets returns the seven wallets of Table 2 wired to the given
// ENS deployment.
func StockWallets(svc *ens.Service) []Wallet {
	specs := []struct{ name, version string }{
		{"Metamask", "11.13.1"},
		{"Coinbase", "05/2024"},
		{"Trust Wallet", "2.9.2"},
		{"Bitcoin.com", "8.22.1"},
		{"Alpha Wallet", "3.72"},
		{"Atomic Wallet", "1.29.5"},
		{"Rainbow Wallet", "1.4.81"},
	}
	out := make([]Wallet, 0, len(specs))
	for _, s := range specs {
		out = append(out, &stockWallet{name: s.name, version: s.version, svc: svc})
	}
	return out
}

// GuardedWallet implements the paper's countermeasure: before resolving,
// it checks the registrar and warns when the name is expired (still
// resolving to its previous owner) or was re-registered within
// RecentWindow (the new owner may not be who the sender expects).
type GuardedWallet struct {
	svc *ens.Service
	// RecentWindow is how long after a (re-)registration the wallet
	// stays cautious. The zero value defaults to 90 days.
	RecentWindow time.Duration
}

// NewGuarded returns a guarded wallet over the ENS deployment.
func NewGuarded(svc *ens.Service) *GuardedWallet {
	return &GuardedWallet{svc: svc, RecentWindow: 90 * 24 * time.Hour}
}

// Name implements Wallet.
func (w *GuardedWallet) Name() string { return "Guarded Wallet (countermeasure)" }

// Version implements Wallet.
func (w *GuardedWallet) Version() string { return "1.0" }

// Resolve implements Wallet with expiry and recent-re-registration
// warnings.
func (w *GuardedWallet) Resolve(label string, now int64) Resolution {
	addr, ok := w.svc.Resolve(label)
	res := Resolution{Address: addr, Resolved: ok}
	if !ok {
		return res
	}
	reg, exists := w.svc.Registration(label)
	if !exists {
		res.Warning = fmt.Sprintf("%s.eth resolves but has no active registration record", label)
		return res
	}
	window := w.RecentWindow
	if window == 0 {
		window = 90 * 24 * time.Hour
	}
	switch {
	case now > reg.Expiry:
		res.Warning = fmt.Sprintf("%s.eth EXPIRED on %s and still resolves to a stale address — funds may reach whoever re-registers it",
			label, time.Unix(reg.Expiry, 0).UTC().Format("2006-01-02"))
	case now-reg.RegisteredAt < int64(window/time.Second):
		res.Warning = fmt.Sprintf("%s.eth was (re-)registered on %s — verify the recipient still controls this name",
			label, time.Unix(reg.RegisteredAt, 0).UTC().Format("2006-01-02"))
	}
	return res
}

// CachingWallet models a wallet (or dApp frontend) that caches ENS
// resolutions for TTL seconds. Caching interacts with dropcatching in both
// directions: a cache populated before a re-registration keeps paying the
// OLD owner after the catch (accidentally protective for the sender,
// income the new owner never sees), while a cache populated after it pins
// the NEW owner even if the original owner later recovers the name.
type CachingWallet struct {
	svc *ens.Service
	// TTL is how long a cached resolution is reused; zero defaults to
	// 24 hours.
	TTL time.Duration

	cache map[string]cachedEntry
}

type cachedEntry struct {
	addr ethtypes.Address
	at   int64
}

// NewCaching returns a caching wallet over the ENS deployment.
func NewCaching(svc *ens.Service, ttl time.Duration) *CachingWallet {
	if ttl == 0 {
		ttl = 24 * time.Hour
	}
	return &CachingWallet{svc: svc, TTL: ttl, cache: make(map[string]cachedEntry)}
}

// Name implements Wallet.
func (w *CachingWallet) Name() string { return "Caching Wallet" }

// Version implements Wallet.
func (w *CachingWallet) Version() string { return "1.0" }

// Resolve implements Wallet, serving from cache within the TTL.
func (w *CachingWallet) Resolve(label string, now int64) Resolution {
	if e, ok := w.cache[label]; ok && now-e.at < int64(w.TTL/time.Second) {
		return Resolution{Address: e.addr, Resolved: true}
	}
	addr, ok := w.svc.Resolve(label)
	if ok {
		w.cache[label] = cachedEntry{addr: addr, at: now}
	}
	return Resolution{Address: addr, Resolved: ok}
}

// SurveyRow is one line of Table 2.
type SurveyRow struct {
	Wallet          string
	Version         string
	DisplaysWarning bool
}

// Survey resolves each test label on each wallet at time now and reports
// whether any resolution produced a warning — the reproduction of the
// paper's Appendix B experiment.
func Survey(wallets []Wallet, labels []string, now int64) []SurveyRow {
	rows := make([]SurveyRow, 0, len(wallets))
	for _, w := range wallets {
		warned := false
		for _, label := range labels {
			if res := w.Resolve(label, now); res.Resolved && res.Warning != "" {
				warned = true
			}
		}
		rows = append(rows, SurveyRow{Wallet: w.Name(), Version: w.Version(), DisplaysWarning: warned})
	}
	return rows
}
