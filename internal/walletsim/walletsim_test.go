package walletsim

import (
	"strings"
	"testing"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

const start = 1580515200

// fixture sets up an ENS deployment with one domain registered by alice,
// resolving to her wallet, expiring one year out.
func fixture(t *testing.T) (*ens.Service, ethtypes.Address, *ens.Registration) {
	t.Helper()
	c := chain.New(start)
	svc := ens.Deploy(c, pricing.NewOracleNoise(0))
	alice := ethtypes.DeriveAddress("ws-alice")
	c.Mint(alice, ethtypes.Ether(1000))
	if _, err := svc.Register(start, alice, alice, "victim", ens.Year, svc.PriceWei("victim", ens.Year, start)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SetAddr(start+100, alice, "victim", alice); err != nil {
		t.Fatal(err)
	}
	reg, _ := svc.Registration("victim")
	return svc, alice, reg
}

func TestStockWalletsNeverWarn(t *testing.T) {
	svc, alice, reg := fixture(t)
	wallets := StockWallets(svc)
	if len(wallets) != 7 {
		t.Fatalf("wallets = %d, want 7 (Table 2)", len(wallets))
	}
	// Long after expiry the name still resolves to alice's wallet, and —
	// exactly as the paper found — no wallet says a word.
	after := ens.PremiumEndTime(reg.Expiry) + 86400
	for _, w := range wallets {
		res := w.Resolve("victim", after)
		if !res.Resolved || res.Address != alice {
			t.Errorf("%s did not resolve expired name to stale address", w.Name())
		}
		if res.Warning != "" {
			t.Errorf("%s warned (%q); the surveyed wallets do not", w.Name(), res.Warning)
		}
	}
}

func TestGuardedWalletWarnsOnExpired(t *testing.T) {
	svc, alice, reg := fixture(t)
	g := NewGuarded(svc)

	// During the registration's healthy middle age: no warning.
	healthy := reg.RegisteredAt + int64(100*24*3600)
	if res := g.Resolve("victim", healthy); res.Warning != "" {
		t.Errorf("healthy name warned: %q", res.Warning)
	}
	// Right after registration: recent-registration caution.
	if res := g.Resolve("victim", reg.RegisteredAt+3600); res.Warning == "" {
		t.Error("recent registration produced no caution")
	}
	// After expiry: explicit expiry warning, still resolving to alice.
	res := g.Resolve("victim", reg.Expiry+86400)
	if res.Warning == "" || !strings.Contains(res.Warning, "EXPIRED") {
		t.Errorf("expired name warning = %q", res.Warning)
	}
	if res.Address != alice {
		t.Error("guarded wallet changed resolution semantics")
	}
}

func TestGuardedWalletWarnsOnReregistration(t *testing.T) {
	svc, _, reg := fixture(t)
	g := NewGuarded(svc)
	attacker := ethtypes.DeriveAddress("ws-attacker")
	svc.Chain().Mint(attacker, ethtypes.Ether(1000))

	at := ens.PremiumEndTime(reg.Expiry) + 10
	rcpt, err := svc.Register(at, attacker, attacker, "victim", ens.Year, svc.PriceWei("victim", ens.Year, at))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("re-register: %v %v", err, rcpt)
	}
	svc.SetAddr(at+60, attacker, "victim", attacker)

	res := g.Resolve("victim", at+3600)
	if res.Warning == "" {
		t.Fatal("re-registered name produced no warning")
	}
	if res.Address != attacker {
		t.Error("resolution should now point at the new owner")
	}
	// Once the new registration ages past the window, the warning clears.
	aged := at + int64((91*24)*3600)
	if aged < ens.ReleaseTime(at+int64(ens.Year/time.Second)) {
		if res := g.Resolve("victim", aged); res.Warning != "" {
			t.Errorf("aged registration still warns: %q", res.Warning)
		}
	}
}

func TestGuardedWalletUnregisteredName(t *testing.T) {
	svc, _, _ := fixture(t)
	g := NewGuarded(svc)
	res := g.Resolve("neverregistered", start+100)
	if res.Resolved {
		t.Error("unregistered name resolved")
	}
	if res.Warning != "" {
		t.Error("unresolvable name needs no warning")
	}
}

func TestCachingWalletServesStaleEntries(t *testing.T) {
	svc, alice, reg := fixture(t)
	attacker := ethtypes.DeriveAddress("ws-cache-attacker")
	svc.Chain().Mint(attacker, ethtypes.Ether(1000))

	w := NewCaching(svc, 48*time.Hour)
	// Prime the cache while alice owns the name.
	if res := w.Resolve("victim", start+200); res.Address != alice {
		t.Fatal("prime failed")
	}

	// Mallory catches the name; a second wallet primes its cache after
	// the registration but before the resolver repoint lands.
	at := ens.PremiumEndTime(reg.Expiry) + 10
	rcpt, err := svc.Register(at, attacker, attacker, "victim", ens.Year, svc.PriceWei("victim", ens.Year, at))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("re-register: %v %v", err, rcpt)
	}
	w2 := NewCaching(svc, 48*time.Hour)
	if res := w2.Resolve("victim", at+30); res.Address != alice {
		t.Fatalf("pre-repoint resolution = %s, want stale alice record", res.Address)
	}

	svc.SetAddr(at+60, attacker, "victim", attacker)

	// Fresh/expired caches see the attacker immediately.
	if res := w.Resolve("victim", at+120); res.Address != attacker {
		t.Errorf("expired cache did not refresh: %s", res.Address)
	}
	// The primed cache keeps paying alice within the TTL — income the
	// dropcatcher never intercepts.
	if res := w2.Resolve("victim", at+3600); res.Address != alice {
		t.Errorf("cached wallet refreshed before TTL: %s", res.Address)
	}
	// After the TTL it refreshes to the attacker.
	if res := w2.Resolve("victim", at+30+int64(49*3600)); res.Address != attacker {
		t.Errorf("post-TTL resolution = %s, want attacker", res.Address)
	}
}

func TestSurveyReproducesTable2(t *testing.T) {
	svc, _, reg := fixture(t)
	after := ens.PremiumEndTime(reg.Expiry) + 86400

	rows := Survey(StockWallets(svc), []string{"victim"}, after)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DisplaysWarning {
			t.Errorf("%s displays warning; Table 2 reports none do", r.Wallet)
		}
	}
	guardRows := Survey([]Wallet{NewGuarded(svc)}, []string{"victim"}, after)
	if !guardRows[0].DisplaysWarning {
		t.Error("countermeasure wallet failed to warn")
	}
}
