package ens

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// Errors returned by registrar operations.
var (
	ErrUnavailable     = errors.New("ens: name unavailable")
	ErrNotRegistered   = errors.New("ens: name not registered")
	ErrNotOwner        = errors.New("ens: caller is not the owner")
	ErrUnderpaid       = errors.New("ens: insufficient payment")
	ErrDurationTooLow  = errors.New("ens: duration below minimum")
	ErrInvalidLabel    = errors.New("ens: invalid label")
	ErrPastGracePeriod = errors.New("ens: grace period over")
)

// Registration is the registrar's record of one .eth second-level name.
type Registration struct {
	Label        string
	LabelHash    ethtypes.Hash
	Node         ethtypes.Hash // namehash(label + ".eth")
	Registrant   ethtypes.Address
	Expiry       int64
	RegisteredAt int64
	// Unindexed marks names registered through the legacy path whose
	// plaintext label never appears in a controller event; the subgraph
	// can only see their hash (the paper's ~34K unrecoverable names).
	Unindexed bool
}

// Clone returns a copy of the registration.
func (r *Registration) Clone() *Registration {
	cp := *r
	return &cp
}

// Service wires the ENS contract suite to a simulated chain. All methods
// that mutate state submit transactions; query methods are pure reads.
// Service is safe for concurrent use.
type Service struct {
	mu     sync.RWMutex
	chain  *chain.Chain
	oracle *pricing.Oracle

	// Contract addresses (targets of submitted transactions).
	RegistryAddr   ethtypes.Address
	RegistrarAddr  ethtypes.Address
	ControllerAddr ethtypes.Address
	ResolverAddr   ethtypes.Address

	regs        map[ethtypes.Hash]*Registration // by labelhash
	byLabel     map[string]ethtypes.Hash
	addrRec     map[ethtypes.Hash]ethtypes.Address // resolver records by node (persist after expiry)
	commitments map[ethtypes.Hash]int64            // commitment hash -> commit time
	subnodes    map[ethtypes.Hash]*Subdomain       // registry records by node
	reverse     map[ethtypes.Address]string        // reverse-registrar claims
}

// Deploy installs the ENS contract suite on the chain.
func Deploy(c *chain.Chain, oracle *pricing.Oracle) *Service {
	return &Service{
		chain:          c,
		oracle:         oracle,
		RegistryAddr:   ethtypes.DeriveAddress("contract:ens-registry"),
		RegistrarAddr:  ethtypes.DeriveAddress("contract:eth-base-registrar"),
		ControllerAddr: ethtypes.DeriveAddress("contract:eth-registrar-controller"),
		ResolverAddr:   ethtypes.DeriveAddress("contract:public-resolver"),
		regs:           make(map[ethtypes.Hash]*Registration),
		byLabel:        make(map[string]ethtypes.Hash),
		addrRec:        make(map[ethtypes.Hash]ethtypes.Address),
		commitments:    make(map[ethtypes.Hash]int64),
		subnodes:       make(map[ethtypes.Hash]*Subdomain),
		reverse:        make(map[ethtypes.Address]string),
	}
}

// Chain returns the underlying chain.
func (s *Service) Chain() *chain.Chain { return s.chain }

// Oracle returns the ETH-USD oracle used for rent conversion.
func (s *Service) Oracle() *pricing.Oracle { return s.oracle }

// Available reports whether label can be registered at time now: either it
// was never registered, or its previous registration expired and the grace
// period has fully elapsed.
func (s *Service) Available(label string, now int64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.availableLocked(label, now)
}

func (s *Service) availableLocked(label string, now int64) bool {
	reg, ok := s.regs[LabelHash(label)]
	if !ok {
		return true
	}
	return now > ReleaseTime(reg.Expiry)
}

// Registration returns a copy of the current registrar record for label.
func (s *Service) Registration(label string) (*Registration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, ok := s.regs[LabelHash(label)]
	if !ok {
		return nil, false
	}
	return reg.Clone(), true
}

// OwnerOf returns the current registrant of label. Like the mainnet
// registrar's ownerOf, it reports no owner once the name has expired.
func (s *Service) OwnerOf(label string, now int64) (ethtypes.Address, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, ok := s.regs[LabelHash(label)]
	if !ok || now > reg.Expiry {
		return ethtypes.ZeroAddress, false
	}
	return reg.Registrant, true
}

// Resolve returns the resolver's address record for label (under .eth),
// regardless of registration expiry — the ENS behaviour the paper
// identifies as the root of transaction hijacking: "domains continue to
// resolve to the addresses set by previous owners even after expiration".
func (s *Service) Resolve(label string) (ethtypes.Address, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	addr, ok := s.addrRec[Namehash(label+".eth")]
	return addr, ok
}

// PriceWei quotes the total registration price (base rent + any temporary
// premium) for label at time now, for the given duration, in wei.
func (s *Service) PriceWei(label string, duration time.Duration, now int64) ethtypes.Wei {
	usd := s.PriceUSD(label, duration, now)
	eth := s.oracle.ETH(usd, now)
	return ethtypes.EtherFloat(eth)
}

// PriceUSD quotes the total registration price in USD.
func (s *Service) PriceUSD(label string, duration time.Duration, now int64) float64 {
	base := BaseRentUSDPerYear(label) * duration.Hours() / Year.Hours()
	s.mu.RLock()
	reg, ok := s.regs[LabelHash(label)]
	s.mu.RUnlock()
	if ok {
		base += PremiumUSDAt(reg.Expiry, now)
	}
	return base
}

// Register registers label for owner, paying with payment wei attached by
// from. Excess payment is refunded, as the mainnet controller does. The
// registration takes effect at time now.
func (s *Service) Register(now int64, from, owner ethtypes.Address, label string, duration time.Duration, payment ethtypes.Wei) (*chain.Receipt, error) {
	if len(label) < 3 {
		return nil, fmt.Errorf("%w: %q", ErrInvalidLabel, label)
	}
	if duration < MinRegistrationDuration {
		return nil, fmt.Errorf("%w: %s", ErrDurationTooLow, duration)
	}
	return s.chain.Apply(now, from, s.ControllerAddr, payment, []byte(label), "register", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.availableLocked(label, now) {
			return fmt.Errorf("%w: %q at %d", ErrUnavailable, label, now)
		}
		lh := LabelHash(label)
		baseUSD := BaseRentUSDPerYear(label) * duration.Hours() / Year.Hours()
		premiumUSD := 0.0
		if prev, ok := s.regs[lh]; ok {
			premiumUSD = PremiumUSDAt(prev.Expiry, now)
		}
		cost := ethtypes.EtherFloat(s.oracle.ETH(baseUSD+premiumUSD, now))
		if payment.Cmp(cost) < 0 {
			return fmt.Errorf("%w: need %s, got %s", ErrUnderpaid, cost, payment)
		}
		if excess := payment.Sub(cost); !excess.IsZero() {
			if err := ctx.TransferFromContract(from, excess); err != nil {
				return err
			}
		}
		reg := &Registration{
			Label:        label,
			LabelHash:    lh,
			Node:         Namehash(label + ".eth"),
			Registrant:   owner,
			Expiry:       now + int64(duration/time.Second),
			RegisteredAt: now,
		}
		s.regs[lh] = reg
		s.byLabel[label] = lh
		ctx.Emit("NameRegistered", []ethtypes.Hash{lh}, map[string]string{
			"name":       label,
			"label":      lh.Hex(),
			"owner":      owner.Hex(),
			"baseCost":   ethtypes.EtherFloat(s.oracle.ETH(baseUSD, now)).BigInt().String(),
			"premium":    ethtypes.EtherFloat(s.oracle.ETH(premiumUSD, now)).BigInt().String(),
			"costWei":    cost.BigInt().String(),
			"expires":    strconv.FormatInt(reg.Expiry, 10),
			"registered": strconv.FormatInt(now, 10),
		})
		return nil
	})
}

// RegisterUnindexed registers label through the legacy registrar path: the
// registration is valid, but no plaintext name appears in any event, so the
// subgraph can only index the hash. This models the paper's ~34K
// unrecoverable names (0.1-1% of the population).
func (s *Service) RegisterUnindexed(now int64, from, owner ethtypes.Address, label string, duration time.Duration, payment ethtypes.Wei) (*chain.Receipt, error) {
	rcpt, err := s.Register(now, from, owner, label, duration, payment)
	if err != nil {
		return rcpt, err
	}
	s.mu.Lock()
	if reg, ok := s.regs[LabelHash(label)]; ok {
		reg.Unindexed = true
	}
	s.mu.Unlock()
	// Rewrite the emitted log to hide the plaintext name, as if the
	// registration had bypassed the controller.
	for _, l := range rcpt.Logs {
		if l.Event == "NameRegistered" {
			delete(l.Data, "name")
			l.Data["unindexed"] = "true"
		}
	}
	return rcpt, err
}

// Renew extends label's registration by duration. Mainnet allows anyone to
// renew any name; renewal is valid until the end of the grace period.
func (s *Service) Renew(now int64, from ethtypes.Address, label string, duration time.Duration, payment ethtypes.Wei) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.ControllerAddr, payment, []byte(label), "renew", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		lh := LabelHash(label)
		reg, ok := s.regs[lh]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, label)
		}
		if now > ReleaseTime(reg.Expiry) {
			return fmt.Errorf("%w: %q", ErrPastGracePeriod, label)
		}
		usd := BaseRentUSDPerYear(label) * duration.Hours() / Year.Hours()
		cost := ethtypes.EtherFloat(s.oracle.ETH(usd, now))
		if payment.Cmp(cost) < 0 {
			return fmt.Errorf("%w: need %s, got %s", ErrUnderpaid, cost, payment)
		}
		if excess := payment.Sub(cost); !excess.IsZero() {
			if err := ctx.TransferFromContract(from, excess); err != nil {
				return err
			}
		}
		reg.Expiry += int64(duration / time.Second)
		data := map[string]string{
			"name":    label,
			"label":   lh.Hex(),
			"costWei": cost.BigInt().String(),
			"expires": strconv.FormatInt(reg.Expiry, 10),
		}
		if reg.Unindexed {
			// Legacy-path names stay hidden in follow-up events too.
			delete(data, "name")
		}
		ctx.Emit("NameRenewed", []ethtypes.Hash{lh}, data)
		return nil
	})
}

// TransferName moves ownership of an unexpired name from the current
// registrant to newOwner (an ERC-721 transfer on the base registrar).
func (s *Service) TransferName(now int64, from ethtypes.Address, label string, newOwner ethtypes.Address) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.RegistrarAddr, ethtypes.Wei{}, []byte(label), "safeTransferFrom", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		lh := LabelHash(label)
		reg, ok := s.regs[lh]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, label)
		}
		if now > reg.Expiry {
			return fmt.Errorf("%w: %q expired", ErrNotRegistered, label)
		}
		if reg.Registrant != from {
			return fmt.Errorf("%w: %s", ErrNotOwner, from)
		}
		old := reg.Registrant
		reg.Registrant = newOwner
		data := map[string]string{
			"name":     reg.Label,
			"label":    lh.Hex(),
			"from":     old.Hex(),
			"newOwner": newOwner.Hex(),
		}
		if reg.Unindexed {
			delete(data, "name")
		}
		ctx.Emit("NameTransferred", []ethtypes.Hash{lh}, data)
		return nil
	})
}

// SetAddr sets the resolver's address record for label. Only the current
// registrant may change it; the record itself persists after expiry.
func (s *Service) SetAddr(now int64, from ethtypes.Address, label string, target ethtypes.Address) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.ResolverAddr, ethtypes.Wei{}, []byte(label), "setAddr", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		lh := LabelHash(label)
		reg, ok := s.regs[lh]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, label)
		}
		if reg.Registrant != from || now > reg.Expiry {
			return fmt.Errorf("%w: %s", ErrNotOwner, from)
		}
		node := Namehash(label + ".eth")
		s.addrRec[node] = target
		data := map[string]string{
			"node": node.Hex(),
			"name": label,
			"addr": target.Hex(),
		}
		if reg.Unindexed {
			delete(data, "name")
		}
		ctx.Emit("AddrChanged", []ethtypes.Hash{node}, data)
		return nil
	})
}

// Registrations returns copies of every registrar record, for ground-truth
// validation in tests (the analysis pipeline never uses this).
func (s *Service) Registrations() []*Registration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Registration, 0, len(s.regs))
	for _, r := range s.regs {
		out = append(out, r.Clone())
	}
	// Map order would leak into the returned slice; ground-truth
	// comparisons need a stable order (maporder).
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].LabelHash[:], out[j].LabelHash[:]) < 0
	})
	return out
}
