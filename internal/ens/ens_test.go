package ens

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// worldStart is 2020-02-01T00:00:00Z, the start of the paper's window.
const worldStart = 1580515200

func newService(t *testing.T) (*Service, *chain.Chain) {
	t.Helper()
	c := chain.New(worldStart)
	return Deploy(c, pricing.NewOracleNoise(0)), c
}

func fund(c *chain.Chain, label string, eth int64) ethtypes.Address {
	a := ethtypes.DeriveAddress(label)
	c.Mint(a, ethtypes.Ether(eth))
	return a
}

func TestNamehashVectors(t *testing.T) {
	// EIP-137 test vectors.
	cases := []struct {
		name, want string
	}{
		{"", "0x0000000000000000000000000000000000000000000000000000000000000000"},
		{"eth", "0x93cdeb708b7545dc668eb9280176169d1c33cfd8ed6f04690a0bcc88a93fc4ae"},
		{"foo.eth", "0xde9b09fd7c5f901e23a3f19fecc54828e9c848539801e86591bd9801b019f84f"},
	}
	for _, c := range cases {
		if got := Namehash(c.name).Hex(); got != c.want {
			t.Errorf("Namehash(%q) = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestNamehashHierarchy(t *testing.T) {
	// namehash("a.b.eth") must depend on all labels.
	h1 := Namehash("a.b.eth")
	h2 := Namehash("a.c.eth")
	h3 := Namehash("b.eth")
	if h1 == h2 || h1 == h3 {
		t.Error("namehash collisions across distinct names")
	}
}

func TestBaseRentTiers(t *testing.T) {
	cases := []struct {
		label string
		want  float64
	}{
		{"abc", 640}, {"abcd", 160}, {"abcde", 5}, {"averylongname", 5},
	}
	for _, c := range cases {
		if got := BaseRentUSDPerYear(c.label); got != c.want {
			t.Errorf("BaseRentUSDPerYear(%q) = %v, want %v", c.label, got, c.want)
		}
	}
}

func TestPremiumDecay(t *testing.T) {
	expiry := int64(worldStart)
	release := ReleaseTime(expiry)

	if got := PremiumUSDAt(expiry, release-1); got != 0 {
		t.Errorf("premium before release = %v", got)
	}
	start := PremiumUSDAt(expiry, release)
	if start < 99_000_000 || start > 100_000_000 {
		t.Errorf("opening premium = %v, want ~100M", start)
	}
	day1 := PremiumUSDAt(expiry, release+86400)
	if ratio := day1 / start; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("premium halving off: day1/day0 = %v", ratio)
	}
	if got := PremiumUSDAt(expiry, PremiumEndTime(expiry)); got != 0 {
		t.Errorf("premium at auction end = %v, want 0", got)
	}
	almostEnd := PremiumUSDAt(expiry, PremiumEndTime(expiry)-3600)
	if almostEnd <= 0 || almostEnd > 50 {
		t.Errorf("premium one hour before end = %v, want small positive", almostEnd)
	}
}

func TestPremiumMonotoneDecreasing(t *testing.T) {
	expiry := int64(worldStart)
	release := ReleaseTime(expiry)
	prev := PremiumUSDAt(expiry, release)
	for h := int64(1); h <= 21*24; h++ {
		cur := PremiumUSDAt(expiry, release+h*3600)
		if cur > prev {
			t.Fatalf("premium increased at hour %d: %v > %v", h, cur, prev)
		}
		prev = cur
	}
}

func TestRegisterLifecycle(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)

	if !s.Available("gold", worldStart) {
		t.Fatal("fresh name not available")
	}
	price := s.PriceWei("gold", Year, worldStart)
	rcpt, err := s.Register(worldStart, alice, alice, "gold", Year, price)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Err != nil {
		t.Fatalf("register reverted: %v", rcpt.Err)
	}
	if len(rcpt.Logs) != 1 || rcpt.Logs[0].Event != "NameRegistered" {
		t.Fatalf("logs: %+v", rcpt.Logs)
	}
	if rcpt.Logs[0].Data["name"] != "gold" {
		t.Error("event missing plaintext name")
	}

	owner, ok := s.OwnerOf("gold", worldStart+100)
	if !ok || owner != alice {
		t.Errorf("OwnerOf = %s, %v", owner, ok)
	}
	if s.Available("gold", worldStart+100) {
		t.Error("registered name still available")
	}

	reg, _ := s.Registration("gold")
	// Within grace: not available, no owner reported.
	inGrace := reg.Expiry + 86400
	if s.Available("gold", inGrace) {
		t.Error("name available during grace period")
	}
	if _, ok := s.OwnerOf("gold", inGrace); ok {
		t.Error("expired name reports an owner")
	}
	// After grace: available.
	after := ReleaseTime(reg.Expiry) + 1
	if !s.Available("gold", after) {
		t.Error("name not available after grace")
	}
}

func TestRegisterRefundsExcess(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	price := s.PriceWei("gold", Year, worldStart)
	overpay := price.Add(ethtypes.Ether(5))
	if _, err := s.Register(worldStart, alice, alice, "gold", Year, overpay); err != nil {
		t.Fatal(err)
	}
	want := ethtypes.Ether(1000).Sub(price)
	if got := c.BalanceOf(alice); got.Cmp(want) != 0 {
		t.Errorf("alice balance %s, want %s", got, want)
	}
	if got := c.BalanceOf(s.ControllerAddr); got.Cmp(price) != 0 {
		t.Errorf("controller treasury %s, want %s", got, price)
	}
}

func TestRegisterUnderpaidReverts(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	rcpt, err := s.Register(worldStart, alice, alice, "gold", Year, ethtypes.NewWei(1))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrUnderpaid) {
		t.Errorf("revert reason = %v", rcpt.Err)
	}
	if _, ok := s.Registration("gold"); ok {
		t.Error("underpaid registration recorded")
	}
	if got := c.BalanceOf(alice); got.Cmp(ethtypes.Ether(1000)) != 0 {
		t.Errorf("alice balance %s after revert", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 10)
	if _, err := s.Register(worldStart, alice, alice, "ab", Year, ethtypes.Ether(1)); !errors.Is(err, ErrInvalidLabel) {
		t.Errorf("short label err = %v", err)
	}
	if _, err := s.Register(worldStart, alice, alice, "abcde", time.Hour, ethtypes.Ether(1)); !errors.Is(err, ErrDurationTooLow) {
		t.Errorf("short duration err = %v", err)
	}
}

func TestReRegistrationRequiresPremium(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	bob := fund(c, "bob", 100000)

	price := s.PriceWei("gold", Year, worldStart)
	if _, err := s.Register(worldStart, alice, alice, "gold", Year, price); err != nil {
		t.Fatal(err)
	}
	reg, _ := s.Registration("gold")
	release := ReleaseTime(reg.Expiry)

	// During the grace period a third party cannot register.
	rcpt, err := s.Register(release-86400, bob, bob, "gold", Year, ethtypes.Ether(10000))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrUnavailable) {
		t.Errorf("grace-period registration revert = %v", rcpt.Err)
	}

	// Right at release + 1 hour, the premium is still enormous.
	at := release + 3600
	usd := s.PriceUSD("gold", Year, at)
	if usd < 90_000_000 {
		t.Errorf("price shortly after release = %v USD, want ~100M", usd)
	}

	// After the premium window it is just base rent ("gold" is 4 chars ->
	// the $160/yr tier).
	at = PremiumEndTime(reg.Expiry) + 1
	usd = s.PriceUSD("gold", Year, at)
	if usd != BaseRentUSDPerYear("gold") {
		t.Errorf("price after premium window = %v USD, want %v", usd, BaseRentUSDPerYear("gold"))
	}
	p := s.PriceWei("gold", Year, at)
	rcpt, err = s.Register(at, bob, bob, "gold", Year, p)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Err != nil {
		t.Fatalf("re-registration reverted: %v", rcpt.Err)
	}
	owner, ok := s.OwnerOf("gold", at+1)
	if !ok || owner != bob {
		t.Errorf("new owner = %s, %v", owner, ok)
	}
}

func TestRenewExtendsExpiry(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))
	before, _ := s.Registration("gold")

	at := before.Expiry - 86400
	rcpt, err := s.Renew(at, alice, "gold", Year, s.PriceWei("gold", Year, at))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Err != nil {
		t.Fatalf("renew reverted: %v", rcpt.Err)
	}
	after, _ := s.Registration("gold")
	if after.Expiry != before.Expiry+int64(Year/time.Second) {
		t.Errorf("expiry %d, want %d", after.Expiry, before.Expiry+int64(Year/time.Second))
	}
}

func TestRenewDuringGraceAllowedAfterGraceRejected(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))
	reg, _ := s.Registration("gold")

	inGrace := reg.Expiry + 86400
	rcpt, err := s.Renew(inGrace, alice, "gold", Year, s.PriceWei("gold", Year, inGrace))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("grace renew failed: %v %v", err, rcpt)
	}

	reg2, _ := s.Registration("gold")
	past := ReleaseTime(reg2.Expiry) + 10
	rcpt, err = s.Renew(past, alice, "gold", Year, ethtypes.Ether(100))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrPastGracePeriod) {
		t.Errorf("post-grace renew revert = %v", rcpt.Err)
	}
}

func TestTransferName(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	bob := fund(c, "bob", 10)
	mallory := fund(c, "mallory", 10)
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))

	rcpt, err := s.TransferName(worldStart+100, mallory, "gold", mallory)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrNotOwner) {
		t.Errorf("non-owner transfer revert = %v", rcpt.Err)
	}

	rcpt, err = s.TransferName(worldStart+200, alice, "gold", bob)
	if err != nil || rcpt.Err != nil {
		t.Fatalf("transfer failed: %v %v", err, rcpt)
	}
	owner, _ := s.OwnerOf("gold", worldStart+300)
	if owner != bob {
		t.Errorf("owner after transfer = %s", owner)
	}
}

func TestResolverPersistsAfterExpiry(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	wallet := ethtypes.DeriveAddress("alice-wallet")
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))
	if _, err := s.SetAddr(worldStart+100, alice, "gold", wallet); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Resolve("gold")
	if !ok || got != wallet {
		t.Fatalf("Resolve = %s, %v", got, ok)
	}

	// Long after expiry and grace, the record still resolves — the paper's
	// central hazard.
	reg, _ := s.Registration("gold")
	_ = reg
	got, ok = s.Resolve("gold")
	if !ok || got != wallet {
		t.Error("resolver record lost after expiry")
	}
}

func TestSetAddrOnlyOwner(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	mallory := fund(c, "mallory", 10)
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))

	rcpt, err := s.SetAddr(worldStart+50, mallory, "gold", mallory)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrNotOwner) {
		t.Errorf("non-owner setAddr revert = %v", rcpt.Err)
	}
	// Expired owner cannot change records either (ownerOf gate).
	reg, _ := s.Registration("gold")
	rcpt, err = s.SetAddr(reg.Expiry+10, alice, "gold", alice)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrNotOwner) {
		t.Errorf("expired setAddr revert = %v", rcpt.Err)
	}
}

func TestNewOwnerOverwritesResolution(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	bob := fund(c, "bob", 1000)
	walletA := ethtypes.DeriveAddress("wallet-a")
	walletB := ethtypes.DeriveAddress("wallet-b")

	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))
	s.SetAddr(worldStart+10, alice, "gold", walletA)
	reg, _ := s.Registration("gold")

	at := PremiumEndTime(reg.Expiry) + 10
	rcpt, err := s.Register(at, bob, bob, "gold", Year, s.PriceWei("gold", Year, at))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("re-register: %v %v", err, rcpt)
	}
	// Until bob sets a record, the name still resolves to alice's wallet.
	if got, _ := s.Resolve("gold"); got != walletA {
		t.Errorf("stale resolution = %s, want %s", got, walletA)
	}
	s.SetAddr(at+10, bob, "gold", walletB)
	if got, _ := s.Resolve("gold"); got != walletB {
		t.Errorf("post-overwrite resolution = %s, want %s", got, walletB)
	}
}

func TestRegisterUnindexedHidesName(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "alice", 1000)
	rcpt, err := s.RegisterUnindexed(worldStart, alice, alice, "hidden", Year, s.PriceWei("hidden", Year, worldStart))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("register: %v %v", err, rcpt)
	}
	if _, ok := rcpt.Logs[0].Data["name"]; ok {
		t.Error("unindexed registration leaked plaintext name")
	}
	reg, _ := s.Registration("hidden")
	if !reg.Unindexed {
		t.Error("registration not marked unindexed")
	}
}

func TestQuickPremiumBounds(t *testing.T) {
	f := func(offsetHours uint16) bool {
		expiry := int64(worldStart)
		at := ReleaseTime(expiry) + int64(offsetHours)*3600
		p := PremiumUSDAt(expiry, at)
		return p >= 0 && p <= PremiumStartUSD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
