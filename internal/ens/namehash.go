// Package ens implements the Ethereum Name Service contract suite on top of
// the simulated chain: the registry, the .eth base registrar (NFT ownership
// with expiry and the 90-day grace period), the registrar controller
// (rent pricing plus the 21-day Dutch-auction temporary premium), and the
// public resolver whose address records persist after expiry — the design
// decision at the center of the paper's financial-loss analysis.
package ens

import (
	"strings"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/keccak"
)

// Namehash computes the ENS namehash of a dot-separated name, as specified
// by EIP-137: namehash("") is the zero hash and
// namehash(label + "." + rest) = keccak256(namehash(rest) || labelhash(label)).
// Names are stored on-chain only as these hashes, which is why building a
// complete domain list from the raw chain is hard (the problem the ENS
// subgraph — and our subgraph substrate — solves).
func Namehash(name string) ethtypes.Hash {
	var node ethtypes.Hash
	if name == "" {
		return node
	}
	labels := strings.Split(name, ".")
	for i := len(labels) - 1; i >= 0; i-- {
		lh := LabelHash(labels[i])
		var buf [64]byte
		copy(buf[:32], node[:])
		copy(buf[32:], lh[:])
		node = ethtypes.Hash(keccak.Sum256(buf[:]))
	}
	return node
}

// LabelHash returns keccak256 of a single label ("gold" in "gold.eth").
// It doubles as the ERC-721 token ID of a .eth second-level name.
func LabelHash(label string) ethtypes.Hash {
	return ethtypes.HashData([]byte(label))
}

// ETHNode is the namehash of the "eth" TLD.
var ETHNode = Namehash("eth")

// NodeFromLabelHash computes the namehash of "<label>.eth" given only the
// label hash — how indexers derive the domain node for names whose
// plaintext label is unknown.
func NodeFromLabelHash(lh ethtypes.Hash) ethtypes.Hash {
	var buf [64]byte
	copy(buf[:32], ETHNode[:])
	copy(buf[32:], lh[:])
	return ethtypes.Hash(keccak.Sum256(buf[:]))
}
