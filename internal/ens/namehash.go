// Package ens implements the Ethereum Name Service contract suite on top of
// the simulated chain: the registry, the .eth base registrar (NFT ownership
// with expiry and the 90-day grace period), the registrar controller
// (rent pricing plus the 21-day Dutch-auction temporary premium), and the
// public resolver whose address records persist after expiry — the design
// decision at the center of the paper's financial-loss analysis.
package ens

import (
	"strings"
	"sync"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/keccak"
)

// Namehash computes the ENS namehash of a dot-separated name, as specified
// by EIP-137: namehash("") is the zero hash and
// namehash(label + "." + rest) = keccak256(namehash(rest) || labelhash(label)).
// Names are stored on-chain only as these hashes, which is why building a
// complete domain list from the raw chain is hard (the problem the ENS
// subgraph — and our subgraph substrate — solves).
func Namehash(name string) ethtypes.Hash {
	var node ethtypes.Hash
	if name == "" {
		return node
	}
	labels := strings.Split(name, ".")
	for i := len(labels) - 1; i >= 0; i-- {
		lh := LabelHash(labels[i])
		var buf [64]byte
		copy(buf[:32], node[:])
		copy(buf[32:], lh[:])
		node = ethtypes.Hash(keccak.Sum256(buf[:]))
	}
	return node
}

// LabelHash returns keccak256 of a single label ("gold" in "gold.eth").
// It doubles as the ERC-721 token ID of a .eth second-level name.
func LabelHash(label string) ethtypes.Hash {
	return ethtypes.HashData([]byte(label))
}

// ETHNode is the namehash of the "eth" TLD.
var ETHNode = Namehash("eth")

// nodeCacheMax bounds the labelhash→namehash cache. The mapping is a
// pure function of the hash, so entries never invalidate; the bound
// only caps memory. 1<<17 entries ≈ 8 MiB covers a 100k-domain world
// with room to spare, and once full the cache simply stops growing
// (the hot head of a zipf-shaped workload is cached long before that).
const nodeCacheMax = 1 << 17

var nodeCache = struct {
	sync.RWMutex
	m map[ethtypes.Hash]ethtypes.Hash
}{m: make(map[ethtypes.Hash]ethtypes.Hash)}

// NodeFromLabelHash computes the namehash of "<label>.eth" given only the
// label hash — how indexers derive the domain node for names whose
// plaintext label is unknown. It sits on both the subgraph indexing path
// and the serve-side name lookups, and keccak is pure, so results are
// memoized in a bounded process-wide cache.
func NodeFromLabelHash(lh ethtypes.Hash) ethtypes.Hash {
	nodeCache.RLock()
	node, ok := nodeCache.m[lh]
	nodeCache.RUnlock()
	if ok {
		return node
	}
	var buf [64]byte
	copy(buf[:32], ETHNode[:])
	copy(buf[32:], lh[:])
	node = ethtypes.Hash(keccak.Sum256(buf[:]))
	nodeCache.Lock()
	if len(nodeCache.m) < nodeCacheMax {
		nodeCache.m[lh] = node
	}
	nodeCache.Unlock()
	return node
}
