package ens

import (
	"math"
	"time"
)

// Registrar timing constants (mainnet values).
const (
	// GracePeriod is how long after expiry the previous registrant can
	// still renew before the name becomes publicly available.
	GracePeriod = 90 * 24 * time.Hour

	// PremiumPeriod is the length of the Dutch auction after the grace
	// period ends, during which re-registration costs a decaying premium.
	PremiumPeriod = 21 * 24 * time.Hour

	// PremiumStartUSD is the opening premium of the Dutch auction.
	PremiumStartUSD = 100_000_000

	// MinRegistrationDuration is the shortest allowed registration.
	MinRegistrationDuration = 28 * 24 * time.Hour

	// Year is the registration pricing unit.
	Year = 365 * 24 * time.Hour
)

// BaseRentUSDPerYear returns the annual base rent in USD for a label, using
// the mainnet controller's length-tiered prices: 3-character names cost
// $640/yr, 4-character $160/yr, and 5+ characters $5/yr.
func BaseRentUSDPerYear(label string) float64 {
	switch n := len([]rune(label)); {
	case n <= 3:
		return 640
	case n == 4:
		return 160
	default:
		return 5
	}
}

// PremiumUSDAt returns the temporary-premium component, in USD, for a name
// whose previous registration expired at expiry, evaluated at time now.
// Before the grace period ends the name is not purchasable and the premium
// is +Inf conceptually; this function returns 0 there because callers gate
// on availability first. During the 21-day auction the premium starts at
// PremiumStartUSD and halves every 24 hours, offset so it reaches exactly
// zero at the end of the window (the mainnet ExponentialPremiumPriceOracle).
func PremiumUSDAt(expiry int64, now int64) float64 {
	releaseTime := expiry + int64(GracePeriod/time.Second)
	elapsed := now - releaseTime
	if elapsed < 0 {
		return 0
	}
	window := int64(PremiumPeriod / time.Second)
	if elapsed >= window {
		return 0
	}
	days := float64(elapsed) / 86400.0
	totalDays := float64(window) / 86400.0
	endValue := PremiumStartUSD * math.Pow(0.5, totalDays)
	p := PremiumStartUSD*math.Pow(0.5, days) - endValue
	if p < 0 {
		return 0
	}
	return p
}

// PremiumEndTime returns the unix time at which the premium for a name with
// the given expiry reaches zero (grace period + auction window).
func PremiumEndTime(expiry int64) int64 {
	return expiry + int64((GracePeriod+PremiumPeriod)/time.Second)
}

// ReleaseTime returns the unix time at which a name with the given expiry
// becomes available for public re-registration (end of grace period).
func ReleaseTime(expiry int64) int64 {
	return expiry + int64(GracePeriod/time.Second)
}
