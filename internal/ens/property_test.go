package ens

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

// Property tests over random operation sequences: whatever order of
// registers, renews, transfers, and time jumps we throw at the contracts,
// the registrar's core invariants must hold.

// opSequence drives a randomized lifecycle for a handful of labels.
func runRandomOps(seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	c := chain.New(worldStart)
	svc := Deploy(c, pricing.NewOracleNoise(0))

	labels := []string{"prop-one", "prop-two", "prop-three"}
	actors := make([]ethtypes.Address, 4)
	for i := range actors {
		actors[i] = ethtypes.DeriveAddress(fmt.Sprintf("prop-actor-%d-%d", seed, i))
		c.Mint(actors[i], ethtypes.Ether(1_000_000))
	}

	now := int64(worldStart)
	for s := 0; s < steps; s++ {
		now += rng.Int63n(90 * 86400)
		label := labels[rng.Intn(len(labels))]
		actor := actors[rng.Intn(len(actors))]
		switch rng.Intn(3) {
		case 0:
			price := svc.PriceWei(label, Year, now)
			rcpt, err := svc.Register(now, actor, actor, label, Year, price)
			if err != nil {
				return fmt.Errorf("register transport error: %w", err)
			}
			// A revert is fine (unavailable); a success must make the
			// actor the owner.
			if rcpt.Err == nil {
				owner, ok := svc.OwnerOf(label, now)
				if !ok || owner != actor {
					return fmt.Errorf("successful register did not set owner")
				}
			} else if svc.Available(label, now) {
				return fmt.Errorf("register of available name reverted: %w", rcpt.Err)
			}
		case 1:
			price := svc.PriceWei(label, Year, now)
			rcpt, err := svc.Renew(now, actor, label, Year, price)
			if err != nil {
				return fmt.Errorf("renew transport error: %w", err)
			}
			if rcpt.Err == nil {
				reg, ok := svc.Registration(label)
				if !ok || reg.Expiry <= now {
					return fmt.Errorf("successful renew left stale expiry")
				}
			}
		case 2:
			target := actors[rng.Intn(len(actors))]
			rcpt, err := svc.TransferName(now, actor, label, target)
			if err != nil {
				return fmt.Errorf("transfer transport error: %w", err)
			}
			if rcpt.Err == nil {
				owner, ok := svc.OwnerOf(label, now)
				if !ok || owner != target {
					return fmt.Errorf("successful transfer did not move ownership")
				}
			}
		}

		// Global invariants after every step.
		for _, l := range labels {
			reg, ok := svc.Registration(l)
			if !ok {
				continue
			}
			// Availability and ownership must be mutually exclusive.
			if svc.Available(l, now) {
				if _, owned := svc.OwnerOf(l, now); owned {
					return fmt.Errorf("%q is available AND owned", l)
				}
			}
			// An unexpired registration is never available.
			if now <= reg.Expiry && svc.Available(l, now) {
				return fmt.Errorf("%q available while unexpired", l)
			}
			// Expiry only ever sits in the future of its registration.
			if reg.Expiry <= reg.RegisteredAt {
				return fmt.Errorf("%q has non-positive tenure", l)
			}
		}
	}
	return nil
}

func TestQuickRegistrarInvariants(t *testing.T) {
	f := func(seed int64) bool {
		if err := runRandomOps(seed, 40); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickTreasuryNeverLosesMoney(t *testing.T) {
	// Whatever happens, the controller's balance equals the sum of all
	// successful registration/renewal costs: refunds never overdraw it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := chain.New(worldStart)
		svc := Deploy(c, pricing.NewOracleNoise(0))
		actor := ethtypes.DeriveAddress(fmt.Sprintf("treasury-actor-%d", seed))
		c.Mint(actor, ethtypes.Ether(1_000_000))

		expected := ethtypes.Wei{}
		now := int64(worldStart)
		for i := 0; i < 20; i++ {
			now += rng.Int63n(200 * 86400)
			label := fmt.Sprintf("trs%d", rng.Intn(3))
			price := svc.PriceWei(label, Year, now)
			overpay := price.Add(ethtypes.Ether(int64(rng.Intn(3))))
			rcpt, err := svc.Register(now, actor, actor, label, Year, overpay)
			if err != nil {
				return false
			}
			if rcpt.Err == nil {
				expected = expected.Add(price)
			}
		}
		return c.BalanceOf(svc.ControllerAddr).Cmp(expected) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
