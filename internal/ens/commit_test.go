package ens

import (
	"errors"
	"testing"
	"time"

	"ensdropcatch/internal/ethtypes"
)

func TestCommitRevealHappyPath(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "cr-alice", 1000)
	secret := ethtypes.HashData([]byte("my-secret"))

	commitment := MakeCommitment("gold", alice, secret)
	if _, err := s.Commit(worldStart, alice, commitment); err != nil {
		t.Fatal(err)
	}
	at := worldStart + int64(MinCommitmentAge/time.Second) + 1
	rcpt, err := s.RegisterWithCommitment(at, alice, alice, "gold", Year, s.PriceWei("gold", Year, at), secret)
	if err != nil || rcpt.Err != nil {
		t.Fatalf("reveal failed: %v %v", err, rcpt)
	}
	owner, ok := s.OwnerOf("gold", at+1)
	if !ok || owner != alice {
		t.Errorf("owner = %s, %v", owner, ok)
	}
	// The consumed commitment cannot be replayed.
	_, err = s.RegisterWithCommitment(at+100, alice, alice, "gold", Year, s.PriceWei("gold", Year, at), secret)
	if !errors.Is(err, ErrNoCommitment) {
		t.Errorf("replay err = %v", err)
	}
}

func TestCommitRevealTiming(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "cr-timing", 1000)
	secret := ethtypes.HashData([]byte("s"))
	commitment := MakeCommitment("silverfox", alice, secret)
	if _, err := s.Commit(worldStart, alice, commitment); err != nil {
		t.Fatal(err)
	}
	// Too soon.
	_, err := s.RegisterWithCommitment(worldStart+10, alice, alice, "silverfox", Year, ethtypes.Ether(1), secret)
	if !errors.Is(err, ErrCommitmentTooNew) {
		t.Errorf("early reveal err = %v", err)
	}
	// Too late.
	late := worldStart + int64(MaxCommitmentAge/time.Second) + 10
	_, err = s.RegisterWithCommitment(late, alice, alice, "silverfox", Year, ethtypes.Ether(1), secret)
	if !errors.Is(err, ErrCommitmentExpired) {
		t.Errorf("late reveal err = %v", err)
	}
}

func TestCommitWrongSecretOrOwner(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "cr-a", 1000)
	bob := fund(c, "cr-b", 1000)
	secret := ethtypes.HashData([]byte("s1"))
	if _, err := s.Commit(worldStart, alice, MakeCommitment("copper", alice, secret)); err != nil {
		t.Fatal(err)
	}
	at := int64(worldStart + 120)
	// Wrong secret: different commitment, not found.
	if _, err := s.RegisterWithCommitment(at, alice, alice, "copper", Year, ethtypes.Ether(1), ethtypes.HashData([]byte("s2"))); !errors.Is(err, ErrNoCommitment) {
		t.Errorf("wrong secret err = %v", err)
	}
	// Front-runner with the right label but their own owner cannot use
	// alice's commitment.
	if _, err := s.RegisterWithCommitment(at, bob, bob, "copper", Year, ethtypes.Ether(1), secret); !errors.Is(err, ErrNoCommitment) {
		t.Errorf("front-run err = %v", err)
	}
}

func TestDuplicateCommitmentRejected(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "cr-dup", 1000)
	commitment := MakeCommitment("zinc", alice, ethtypes.HashData([]byte("s")))
	if _, err := s.Commit(worldStart, alice, commitment); err != nil {
		t.Fatal(err)
	}
	rcpt, err := s.Commit(worldStart+60, alice, commitment)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrDuplicateCommit) {
		t.Errorf("duplicate commit revert = %v", rcpt.Err)
	}
	// After the old commitment expires it may be re-made.
	later := worldStart + int64(MaxCommitmentAge/time.Second) + 100
	rcpt, err = s.Commit(later, alice, commitment)
	if err != nil || rcpt.Err != nil {
		t.Errorf("re-commit after expiry: %v %v", err, rcpt)
	}
}

func TestSubdomainLifecycle(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "sd-alice", 1000)
	mallory := fund(c, "sd-mallory", 10)
	payBot := ethtypes.DeriveAddress("sd-paybot")

	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))

	// Only the parent owner can create subdomains.
	rcpt, err := s.CreateSubdomain(worldStart+10, mallory, "gold", "pay", mallory)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrNotOwner) {
		t.Errorf("non-owner subdomain revert = %v", rcpt.Err)
	}

	rcpt, err = s.CreateSubdomain(worldStart+20, alice, "gold", "pay", payBot)
	if err != nil || rcpt.Err != nil {
		t.Fatalf("create: %v %v", err, rcpt)
	}
	sub, ok := s.SubdomainOf("pay.gold")
	if !ok || sub.Owner != payBot || sub.FullName != "pay.gold" {
		t.Fatalf("subdomain = %+v, %v", sub, ok)
	}
	if s.SubdomainCount() != 1 {
		t.Errorf("count = %d", s.SubdomainCount())
	}

	// The subdomain owner (not the parent owner) controls its records.
	rcpt, err = s.SetSubdomainAddr(worldStart+30, alice, "pay.gold", alice)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rcpt.Err, ErrNotOwner) {
		t.Errorf("parent setting sub record revert = %v", rcpt.Err)
	}
	if _, err := s.SetSubdomainAddr(worldStart+40, payBot, "pay.gold", payBot); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Resolve("pay.gold")
	if !ok || got != payBot {
		t.Errorf("resolve pay.gold = %s, %v", got, ok)
	}

	// Invalid labels rejected.
	if _, err := s.CreateSubdomain(worldStart+50, alice, "gold", "a.b", alice); !errors.Is(err, ErrInvalidLabel) {
		t.Errorf("dotted sublabel err = %v", err)
	}
}

func TestSubdomainRecordSurvivesParentExpiry(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "sd2-alice", 1000)
	s.Register(worldStart, alice, alice, "gold", Year, s.PriceWei("gold", Year, worldStart))
	s.CreateSubdomain(worldStart+10, alice, "gold", "vault", alice)
	s.SetSubdomainAddr(worldStart+20, alice, "vault.gold", alice)

	// Long after gold.eth expired, vault.gold.eth still resolves — more
	// residual state, same hazard class as the paper's 2LD finding.
	if got, ok := s.Resolve("vault.gold"); !ok || got != alice {
		t.Errorf("stale subdomain resolution = %s, %v", got, ok)
	}
}
