package ens

import (
	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
)

// Reverse resolution ("primary names"): an address claims its node under
// addr.reverse and points it at a name, so dApps can display "gold.eth"
// instead of 0x1234…. A reverse record is only trustworthy if the forward
// resolution of the claimed name still maps back to the address — a check
// clients must perform themselves. Dropcatching breaks exactly this
// invariant: after a catch, the previous owner's reverse record still
// claims the name while the name forward-resolves to the new owner.

// ReverseNode computes the reverse-registrar node for an address
// (<hex-addr>.addr.reverse).
func ReverseNode(addr ethtypes.Address) ethtypes.Hash {
	const digits = "0123456789abcdef"
	hexAddr := make([]byte, 40)
	for i, b := range addr {
		hexAddr[2*i] = digits[b>>4]
		hexAddr[2*i+1] = digits[b&0x0f]
	}
	return Namehash(string(hexAddr) + ".addr.reverse")
}

// SetReverseRecord claims the caller's reverse node and points it at a
// name ("gold", meaning gold.eth). Any address may claim only its own
// reverse record, which is why from is the claimed address.
func (s *Service) SetReverseRecord(now int64, from ethtypes.Address, label string) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.RegistryAddr, ethtypes.Wei{}, []byte(label), "setName", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		node := ReverseNode(from)
		s.reverse[from] = label
		ctx.Emit("ReverseClaimed", []ethtypes.Hash{node}, map[string]string{
			"addr": from.Hex(),
			"name": label,
		})
		return nil
	})
}

// ReverseLookup returns the primary name claimed by addr. With verify set
// (how compliant clients behave) the claim only stands if the name still
// forward-resolves to addr; unverified lookups reproduce the sloppy-client
// hazard.
func (s *Service) ReverseLookup(addr ethtypes.Address, verify bool) (string, bool) {
	s.mu.RLock()
	label, ok := s.reverse[addr]
	s.mu.RUnlock()
	if !ok {
		return "", false
	}
	if !verify {
		return label, true
	}
	forward, ok := s.Resolve(label)
	if !ok || forward != addr {
		return "", false
	}
	return label, true
}

// ReverseRecordCount returns the number of claimed reverse records.
func (s *Service) ReverseRecordCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.reverse)
}
