package ens

import (
	"fmt"
	"sync"
	"testing"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/keccak"
)

// nodeDirect is the uncached reference computation.
func nodeDirect(lh ethtypes.Hash) ethtypes.Hash {
	var buf [64]byte
	copy(buf[:32], ETHNode[:])
	copy(buf[32:], lh[:])
	return ethtypes.Hash(keccak.Sum256(buf[:]))
}

func TestNodeFromLabelHashMatchesDirect(t *testing.T) {
	for i := 0; i < 500; i++ {
		lh := LabelHash(fmt.Sprintf("label-%d", i))
		want := nodeDirect(lh)
		if got := NodeFromLabelHash(lh); got != want {
			t.Fatalf("NodeFromLabelHash(%s) = %s, want %s", lh.Hex(), got.Hex(), want.Hex())
		}
		// Second call answers from the cache and must be identical.
		if got := NodeFromLabelHash(lh); got != want {
			t.Fatalf("cached NodeFromLabelHash(%s) = %s, want %s", lh.Hex(), got.Hex(), want.Hex())
		}
	}
}

func TestNodeFromLabelHashMatchesNamehash(t *testing.T) {
	for _, label := range []string{"gold", "a", "dropcatch", "0123456789"} {
		want := Namehash(label + ".eth")
		if got := NodeFromLabelHash(LabelHash(label)); got != want {
			t.Errorf("NodeFromLabelHash(LabelHash(%q)) = %s, want Namehash %s", label, got.Hex(), want.Hex())
		}
	}
}

func TestNodeFromLabelHashConcurrent(t *testing.T) {
	// Hammer one small key set from many goroutines; the race detector
	// (make race / race-all) validates the lock discipline, and every
	// result must agree with the direct computation.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lh := LabelHash(fmt.Sprintf("concurrent-%d", i%17))
				if NodeFromLabelHash(lh) != nodeDirect(lh) {
					t.Error("concurrent cache result mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkNodeFromLabelHash(b *testing.B) {
	lhs := make([]ethtypes.Hash, 1024)
	for i := range lhs {
		lhs[i] = LabelHash(fmt.Sprintf("bench-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeFromLabelHash(lhs[i&1023])
	}
}

func BenchmarkNamehash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Namehash("pay.gold.eth")
	}
}
