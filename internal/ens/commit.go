package ens

import (
	"errors"
	"fmt"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/keccak"
)

// The mainnet controller's commit-reveal scheme prevents front-running:
// a registrant first publishes keccak256(label, owner, secret), waits at
// least MinCommitmentAge, then registers within MaxCommitmentAge revealing
// the preimage. Dropcatchers racing for a name at premium-end rely on this
// to keep their target secret until the registration lands.
const (
	// MinCommitmentAge is the shortest time between commit and reveal.
	MinCommitmentAge = 60 * time.Second
	// MaxCommitmentAge is how long a commitment stays valid.
	MaxCommitmentAge = 24 * time.Hour
)

// Commit-reveal errors.
var (
	ErrNoCommitment      = errors.New("ens: commitment not found")
	ErrCommitmentTooNew  = errors.New("ens: commitment too new")
	ErrCommitmentExpired = errors.New("ens: commitment expired")
	ErrDuplicateCommit   = errors.New("ens: unexpired commitment exists")
)

// MakeCommitment computes the commitment hash for label/owner/secret.
func MakeCommitment(label string, owner ethtypes.Address, secret ethtypes.Hash) ethtypes.Hash {
	buf := make([]byte, 0, len(label)+ethtypes.AddressLength+ethtypes.HashLength)
	buf = append(buf, label...)
	buf = append(buf, owner[:]...)
	buf = append(buf, secret[:]...)
	return ethtypes.Hash(keccak.Sum256(buf))
}

// Commit records a registration commitment on-chain.
func (s *Service) Commit(now int64, from ethtypes.Address, commitment ethtypes.Hash) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.ControllerAddr, ethtypes.Wei{}, commitment[:], "commit", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if at, ok := s.commitments[commitment]; ok {
			if now-at < int64(MaxCommitmentAge/time.Second) {
				return fmt.Errorf("%w: committed at %d", ErrDuplicateCommit, at)
			}
		}
		s.commitments[commitment] = now
		ctx.Emit("CommitmentMade", []ethtypes.Hash{commitment}, map[string]string{
			"commitment": commitment.Hex(),
		})
		return nil
	})
}

// RegisterWithCommitment registers label for owner, revealing the secret
// committed earlier. The commitment must be older than MinCommitmentAge
// and younger than MaxCommitmentAge. Pricing and availability semantics
// are identical to Register.
func (s *Service) RegisterWithCommitment(now int64, from, owner ethtypes.Address, label string, duration time.Duration, payment ethtypes.Wei, secret ethtypes.Hash) (*chain.Receipt, error) {
	commitment := MakeCommitment(label, owner, secret)
	s.mu.RLock()
	committedAt, ok := s.commitments[commitment]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCommitment, commitment)
	}
	age := now - committedAt
	if age < int64(MinCommitmentAge/time.Second) {
		return nil, fmt.Errorf("%w: age %ds < %s", ErrCommitmentTooNew, age, MinCommitmentAge)
	}
	if age > int64(MaxCommitmentAge/time.Second) {
		return nil, fmt.Errorf("%w: age %ds > %s", ErrCommitmentExpired, age, MaxCommitmentAge)
	}
	rcpt, err := s.Register(now, from, owner, label, duration, payment)
	if err == nil && rcpt.Err == nil {
		s.mu.Lock()
		delete(s.commitments, commitment)
		s.mu.Unlock()
	}
	return rcpt, err
}
