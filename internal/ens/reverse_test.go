package ens

import (
	"testing"

	"ensdropcatch/internal/ethtypes"
)

func TestReverseRecordLifecycle(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "rev-alice", 1000)

	s.Register(worldStart, alice, alice, "goldmine", Year, s.PriceWei("goldmine", Year, worldStart))
	s.SetAddr(worldStart+10, alice, "goldmine", alice)
	if _, err := s.SetReverseRecord(worldStart+20, alice, "goldmine"); err != nil {
		t.Fatal(err)
	}

	name, ok := s.ReverseLookup(alice, true)
	if !ok || name != "goldmine" {
		t.Errorf("verified lookup = %q, %v", name, ok)
	}
	if s.ReverseRecordCount() != 1 {
		t.Errorf("count = %d", s.ReverseRecordCount())
	}
	if _, ok := s.ReverseLookup(ethtypes.DeriveAddress("rev-nobody"), true); ok {
		t.Error("unclaimed address has a reverse record")
	}
}

func TestReverseVerificationCatchesStaleClaims(t *testing.T) {
	s, c := newService(t)
	alice := fund(c, "rev2-alice", 1000)
	attacker := fund(c, "rev2-attacker", 1000)

	s.Register(worldStart, alice, alice, "goldmine", Year, s.PriceWei("goldmine", Year, worldStart))
	s.SetAddr(worldStart+10, alice, "goldmine", alice)
	s.SetReverseRecord(worldStart+20, alice, "goldmine")

	// The name expires; the attacker catches it and repoints it.
	reg, _ := s.Registration("goldmine")
	at := PremiumEndTime(reg.Expiry) + 10
	rcpt, err := s.Register(at, attacker, attacker, "goldmine", Year, s.PriceWei("goldmine", Year, at))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("catch: %v %v", err, rcpt)
	}
	s.SetAddr(at+60, attacker, "goldmine", attacker)

	// Alice's reverse record still claims the name...
	name, ok := s.ReverseLookup(alice, false)
	if !ok || name != "goldmine" {
		t.Fatalf("unverified lookup = %q, %v", name, ok)
	}
	// ...but a compliant client's forward verification now rejects it.
	if _, ok := s.ReverseLookup(alice, true); ok {
		t.Error("verified lookup accepted a stale reverse claim after dropcatch")
	}
	// The attacker can claim it legitimately.
	s.SetReverseRecord(at+120, attacker, "goldmine")
	name, ok = s.ReverseLookup(attacker, true)
	if !ok || name != "goldmine" {
		t.Errorf("attacker verified lookup = %q, %v", name, ok)
	}
}

func TestReverseNodeDistinct(t *testing.T) {
	a := ReverseNode(ethtypes.DeriveAddress("rev-x"))
	b := ReverseNode(ethtypes.DeriveAddress("rev-y"))
	if a == b || a.IsZero() {
		t.Error("reverse nodes not distinct")
	}
}
